//! Quickstart: partition a synthetic social graph with several streaming
//! algorithms and compare their structural quality.
//!
//! Run with: `cargo run --release --example quickstart`

use streaming_graph_partitioning::prelude::*;

fn main() {
    // 1. Generate a Twitter-like graph (an R-MAT stand-in for the
    //    paper's 1.46B-edge crawl, at laptop scale).
    let graph = Dataset::Twitter.generate(Scale::Small);
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // 2. Partition it 8 ways with a few representative algorithms.
    let k = 8;
    let config = PartitionerConfig::new(k);
    println!("\n{:<6} {:>6} {:>9} {:>10} {:>12}", "alg", "k", "RF", "edge-cut", "imbalance");
    for alg in [
        Algorithm::EcrHash,
        Algorithm::Ldg,
        Algorithm::Fennel,
        Algorithm::VcrHash,
        Algorithm::Dbh,
        Algorithm::Hdrf,
        Algorithm::Ginger,
        Algorithm::Metis,
    ] {
        let p = partition(&graph, alg, &config, StreamOrder::default());
        let rf = replication_factor(&graph, &p);
        let ecr = edge_cut_ratio(&graph, &p)
            .map(|e| format!("{e:.3}"))
            .unwrap_or_else(|| "-".to_string());
        let imbalance = load_imbalance(&p.edges_per_partition());
        println!("{:<6} {:>6} {:>9.3} {:>10} {:>12.3}", alg, k, rf, ecr, imbalance);
    }

    // 3. Ask the paper's decision tree (Fig. 9) what to use here.
    let rec = sgp_core::decision::recommend_for_graph(&graph, WorkloadClass::OfflineAnalytics);
    println!("\ndecision tree recommends: {}", rec.algorithm);
    for step in &rec.reasoning {
        println!("  - {step}");
    }
}
