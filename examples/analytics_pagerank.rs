//! Offline analytics scenario (the paper's §6.2): run PageRank, WCC and
//! SSSP on a simulated PowerLyra-like cluster under different
//! partitioners and watch how cut model and load balance drive network
//! traffic and execution time.
//!
//! Run with: `cargo run --release --example analytics_pagerank`

use streaming_graph_partitioning::prelude::*;

fn main() {
    let graph = Dataset::Twitter.generate(Scale::Small);
    let k = 16;
    let config = PartitionerConfig::new(k);
    let algorithms = [
        Algorithm::EcrHash,
        Algorithm::Ldg,
        Algorithm::VcrHash,
        Algorithm::Hdrf,
        Algorithm::Ginger,
    ];

    println!(
        "PageRank / WCC / SSSP on a Twitter-like graph, {k} simulated machines\n\
         (execution time excludes partitioning, as in the paper §5.1.4)\n"
    );
    println!(
        "{:<6} {:<9} {:>7} {:>12} {:>10} {:>10} {:>12}",
        "alg", "workload", "RF", "net bytes", "msgs", "iters", "exec (s)"
    );
    for alg in algorithms {
        let p = partition(&graph, alg, &config, StreamOrder::default());
        let placement = Placement::build(&graph, &p);
        for workload in OfflineWorkload::all() {
            let report = runners::run_offline_workload(
                &graph,
                &placement,
                *workload,
                &EngineOptions::default(),
            );
            println!(
                "{:<6} {:<9} {:>7.2} {:>12} {:>10} {:>10} {:>12.4}",
                alg,
                workload.name(),
                report.replication_factor,
                report.total_network_bytes(),
                report.total_messages(),
                report.num_iterations(),
                report.total_seconds(),
            );
        }
    }

    // The Fig. 4 view: who does the work under an edge-cut vs a
    // vertex-cut placement on a skewed graph?
    println!("\nper-machine compute time distribution for PageRank (seconds):");
    println!("{:<6} {:>9} {:>9} {:>9} {:>9} {:>9}", "alg", "min", "p25", "median", "p75", "max");
    for alg in [Algorithm::Ldg, Algorithm::Hdrf] {
        let p = partition(&graph, alg, &config, StreamOrder::default());
        let placement = Placement::build(&graph, &p);
        let report = runners::run_offline_workload(
            &graph,
            &placement,
            OfflineWorkload::PageRank,
            &EngineOptions::default(),
        );
        let d = report.compute_time_distribution();
        println!(
            "{:<6} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            alg, d[0], d[1], d[2], d[3], d[4]
        );
    }
    println!("\nedge-cut groups every hub's out-edges on one machine → wider spread (Fig. 4b).");
}
