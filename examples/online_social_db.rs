//! Online graph-query scenario (the paper's §6.3): serve a skewed 1-hop
//! workload on a JanusGraph-like cluster and compare hash partitioning
//! against LDG/FENNEL/METIS under medium and high load.
//!
//! Run with: `cargo run --release --example online_social_db`

use streaming_graph_partitioning::prelude::*;

fn main() {
    let graph = Dataset::LdbcSnb.generate(Scale::Small);
    let k = 8;
    println!(
        "1-hop workload on an LDBC-SNB-like graph ({} persons, {} friendships), {k} machines\n",
        graph.num_vertices(),
        graph.num_edges() / 2,
    );

    println!(
        "{:<6} {:>10} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10}",
        "alg", "edge-cut", "thr (med)", "mean ms", "p99 ms", "thr (high)", "mean ms", "p99 ms"
    );
    for alg in [Algorithm::EcrHash, Algorithm::Ldg, Algorithm::Fennel, Algorithm::Metis] {
        let store = runners::build_store(&graph, alg, k);
        let workload =
            Workload::generate(&graph, WorkloadKind::OneHop, 1000, Skew::Zipf { theta: 0.9 }, 42);
        let sim = ClusterSim::prepare(&store, &workload);
        let medium = sim.run(&SimConfig::for_load(LoadLevel::Medium));
        let high = sim.run(&SimConfig::for_load(LoadLevel::High));
        println!(
            "{:<6} {:>10.3} | {:>12.0} {:>10.2} {:>10.2} | {:>12.0} {:>10.2} {:>10.2}",
            alg,
            store.edge_cut_ratio(),
            medium.throughput_qps,
            medium.mean_latency_ms,
            medium.p99_latency_ms,
            high.throughput_qps,
            high.mean_latency_ms,
            high.p99_latency_ms,
        );
    }

    println!(
        "\nThe paper's Table 5 shape: better edge-cut ratios help under medium load,\n\
         but workload skew turns locality into hotspots — hash keeps the best tail\n\
         latency once the system is overloaded."
    );
}
