//! A tour of every partitioning algorithm in the study (Table 1) across
//! all four dataset stand-ins, ending with the decision-tree
//! recommendation for each graph.
//!
//! Run with: `cargo run --release --example partitioner_tour`

use streaming_graph_partitioning::prelude::*;

fn main() {
    let k = 8;
    let config = PartitionerConfig::new(k);

    println!("Table 1 — algorithm taxonomy:");
    println!(
        "{:<7} {:<11} {:<8} {:<20} {:<30}",
        "name", "model", "stream", "cost metric", "parallelization"
    );
    for alg in Algorithm::all() {
        let info = alg.info();
        println!(
            "{:<7} {:<11} {:<8} {:<20} {:<30}",
            info.short_name,
            info.model.to_string(),
            format!("{:?}", info.stream),
            info.cost_metric,
            info.parallelization
        );
    }

    for dataset in Dataset::all() {
        let graph = dataset.generate(Scale::Tiny);
        let stats = sgp_graph::GraphStats::of(&graph);
        println!("\n=== {dataset} ({stats}) ===");
        println!("{:<7} {:>8} {:>10} {:>10}", "alg", "RF", "edge-cut", "edge-imb");
        for alg in Algorithm::all() {
            let p = partition(&graph, *alg, &config, StreamOrder::default());
            let q = sgp_partition::metrics::QualityReport::measure(&graph, &p);
            println!(
                "{:<7} {:>8.3} {:>10} {:>10.3}",
                alg.short_name(),
                q.replication_factor,
                q.edge_cut_ratio.map(|e| format!("{e:.3}")).unwrap_or_else(|| "-".into()),
                q.edge_imbalance,
            );
        }
        let rec = sgp_core::decision::recommend_for_graph(&graph, WorkloadClass::OfflineAnalytics);
        println!("decision tree (analytics): {}", rec.algorithm);
    }

    println!(
        "\nonline queries, latency-critical: {}",
        recommend(WorkloadClass::OnlineQueries, None, Some(OnlineObjective::TailLatency)).algorithm
    );
    println!(
        "online queries, throughput-oriented: {}",
        recommend(WorkloadClass::OnlineQueries, None, Some(OnlineObjective::Throughput)).algorithm
    );
}
