//! The paper's Fig. 8 scenario: record which vertices a skewed 1-hop
//! workload actually touches, repartition the *access-weighted* graph
//! with the multilevel partitioner, and compare throughput and load
//! balance against the structural-only partitionings.
//!
//! Run with: `cargo run --release --example workload_aware`

use sgp_core::runners::{workload_aware_suite, OnlineRunConfig};
use streaming_graph_partitioning::prelude::*;

fn main() {
    let graph = Dataset::LdbcSnb.generate(Scale::Small);
    let k = 8;
    let run_cfg = OnlineRunConfig {
        skew: Skew::Zipf { theta: 1.1 },
        ..OnlineRunConfig::for_load(LoadLevel::High)
    };

    println!(
        "workload-aware repartitioning on an SNB-like graph, {k} machines, Zipf(1.1) 1-hop workload\n"
    );
    println!("{:<8} {:>14} {:>12}", "config", "throughput", "load RSD");
    let rows = workload_aware_suite(&graph, k, &run_cfg);
    for row in &rows {
        println!("{:<8} {:>14.0} {:>12.3}", row.label, row.throughput_qps, row.load_rsd);
    }

    let mts = rows.iter().find(|r| r.label == "MTS").expect("MTS row");
    let weighted = rows.iter().find(|r| r.label == "MTS (W)").expect("MTS (W) row");
    println!(
        "\nweighted vs structural METIS: {:+.1}% throughput, load RSD {:.3} → {:.3}",
        (weighted.throughput_qps / mts.throughput_qps - 1.0) * 100.0,
        mts.load_rsd,
        weighted.load_rsd,
    );
    println!(
        "(the paper reports 13%–35% throughput improvement and a balanced load\n\
         distribution from partitioning with complete workload information)"
    );
}
