//! Integration tests for the paper's *online-query* findings (§6.3):
//! Table 4/5 orderings, the Fig. 5 linearity, Fig. 6's load behaviour,
//! and the Fig. 8 workload-aware result.

use sgp_core::runners::{self, online_run, OnlineRunConfig};
use streaming_graph_partitioning::prelude::*;

fn snb() -> Graph {
    Dataset::LdbcSnb.generate(Scale::Tiny)
}

fn cfg(level: LoadLevel) -> OnlineRunConfig {
    OnlineRunConfig { bindings: 300, queries_per_client: 12, ..OnlineRunConfig::for_load(level) }
}

/// Fig. 5: "the total network communication is a linear function of the
/// edge-cut ratio" — Pearson r over algorithms × k must be near 1.
#[test]
fn finding_network_io_linear_in_edge_cut() {
    let g = snb();
    let mut points: Vec<(f64, f64)> = Vec::new();
    for k in [4usize, 8] {
        for &alg in Algorithm::online_suite() {
            let row = online_run("snb", &g, alg, WorkloadKind::OneHop, k, &cfg(LoadLevel::Medium));
            points.push((row.edge_cut_ratio, row.network_bytes as f64));
        }
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let r = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
    assert!(r > 0.9, "edge-cut ratio vs network I/O correlation only {r:.3}");
}

/// Table 5: hash keeps the best 99th-percentile latency; the gap to the
/// greedy SGP algorithms widens under high load.
#[test]
fn finding_hash_has_best_tail_latency() {
    let g = snb();
    let k = 8;
    let p99 = |alg, level| {
        online_run("snb", &g, alg, WorkloadKind::OneHop, k, &cfg(level)).p99_latency_ms
    };
    for level in [LoadLevel::Medium, LoadLevel::High] {
        let ecr = p99(Algorithm::EcrHash, level);
        let fnl = p99(Algorithm::Fennel, level);
        assert!(ecr < fnl, "{level:?}: hash p99 {ecr} must beat FENNEL {fnl}");
    }
    // The ratio grows with load (the paper: up to 3.5x under high load).
    let gap_med =
        p99(Algorithm::Fennel, LoadLevel::Medium) / p99(Algorithm::EcrHash, LoadLevel::Medium);
    let gap_high =
        p99(Algorithm::Fennel, LoadLevel::High) / p99(Algorithm::EcrHash, LoadLevel::High);
    assert!(
        gap_high > 0.8 * gap_med,
        "tail gap should not collapse under load: {gap_med:.2} -> {gap_high:.2}"
    );
}

/// Fig. 6: overload does not increase aggregate throughput (the system
/// saturates), while latency rises.
#[test]
fn finding_overload_saturates_throughput() {
    let g = snb();
    let run =
        |level| online_run("snb", &g, Algorithm::EcrHash, WorkloadKind::OneHop, 8, &cfg(level));
    let medium = run(LoadLevel::Medium);
    let high = run(LoadLevel::High);
    assert!(
        high.throughput_qps < medium.throughput_qps * 1.25,
        "doubling clients must not double throughput: {} -> {}",
        medium.throughput_qps,
        high.throughput_qps
    );
    assert!(high.mean_latency_ms > 1.3 * medium.mean_latency_ms, "overload must raise latency");
}

/// Fig. 8: the access-weighted MTS partitioning beats the structural one
/// on both throughput and balance under a skewed workload.
#[test]
fn finding_weighted_partitioning_wins_under_skew() {
    let g = snb();
    let run_cfg = OnlineRunConfig {
        bindings: 300,
        queries_per_client: 12,
        clients_per_machine: 24,
        skew: Skew::Zipf { theta: 1.1 },
        seed: 0x1A7,
    };
    let rows = runners::workload_aware_suite(&g, 8, &run_cfg);
    let get = |label: &str| rows.iter().find(|r| r.label == label).expect("row");
    let mts = get("MTS");
    let weighted = get("MTS (W)");
    assert!(
        weighted.throughput_qps > mts.throughput_qps,
        "weighted {} must beat structural {}",
        weighted.throughput_qps,
        mts.throughput_qps
    );
    assert!(weighted.load_rsd < mts.load_rsd, "weighted must balance the load");
}

/// Fig. 12: adding machines yields diminishing returns per machine (our
/// documented softening of the paper's outright decline).
#[test]
fn finding_diminishing_returns_with_cluster_size() {
    let g = snb();
    let total_clients = 96usize;
    let thr_per_machine = |k: usize| {
        let c = OnlineRunConfig {
            bindings: 300,
            queries_per_client: 12,
            clients_per_machine: (total_clients / k).max(1),
            ..OnlineRunConfig::for_load(LoadLevel::Medium)
        };
        online_run("snb", &g, Algorithm::EcrHash, WorkloadKind::OneHop, k, &c).throughput_qps
            / k as f64
    };
    let at4 = thr_per_machine(4);
    let at16 = thr_per_machine(16);
    assert!(
        at16 < at4,
        "throughput per machine must fall as the cluster grows: {at4:.0} -> {at16:.0}"
    );
}

/// Table 4 at the store level: the store's edge-cut ratio equals the
/// partitioner's metric (the store installs the partitioning verbatim).
#[test]
fn store_edge_cut_matches_partitioning_metric() {
    let g = snb();
    for &alg in Algorithm::online_suite() {
        let cfg = PartitionerConfig::new(8);
        let p = partition(&g, alg, &cfg, runners::default_order());
        let expected = sgp_partition::metrics::edge_cut_ratio(&g, &p).unwrap();
        let store = PartitionedStore::new(g.clone(), &p);
        assert!((store.edge_cut_ratio() - expected).abs() < 1e-12, "{alg}");
    }
}

/// 2-hop queries move more data than 1-hop on the same store and
/// workload seeds (the paper's throughput ordering between Fig. 6's
/// panels).
#[test]
fn two_hop_costs_more_than_one_hop() {
    let g = snb();
    let one =
        online_run("snb", &g, Algorithm::EcrHash, WorkloadKind::OneHop, 4, &cfg(LoadLevel::Medium));
    let two =
        online_run("snb", &g, Algorithm::EcrHash, WorkloadKind::TwoHop, 4, &cfg(LoadLevel::Medium));
    assert!(two.network_bytes > one.network_bytes);
    assert!(two.throughput_qps < one.throughput_qps);
}
