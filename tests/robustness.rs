//! Robustness proptests: fault plans are deterministic in their seed,
//! the fault-injected DES reproduces bit-for-bit, and the retry policy's
//! backoff is monotone and capped.

use proptest::prelude::*;
use std::sync::OnceLock;
use streaming_graph_partitioning::prelude::*;

/// A store/workload fixture shared across cases (the plan under test
/// varies; the cluster does not).
static FIXTURE: OnceLock<(ClusterSim, MirrorDirectory)> = OnceLock::new();

fn fixture() -> &'static (ClusterSim, MirrorDirectory) {
    FIXTURE.get_or_init(|| {
        let g = Dataset::LdbcSnb.generate(Scale::Tiny);
        let cfg = PartitionerConfig::new(4);
        let p = partition(&g, Algorithm::VcrHash, &cfg, StreamOrder::Random { seed: 7 });
        let store = PartitionedStore::from_owner(g.clone(), 4, p.masters(&g));
        let mirrors = MirrorDirectory::for_model(&g, &p);
        let w = Workload::generate(&g, WorkloadKind::OneHop, 80, Skew::Uniform, 3);
        (ClusterSim::prepare(&store, &w), mirrors)
    })
}

fn sim_cfg() -> FaultSimConfig {
    FaultSimConfig {
        base: SimConfig { clients_per_machine: 2, queries_per_client: 6, ..Default::default() },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same plan ⇒ the fault-injected DES reproduces bit-for-bit: two
    /// runs serialize to byte-identical report JSON, for any plan seed
    /// and any message-loss probability.
    #[test]
    fn same_fault_plan_seed_gives_identical_report_json(
        seed in any::<u64>(),
        loss in 0.0f64..0.05,
    ) {
        let (sim, mirrors) = fixture();
        let plan_cfg = FaultPlanConfig { message_loss: loss, ..Default::default() };
        let plan = FaultPlan::generate(&plan_cfg, 4, seed);
        let cfg = sim_cfg();
        let a = sim.run_faulted(&cfg, &plan, mirrors).expect("generated plans keep one survivor");
        let b = sim.run_faulted(&cfg, &plan, mirrors).expect("generated plans keep one survivor");
        prop_assert_eq!(
            serde_json::to_string(&a).expect("report serializes"),
            serde_json::to_string(&b).expect("report serializes")
        );
    }

    /// Plan generation is pure in the seed, and different seeds yield
    /// different plans (the seed drives both the schedule and every
    /// runtime draw, so it is part of the plan's identity).
    #[test]
    fn generated_plans_are_seed_deterministic(s1 in any::<u64>(), s2 in any::<u64>()) {
        let cfg = FaultPlanConfig::default();
        prop_assert_eq!(FaultPlan::generate(&cfg, 8, s1), FaultPlan::generate(&cfg, 8, s1));
        if s1 != s2 {
            prop_assert_ne!(FaultPlan::generate(&cfg, 8, s1), FaultPlan::generate(&cfg, 8, s2));
        }
    }

    /// Backoff grows monotonically with the attempt number and never
    /// exceeds the cap, for any policy.
    #[test]
    fn backoff_is_monotone_and_capped(
        base in 1u64..=10_000_000,
        cap in 1u64..=100_000_000,
        attempts in 2u32..=80,
    ) {
        let policy =
            RetryPolicy { base_backoff_ns: base, backoff_cap_ns: cap, ..Default::default() };
        let mut prev = 0u64;
        for attempt in 1..=attempts {
            let b = policy.backoff_ns(attempt);
            prop_assert!(b >= prev, "backoff shrank: {} after {}", b, prev);
            prop_assert!(b <= cap, "backoff {} above cap {}", b, cap);
            prev = b;
        }
        prop_assert_eq!(policy.backoff_ns(1), base.min(cap));
    }
}
