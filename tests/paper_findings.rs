//! Integration tests asserting the *shape* of the paper's key findings
//! (§6.1) on the synthetic stand-ins. Absolute numbers differ from the
//! paper's EC2 clusters; orderings and trends are what we reproduce.

use sgp_core::runners::{self, OfflineWorkload};
use sgp_partition::metrics;
use streaming_graph_partitioning::prelude::*;

fn twitter() -> Graph {
    Dataset::Twitter.generate(Scale::Tiny)
}

fn road() -> Graph {
    Dataset::UsaRoad.generate(Scale::Tiny)
}

/// Fig. 2 (USA-Road panel): "Edge-cut SGP algorithms FNL and LDG
/// outperform their vertex-cut counterparts on USA-Road network [...]
/// vertex-cut SGP algorithms unnecessarily replicate these low degree
/// vertices." The counterparts here are the hash/constrained family
/// (VCR, DBH, Grid); the sequential greedy vertex-cuts (HDRF) stay
/// competitive in our idealized single-loader simulation — see
/// EXPERIMENTS.md for that documented deviation. Under the paper's
/// natural (spatially coherent) disk order, FNL/LDG drop well below 1.6.
#[test]
fn finding_edge_cut_wins_on_road_networks() {
    let g = road();
    let cfg = PartitionerConfig::new(8);
    let order = runners::default_order();
    let rf = |alg| {
        let p = partition(&g, alg, &cfg, order);
        metrics::replication_factor(&g, &p)
    };
    let (fnl, ldg) = (rf(Algorithm::Fennel), rf(Algorithm::Ldg));
    for counterpart in [Algorithm::VcrHash, Algorithm::Dbh, Algorithm::Grid] {
        let c = rf(counterpart);
        assert!(fnl < c, "FNL {fnl} vs {counterpart:?} {c}");
        assert!(ldg < c, "LDG {ldg} vs {counterpart:?} {c}");
    }
    // With the natural (row-major) order real DIMACS files ship in,
    // edge-cut exploits the spatial locality directly.
    let p_nat = partition(&g, Algorithm::Fennel, &cfg, StreamOrder::Natural);
    assert!(metrics::replication_factor(&g, &p_nat) < 1.7);
}

/// Fig. 2 (Twitter panel): "Vertex-cut and hybrid-cut SGP algorithms are
/// more effective on the Twitter graph [...] HG, HDRF and DBH deliver a
/// lower replication factor than that of MTS."
#[test]
fn finding_degree_aware_beats_mts_on_twitter() {
    let g = twitter();
    let cfg = PartitionerConfig::new(16);
    let order = runners::default_order();
    let rf = |alg| {
        let p = partition(&g, alg, &cfg, order);
        metrics::replication_factor(&g, &p)
    };
    let mts = rf(Algorithm::Metis);
    for alg in [Algorithm::Hdrf, Algorithm::Dbh, Algorithm::Ginger] {
        let r = rf(alg);
        assert!(r < mts, "{alg:?} RF {r} should beat MTS {mts} on a heavy-tailed graph");
    }
}

/// §6.1: "edge-cut SGP methods incur less network communication than
/// vertex-cut methods for the same cut size for offline graph analytics
/// with uni-directional communication" (PageRank).
#[test]
fn finding_edge_cut_cheaper_per_cut_for_pagerank() {
    let g = twitter();
    let points = runners::fig1_scatter(
        &g,
        OfflineWorkload::PageRank,
        &[4, 8, 16],
        &[
            Algorithm::EcrHash,
            Algorithm::Ldg,
            Algorithm::Fennel,
            Algorithm::VcrHash,
            Algorithm::Hdrf,
        ],
    );
    let slope = |series: &str| {
        let pts: Vec<_> = points.iter().filter(|p| p.series == series).cloned().collect();
        runners::series_slope(&pts)
    };
    assert!(
        slope("edge-cut") < slope("vertex-cut"),
        "edge-cut {} vs vertex-cut {}",
        slope("edge-cut"),
        slope("vertex-cut")
    );
}

/// Fig. 1(b)(c): for WCC (bi-directional communication) the cut models
/// behave similarly — the edge-cut advantage shrinks drastically.
#[test]
fn finding_wcc_slopes_converge() {
    let g = twitter();
    let algs = [Algorithm::EcrHash, Algorithm::Ldg, Algorithm::VcrHash, Algorithm::Hdrf];
    let slope = |workload| {
        let points = runners::fig1_scatter(&g, workload, &[4, 8], &algs);
        let ec: Vec<_> = points.iter().filter(|p| p.series == "edge-cut").cloned().collect();
        let vc: Vec<_> = points.iter().filter(|p| p.series == "vertex-cut").cloned().collect();
        runners::series_slope(&vc) / runners::series_slope(&ec).max(1e-12)
    };
    let pr_gap = slope(OfflineWorkload::PageRank);
    let wcc_gap = slope(OfflineWorkload::Wcc);
    assert!(
        wcc_gap < pr_gap,
        "WCC slope gap ({wcc_gap:.2}x) must be smaller than PageRank's ({pr_gap:.2}x)"
    );
}

/// Fig. 4(b): "edge-cut methods perform poorly in skewed graphs as all
/// edges of high-degree vertices are grouped together, causing a subset
/// of machines to be overloaded" — while vertex-cut stays balanced.
#[test]
fn finding_edge_cut_imbalanced_on_skewed_graphs() {
    let g = twitter();
    let cfg = PartitionerConfig::new(16);
    let order = runners::default_order();
    let spread = |alg| {
        let p = partition(&g, alg, &cfg, order);
        let placement = Placement::build(&g, &p);
        let report = runners::run_offline_workload(
            &g,
            &placement,
            OfflineWorkload::PageRank,
            &EngineOptions::default(),
        );
        let d = report.compute_time_distribution();
        d[4] / d[2].max(1e-12) // max / median
    };
    let ec = spread(Algorithm::Ldg);
    let vc = spread(Algorithm::Hdrf);
    assert!(ec > vc, "edge-cut max/median spread {ec:.2} should exceed vertex-cut {vc:.2}");
}

/// Fig. 4(a): on low-degree road networks, edge-cut achieves balanced
/// load "even better than vertex-cut methods" — at worst comparable.
#[test]
fn finding_edge_cut_balanced_on_road() {
    let g = road();
    let cfg = PartitionerConfig::new(8);
    let order = runners::default_order();
    let spread = |alg| {
        let p = partition(&g, alg, &cfg, order);
        let placement = Placement::build(&g, &p);
        let report = runners::run_offline_workload(
            &g,
            &placement,
            OfflineWorkload::PageRank,
            &EngineOptions::default(),
        );
        let d = report.compute_time_distribution();
        d[4] / d[2].max(1e-12)
    };
    let fnl = spread(Algorithm::Fennel);
    assert!(fnl < 2.0, "FENNEL on a lattice must be balanced (max/median {fnl:.2})");
}

/// Table 4: FNL approaches MTS's edge-cut ratio; both clearly beat hash.
#[test]
fn finding_table4_ordering() {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    for k in [4usize, 8] {
        let cfg = PartitionerConfig::new(k);
        let order = runners::default_order();
        let ecr = |alg| {
            let p = partition(&g, alg, &cfg, order);
            metrics::edge_cut_ratio(&g, &p).expect("edge-cut algorithms")
        };
        let (hash, ldg, fnl, mts) = (
            ecr(Algorithm::EcrHash),
            ecr(Algorithm::Ldg),
            ecr(Algorithm::Fennel),
            ecr(Algorithm::Metis),
        );
        assert!(mts < fnl, "k={k}: MTS {mts} < FNL {fnl}");
        assert!(fnl < hash, "k={k}: FNL {fnl} < ECR {hash}");
        assert!(ldg <= hash, "k={k}: LDG {ldg} <= ECR {hash}");
        // Hash's expected cut is 1 - 1/k.
        assert!((hash - (1.0 - 1.0 / k as f64)).abs() < 0.08, "k={k}: hash ECR {hash}");
    }
}

/// Fig. 2: replication factor grows with the number of partitions for
/// every algorithm.
#[test]
fn finding_rf_monotone_in_k() {
    let g = twitter();
    let order = runners::default_order();
    for &alg in &[Algorithm::VcrHash, Algorithm::Hdrf, Algorithm::Ldg, Algorithm::Ginger] {
        let mut last = 0.0;
        for k in [2usize, 4, 8, 16] {
            let cfg = PartitionerConfig::new(k);
            let p = partition(&g, alg, &cfg, order);
            let rf = metrics::replication_factor(&g, &p);
            assert!(
                rf >= last - 0.05,
                "{alg:?}: RF should not shrink with k ({last} -> {rf} at k={k})"
            );
            last = rf;
        }
    }
}

/// §6.3.3 / Fig. 8: partitioning the access-weighted graph balances the
/// load distribution relative to structural-only METIS.
#[test]
fn finding_workload_aware_balances_load() {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let run_cfg = runners::OnlineRunConfig {
        bindings: 300,
        queries_per_client: 10,
        clients_per_machine: 8,
        skew: Skew::Zipf { theta: 1.1 },
        seed: 77,
    };
    let rows = runners::workload_aware_suite(&g, 4, &run_cfg);
    let get = |label: &str| rows.iter().find(|r| r.label == label).expect("row");
    let mts = get("MTS");
    let weighted = get("MTS (W)");
    assert!(
        weighted.load_rsd <= mts.load_rsd + 1e-9,
        "weighted RSD {} must not exceed structural RSD {}",
        weighted.load_rsd,
        mts.load_rsd
    );
}
