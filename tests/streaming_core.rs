//! Differential tests of the incremental streaming-partitioner core:
//! for every algorithm, chunked ingestion (any chunk size), the traced
//! drivers, and the single-loader multi-loader path must be
//! byte-identical to the one-shot batch entry points — and the stream
//! orders with configurable start vertices must collapse to the legacy
//! unit variants at start 0, including through serde.

use proptest::prelude::*;
use sgp_partition::streaming::StreamInput;
use streaming_graph_partitioning::prelude::*;

/// Strategy: a random simple directed graph with 2..=50 vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..50).prop_flat_map(|n| {
        let max_edges = (n * (n - 1)).min(240);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges).prop_map(
            move |pairs| {
                let mut b = GraphBuilder::new().ensure_vertices(n);
                for (s, d) in pairs {
                    b.push_edge(s, d);
                }
                b.build()
            },
        )
    })
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    proptest::sample::select(Algorithm::all().to_vec())
}

fn arb_order() -> impl Strategy<Value = StreamOrder> {
    prop_oneof![
        Just(StreamOrder::Natural),
        any::<u64>().prop_map(|seed| StreamOrder::Random { seed }),
        Just(StreamOrder::Bfs),
        Just(StreamOrder::Dfs),
        (0u32..50).prop_map(|start| StreamOrder::BfsFrom { start }),
        (0u32..50).prop_map(|start| StreamOrder::DfsFrom { start }),
    ]
}

fn arb_chunk() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(7), Just(64), Just(usize::MAX)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The tentpole determinism contract: for every algorithm and every
    /// chunk size, driving the incremental core chunk by chunk yields a
    /// placement byte-identical to the one-shot entry point.
    #[test]
    fn chunked_ingestion_is_byte_identical_to_one_shot(
        g in arb_graph(),
        alg in arb_algorithm(),
        order in arb_order(),
        chunk in arb_chunk(),
        k in 1usize..=6,
    ) {
        let cfg = PartitionerConfig::new(k);
        let whole = partition(&g, alg, &cfg, order);
        let chunked = partition_chunked(&g, alg, &cfg, order, chunk);
        prop_assert_eq!(&whole.edge_parts, &chunked.edge_parts);
        prop_assert_eq!(&whole.vertex_owner, &chunked.vertex_owner);
        prop_assert_eq!(whole.model, chunked.model);
    }

    /// A single loader is the sequential machine: `L = 1` through the
    /// multi-loader layer must match the registry bit for bit, at any
    /// synchronization interval.
    #[test]
    fn single_loader_matches_sequential(
        g in arb_graph(),
        alg in arb_algorithm(),
        order in arb_order(),
        sync_interval in prop_oneof![Just(1usize), Just(13), Just(4096)],
        k in 1usize..=6,
    ) {
        let cfg = PartitionerConfig::new(k);
        let lc = LoaderConfig::new(1).with_sync_interval(sync_interval);
        let seq = partition(&g, alg, &cfg, order);
        let par = partition_multi_loader(&g, alg, &cfg, order, &lc);
        prop_assert_eq!(&seq.edge_parts, &par.edge_parts);
        prop_assert_eq!(&seq.vertex_owner, &par.vertex_owner);
    }

    /// The real-threads execution backend is an implementation detail:
    /// for every algorithm and thread count in {1, 2, 4, 8}, running
    /// the loaders on OS threads is byte-identical to the modelled
    /// (sequential round-robin) multi-loader path.
    #[test]
    fn threaded_backend_matches_modelled_loaders(
        g in arb_graph(),
        alg in arb_algorithm(),
        order in arb_order(),
        sync_interval in prop_oneof![Just(1usize), Just(8), Just(4096)],
        k in 1usize..=6,
    ) {
        let cfg = PartitionerConfig::new(k);
        for threads in [1usize, 2, 4, 8] {
            let lc = LoaderConfig::new(threads).with_sync_interval(sync_interval);
            let modelled = partition_multi_loader(&g, alg, &cfg, order, &lc);
            let threaded = partition_threaded(&g, alg, &cfg, order, &lc);
            prop_assert_eq!(&modelled.edge_parts, &threaded.edge_parts);
            prop_assert_eq!(&modelled.vertex_owner, &threaded.vertex_owner);
            prop_assert_eq!(modelled.model, threaded.model);
        }
    }

    /// Multi-loader runs are a pure function of (graph, algorithm,
    /// config, order, loader config) — no wallclock, no hash-iteration
    /// order anywhere in the merge.
    #[test]
    fn multi_loader_is_deterministic(
        g in arb_graph(),
        alg in arb_algorithm(),
        order in arb_order(),
        loaders in 2usize..=5,
        k in 1usize..=6,
    ) {
        let cfg = PartitionerConfig::new(k);
        let lc = LoaderConfig::new(loaders).with_sync_interval(8);
        let a = partition_multi_loader(&g, alg, &cfg, order, &lc);
        let b = partition_multi_loader(&g, alg, &cfg, order, &lc);
        prop_assert_eq!(&a.edge_parts, &b.edge_parts);
        prop_assert_eq!(&a.vertex_owner, &b.vertex_owner);
    }

    /// Snapshotting mid-stream is invisible: for every edge-stream
    /// algorithm and k ∈ {3, 16, 64, 100}, pausing at an arbitrary
    /// chunk boundary, serializing, restoring into a fresh machine, and
    /// continuing the stream yields a placement byte-identical to the
    /// uninterrupted run — and the restored machine re-serializes to
    /// the exact snapshot bytes (`snapshot(restore(s)) == s`).
    #[test]
    fn snapshot_restore_mid_stream_is_byte_invisible(
        g in arb_graph(),
        order in arb_order(),
        cut_seed in any::<u32>(),
    ) {
        const CHUNK: usize = 7;
        for &alg in Algorithm::all() {
            let probe = StreamingPartitioner::init(&g, alg, &PartitionerConfig::new(2));
            if probe.input() != StreamInput::Edges {
                continue;
            }
            for k in [3usize, 16, 64, 100] {
                let cfg = PartitionerConfig::new(k);
                let whole = partition_chunked(&g, alg, &cfg, order, CHUNK);

                let mut sp = StreamingPartitioner::init(&g, alg, &cfg);
                let total_chunks = sp.passes() * g.num_edges().div_ceil(CHUNK);
                let cut = cut_seed as usize % total_chunks.max(1);
                let mut source = EdgeStreamSource::new(&g, order);
                let mut chunk = Vec::new();
                let mut done = 0usize;
                for _ in 0..sp.passes() {
                    source.restart();
                    while source.next_chunk(CHUNK, &mut chunk) > 0 {
                        sp.ingest_edges(&chunk).expect("edge machine accepts edge chunks");
                        done += 1;
                        if done == cut + 1 {
                            let bytes = sp.snapshot();
                            sp = StreamingPartitioner::restore(&g, alg, &cfg, &bytes)
                                .expect("mid-stream snapshot restores");
                            prop_assert_eq!(&sp.snapshot(), &bytes, "{} k={}", alg, k);
                        }
                    }
                    sp.flush_window();
                }
                let resumed = sp.seal();
                prop_assert_eq!(&whole.edge_parts, &resumed.edge_parts, "{} k={}", alg, k);
                prop_assert_eq!(&whole.vertex_owner, &resumed.vertex_owner, "{} k={}", alg, k);
            }
        }
    }

    /// `BfsFrom`/`DfsFrom` at start 0 are exactly the legacy unit
    /// variants, all the way through a partitioning.
    #[test]
    fn start_zero_traversals_match_unit_variants(
        g in arb_graph(),
        alg in arb_algorithm(),
        k in 1usize..=6,
    ) {
        let cfg = PartitionerConfig::new(k);
        let bfs = partition(&g, alg, &cfg, StreamOrder::Bfs);
        let bfs0 = partition(&g, alg, &cfg, StreamOrder::BfsFrom { start: 0 });
        prop_assert_eq!(&bfs.edge_parts, &bfs0.edge_parts);
        prop_assert_eq!(&bfs.vertex_owner, &bfs0.vertex_owner);
        let dfs = partition(&g, alg, &cfg, StreamOrder::Dfs);
        let dfs0 = partition(&g, alg, &cfg, StreamOrder::DfsFrom { start: 0 });
        prop_assert_eq!(&dfs.edge_parts, &dfs0.edge_parts);
        prop_assert_eq!(&dfs.vertex_owner, &dfs0.vertex_owner);
    }
}

#[test]
fn facade_covers_every_algorithm_with_the_right_stream() {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(4);
    for &alg in Algorithm::all() {
        let sp = StreamingPartitioner::init(&g, alg, &cfg);
        match sp.input() {
            StreamInput::Offline => assert_eq!(alg, Algorithm::Metis, "{alg}"),
            StreamInput::Vertices | StreamInput::Edges => {
                // Every one-pass streaming algorithm parallelizes across
                // loaders; 2PS does not (its clustering pass must see the
                // whole stream before any placement).
                assert!(alg.supports_parallel_loaders() || alg == Algorithm::TwoPhaseHdrf, "{alg}")
            }
        }
    }
    assert!(!Algorithm::Metis.supports_parallel_loaders());
    assert!(!Algorithm::TwoPhaseHdrf.supports_parallel_loaders());
}

#[test]
fn stream_order_serde_is_backward_compatible() {
    // Orders serialized before the configurable-start variants existed
    // must still deserialize: the unit variants survive as-is.
    let bfs: StreamOrder = serde_json::from_str("\"Bfs\"").expect("legacy Bfs payload");
    assert_eq!(bfs, StreamOrder::Bfs);
    let dfs: StreamOrder = serde_json::from_str("\"Dfs\"").expect("legacy Dfs payload");
    assert_eq!(dfs, StreamOrder::Dfs);
    let random: StreamOrder =
        serde_json::from_str("{\"Random\":{\"seed\":7}}").expect("legacy Random payload");
    assert_eq!(random, StreamOrder::Random { seed: 7 });
    // And the unit variants still serialize to the legacy form.
    assert_eq!(serde_json::to_string(&StreamOrder::Bfs).expect("serialize"), "\"Bfs\"");
    // The new variants round-trip.
    for order in [StreamOrder::BfsFrom { start: 3 }, StreamOrder::DfsFrom { start: 9 }] {
        let json = serde_json::to_string(&order).expect("serialize");
        let back: StreamOrder = serde_json::from_str(&json).expect("round-trip");
        assert_eq!(back, order);
    }
}

#[test]
fn loader_config_serde_round_trips() {
    let lc = LoaderConfig::new(4).with_sync_interval(64);
    let json = serde_json::to_string(&lc).expect("serialize");
    let back: LoaderConfig = serde_json::from_str(&json).expect("round-trip");
    assert_eq!(back, lc);
}
