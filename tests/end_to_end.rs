//! End-to-end integration tests spanning all workspace crates: generate
//! a dataset, partition it, run analytics and online queries, and check
//! the pieces compose.

use streaming_graph_partitioning::prelude::*;

#[test]
fn full_offline_pipeline_on_every_dataset() {
    for &dataset in Dataset::all() {
        let graph = dataset.generate(Scale::Tiny);
        let config = PartitionerConfig::new(4);
        for alg in [Algorithm::EcrHash, Algorithm::Hdrf, Algorithm::Ginger] {
            let p = partition(&graph, alg, &config, StreamOrder::default());
            let placement = Placement::build(&graph, &p);
            let (ranks, report) =
                run_program(&graph, &placement, &PageRank::new(3), &EngineOptions::default());
            assert_eq!(ranks.len(), graph.num_vertices(), "{dataset}/{alg}");
            assert_eq!(report.num_iterations(), 3, "{dataset}/{alg}");
            assert!(report.total_wall_ns > 0.0, "{dataset}/{alg}");
        }
    }
}

#[test]
fn full_online_pipeline_on_snb() {
    let graph = Dataset::LdbcSnb.generate(Scale::Tiny);
    for alg in [Algorithm::EcrHash, Algorithm::Fennel, Algorithm::Metis] {
        let store = sgp_core::runners::build_store(&graph, alg, 4);
        for kind in [WorkloadKind::OneHop, WorkloadKind::TwoHop, WorkloadKind::ShortestPath] {
            let w = Workload::generate(&graph, kind, 50, Skew::Uniform, 3);
            let sim = ClusterSim::prepare(&store, &w);
            let r = sim.run(&SimConfig {
                clients_per_machine: 4,
                queries_per_client: 10,
                ..Default::default()
            });
            assert!(r.throughput_qps > 0.0, "{alg}/{kind}");
            assert!(r.p99_latency_ms >= r.p50_latency_ms, "{alg}/{kind}");
        }
    }
}

#[test]
fn partitioning_roundtrips_through_serde() {
    let graph = Dataset::UsaRoad.generate(Scale::Tiny);
    let config = PartitionerConfig::new(4);
    let p = partition(&graph, Algorithm::Ldg, &config, StreamOrder::default());
    let json = serde_json::to_string(&p).expect("serialize");
    let back: Partitioning = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(p.edge_parts, back.edge_parts);
    assert_eq!(p.vertex_owner, back.vertex_owner);
}

#[test]
fn graph_io_roundtrip_preserves_partitionable_structure() {
    let graph = Dataset::Twitter.generate(Scale::Tiny);
    let mut buf = Vec::new();
    sgp_graph::io::write_edge_list(&graph, &mut buf).expect("write");
    let back = sgp_graph::io::read_edge_list(&buf[..]).expect("read");
    assert_eq!(graph.num_edges(), back.num_edges());
    // Partitioning the reloaded graph gives identical quality.
    let config = PartitionerConfig::new(4);
    let p1 = partition(&graph, Algorithm::Hdrf, &config, StreamOrder::Natural);
    let p2 = partition(&back, Algorithm::Hdrf, &config, StreamOrder::Natural);
    assert_eq!(p1.edge_parts, p2.edge_parts);
}

#[test]
fn engine_results_invariant_under_partitioner_choice() {
    // The whole point of the substrate: computation results must not
    // depend on placement, only performance does.
    let graph = Dataset::UkWeb.generate(Scale::Tiny);
    let config = PartitionerConfig::new(6);
    let mut wcc_results = Vec::new();
    for &alg in Algorithm::offline_suite() {
        let p = partition(&graph, alg, &config, StreamOrder::default());
        let placement = Placement::build(&graph, &p);
        let (labels, _) = run_program(&graph, &placement, &Wcc::new(), &EngineOptions::default());
        wcc_results.push((alg, labels));
    }
    let (first_alg, first) = &wcc_results[0];
    for (alg, labels) in &wcc_results[1..] {
        assert_eq!(labels, first, "WCC differs between {first_alg} and {alg}");
    }
}

#[test]
fn decision_tree_recommends_runnable_algorithms() {
    for &dataset in Dataset::all() {
        let graph = dataset.generate(Scale::Tiny);
        let rec = sgp_core::decision::recommend_for_graph(&graph, WorkloadClass::OfflineAnalytics);
        // Whatever the tree says must actually run on that graph.
        let config = PartitionerConfig::new(4);
        let p = partition(&graph, rec.algorithm, &config, StreamOrder::default());
        assert_eq!(p.edge_parts.len(), graph.num_edges());
    }
}

#[test]
fn workspace_reexports_are_wired() {
    // The facade must expose the sub-crates coherently.
    let g: streaming_graph_partitioning::graph::Graph = GraphBuilder::new().add_edge(0, 1).build();
    let cfg = streaming_graph_partitioning::partition::PartitionerConfig::new(2);
    let p = streaming_graph_partitioning::partition::registry::partition(
        &g,
        Algorithm::EcrHash,
        &cfg,
        StreamOrder::Natural,
    );
    let _ = streaming_graph_partitioning::engine::Placement::build(&g, &p);
}
