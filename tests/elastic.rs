//! Elasticity proptests: snapshot→restore→continue is bit-identical to
//! an uninterrupted run for every algorithm × chunking, same-seed
//! membership plans reproduce byte-identical recovery reports, and
//! bounded-movement migration never exceeds its budget while restoring
//! balance whenever the budget allows.

use proptest::prelude::*;
use std::sync::OnceLock;
use streaming_graph_partitioning::prelude::*;

static GRAPH: OnceLock<Graph> = OnceLock::new();

fn graph() -> &'static Graph {
    GRAPH.get_or_init(|| Dataset::LdbcSnb.generate(Scale::Tiny))
}

/// A store/workload fixture shared across cases (the membership plan
/// under test varies; the cluster does not).
static FIXTURE: OnceLock<(ClusterSim, MirrorDirectory)> = OnceLock::new();

fn fixture() -> &'static (ClusterSim, MirrorDirectory) {
    FIXTURE.get_or_init(|| {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let p = partition(g, Algorithm::VcrHash, &cfg, StreamOrder::Random { seed: 7 });
        let store = PartitionedStore::from_owner(g.clone(), 4, p.masters(g));
        let mirrors = MirrorDirectory::for_model(g, &p);
        let w = Workload::generate(g, WorkloadKind::OneHop, 80, Skew::Uniform, 3);
        (ClusterSim::prepare(&store, &w), mirrors)
    })
}

/// Streams `g` into a fresh machine, snapshotting after `cut` chunks
/// and restoring into a new machine mid-stream, then finishes the
/// stream there. Returns the sealed result and whether the cut point
/// was actually crossed (offline algorithms round-trip immediately).
fn interrupted(
    g: &Graph,
    alg: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    chunk: usize,
    cut: usize,
) -> (Partitioning, bool) {
    let mut sp = StreamingPartitioner::init(g, alg, cfg);
    let mut fed = 0usize;
    let mut crossed = false;
    match sp.input() {
        StreamInput::Vertices => {
            let passes = sp.passes();
            let mut source = VertexStreamSource::new(g, order);
            let mut buf = Vec::new();
            for _ in 0..passes {
                source.restart();
                while source.next_chunk(chunk, &mut buf) > 0 {
                    sp.ingest_vertices(&buf).expect("vertex machine accepts vertex chunks");
                    fed += 1;
                    if fed == cut {
                        let snap = sp.snapshot();
                        sp = StreamingPartitioner::restore(g, alg, cfg, &snap)
                            .expect("own snapshot restores");
                        crossed = true;
                    }
                }
                sp.flush_window();
            }
        }
        StreamInput::Edges => {
            let passes = sp.passes();
            let mut source = EdgeStreamSource::new(g, order);
            let mut buf = Vec::new();
            for _ in 0..passes {
                source.restart();
                while source.next_chunk(chunk, &mut buf) > 0 {
                    sp.ingest_edges(&buf).expect("edge machine accepts edge chunks");
                    fed += 1;
                    if fed == cut {
                        let snap = sp.snapshot();
                        sp = StreamingPartitioner::restore(g, alg, cfg, &snap)
                            .expect("own snapshot restores");
                        crossed = true;
                    }
                }
                sp.flush_window();
            }
        }
        StreamInput::Offline => {
            let snap = sp.snapshot();
            sp = StreamingPartitioner::restore(g, alg, cfg, &snap).expect("own snapshot restores");
            crossed = true;
        }
    }
    (sp.seal(), crossed)
}

/// The dynamic-tier machine states added in DESIGN.md §12 round-trip:
/// 2PS interrupted inside its clustering pass and inside its placement
/// pass, and a windowed machine with a non-empty look-ahead buffer,
/// all restore and continue bit-identically to the uninterrupted run.
#[test]
fn dynamic_tier_snapshots_round_trip() {
    let g = graph();
    let order = StreamOrder::Random { seed: 23 };
    let chunk = 16;
    let chunks_per_pass = g.num_edges().div_ceil(chunk);

    // 2PS: cut 2 lands mid-pass-1 (clustering), cut chunks_per_pass + 2
    // lands mid-pass-2 (cluster-aware placement).
    let cfg = PartitionerConfig::new(4);
    let whole = partition_chunked(g, Algorithm::TwoPhaseHdrf, &cfg, order, chunk);
    for cut in [2, chunks_per_pass + 2] {
        let (resumed, crossed) = interrupted(g, Algorithm::TwoPhaseHdrf, &cfg, order, chunk, cut);
        assert!(crossed, "cut {cut} never reached");
        assert_eq!(whole.edge_parts, resumed.edge_parts, "2PS diverged after cut {cut}");
    }

    // Windowed machines snapshot their look-ahead buffers (`wv`/`we`
    // records) and continue bit-identically after restore.
    let wcfg = PartitionerConfig::new(4).with_window(7);
    for alg in [Algorithm::Ldg, Algorithm::Hdrf] {
        let mut sp = StreamingPartitioner::init(g, alg, &wcfg);
        match sp.input() {
            StreamInput::Vertices => {
                let mut source = VertexStreamSource::new(g, order);
                let mut buf = Vec::new();
                source.next_chunk(chunk, &mut buf);
                sp.ingest_vertices(&buf).expect("vertex chunk");
                assert!(sp.snapshot().contains("\nwv "), "{alg}: buffer must serialize");
            }
            _ => {
                let mut source = EdgeStreamSource::new(g, order);
                let mut buf = Vec::new();
                source.next_chunk(chunk, &mut buf);
                sp.ingest_edges(&buf).expect("edge chunk");
                assert!(sp.snapshot().contains("\nwe "), "{alg}: buffer must serialize");
            }
        }
        let whole = partition_chunked(g, alg, &wcfg, order, chunk);
        let (resumed, crossed) = interrupted(g, alg, &wcfg, order, chunk, 3);
        assert!(crossed, "{alg}: cut never reached");
        assert_eq!(whole.vertex_owner, resumed.vertex_owner, "{alg}: owners diverged");
        assert_eq!(whole.edge_parts, resumed.edge_parts, "{alg}: edge parts diverged");
    }
}

fn sim_cfg() -> FaultSimConfig {
    FaultSimConfig {
        base: SimConfig { clients_per_machine: 2, queries_per_client: 6, ..Default::default() },
        degraded: DegradedConfig { shed_queue_depth: 2, migration_ns_per_record: 1_000 },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interrupting any algorithm at any chunk boundary, serializing,
    /// restoring into a fresh machine, and finishing the stream there
    /// yields exactly the partitioning of the uninterrupted run.
    #[test]
    fn restore_then_continue_matches_uninterrupted(
        seed in any::<u64>(),
        chunk in 8usize..48,
        cut in 1usize..5,
    ) {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let order = StreamOrder::Random { seed };
        for &alg in Algorithm::all() {
            let whole = partition_chunked(g, alg, &cfg, order, chunk);
            let (resumed, crossed) = interrupted(g, alg, &cfg, order, chunk, cut);
            prop_assert!(crossed, "cut {} never reached for {}", cut, alg);
            prop_assert_eq!(&whole.vertex_owner, &resumed.vertex_owner, "owners differ: {}", alg);
            prop_assert_eq!(&whole.edge_parts, &resumed.edge_parts, "edge parts differ: {}", alg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same membership plan + same elastic record counts ⇒ the recovery
    /// DES reproduces bit-for-bit: two runs serialize to byte-identical
    /// report JSON, for every event kind, schedule, and data volume.
    #[test]
    fn same_seed_membership_plan_reproduces_report_json(
        seed in any::<u64>(),
        kind in 0u8..3,
        at_ns in 1u64..3_000_000,
        records in 0u64..4_000,
    ) {
        let (sim, mirrors) = fixture();
        let machine = 3u32;
        let plan = match kind {
            0 => FaultPlan::healthy(4, seed).with_scale_out(machine, at_ns),
            1 => FaultPlan::healthy(4, seed).with_scale_in(machine, at_ns),
            _ => FaultPlan::healthy(4, seed).with_crash_rejoin(machine, at_ns, 500_000),
        };
        let cfg = sim_cfg();
        let elastic = ElasticPlan { records_per_event: vec![records] };
        let a = sim.run_elastic(&cfg, &plan, mirrors, &elastic).expect("three machines survive");
        let b = sim.run_elastic(&cfg, &plan, mirrors, &elastic).expect("three machines survive");
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        if let (Ok(ja), Ok(jb)) = (serde_json::to_string(&a), serde_json::to_string(&b)) {
            prop_assert_eq!(ja, jb, "reports must serialize byte-identically");
        }
    }

    /// The migration planner never exceeds its movement budget; with an
    /// unconstrained budget it always restores balance — the evacuated
    /// partition ends empty and the reported loads match replaying the
    /// move list.
    #[test]
    fn migration_budget_is_respected_and_balance_restored_when_feasible(
        seed in any::<u64>(),
        k in 2usize..6,
        victim_raw in 0usize..6,
        budget in 0usize..64,
    ) {
        let victim = victim_raw % k;
        let g = graph();
        let cfg = PartitionerConfig::new(k);
        let p = partition(g, Algorithm::Ldg, &cfg, StreamOrder::Random { seed });
        let owner = p.masters(g);
        let mut live = vec![true; k];
        live[victim] = false;

        let bounded =
            plan_rebalance(g, &owner, &live, &MigrationConfig { budget, ..Default::default() });
        prop_assert!(
            bounded.moves.len() <= budget,
            "{} moves exceed budget {}",
            bounded.moves.len(),
            budget
        );

        let unbounded = plan_rebalance(g, &owner, &live, &MigrationConfig::default());
        prop_assert!(unbounded.balance_restored, "unbounded plan must restore balance");
        let replanned = plan_rebalance(g, &owner, &live, &MigrationConfig::default());
        prop_assert_eq!(&unbounded.moves, &replanned.moves, "re-planning must be deterministic");

        let after = unbounded.apply(&owner);
        prop_assert!(
            after.iter().all(|&q| (q as usize) != victim),
            "evacuated partition still owns vertices"
        );
        let mut loads = vec![0u64; k];
        for &q in &after {
            loads[q as usize] += 1;
        }
        prop_assert_eq!(&loads, &unbounded.loads_after, "reported loads disagree with the moves");
    }
}
