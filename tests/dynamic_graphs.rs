//! Differential and property tests locking down the dynamic-graph
//! partitioning tier (DESIGN.md §12):
//!
//! * **Degeneracy differentials** — a look-ahead window of `W = 1` is
//!   bit-identical to the one-pass entry point for every Table 2
//!   algorithm; 2PS with its clustering pass disabled is bit-identical
//!   to plain HDRF; a restream repair with a zero movement budget is
//!   the identity partitioning.
//! * **Properties** — restream repairs never exceed their movement
//!   budget; accepted restream rounds never increase the cut on a
//!   fixed stream; the churn suite's report is a pure function of its
//!   seeds (byte-identical JSON run to run).

use proptest::prelude::*;
use std::sync::OnceLock;
use streaming_graph_partitioning::prelude::*;

static GRAPH: OnceLock<Graph> = OnceLock::new();

fn graph() -> &'static Graph {
    GRAPH.get_or_init(|| Dataset::LdbcSnb.generate(Scale::Tiny))
}

/// `W = 1` degenerates exactly to one-pass streaming: the buffer never
/// holds an element across a placement, and ties in the affinity rule
/// resolve to arrival order — so the chunked windowed machine must
/// reproduce the one-shot entry point bit for bit, for every Table 2
/// algorithm.
#[test]
fn window_of_one_is_bit_identical_to_one_pass_for_every_algorithm() {
    let g = graph();
    let order = StreamOrder::Random { seed: 41 };
    for &alg in Algorithm::all() {
        let cfg = PartitionerConfig::new(4).with_window(1);
        let windowed = partition_chunked(g, alg, &cfg, order, 19);
        let one_pass = partition(g, alg, &PartitionerConfig::new(4), order);
        assert_eq!(one_pass.vertex_owner, windowed.vertex_owner, "{alg}: owners diverged");
        assert_eq!(one_pass.edge_parts, windowed.edge_parts, "{alg}: edge parts diverged");
    }
}

/// With the clustering pass disabled, 2PS's second pass *is* HDRF: the
/// affinity targets are all `None`, the scoring arithmetic is
/// untouched, and the placement must be bit-identical.
#[test]
fn two_phase_without_clustering_is_bit_identical_to_hdrf() {
    let g = graph();
    let order = StreamOrder::Random { seed: 43 };
    let mut cfg = PartitionerConfig::new(4);
    cfg.two_phase_clustering = false;
    let degenerate = partition(g, Algorithm::TwoPhaseHdrf, &cfg, order);
    let baseline = partition(g, Algorithm::Hdrf, &PartitionerConfig::new(4), order);
    assert_eq!(baseline.edge_parts, degenerate.edge_parts);
}

/// A restream repair with a zero movement budget must be the identity:
/// no moves, owner map unchanged.
#[test]
fn zero_budget_restream_is_identity() {
    let g = graph();
    let cfg = PartitionerConfig::new(4);
    let owner = partition(g, Algorithm::Ldg, &cfg, StreamOrder::Natural).masters(g);
    let live = vec![true; 4];
    let mcfg = MigrationConfig {
        budget: 0,
        strategy: MigrationStrategy::Restream {
            algorithm: Algorithm::Ldg,
            order: StreamOrder::Natural,
            rounds: 3,
        },
        ..Default::default()
    };
    let plan = plan_rebalance(g, &owner, &live, &mcfg);
    assert!(plan.moves.is_empty(), "zero budget must plan zero moves");
    assert_eq!(plan.apply(&owner), owner, "zero budget must leave every owner in place");
}

/// Greedy and restream planning under the same budget: both respect
/// it, both are deterministic, and both converge to the same empty
/// plan at budget zero.
#[test]
fn greedy_and_restream_strategies_respect_the_same_budget() {
    let g = graph();
    let cfg = PartitionerConfig::new(4);
    let owner = partition(g, Algorithm::Ldg, &cfg, StreamOrder::Random { seed: 5 }).masters(g);
    let live = vec![true, true, true, false];
    for budget in [0usize, 8, 64] {
        let greedy =
            plan_rebalance(g, &owner, &live, &MigrationConfig { budget, ..Default::default() });
        let restream = plan_rebalance(
            g,
            &owner,
            &live,
            &MigrationConfig {
                budget,
                strategy: MigrationStrategy::Restream {
                    algorithm: Algorithm::Ldg,
                    order: StreamOrder::Random { seed: 5 },
                    rounds: 2,
                },
                ..Default::default()
            },
        );
        assert!(greedy.moves.len() <= budget, "greedy exceeds budget {budget}");
        assert!(restream.moves.len() <= budget, "restream exceeds budget {budget}");
        if budget == 0 {
            assert_eq!(greedy.moves, restream.moves, "both must be empty at budget 0");
        }
        let again = plan_rebalance(
            g,
            &owner,
            &live,
            &MigrationConfig {
                budget,
                strategy: MigrationStrategy::Restream {
                    algorithm: Algorithm::Ldg,
                    order: StreamOrder::Random { seed: 5 },
                    rounds: 2,
                },
                ..Default::default()
            },
        );
        assert_eq!(restream.moves, again.moves, "restream planning must be deterministic");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// However the stream is ordered and however many rounds run, a
    /// restream repair never plans more moves than its budget.
    #[test]
    fn restream_never_exceeds_movement_budget(
        seed in any::<u64>(),
        budget in 0usize..128,
        rounds in 1usize..4,
        victim in 0usize..4,
    ) {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let owner = partition(g, Algorithm::Ldg, &cfg, StreamOrder::Random { seed }).masters(g);
        let mut live = vec![true; 4];
        live[victim] = false;
        let plan = plan_rebalance(g, &owner, &live, &MigrationConfig {
            budget,
            strategy: MigrationStrategy::Restream {
                algorithm: Algorithm::Ldg,
                order: StreamOrder::Random { seed },
                rounds,
            },
            ..Default::default()
        });
        prop_assert!(plan.moves.len() <= budget, "{} moves > budget {}", plan.moves.len(), budget);
    }

    /// Restreaming only ever accepts rounds that do not increase the
    /// cut: over K rounds on a fixed stream the recorded cut sequence
    /// is monotonically non-increasing, starting at or below the
    /// initial cut.
    #[test]
    fn restream_rounds_never_increase_the_cut(
        seed in any::<u64>(),
        rounds in 1usize..5,
    ) {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let order = StreamOrder::Random { seed };
        let initial = partition(g, Algorithm::Ldg, &cfg, order).masters(g);
        let outcome = restream_rounds(g, Algorithm::Ldg, &cfg, order, &initial, rounds)
            .expect("LDG consumes vertex streams");
        let mut last = outcome.initial_cut_edges;
        for (i, round) in outcome.rounds.iter().enumerate() {
            prop_assert!(
                round.cut_edges <= last,
                "round {} raised the cut: {} > {}",
                i,
                round.cut_edges,
                last
            );
            last = round.cut_edges;
        }
        prop_assert_eq!(cut_edges(g, &outcome.owner), last, "final owner disagrees with log");
    }

    /// The churn suite is a pure function of its seeds: two runs with
    /// the same config serialize to byte-identical report JSON.
    #[test]
    fn same_seed_churn_suite_reports_identical_json(
        seed in any::<u64>(),
        batches in 1usize..5,
    ) {
        let g = graph();
        let cfg = ChurnSuiteConfig {
            churn: ChurnConfig {
                batches,
                inserts_per_batch: 48,
                deletes_per_batch: 32,
                seed,
            },
            ..Default::default()
        };
        let a = churn_suite("snb", g, ChurnMethod::all(), &cfg);
        let b = churn_suite("snb", g, ChurnMethod::all(), &cfg);
        if let (Ok(ja), Ok(jb)) = (serde_json::to_string(&a), serde_json::to_string(&b)) {
            prop_assert_eq!(ja, jb, "churn report must serialize byte-identically");
        }
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
