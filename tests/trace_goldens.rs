//! Golden-snapshot tests for the canonical traces (DESIGN.md §9).
//!
//! Two small trace JSONs live under `tests/goldens/`: the engine
//! PageRank scenario and the fault-injected DES scenario, both at tiny
//! scale. Each test regenerates its scenario **twice** (same seed +
//! same config must give byte-identical JSON) and then compares the
//! bytes against the committed golden.
//!
//! Bless flow (documented in EXPERIMENTS.md): after an *intentional*
//! trace-schema or instrumentation change, regenerate with
//!
//! ```text
//! SGP_BLESS=1 cargo test --test trace_goldens
//! ```
//!
//! and commit the rewritten files. On a checkout where a golden does
//! not exist yet the test writes it (after the determinism check), so
//! the first run on a new machine seeds the snapshots it will hold all
//! later runs to.

use std::fs;
use std::path::PathBuf;
use streaming_graph_partitioning::core::config::Scale;
use streaming_graph_partitioning::core::trace_scenarios::{db_trace_json, engine_trace_json};
use streaming_graph_partitioning::trace::parse_trace;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

fn check_golden(name: &str, generate: impl Fn() -> String) {
    let regenerated = generate();
    let again = generate();
    assert_eq!(regenerated, again, "{name}: regeneration must be byte-identical run to run");
    let parsed = parse_trace(&regenerated).expect("canonical trace JSON must parse");
    assert!(!parsed.events.is_empty(), "{name}: scenario produced no events");

    let path = golden_path(name);
    let bless = std::env::var_os("SGP_BLESS").is_some_and(|v| v == "1");
    if bless || !path.exists() {
        fs::create_dir_all(path.parent().expect("goldens dir has a parent"))
            .expect("create goldens dir");
        fs::write(&path, &regenerated).expect("write golden");
        eprintln!("blessed {name} ({} bytes, {} events)", regenerated.len(), parsed.events.len());
        return;
    }
    let committed = fs::read_to_string(&path).expect("read committed golden");
    assert_eq!(
        committed, regenerated,
        "{name}: trace drifted from the committed golden. If the change is intentional, \
         re-bless with `SGP_BLESS=1 cargo test --test trace_goldens` (see EXPERIMENTS.md)."
    );
}

#[test]
fn engine_pagerank_golden_regenerates_exactly() {
    check_golden("trace_engine_tiny.json", || engine_trace_json(Scale::Tiny));
}

#[test]
fn des_robustness_golden_regenerates_exactly() {
    check_golden("trace_db_robustness_tiny.json", || {
        db_trace_json(Scale::Tiny).expect("the robustness fault plan is valid")
    });
}
