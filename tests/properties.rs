//! Property-based tests (proptest) over the core invariants of the
//! partitioners, metrics, and engine, on arbitrary random graphs.

use proptest::prelude::*;
use sgp_engine::reference;
use sgp_partition::metrics;
use streaming_graph_partitioning::prelude::*;
use streaming_graph_partitioning::trace::hist::bucket_index;
use streaming_graph_partitioning::trace::Log2Histogram;

/// Strategy: a random simple directed graph with 2..=60 vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..60).prop_flat_map(|n| {
        let max_edges = (n * (n - 1)).min(300);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges).prop_map(
            move |pairs| {
                let mut b = GraphBuilder::new().ensure_vertices(n);
                for (s, d) in pairs {
                    b.push_edge(s, d);
                }
                b.build()
            },
        )
    })
}

fn arb_k() -> impl Strategy<Value = usize> {
    1usize..=8
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    proptest::sample::select(Algorithm::all().to_vec())
}

fn arb_order() -> impl Strategy<Value = StreamOrder> {
    prop_oneof![
        Just(StreamOrder::Natural),
        any::<u64>().prop_map(|seed| StreamOrder::Random { seed }),
        Just(StreamOrder::Bfs),
        Just(StreamOrder::Dfs),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm must produce a complete, in-range placement, with
    /// RF between 1 and min(k, max degree+1), on any graph, any k, any
    /// stream order.
    #[test]
    fn any_partitioning_is_well_formed(
        g in arb_graph(),
        k in arb_k(),
        alg in arb_algorithm(),
        order in arb_order(),
    ) {
        let cfg = PartitionerConfig::new(k);
        let p = partition(&g, alg, &cfg, order);
        prop_assert_eq!(p.k, k);
        prop_assert_eq!(p.edge_parts.len(), g.num_edges());
        prop_assert!(p.edge_parts.iter().all(|&x| (x as usize) < k));
        if let Some(owner) = &p.vertex_owner {
            prop_assert_eq!(owner.len(), g.num_vertices());
            prop_assert!(owner.iter().all(|&x| (x as usize) < k));
        }
        let rf = metrics::replication_factor(&g, &p);
        prop_assert!(rf >= 1.0 - 1e-9, "rf {} < 1", rf);
        prop_assert!(rf <= k as f64 + 1e-9, "rf {} > k {}", rf, k);
    }

    /// Replica sets must contain the master and every partition holding
    /// an incident edge.
    #[test]
    fn replica_sets_cover_edges_and_master(
        g in arb_graph(),
        k in 1usize..=6,
        alg in arb_algorithm(),
    ) {
        let cfg = PartitionerConfig::new(k);
        let p = partition(&g, alg, &cfg, StreamOrder::Natural);
        let sets = p.replica_sets(&g);
        let masters = p.masters(&g);
        for (v, set) in sets.iter().enumerate() {
            prop_assert!(set.contains(&masters[v]), "master missing at vertex {}", v);
        }
        for (i, e) in g.edges().enumerate() {
            let part = p.edge_parts[i];
            prop_assert!(sets[e.src as usize].contains(&part));
            prop_assert!(sets[e.dst as usize].contains(&part));
        }
    }

    /// Edge-cut ratio of any vertex-disjoint placement lies in [0, 1],
    /// and k = 1 always yields 0.
    #[test]
    fn edge_cut_ratio_bounds(g in arb_graph(), alg in proptest::sample::select(
        Algorithm::online_suite().to_vec())) {
        let cfg = PartitionerConfig::new(4);
        let p = partition(&g, alg, &cfg, StreamOrder::Natural);
        let ecr = metrics::edge_cut_ratio(&g, &p).expect("edge-cut algorithm");
        prop_assert!((0.0..=1.0).contains(&ecr));
        let cfg1 = PartitionerConfig::new(1);
        let p1 = partition(&g, alg, &cfg1, StreamOrder::Natural);
        prop_assert_eq!(metrics::edge_cut_ratio(&g, &p1), Some(0.0));
    }

    /// The engine computes WCC and SSSP exactly, for any graph, any
    /// algorithm, any order (determinism + correctness of the whole
    /// distributed pipeline).
    #[test]
    fn engine_exact_for_discrete_programs(
        g in arb_graph(),
        k in 1usize..=5,
        alg in arb_algorithm(),
    ) {
        let cfg = PartitionerConfig::new(k);
        let p = partition(&g, alg, &cfg, StreamOrder::Natural);
        let placement = Placement::build(&g, &p);
        let opts = EngineOptions::default();
        let (wcc, _) = run_program(&g, &placement, &Wcc::new(), &opts);
        prop_assert_eq!(wcc, reference::wcc(&g));
        let (dist, _) = run_program(&g, &placement, &Sssp::new(0), &opts);
        prop_assert_eq!(dist, reference::sssp(&g, 0));
    }

    /// PageRank mass conservation: when every vertex has an out-edge,
    /// total rank stays ≈ n under the engine, for any placement.
    #[test]
    fn engine_pagerank_conserves_mass(seed in any::<u64>(), k in 1usize..=5) {
        // Build a graph where every vertex has out-degree >= 1: a ring
        // plus random chords.
        let n = 30usize;
        let mut b = GraphBuilder::new();
        for v in 0..n as u32 {
            b.push_edge(v, (v + 1) % n as u32);
        }
        let mut s = seed;
        for _ in 0..40 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (s >> 33) as u32 % n as u32;
            let c = (s >> 13) as u32 % n as u32;
            if a != c {
                b.push_edge(a, c);
            }
        }
        let g = b.build();
        let cfg = PartitionerConfig::new(k);
        let p = partition(&g, Algorithm::Hdrf, &cfg, StreamOrder::Natural);
        let placement = Placement::build(&g, &p);
        let (ranks, _) =
            run_program(&g, &placement, &PageRank::new(10), &EngineOptions::default());
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - n as f64).abs() < 1e-6, "mass {} != {}", total, n);
    }

    /// Partitioning the same input twice is bit-identical (everything in
    /// the workspace is seeded).
    #[test]
    fn partitioning_is_deterministic(
        g in arb_graph(),
        alg in arb_algorithm(),
        seed in any::<u64>(),
    ) {
        let cfg = PartitionerConfig::new(4);
        let order = StreamOrder::Random { seed };
        let p1 = partition(&g, alg, &cfg, order);
        let p2 = partition(&g, alg, &cfg, order);
        prop_assert_eq!(p1.edge_parts, p2.edge_parts);
        prop_assert_eq!(p1.vertex_owner, p2.vertex_owner);
    }

    /// Hash-based algorithms are stream-order independent ("can be
    /// parallelized without communication", Table 1).
    #[test]
    fn hash_algorithms_order_independent(
        g in arb_graph(),
        o1 in arb_order(),
        o2 in arb_order(),
    ) {
        let cfg = PartitionerConfig::new(4);
        for alg in [Algorithm::EcrHash, Algorithm::VcrHash, Algorithm::HybridRandom] {
            let p1 = partition(&g, alg, &cfg, o1);
            let p2 = partition(&g, alg, &cfg, o2);
            prop_assert_eq!(p1.edge_parts, p2.edge_parts, "{:?}", alg);
        }
    }

    /// Load-imbalance metric is scale-invariant and >= 1 on non-empty
    /// loads.
    #[test]
    fn imbalance_properties(counts in proptest::collection::vec(1usize..1000, 1..20)) {
        let imb = metrics::load_imbalance(&counts);
        prop_assert!(imb >= 1.0 - 1e-12);
        let doubled: Vec<usize> = counts.iter().map(|&c| c * 2).collect();
        prop_assert!((metrics::load_imbalance(&doubled) - imb).abs() < 1e-9);
    }

    /// Span enter/exit events are well-formed (strict LIFO nesting,
    /// non-decreasing stamps, everything closed) for a traced
    /// partition-plus-engine run over any graph, k, algorithm, order.
    #[test]
    fn trace_spans_are_well_nested_for_random_workloads(
        g in arb_graph(),
        k in arb_k(),
        alg in arb_algorithm(),
        order in arb_order(),
    ) {
        let cfg = PartitionerConfig::new(k);
        let mut sink = CollectingSink::new();
        let p = partition_traced(&g, alg, &cfg, order, &mut sink);
        let placement = Placement::build(&g, &p);
        run_program_traced(&g, &placement, &PageRank::new(3), &EngineOptions::default(), &mut sink);
        prop_assert!(!sink.is_empty());
        if let Err(e) = sink.check_nesting() {
            return Err(TestCaseError::fail(format!("{alg:?}: {e}")));
        }
    }

    /// The log₂ histogram's quantile estimate lands in the same bucket
    /// as the exact rank-based quantile of the raw samples.
    #[test]
    fn histogram_quantile_within_one_bucket_of_exact(
        mut samples in proptest::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut h = Log2Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let rank = ((samples.len() - 1) as f64 * q).round() as usize;
        let exact = samples[rank.min(samples.len() - 1)];
        let estimate = h.quantile(q);
        prop_assert_eq!(
            bucket_index(estimate),
            bucket_index(exact),
            "estimate {} vs exact {} at q={}",
            estimate,
            exact,
            q
        );
    }

    /// Same seed + same config ⇒ byte-identical trace JSON, across the
    /// partitioner and engine layers on arbitrary workloads.
    #[test]
    fn same_seed_yields_identical_trace_bytes(
        g in arb_graph(),
        k in arb_k(),
        alg in arb_algorithm(),
        seed in any::<u64>(),
    ) {
        let cfg = PartitionerConfig::new(k);
        let order = StreamOrder::Random { seed };
        let trace_of = |sink: &mut CollectingSink| {
            let p = partition_traced(&g, alg, &cfg, order, sink);
            let placement = Placement::build(&g, &p);
            run_program_traced(&g, &placement, &PageRank::new(3), &EngineOptions::default(), sink);
        };
        let mut a = CollectingSink::new();
        trace_of(&mut a);
        let mut b = CollectingSink::new();
        trace_of(&mut b);
        prop_assert_eq!(a.to_json(), b.to_json(), "{:?}", alg);
    }
}
