//! Differential harness for the observability layer (DESIGN.md §9).
//!
//! The tracer must *observe, never perturb*: for every algorithm, on
//! both execution substrates, a traced run has to produce bit-identical
//! results to the untraced run, and the trace's aggregate counters have
//! to equal the untraced report's fields exactly — not approximately.
//! Any drift here means the instrumentation leaked into the simulation.

use streaming_graph_partitioning::core::runners::default_order;
use streaming_graph_partitioning::core::trace_scenarios::db_scenario_config;
use streaming_graph_partitioning::db::MirrorDirectory;
use streaming_graph_partitioning::prelude::*;

const K: usize = 4;

fn graph() -> Graph {
    Dataset::LdbcSnb.generate(Scale::Tiny)
}

#[test]
fn traced_partitioning_is_identical_for_every_algorithm() {
    let g = graph();
    let cfg = PartitionerConfig::new(K);
    for &alg in Algorithm::all() {
        let untraced = partition(&g, alg, &cfg, default_order());
        let mut sink = CollectingSink::new();
        let traced = partition_traced(&g, alg, &cfg, default_order(), &mut sink);
        assert_eq!(untraced.masters(&g), traced.masters(&g), "{alg:?}: masters diverged");
        assert_eq!(
            untraced.edges_per_partition(),
            traced.edges_per_partition(),
            "{alg:?}: edge loads diverged"
        );
        sink.check_nesting().unwrap_or_else(|e| panic!("{alg:?}: bad span nesting: {e}"));
        // The streaming element-at-a-time runners report per-partition
        // load counters that must mirror the placement itself (the
        // offline multilevel baseline and the hybrid constructors
        // aggregate decision counters only).
        if !matches!(alg, Algorithm::Metis | Algorithm::HybridRandom | Algorithm::Ginger) {
            let loads: Vec<u64> =
                (0..K as u64).map(|i| sink.counter_total_keyed("partition.load", i)).collect();
            match traced.vertices_per_partition() {
                Some(v) => {
                    let expect: Vec<u64> = v.iter().map(|&x| x as u64).collect();
                    assert_eq!(loads, expect, "{alg:?}: vertex load counters");
                }
                None => {
                    let expect: Vec<u64> =
                        traced.edges_per_partition().iter().map(|&x| x as u64).collect();
                    assert_eq!(loads, expect, "{alg:?}: edge load counters");
                }
            }
        }
    }
}

#[test]
fn engine_trace_counters_match_untraced_report_for_every_algorithm() {
    let g = graph();
    let cfg = PartitionerConfig::new(K);
    let opts = EngineOptions::default();
    for &alg in Algorithm::all() {
        let p = partition(&g, alg, &cfg, default_order());
        let placement = Placement::build(&g, &p);
        let prog = PageRank::new(5);
        let (data_untraced, untraced) = run_program(&g, &placement, &prog, &opts);
        let mut sink = CollectingSink::new();
        let (data_traced, traced) = run_program_traced(&g, &placement, &prog, &opts, &mut sink);

        assert_eq!(data_untraced, data_traced, "{alg:?}: computed ranks diverged");
        assert_eq!(
            untraced.replication_factor.to_bits(),
            traced.replication_factor.to_bits(),
            "{alg:?}: replication factor diverged"
        );
        assert_eq!(
            untraced.total_seconds().to_bits(),
            traced.total_seconds().to_bits(),
            "{alg:?}: simulated time diverged"
        );

        // Aggregate counters == untraced report fields, exactly.
        let messages = sink.counter_total("engine.gather_messages")
            + sink.counter_total("engine.update_messages");
        assert_eq!(messages, untraced.total_messages(), "{alg:?}: message counters");
        assert_eq!(
            sink.counter_total("engine.network_bytes"),
            untraced.total_network_bytes(),
            "{alg:?}: byte counters"
        );

        // Per-superstep and per-machine keyed counters line up with the
        // report's iteration stats.
        for (i, it) in untraced.iterations.iter().enumerate() {
            assert_eq!(
                sink.counter_total_keyed("engine.active_vertices", i as u64),
                it.active_vertices as u64,
                "{alg:?}: active vertices, superstep {i}"
            );
            assert_eq!(
                sink.counter_total_keyed("engine.gather_messages", i as u64),
                it.gather_messages,
                "{alg:?}: gather messages, superstep {i}"
            );
        }
        for m in 0..K {
            let bytes: u64 = untraced.iterations.iter().map(|it| it.machine_bytes[m]).sum();
            assert_eq!(
                sink.counter_total_keyed("engine.machine_bytes", m as u64),
                bytes,
                "{alg:?}: machine {m} bytes"
            );
        }
        assert_eq!(
            sink.histogram_of("engine.barrier_wait_ns").count(),
            (untraced.num_iterations() * K) as u64,
            "{alg:?}: one barrier-wait sample per machine per superstep"
        );
        sink.check_nesting().unwrap_or_else(|e| panic!("{alg:?}: bad span nesting: {e}"));
    }
}

#[test]
fn db_trace_counters_match_untraced_report_for_every_algorithm() {
    let g = graph();
    let cfg = SimConfig { clients_per_machine: 2, queries_per_client: 6, ..Default::default() };
    for &alg in Algorithm::all() {
        let p = partition(&g, alg, &PartitionerConfig::new(K), default_order());
        let store = PartitionedStore::from_owner(g.clone(), K, p.masters(&g));
        let workload =
            Workload::generate(&g, WorkloadKind::OneHop, 60, Skew::Zipf { theta: 0.6 }, 0x0_1A7);
        let sim = ClusterSim::prepare(&store, &workload);
        let untraced = sim.run(&cfg);
        let mut sink = CollectingSink::new();
        let traced = sim.run_traced(&cfg, &mut sink);

        assert_eq!(untraced.completed, traced.completed, "{alg:?}: completions diverged");
        assert_eq!(untraced.reads_per_machine, traced.reads_per_machine, "{alg:?}: reads");
        assert_eq!(
            untraced.p99_latency_ms.to_bits(),
            traced.p99_latency_ms.to_bits(),
            "{alg:?}: p99 diverged"
        );
        assert_eq!(
            untraced.sim_seconds.to_bits(),
            traced.sim_seconds.to_bits(),
            "{alg:?}: sim time diverged"
        );

        assert_eq!(
            sink.counter_total("db.queries_completed"),
            untraced.completed as u64,
            "{alg:?}: completion counter"
        );
        for m in 0..K {
            assert_eq!(
                sink.counter_total_keyed("db.reads", m as u64),
                untraced.reads_per_machine[m],
                "{alg:?}: machine {m} reads"
            );
        }
        assert_eq!(
            sink.histogram_of("db.query_latency_ns").count(),
            untraced.completed as u64,
            "{alg:?}: one latency sample per counted query"
        );
        sink.check_nesting().unwrap_or_else(|e| panic!("{alg:?}: bad span nesting: {e}"));
    }
}

#[test]
fn faulted_db_trace_counters_match_untraced_report_for_every_algorithm() {
    let g = graph();
    let cfg = db_scenario_config();
    let plan = cfg.build_plan(K);
    for &alg in Algorithm::all() {
        let p = partition(&g, alg, &PartitionerConfig::new(K), default_order());
        let store = PartitionedStore::from_owner(g.clone(), K, p.masters(&g));
        let mirrors = MirrorDirectory::for_model(&g, &p);
        let workload =
            Workload::generate(&g, WorkloadKind::OneHop, cfg.bindings, cfg.skew, cfg.workload_seed);
        let sim = ClusterSim::prepare(&store, &workload);
        let untraced = sim.run_faulted(&cfg.sim, &plan, &mirrors).expect("valid plan");
        let mut sink = CollectingSink::new();
        let traced = sim.run_faulted_traced(&cfg.sim, &plan, &mirrors, &mut sink).expect("plan");

        assert_eq!(untraced.completed_ok, traced.completed_ok, "{alg:?}: successes diverged");
        assert_eq!(untraced.failed, traced.failed, "{alg:?}: failures diverged");
        assert_eq!(
            untraced.availability.to_bits(),
            traced.availability.to_bits(),
            "{alg:?}: availability diverged"
        );

        assert_eq!(
            sink.counter_total("db.queries_ok"),
            untraced.completed_ok as u64,
            "{alg:?}: success counter"
        );
        assert_eq!(
            sink.counter_total("db.queries_failed"),
            untraced.failed as u64,
            "{alg:?}: failure counter"
        );
        assert_eq!(sink.counter_total("db.retries"), untraced.retries, "{alg:?}: retry counter");
        assert_eq!(
            sink.counter_total("db.dropped_messages"),
            untraced.dropped_messages,
            "{alg:?}: drop counter"
        );
        assert_eq!(
            sink.counter_total("db.failovers"),
            untraced.failovers,
            "{alg:?}: failover counter"
        );
        for m in 0..K {
            assert_eq!(
                sink.counter_total_keyed("db.reads", m as u64),
                untraced.reads_per_machine[m],
                "{alg:?}: machine {m} reads"
            );
        }
        sink.check_nesting().unwrap_or_else(|e| panic!("{alg:?}: bad span nesting: {e}"));
    }
}
