//! Suite runners: each function regenerates the measurements behind one
//! family of tables/figures, returning typed rows the `experiments`
//! binary renders.

use crate::config::{Dataset, Scale};
use serde::{Deserialize, Serialize};
use sgp_db::workload::{run_workload, Skew};
use sgp_db::{
    ClusterSim, DegradedConfig, ElasticPlan, FaultSimConfig, LoadLevel, MirrorDirectory,
    PartitionedStore, SimConfig, SimError, Workload, WorkloadKind,
};
use sgp_engine::apps::{PageRank, Sssp, Wcc};
use sgp_engine::cost::five_number_summary;
use sgp_engine::{run_program, run_program_with_faults, EngineOptions, Placement, RunReport};
use sgp_fault::FaultPlan;
use sgp_graph::{ChurnConfig, ChurnStream, Graph, StreamOrder};
use sgp_partition::metis::MultilevelPartitioner;
use sgp_partition::metrics::QualityReport;
use sgp_partition::{
    cut_edges, partition, partition_multi_loader, plan_rebalance, Algorithm, LoaderConfig,
    MigrationConfig, MigrationStrategy, PartitionId, PartitionerConfig, Partitioning,
};
use sgp_trace::{keys, NullSink, TraceSink};

/// Default stream order used by every experiment (a fixed seeded random
/// permutation, the paper's loading protocol).
pub fn default_order() -> StreamOrder {
    StreamOrder::Random { seed: 0x51C9_2019 }
}

/// The paper's offline analytic workloads (§5.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OfflineWorkload {
    /// PageRank, 20 fixed iterations, all-active.
    PageRank,
    /// Weakly connected components, activation-driven.
    Wcc,
    /// Single-source shortest path from the max-out-degree vertex.
    Sssp,
}

impl OfflineWorkload {
    /// All three workloads in the paper's order.
    pub fn all() -> &'static [OfflineWorkload] {
        &[OfflineWorkload::PageRank, OfflineWorkload::Wcc, OfflineWorkload::Sssp]
    }

    /// Short name as used in Fig. 3's panels.
    pub fn name(&self) -> &'static str {
        match self {
            OfflineWorkload::PageRank => "PageRank",
            OfflineWorkload::Wcc => "WCC",
            OfflineWorkload::Sssp => "SSSP",
        }
    }
}

impl std::fmt::Display for OfflineWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.name())
    }
}

/// Runs one offline workload over a placement, discarding vertex data.
pub fn run_offline_workload(
    g: &Graph,
    placement: &Placement,
    workload: OfflineWorkload,
    opts: &EngineOptions,
) -> RunReport {
    match workload {
        OfflineWorkload::PageRank => run_program(g, placement, &PageRank::new(20), opts).1,
        OfflineWorkload::Wcc => run_program(g, placement, &Wcc::new(), opts).1,
        OfflineWorkload::Sssp => {
            let source = g
                .vertices()
                .max_by_key(|&v| g.out_degree(v))
                // sgp-lint: allow(no-panic-in-lib): every Dataset::generate graph is non-empty (asserted by config tests), so vertices() yields at least one item
                .expect("non-empty graph");
            run_program(g, placement, &Sssp::new(source), opts).1
        }
    }
}

// ---------------------------------------------------------------------------
// Quality suite (Fig. 2, Table 4)
// ---------------------------------------------------------------------------

/// One partitioning-quality measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Number of partitions.
    pub k: usize,
    /// Structural quality metrics.
    pub quality: QualityReport,
    /// Wall-clock partitioning time on the host, seconds (the resource
    /// comparison of §4.1.1: streaming beats METIS by ~10×).
    pub partition_seconds: f64,
}

/// Measures partitioning quality for every (algorithm, k) combination on
/// one graph.
pub fn quality_suite(
    dataset_name: &str,
    g: &Graph,
    algorithms: &[Algorithm],
    ks: &[usize],
) -> Vec<QualityRow> {
    let mut rows = Vec::with_capacity(algorithms.len() * ks.len());
    for &k in ks {
        let cfg = PartitionerConfig::new(k);
        for &alg in algorithms {
            // sgp-lint: allow(no-wallclock-in-sim): partition_seconds is an explicitly host-dependent resource measurement (§4.1.1); it is never rendered into the bit-for-bit results files
            let start = std::time::Instant::now();
            let p = partition(g, alg, &cfg, default_order());
            let partition_seconds = start.elapsed().as_secs_f64();
            rows.push(QualityRow {
                dataset: dataset_name.to_string(),
                algorithm: alg,
                k,
                quality: QualityReport::measure(g, &p),
                partition_seconds,
            });
        }
    }
    rows
}

/// Convenience: generates the dataset and runs [`quality_suite`].
pub fn quality_suite_for(
    dataset: Dataset,
    scale: Scale,
    algorithms: &[Algorithm],
    ks: &[usize],
) -> Vec<QualityRow> {
    let g = dataset.generate(scale);
    quality_suite(dataset.name(), &g, algorithms, ks)
}

// ---------------------------------------------------------------------------
// Multi-loader ablation (Table 1 "Parallelization"; beyond the paper)
// ---------------------------------------------------------------------------

/// One multi-loader measurement: the structural quality of the placement
/// produced when the input stream is split across `loaders` parallel
/// loaders that synchronize shared state every `sync_interval` elements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoaderRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Stream-order label ("random", "bfs", ...).
    pub order: String,
    /// Number of partitions.
    pub k: usize,
    /// Number of parallel loaders `L`.
    pub loaders: usize,
    /// Elements each loader places between synchronization barriers.
    pub sync_interval: usize,
    /// Structural quality of the resulting placement.
    pub quality: QualityReport,
}

/// Runs the multi-loader grid: every `(order, algorithm, L, T)` cell on
/// one graph. `L = 1` cells are measured once per order (the sync
/// interval is irrelevant when the local state *is* the global state)
/// and serve as the sequential baseline rows.
pub fn loaders_suite(
    dataset_name: &str,
    g: &Graph,
    algorithms: &[Algorithm],
    k: usize,
    orders: &[(&str, StreamOrder)],
    loader_counts: &[usize],
    sync_intervals: &[usize],
) -> Vec<LoaderRow> {
    let cfg = PartitionerConfig::new(k);
    let mut rows = Vec::new();
    for &(order_name, order) in orders {
        for &alg in algorithms {
            for &loaders in loader_counts {
                let intervals: &[usize] = if loaders <= 1 {
                    &sync_intervals[..sync_intervals.len().min(1)]
                } else {
                    sync_intervals
                };
                for &sync_interval in intervals {
                    let lc = LoaderConfig::new(loaders).with_sync_interval(sync_interval);
                    let p = partition_multi_loader(g, alg, &cfg, order, &lc);
                    rows.push(LoaderRow {
                        dataset: dataset_name.to_string(),
                        algorithm: alg,
                        order: order_name.to_string(),
                        k,
                        loaders,
                        sync_interval,
                        quality: QualityReport::measure(g, &p),
                    });
                }
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Offline analytics suite (Fig. 1, 3, 4, 13)
// ---------------------------------------------------------------------------

/// One offline-analytics measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Workload.
    pub workload: OfflineWorkload,
    /// Number of machines.
    pub k: usize,
    /// Replication factor of the placement.
    pub replication_factor: f64,
    /// Total network bytes during execution (Fig. 1's y-axis).
    pub network_bytes: u64,
    /// Total messages during execution.
    pub messages: u64,
    /// Simulated execution time in seconds (Fig. 3's y-axis).
    pub exec_seconds: f64,
    /// Supersteps executed.
    pub iterations: usize,
    /// Per-machine compute-time five-number summary in seconds
    /// (min, p25, median, p75, max — Fig. 4's lines).
    pub compute_dist: [f64; 5],
}

/// Runs the offline grid: every (algorithm, workload, k) on one graph.
pub fn offline_suite(
    dataset_name: &str,
    g: &Graph,
    algorithms: &[Algorithm],
    workloads: &[OfflineWorkload],
    ks: &[usize],
) -> Vec<OfflineRow> {
    let opts = EngineOptions::default();
    let mut rows = Vec::new();
    for &k in ks {
        let cfg = PartitionerConfig::new(k);
        for &alg in algorithms {
            let p = partition(g, alg, &cfg, default_order());
            let placement = Placement::build(g, &p);
            for &w in workloads {
                let report = run_offline_workload(g, &placement, w, &opts);
                rows.push(OfflineRow {
                    dataset: dataset_name.to_string(),
                    algorithm: alg,
                    workload: w,
                    k,
                    replication_factor: report.replication_factor,
                    network_bytes: report.total_network_bytes(),
                    messages: report.total_messages(),
                    exec_seconds: report.total_seconds(),
                    iterations: report.num_iterations(),
                    compute_dist: report.compute_time_distribution(),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Online query suite (Table 4, 5; Fig. 5, 6, 7, 12, 14, 15)
// ---------------------------------------------------------------------------

/// One online-query measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm (edge-cut only; §5.2.2).
    pub algorithm: Algorithm,
    /// Query class.
    pub workload: WorkloadKind,
    /// Number of machines.
    pub k: usize,
    /// Clients per machine in this run.
    pub clients_per_machine: usize,
    /// Store-level edge-cut ratio (Table 4's metric).
    pub edge_cut_ratio: f64,
    /// Aggregate throughput, queries/second (Fig. 6/12/14).
    pub throughput_qps: f64,
    /// Mean latency, ms (Table 5).
    pub mean_latency_ms: f64,
    /// 99th-percentile latency, ms (Table 5).
    pub p99_latency_ms: f64,
    /// Total network bytes of one pass over the bindings (Fig. 5).
    pub network_bytes: u64,
    /// Per-machine vertex reads during the simulation (Fig. 7/15).
    pub reads_per_machine: Vec<u64>,
    /// Five-number summary of `reads_per_machine` (Fig. 7/15's lines).
    pub reads_dist: [f64; 5],
    /// Relative std-dev of the read distribution (Fig. 8's metric).
    pub load_rsd: f64,
}

/// Parameters of an online run.
#[derive(Debug, Clone, Copy)]
pub struct OnlineRunConfig {
    /// Query bindings generated (the paper uses 1000).
    pub bindings: usize,
    /// Start-vertex skew.
    pub skew: Skew,
    /// Queries per client in the simulation.
    pub queries_per_client: usize,
    /// Clients per machine.
    pub clients_per_machine: usize,
    /// Binding-generation seed.
    pub seed: u64,
}

impl OnlineRunConfig {
    /// Paper-like defaults at the given load level.
    pub fn for_load(level: LoadLevel) -> Self {
        OnlineRunConfig {
            bindings: 1000,
            skew: Skew::Zipf { theta: 0.6 },
            queries_per_client: 40,
            clients_per_machine: level.clients_per_machine(),
            seed: 0x0_1A7,
        }
    }
}

/// Builds the store for an online experiment (edge-cut algorithms only).
pub fn build_store(g: &Graph, alg: Algorithm, k: usize) -> PartitionedStore {
    let cfg = PartitionerConfig::new(k);
    let p = partition(g, alg, &cfg, default_order());
    PartitionedStore::new(g.clone(), &p)
}

/// Runs one online measurement.
pub fn online_run(
    dataset_name: &str,
    g: &Graph,
    alg: Algorithm,
    kind: WorkloadKind,
    k: usize,
    run_cfg: &OnlineRunConfig,
) -> OnlineRow {
    let store = build_store(g, alg, k);
    online_run_on_store(dataset_name, &store, alg, kind, run_cfg)
}

/// Runs one online measurement against a pre-built store (used by the
/// workload-aware experiment to install custom ownership maps).
pub fn online_run_on_store(
    dataset_name: &str,
    store: &PartitionedStore,
    alg: Algorithm,
    kind: WorkloadKind,
    run_cfg: &OnlineRunConfig,
) -> OnlineRow {
    let workload =
        Workload::generate(store.graph(), kind, run_cfg.bindings, run_cfg.skew, run_cfg.seed);
    let traces = run_workload(store, &workload, None);
    let network_bytes: u64 = traces.iter().map(|t| t.network_bytes()).sum();
    let sim = ClusterSim::from_traces(store.machines(), traces);
    let sim_cfg = SimConfig {
        clients_per_machine: run_cfg.clients_per_machine,
        queries_per_client: run_cfg.queries_per_client,
        ..Default::default()
    };
    let r = sim.run(&sim_cfg);
    let mut sorted: Vec<f64> = r.reads_per_machine.iter().map(|&x| x as f64).collect();
    // sgp-lint: allow(no-panic-in-lib): operands are u64 counts cast to f64 on the line above, so partial_cmp is total here
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    OnlineRow {
        dataset: dataset_name.to_string(),
        algorithm: alg,
        workload: kind,
        k: store.machines(),
        clients_per_machine: run_cfg.clients_per_machine,
        edge_cut_ratio: store.edge_cut_ratio(),
        throughput_qps: r.throughput_qps,
        mean_latency_ms: r.mean_latency_ms,
        p99_latency_ms: r.p99_latency_ms,
        network_bytes,
        reads_dist: five_number_summary(&sorted),
        load_rsd: r.load_rsd,
        reads_per_machine: r.reads_per_machine,
    }
}

// ---------------------------------------------------------------------------
// Workload-aware repartitioning (Fig. 8)
// ---------------------------------------------------------------------------

/// Result of the Fig. 8 experiment: the named configuration, its
/// throughput and its load RSD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadAwareRow {
    /// Configuration label (`ECR`, `LDG`, `FNL`, `MTS`, `MTS (W)`).
    pub label: String,
    /// Aggregate throughput, queries/second.
    pub throughput_qps: f64,
    /// Relative std-dev of per-machine reads.
    pub load_rsd: f64,
}

/// Reproduces Fig. 8: runs the 1-hop workload over the online suite plus
/// a weighted MTS partitioning computed from recorded access counts.
pub fn workload_aware_suite(
    g: &Graph,
    k: usize,
    run_cfg: &OnlineRunConfig,
) -> Vec<WorkloadAwareRow> {
    let mut rows = Vec::new();
    for &alg in Algorithm::online_suite() {
        let row = online_run("workload-aware", g, alg, WorkloadKind::OneHop, k, run_cfg);
        rows.push(WorkloadAwareRow {
            label: alg.short_name().to_string(),
            throughput_qps: row.throughput_qps,
            load_rsd: row.load_rsd,
        });
    }
    // Record accesses under the baseline (MTS) partitioning, then
    // repartition the weighted graph with the same multilevel code.
    let baseline = build_store(g, Algorithm::Metis, k);
    let workload =
        Workload::generate(g, WorkloadKind::OneHop, run_cfg.bindings, run_cfg.skew, run_cfg.seed);
    let recorder = sgp_db::AccessRecorder::new(g.num_vertices());
    run_workload(&baseline, &workload, Some(&recorder));
    let weights = recorder.vertex_weights();
    let owner = MultilevelPartitioner::default().partition_weighted(g, k, Some(&weights));
    let weighted_store = PartitionedStore::from_owner(g.clone(), k, owner);
    let row = online_run_on_store(
        "workload-aware",
        &weighted_store,
        Algorithm::Metis,
        WorkloadKind::OneHop,
        run_cfg,
    );
    rows.push(WorkloadAwareRow {
        label: "MTS (W)".to_string(),
        throughput_qps: row.throughput_qps,
        load_rsd: row.load_rsd,
    });
    // Extension beyond the paper: the *streaming* workload-aware variant
    // (attribute-balanced LDG, Appendix A) fed with the same recorded
    // access counts — no offline repartitioning required.
    let cfg = PartitionerConfig::new(k);
    let mut aldg = sgp_partition::attribute::AttributeLdg::new(&cfg, weights);
    let p = sgp_partition::edge_cut::run_vertex_stream(g, &mut aldg, k, default_order());
    let streaming_store = PartitionedStore::new(g.clone(), &p);
    let row = online_run_on_store(
        "workload-aware",
        &streaming_store,
        Algorithm::Ldg,
        WorkloadKind::OneHop,
        run_cfg,
    );
    rows.push(WorkloadAwareRow {
        label: "aLDG (W)".to_string(),
        throughput_qps: row.throughput_qps,
        load_rsd: row.load_rsd,
    });
    rows
}

// ---------------------------------------------------------------------------
// Fig. 1 / Fig. 5 scatter series
// ---------------------------------------------------------------------------

/// One (cut-size, network I/O) scatter point, grouped by cut model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Cut-model label ("Edge-cut", "Vertex-cut", "Hybrid-cut").
    pub series: String,
    /// Algorithm behind the point.
    pub algorithm: Algorithm,
    /// Number of machines.
    pub k: usize,
    /// X value: replication factor (Fig. 1) or edge-cut ratio (Fig. 5).
    pub x: f64,
    /// Y value: total network bytes.
    pub y_bytes: u64,
}

/// Fig. 1 data: RF vs total network I/O per workload per cut model.
pub fn fig1_scatter(
    g: &Graph,
    workload: OfflineWorkload,
    ks: &[usize],
    algorithms: &[Algorithm],
) -> Vec<ScatterPoint> {
    let opts = EngineOptions::default();
    let mut points = Vec::new();
    for &k in ks {
        let cfg = PartitionerConfig::new(k);
        for &alg in algorithms {
            let p = partition(g, alg, &cfg, default_order());
            let placement = Placement::build(g, &p);
            let report = run_offline_workload(g, &placement, workload, &opts);
            points.push(ScatterPoint {
                series: alg.info().model.to_string(),
                algorithm: alg,
                k,
                x: report.replication_factor,
                y_bytes: report.total_network_bytes(),
            });
        }
    }
    points
}

/// Least-squares slope through the origin for a scatter series — used to
/// compare the per-cut-model slopes of Fig. 1.
pub fn series_slope(points: &[ScatterPoint]) -> f64 {
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for p in points {
        // Slope vs mirrors (x − 1): a placement with RF = 1 moves nothing.
        let x = (p.x - 1.0).max(0.0);
        num += x * p.y_bytes as f64;
        den += x * x;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

// ---------------------------------------------------------------------------
// Robustness suite (fault injection; beyond the paper — DESIGN.md §7)
// ---------------------------------------------------------------------------

/// Parameters of a robustness (fault-injection) experiment: one shared
/// [`FaultPlan`] applied to every algorithm under test, so availability
/// differences are attributable to the cut model alone.
#[derive(Debug, Clone)]
pub struct RobustnessConfig {
    /// Query bindings generated for the 1-hop workload.
    pub bindings: usize,
    /// Start-vertex skew of the workload.
    pub skew: Skew,
    /// Binding-generation seed.
    pub workload_seed: u64,
    /// DES base parameters plus the retry/backoff policy.
    pub sim: FaultSimConfig,
    /// Seed of the fault plan (drives message-loss and failover draws).
    pub plan_seed: u64,
    /// Simulated time at which the victim machine (index `k − 1`)
    /// crashes permanently. Skipped for single-machine clusters.
    pub crash_at_ns: u64,
    /// Whole-run straggler slowdown on machine 0; values ≤ 1 disable it.
    pub straggler_factor: f64,
    /// Per-message drop probability on cross-machine traffic.
    pub message_loss: f64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            bindings: 400,
            skew: Skew::Zipf { theta: 0.6 },
            workload_seed: 0x0_1A7,
            sim: FaultSimConfig::default(),
            plan_seed: 0xFA_17,
            crash_at_ns: 2_000_000,
            straggler_factor: 2.0,
            message_loss: 0.002,
        }
    }
}

impl RobustnessConfig {
    /// Builds the fault plan shared by every algorithm in the suite: a
    /// permanent crash of machine `k − 1`, a whole-run straggler on
    /// machine 0, and uniform message loss.
    pub fn build_plan(&self, k: usize) -> FaultPlan {
        let mut plan = FaultPlan::healthy(k, self.plan_seed).with_message_loss(self.message_loss);
        if k > 1 {
            plan = plan.with_crash(k as u32 - 1, self.crash_at_ns);
        }
        if self.straggler_factor > 1.0 {
            plan = plan.with_straggler(0, 0, u64::MAX, self.straggler_factor);
        }
        plan
    }
}

/// One online (DES) robustness measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm whose placement defines masters and mirrors.
    pub algorithm: Algorithm,
    /// Cut-model label (mirrors exist only for vertex/hybrid cuts).
    pub cut_model: String,
    /// Number of machines.
    pub k: usize,
    /// Fraction of post-warm-up queries that completed successfully.
    pub availability: f64,
    /// Successful queries per second.
    pub goodput_qps: f64,
    /// Offered load: all completions (success + failure) per second.
    pub offered_qps: f64,
    /// Sub-request re-sends over the whole run.
    pub retries: u64,
    /// Cross-machine messages dropped by the plan.
    pub dropped_messages: u64,
    /// Sub-requests redirected to a live mirror.
    pub failovers: u64,
    /// Failed post-warm-up queries.
    pub failed: usize,
    /// Median latency of successful queries, ms.
    pub p50_latency_ms: f64,
    /// 99th-percentile latency of successful queries, ms.
    pub p99_latency_ms: f64,
}

/// Runs the online robustness suite: every algorithm's placement is
/// subjected to the *same* fault plan, and availability/goodput are
/// measured by the fault-injected DES. Edge-cut placements have no
/// mirrors, so a crashed master is simply unavailable; vertex-cut and
/// hybrid-cut placements fail reads over to live mirrors.
pub fn robustness_suite(
    dataset_name: &str,
    g: &Graph,
    algorithms: &[Algorithm],
    k: usize,
    cfg: &RobustnessConfig,
) -> Result<Vec<RobustnessRow>, SimError> {
    let plan = cfg.build_plan(k);
    let pcfg = PartitionerConfig::new(k);
    let mut rows = Vec::with_capacity(algorithms.len());
    for &alg in algorithms {
        let p = partition(g, alg, &pcfg, default_order());
        let store = PartitionedStore::from_owner(g.clone(), k, p.masters(g));
        let mirrors = MirrorDirectory::for_model(g, &p);
        let workload =
            Workload::generate(g, WorkloadKind::OneHop, cfg.bindings, cfg.skew, cfg.workload_seed);
        let sim = ClusterSim::prepare(&store, &workload);
        let r = sim.run_faulted(&cfg.sim, &plan, &mirrors)?;
        rows.push(RobustnessRow {
            dataset: dataset_name.to_string(),
            algorithm: alg,
            cut_model: alg.info().model.to_string(),
            k,
            availability: r.availability,
            goodput_qps: r.goodput_qps,
            offered_qps: r.offered_qps,
            retries: r.retries,
            dropped_messages: r.dropped_messages,
            failovers: r.failovers,
            failed: r.failed,
            p50_latency_ms: r.p50_latency_ms,
            p99_latency_ms: r.p99_latency_ms,
        });
    }
    Ok(rows)
}

/// One engine (offline analytics) robustness measurement: the same
/// PageRank run healthy and under the fault plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineRobustnessRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm behind the placement.
    pub algorithm: Algorithm,
    /// Cut-model label.
    pub cut_model: String,
    /// Number of machines.
    pub k: usize,
    /// Simulated healthy execution time, seconds.
    pub healthy_seconds: f64,
    /// Simulated execution time under the fault plan, seconds.
    pub faulted_seconds: f64,
    /// Master vertices restored from a live mirror after the crash.
    pub recovered_vertices: usize,
    /// Master vertices recomputed from scratch (no mirror).
    pub recomputed_vertices: usize,
    /// Bytes shipped to restore mirrored state.
    pub recovery_bytes: u64,
    /// Extra seconds attributable to straggler slowdowns.
    pub straggler_extra_seconds: f64,
}

/// Runs the engine robustness suite: PageRank over each algorithm's
/// placement, healthy and fault-inflated, under one shared plan. The
/// computed ranks are identical in both runs (pause-and-recover model);
/// only the cost accounting differs.
pub fn engine_robustness_suite(
    dataset_name: &str,
    g: &Graph,
    algorithms: &[Algorithm],
    k: usize,
    cfg: &RobustnessConfig,
) -> Vec<EngineRobustnessRow> {
    let opts = EngineOptions::default();
    let plan = cfg.build_plan(k);
    let pcfg = PartitionerConfig::new(k);
    let mut rows = Vec::with_capacity(algorithms.len());
    for &alg in algorithms {
        let p = partition(g, alg, &pcfg, default_order());
        let placement = Placement::build(g, &p);
        let prog = PageRank::new(20);
        let healthy = run_program(g, &placement, &prog, &opts).1;
        let faulted = run_program_with_faults(g, &placement, &prog, &opts, &plan).1;
        let summary = faulted.fault.clone().unwrap_or_default();
        rows.push(EngineRobustnessRow {
            dataset: dataset_name.to_string(),
            algorithm: alg,
            cut_model: alg.info().model.to_string(),
            k,
            healthy_seconds: healthy.total_seconds(),
            faulted_seconds: faulted.total_seconds(),
            recovered_vertices: summary.recovered_vertices,
            recomputed_vertices: summary.recomputed_vertices,
            recovery_bytes: summary.recovery_bytes,
            straggler_extra_seconds: summary.straggler_extra_ns / 1e9,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Elasticity suite (membership changes + bounded migration; DESIGN.md §11)
// ---------------------------------------------------------------------------

/// Parameters of an elasticity experiment: one crash-rejoin membership
/// disruption of the last machine, with the rejoin's state restore
/// priced by [`plan_rebalance`] over the algorithm's own placement and
/// charged to the DES, so RTO / data-moved / shed-query differences are
/// attributable to the cut model alone.
#[derive(Debug, Clone)]
pub struct ElasticityConfig {
    /// Query bindings generated for the 1-hop workload.
    pub bindings: usize,
    /// Start-vertex skew of the workload.
    pub skew: Skew,
    /// Binding-generation seed.
    pub workload_seed: u64,
    /// DES base parameters, retry policy, and degraded-mode knobs.
    pub sim: FaultSimConfig,
    /// Seed of the fault plan (drives message-loss and failover draws).
    pub plan_seed: u64,
    /// Simulated time at which machine `k − 1` drops out of the
    /// cluster. Skipped for single-machine clusters.
    pub disrupt_at_ns: u64,
    /// Downtime before the machine rejoins, stale.
    pub rejoin_after_ns: u64,
    /// Bounds on the rebalance that restores the rejoined machine.
    pub migration: MigrationConfig,
}

impl Default for ElasticityConfig {
    fn default() -> Self {
        ElasticityConfig {
            bindings: 400,
            skew: Skew::Zipf { theta: 0.6 },
            workload_seed: 0x0_1A7,
            sim: FaultSimConfig {
                degraded: DegradedConfig { shed_queue_depth: 4, migration_ns_per_record: 2_000 },
                ..FaultSimConfig::default()
            },
            plan_seed: 0xE1A_57,
            disrupt_at_ns: 2_000_000,
            rejoin_after_ns: 10_000_000,
            migration: MigrationConfig::default(),
        }
    }
}

/// One elasticity measurement: availability and tail latency while the
/// cluster rides out a membership change, plus the recovery accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticityRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm whose placement defines masters, mirrors, and the
    /// migration cost.
    pub algorithm: Algorithm,
    /// Cut-model label.
    pub cut_model: String,
    /// Number of machines.
    pub k: usize,
    /// Fraction of post-warm-up queries that completed successfully.
    pub availability: f64,
    /// 99th-percentile latency of successful queries, ms.
    pub p99_latency_ms: f64,
    /// Recovery time objective: disruption to full service, ms.
    pub rto_ms: f64,
    /// Migration records shipped to restore the rejoined machine.
    pub data_moved: u64,
    /// Vertices the rebalance plan relocates.
    pub vertices_moved: usize,
    /// Whether the bounded rebalance fully restored balance.
    pub balance_restored: bool,
    /// Shares fast-rejected by admission control while degraded.
    pub shed_queries: u64,
    /// Sub-requests redirected to a live mirror.
    pub failovers: u64,
}

/// Runs the elasticity suite: every algorithm's placement rides the
/// *same* crash-rejoin disruption of machine `k − 1`; the state restore
/// is priced by the bounded-movement rebalance over that placement and
/// charged to the DES cost model, degrading the cluster while the
/// transfer drains (DESIGN.md §11).
pub fn elastic_suite(
    dataset_name: &str,
    g: &Graph,
    algorithms: &[Algorithm],
    k: usize,
    cfg: &ElasticityConfig,
) -> Result<Vec<ElasticityRow>, SimError> {
    let pcfg = PartitionerConfig::new(k);
    let mut rows = Vec::with_capacity(algorithms.len());
    for &alg in algorithms {
        let p = partition(g, alg, &pcfg, default_order());
        let owner = p.masters(g);
        let store = PartitionedStore::from_owner(g.clone(), k, owner.clone());
        let mirrors = MirrorDirectory::for_model(g, &p);
        let workload =
            Workload::generate(g, WorkloadKind::OneHop, cfg.bindings, cfg.skew, cfg.workload_seed);
        let sim = ClusterSim::prepare(&store, &workload);
        let mut plan = FaultPlan::healthy(k, cfg.plan_seed);
        let mut elastic = ElasticPlan::default();
        let mut vertices_moved = 0;
        let mut balance_restored = true;
        if k > 1 {
            let victim = k - 1;
            let live: Vec<bool> = (0..k).map(|m| m != victim).collect();
            let mplan = plan_rebalance(g, &owner, &live, &cfg.migration);
            vertices_moved = mplan.moves.len();
            balance_restored = mplan.balance_restored;
            plan = plan.with_crash_rejoin(victim as u32, cfg.disrupt_at_ns, cfg.rejoin_after_ns);
            // Restoring the rejoined machine ships the same records its
            // evacuation would have: the data it masters.
            elastic.records_per_event.push(mplan.data_moved);
        }
        let r = sim.run_elastic(&cfg.sim, &plan, &mirrors, &elastic)?;
        rows.push(ElasticityRow {
            dataset: dataset_name.to_string(),
            algorithm: alg,
            cut_model: alg.info().model.to_string(),
            k,
            availability: r.availability,
            p99_latency_ms: r.p99_latency_ms,
            rto_ms: r.rto_ms,
            data_moved: r.data_moved,
            vertices_moved,
            balance_restored,
            shed_queries: r.shed_queries,
            failovers: r.failovers,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Churn suite (dynamic graphs: quality vs movement; DESIGN.md §12)
// ---------------------------------------------------------------------------

/// A maintenance strategy under edge churn: how the cluster reacts when
/// a repartitioning trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnMethod {
    /// Full repartition with two-phase streaming (2PS) on every trigger.
    TwoPhase,
    /// Full repartition with LDG behind a `W`-element look-ahead window.
    Windowed,
    /// Bounded-movement repair: restream LDG over the current owner map
    /// via [`plan_rebalance`] with the `Restream` strategy.
    Restream,
}

impl ChurnMethod {
    /// The three methods in report order.
    pub fn all() -> &'static [ChurnMethod] {
        &[ChurnMethod::TwoPhase, ChurnMethod::Windowed, ChurnMethod::Restream]
    }

    /// Label rendered into the churn report.
    pub fn name(&self) -> &'static str {
        match self {
            ChurnMethod::TwoPhase => "2PS",
            ChurnMethod::Windowed => "W-LDG",
            ChurnMethod::Restream => "reLDG",
        }
    }

    fn algorithm(&self) -> Algorithm {
        match self {
            ChurnMethod::TwoPhase => Algorithm::TwoPhaseHdrf,
            ChurnMethod::Windowed | ChurnMethod::Restream => Algorithm::Ldg,
        }
    }

    fn partitioner_config(&self, cfg: &ChurnSuiteConfig) -> PartitionerConfig {
        let pcfg = PartitionerConfig::new(cfg.k);
        match self {
            ChurnMethod::Windowed => pcfg.with_window(cfg.window),
            _ => pcfg,
        }
    }
}

impl std::fmt::Display for ChurnMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.name())
    }
}

/// Parameters of a churn experiment: the edge-churn workload plus the
/// repartitioning triggers and the per-method knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChurnSuiteConfig {
    /// Number of partitions.
    pub k: usize,
    /// Seeded insert/delete stream applied to the dataset graph.
    pub churn: ChurnConfig,
    /// Repartition when max/avg per-partition *edge* load exceeds this.
    pub imbalance_trigger: f64,
    /// Repartition when the cut ratio exceeds this multiple of the cut
    /// ratio measured right after the previous repartition.
    pub cut_degradation_trigger: f64,
    /// Look-ahead window `W` of the windowed method.
    pub window: usize,
    /// Per-trigger movement budget of the restream method.
    pub restream_budget: usize,
    /// Restream rounds attempted per trigger.
    pub restream_rounds: usize,
}

impl Default for ChurnSuiteConfig {
    fn default() -> Self {
        ChurnSuiteConfig {
            k: 4,
            churn: ChurnConfig {
                batches: 8,
                inserts_per_batch: 64,
                deletes_per_batch: 48,
                seed: 0xC0_2019,
            },
            imbalance_trigger: 1.25,
            cut_degradation_trigger: 1.05,
            window: 8,
            restream_budget: 256,
            restream_rounds: 2,
        }
    }
}

/// One churn measurement: how one maintenance method traded movement for
/// quality over the whole churn stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnRow {
    /// Dataset name.
    pub dataset: String,
    /// Maintenance method.
    pub method: ChurnMethod,
    /// Number of partitions.
    pub k: usize,
    /// Churn batches applied.
    pub batches: usize,
    /// Times a trigger fired and the method repartitioned/repaired.
    pub repartitions: usize,
    /// Vertices whose owner changed across all repartitions.
    pub vertices_moved: u64,
    /// Structural quality of the final owner map on the final graph
    /// (edge-cut view, so the three methods are directly comparable).
    pub final_quality: QualityReport,
    /// Cut ratio of the final owner map on the final graph.
    pub final_cut_ratio: f64,
}

/// Cut ratio of `owner` over `g` (0 when the graph has no edges).
fn churn_cut_ratio(g: &Graph, owner: &[PartitionId]) -> f64 {
    if g.num_edges() == 0 {
        0.0
    } else {
        cut_edges(g, owner) as f64 / g.num_edges() as f64
    }
}

/// Max/avg per-partition edge load, charging each edge to its source's
/// partition (the edge-cut store's placement rule). Insertions and
/// deletions shift this without any owner changing, so it is the
/// imbalance signal that actually moves under churn.
fn churn_edge_imbalance(g: &Graph, owner: &[PartitionId], k: usize) -> f64 {
    let mut loads = vec![0u64; k];
    for e in g.edges() {
        loads[owner[e.src as usize] as usize] += 1;
    }
    let max = loads.iter().copied().max().unwrap_or(0);
    if g.num_edges() == 0 {
        1.0
    } else {
        max as f64 * k as f64 / g.num_edges() as f64
    }
}

/// Runs the churn suite: each method starts from its own initial
/// partition of `g`, then rides the same seeded insert/delete stream;
/// whenever the edge-imbalance or cut-degradation trigger fires, the
/// method repartitions (2PS, windowed LDG) or repairs under a movement
/// budget (restreamed LDG), and the suite accounts every owner change.
/// Pure function of its inputs — same seeds, same rows, bit for bit.
pub fn churn_suite(
    dataset_name: &str,
    g: &Graph,
    methods: &[ChurnMethod],
    cfg: &ChurnSuiteConfig,
) -> Vec<ChurnRow> {
    churn_suite_traced(dataset_name, g, methods, cfg, &mut NullSink)
}

/// [`churn_suite`] with trace instrumentation: per method (counter key =
/// method index) it emits the batches applied, the repartitions
/// triggered, and the vertices moved.
pub fn churn_suite_traced<S: TraceSink>(
    dataset_name: &str,
    g: &Graph,
    methods: &[ChurnMethod],
    cfg: &ChurnSuiteConfig,
    sink: &mut S,
) -> Vec<ChurnRow> {
    let mut rows = Vec::with_capacity(methods.len());
    for (mi, &method) in methods.iter().enumerate() {
        let pcfg = method.partitioner_config(cfg);
        let alg = method.algorithm();
        let mut owner = partition(g, alg, &pcfg, default_order()).masters(g);
        let mut cur = g.clone();
        let mut baseline_cut = churn_cut_ratio(&cur, &owner);
        let mut repartitions = 0usize;
        let mut moved = 0u64;
        let mut batches = 0usize;
        let mut stream = ChurnStream::new(g, cfg.churn);
        while let Some(batch) = stream.next_batch() {
            cur = batch.graph;
            batches += 1;
            let imbalance = churn_edge_imbalance(&cur, &owner, cfg.k);
            let cut = churn_cut_ratio(&cur, &owner);
            if imbalance <= cfg.imbalance_trigger
                && cut <= baseline_cut * cfg.cut_degradation_trigger
            {
                continue;
            }
            repartitions += 1;
            match method {
                ChurnMethod::TwoPhase | ChurnMethod::Windowed => {
                    let next = partition(&cur, alg, &pcfg, default_order()).masters(&cur);
                    moved += owner.iter().zip(&next).filter(|(a, b)| a != b).count() as u64;
                    owner = next;
                }
                ChurnMethod::Restream => {
                    let live = vec![true; cfg.k];
                    let mcfg = MigrationConfig {
                        budget: cfg.restream_budget,
                        strategy: MigrationStrategy::Restream {
                            algorithm: alg,
                            order: default_order(),
                            rounds: cfg.restream_rounds,
                        },
                        ..MigrationConfig::default()
                    };
                    let plan = plan_rebalance(&cur, &owner, &live, &mcfg);
                    moved += plan.moves.len() as u64;
                    owner = plan.apply(&owner);
                }
            }
            baseline_cut = churn_cut_ratio(&cur, &owner);
        }
        sink.counter_add(keys::PARTITION_CHURN_BATCHES, mi as u64, batches as u64);
        sink.counter_add(keys::PARTITION_CHURN_REPARTITIONS, mi as u64, repartitions as u64);
        sink.counter_add(keys::PARTITION_CHURN_MOVED, mi as u64, moved);
        let final_cut_ratio = churn_cut_ratio(&cur, &owner);
        let final_quality =
            QualityReport::measure(&cur, &Partitioning::from_vertex_owners(&cur, cfg.k, owner));
        rows.push(ChurnRow {
            dataset: dataset_name.to_string(),
            method,
            k: cfg.k,
            batches,
            repartitions,
            vertices_moved: moved,
            final_quality,
            final_cut_ratio,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, Scale};

    fn tiny_graph(d: Dataset) -> Graph {
        d.generate(Scale::Tiny)
    }

    #[test]
    fn quality_suite_produces_full_grid() {
        let g = tiny_graph(Dataset::LdbcSnb);
        let rows = quality_suite("test", &g, &[Algorithm::EcrHash, Algorithm::Ldg], &[2, 4]);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.quality.replication_factor >= 1.0));
        assert!(rows.iter().all(|r| r.partition_seconds >= 0.0));
    }

    #[test]
    fn loaders_suite_grid_and_baseline_rows() {
        let g = tiny_graph(Dataset::Twitter);
        let rows = loaders_suite(
            "twitter",
            &g,
            &[Algorithm::Ldg, Algorithm::Hdrf],
            4,
            &[("random", StreamOrder::Random { seed: 3 })],
            &[1, 4],
            &[16, 256],
        );
        // L=1 collapses to one interval: 2 algs × (1 + 2) cells.
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.quality.replication_factor >= 1.0));
        // The L=1 baseline must equal the sequential registry result.
        let cfg = PartitionerConfig::new(4);
        let seq = partition(&g, Algorithm::Ldg, &cfg, StreamOrder::Random { seed: 3 });
        let seq_quality = QualityReport::measure(&g, &seq);
        let base = rows
            .iter()
            .find(|r| r.algorithm == Algorithm::Ldg && r.loaders == 1)
            .expect("baseline row");
        assert_eq!(base.quality.replication_factor, seq_quality.replication_factor);
        assert_eq!(base.quality.edge_cut_ratio, seq_quality.edge_cut_ratio);
    }

    #[test]
    fn offline_suite_rows_are_consistent() {
        let g = tiny_graph(Dataset::Twitter);
        let rows = offline_suite(
            "twitter",
            &g,
            &[Algorithm::EcrHash, Algorithm::Hdrf],
            &[OfflineWorkload::PageRank],
            &[4],
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.iterations, 20, "{:?}", r.algorithm);
            assert!(r.exec_seconds > 0.0);
            assert!(r.compute_dist[0] <= r.compute_dist[4]);
        }
    }

    #[test]
    fn sssp_row_has_fewer_messages_than_pagerank() {
        // Fig. 1: PageRank is the communication-heaviest workload.
        let g = tiny_graph(Dataset::Twitter);
        let rows = offline_suite(
            "twitter",
            &g,
            &[Algorithm::Hdrf],
            &[OfflineWorkload::PageRank, OfflineWorkload::Sssp],
            &[4],
        );
        let pr = &rows[0];
        let sssp = &rows[1];
        assert!(pr.network_bytes > sssp.network_bytes);
    }

    #[test]
    fn online_run_produces_sane_row() {
        let g = tiny_graph(Dataset::LdbcSnb);
        let cfg = OnlineRunConfig {
            bindings: 100,
            queries_per_client: 10,
            clients_per_machine: 4,
            ..OnlineRunConfig::for_load(LoadLevel::Medium)
        };
        let row = online_run("snb", &g, Algorithm::EcrHash, WorkloadKind::OneHop, 4, &cfg);
        assert!(row.throughput_qps > 0.0);
        assert!(row.p99_latency_ms >= row.mean_latency_ms * 0.5);
        assert_eq!(row.reads_per_machine.len(), 4);
        assert!(row.edge_cut_ratio > 0.5, "hash ECR should be ~1-1/k");
    }

    #[test]
    fn fig1_scatter_slopes_order_edge_cut_below_vertex_cut() {
        let g = tiny_graph(Dataset::Twitter);
        let points = fig1_scatter(
            &g,
            OfflineWorkload::PageRank,
            &[4, 8],
            &[Algorithm::EcrHash, Algorithm::Ldg, Algorithm::VcrHash, Algorithm::Hdrf],
        );
        let ec: Vec<ScatterPoint> =
            points.iter().filter(|p| p.series == "edge-cut").cloned().collect();
        let vc: Vec<ScatterPoint> =
            points.iter().filter(|p| p.series == "vertex-cut").cloned().collect();
        assert!(!ec.is_empty() && !vc.is_empty());
        assert!(
            series_slope(&ec) < series_slope(&vc),
            "edge-cut slope must undercut vertex-cut for PageRank (Fig. 1a)"
        );
    }

    #[test]
    fn robustness_replicating_cuts_beat_edge_cut_availability() {
        // Acceptance: under one shared crash plan, placements that give
        // the DES mirrors (vertex-cut, hybrid-cut) keep strictly more
        // queries alive than the mirror-less edge-cut placement.
        let g = tiny_graph(Dataset::LdbcSnb);
        let cfg = RobustnessConfig {
            bindings: 200,
            sim: FaultSimConfig {
                base: SimConfig {
                    clients_per_machine: 4,
                    queries_per_client: 12,
                    ..Default::default()
                },
                ..Default::default()
            },
            crash_at_ns: 0,
            straggler_factor: 1.0,
            message_loss: 0.0,
            ..Default::default()
        };
        let algs = [Algorithm::EcrHash, Algorithm::VcrHash, Algorithm::HybridRandom];
        let rows = robustness_suite("snb", &g, &algs, 4, &cfg).expect("valid plan");
        assert_eq!(rows.len(), 3);
        let avail = |a: Algorithm| {
            rows.iter().find(|r| r.algorithm == a).expect("row for algorithm").availability
        };
        assert!(avail(Algorithm::EcrHash) < 1.0, "edge-cut must lose queries to the dead master");
        assert!(
            avail(Algorithm::VcrHash) > avail(Algorithm::EcrHash),
            "vertex-cut mirrors must buy availability: {} vs {}",
            avail(Algorithm::VcrHash),
            avail(Algorithm::EcrHash)
        );
        assert!(
            avail(Algorithm::HybridRandom) > avail(Algorithm::EcrHash),
            "hybrid-cut mirrors must buy availability: {} vs {}",
            avail(Algorithm::HybridRandom),
            avail(Algorithm::EcrHash)
        );
        let ec = rows.iter().find(|r| r.algorithm == Algorithm::EcrHash).expect("edge-cut row");
        assert_eq!(ec.failovers, 0, "edge-cut has no mirrors to fail over to");
    }

    #[test]
    fn engine_robustness_reports_fault_inflation() {
        let g = tiny_graph(Dataset::Twitter);
        let cfg = RobustnessConfig { crash_at_ns: 0, straggler_factor: 3.0, ..Default::default() };
        let rows = engine_robustness_suite(
            "twitter",
            &g,
            &[Algorithm::EcrHash, Algorithm::VcrHash],
            4,
            &cfg,
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.faulted_seconds > r.healthy_seconds,
                "{:?}: faults must inflate runtime ({} vs {})",
                r.algorithm,
                r.faulted_seconds,
                r.healthy_seconds
            );
            assert!(r.straggler_extra_seconds > 0.0, "{:?}", r.algorithm);
        }
        let vc = rows.iter().find(|r| r.cut_model == "vertex-cut").expect("vertex-cut row");
        assert!(vc.recovered_vertices > 0, "vertex-cut masters recover from mirrors");
        assert!(vc.recovery_bytes > 0);
    }

    #[test]
    fn elastic_suite_reports_recovery_accounting() {
        let g = tiny_graph(Dataset::LdbcSnb);
        let cfg = ElasticityConfig {
            bindings: 200,
            sim: FaultSimConfig {
                base: SimConfig {
                    clients_per_machine: 4,
                    queries_per_client: 12,
                    ..Default::default()
                },
                ..ElasticityConfig::default().sim
            },
            ..Default::default()
        };
        let algs = [Algorithm::EcrHash, Algorithm::VcrHash, Algorithm::HybridRandom];
        let rows = elastic_suite("snb", &g, &algs, 4, &cfg).expect("valid plan");
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.data_moved > 0, "{:?}: the rejoin must ship state", r.algorithm);
            assert!(r.vertices_moved > 0, "{:?}: the rebalance must move vertices", r.algorithm);
            assert!(r.balance_restored, "{:?}: an unbounded budget restores balance", r.algorithm);
            // The RTO covers at least the 10 ms of downtime.
            assert!(r.rto_ms >= 10.0, "{:?}: rto {}", r.algorithm, r.rto_ms);
        }
        let again = elastic_suite("snb", &g, &algs, 4, &cfg).expect("valid plan");
        assert_eq!(
            format!("{rows:?}"),
            format!("{again:?}"),
            "same seed must reproduce the suite bit-for-bit"
        );
    }

    #[test]
    fn churn_suite_is_deterministic_and_accounts_movement() {
        let g = tiny_graph(Dataset::Twitter);
        let cfg = ChurnSuiteConfig::default();
        let rows = churn_suite("twitter", &g, ChurnMethod::all(), &cfg);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.batches, cfg.churn.batches, "{}", r.method);
            assert!((0.0..=1.0).contains(&r.final_cut_ratio), "{}", r.method);
            if r.repartitions == 0 {
                assert_eq!(r.vertices_moved, 0, "{}: no trigger, no movement", r.method);
            }
        }
        // The bounded-repair method can never move more than its budget
        // allows per trigger.
        let re = rows.iter().find(|r| r.method == ChurnMethod::Restream).expect("reLDG row");
        assert!(
            re.vertices_moved <= re.repartitions as u64 * cfg.restream_budget as u64,
            "movement {} exceeds budget × triggers",
            re.vertices_moved
        );
        let again = churn_suite("twitter", &g, ChurnMethod::all(), &cfg);
        assert_eq!(
            format!("{rows:?}"),
            format!("{again:?}"),
            "same seed must reproduce the suite bit-for-bit"
        );
    }

    #[test]
    fn churn_suite_traced_counters_match_rows() {
        let g = tiny_graph(Dataset::LdbcSnb);
        let cfg = ChurnSuiteConfig::default();
        let mut sink = sgp_trace::CollectingSink::new();
        let rows = churn_suite_traced("snb", &g, ChurnMethod::all(), &cfg, &mut sink);
        assert_eq!(
            sink.counter_total(keys::PARTITION_CHURN_BATCHES),
            rows.iter().map(|r| r.batches as u64).sum::<u64>()
        );
        assert_eq!(
            sink.counter_total(keys::PARTITION_CHURN_REPARTITIONS),
            rows.iter().map(|r| r.repartitions as u64).sum::<u64>()
        );
        assert_eq!(
            sink.counter_total(keys::PARTITION_CHURN_MOVED),
            rows.iter().map(|r| r.vertices_moved).sum::<u64>()
        );
    }

    #[test]
    fn workload_aware_weighted_partition_balances_load() {
        let g = tiny_graph(Dataset::LdbcSnb);
        let cfg = OnlineRunConfig {
            bindings: 200,
            queries_per_client: 8,
            clients_per_machine: 4,
            skew: Skew::Zipf { theta: 1.1 },
            ..OnlineRunConfig::for_load(LoadLevel::Medium)
        };
        let rows = workload_aware_suite(&g, 4, &cfg);
        assert_eq!(rows.len(), 6);
        let mts = rows.iter().find(|r| r.label == "MTS").expect("MTS row");
        let weighted = rows.iter().find(|r| r.label == "MTS (W)").expect("weighted row");
        assert!(
            weighted.load_rsd <= mts.load_rsd + 0.05,
            "weighted partitioning should balance load: {} vs {}",
            weighted.load_rsd,
            mts.load_rsd
        );
    }
}
