//! Scale-out factor advisor — the paper's §7 future-work direction:
//! "Another direction is to study the appropriate scale-out factor given
//! a particular graph and workload characteristics. […] some of the
//! algorithms are sensitive to the communication-to-computation ratio."
//!
//! The advisor runs the requested workload on the simulated engine over
//! a sweep of cluster sizes (using the decision tree's recommended
//! partitioner for the graph) and reports, per k, the simulated
//! execution time and the communication-to-computation ratio, picking
//! the smallest k within a tolerance of the best time — "scaling out
//! further buys less than `tolerance` improvement".

use crate::decision::{recommend_for_graph, WorkloadClass};
use crate::runners::{default_order, run_offline_workload, OfflineWorkload};
use serde::{Deserialize, Serialize};
use sgp_engine::{EngineOptions, Placement};
use sgp_graph::Graph;
use sgp_partition::{partition, Algorithm, PartitionerConfig};

/// One sweep point of the advisor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleOutPoint {
    /// Cluster size.
    pub k: usize,
    /// Simulated execution time, seconds.
    pub exec_seconds: f64,
    /// Total network bytes.
    pub network_bytes: u64,
    /// Communication-to-computation ratio: simulated network nanoseconds
    /// over simulated compute nanoseconds, aggregated over the run.
    pub comm_to_comp: f64,
}

/// The advisor's result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleOutReport {
    /// The partitioner the sweep used (decision-tree pick).
    pub algorithm: Algorithm,
    /// The workload swept.
    pub workload: OfflineWorkload,
    /// One point per candidate k, in input order.
    pub points: Vec<ScaleOutPoint>,
    /// The recommended cluster size.
    pub recommended_k: usize,
}

/// Sweeps `candidates` and recommends a scale-out factor for running
/// `workload` on `g`.
///
/// `tolerance` is the relative execution-time improvement that justifies
/// doubling resources (default style: 0.1 = stop scaling when another
/// step buys less than 10%).
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn recommend_scale_out(
    g: &Graph,
    workload: OfflineWorkload,
    candidates: &[usize],
    tolerance: f64,
) -> ScaleOutReport {
    assert!(!candidates.is_empty(), "need at least one candidate cluster size");
    let algorithm = recommend_for_graph(g, WorkloadClass::OfflineAnalytics).algorithm;
    let opts = EngineOptions::default();
    let mut points = Vec::with_capacity(candidates.len());
    for &k in candidates {
        let cfg = PartitionerConfig::new(k);
        let p = partition(g, algorithm, &cfg, default_order());
        let placement = Placement::build(g, &p);
        let report = run_offline_workload(g, &placement, workload, &opts);
        let compute_ns: f64 = report.machine_compute_ns.iter().sum();
        let network_ns = report.total_network_bytes() as f64 / opts.cost.bytes_per_second * 1e9;
        points.push(ScaleOutPoint {
            k,
            exec_seconds: report.total_seconds(),
            network_bytes: report.total_network_bytes(),
            comm_to_comp: if compute_ns > 0.0 { network_ns / compute_ns } else { 0.0 },
        });
    }
    // Walk the sweep in increasing k: keep scaling while the next point
    // improves execution time by more than `tolerance`.
    let mut sorted: Vec<&ScaleOutPoint> = points.iter().collect();
    sorted.sort_by_key(|p| p.k);
    let mut best = sorted[0];
    for p in &sorted[1..] {
        if p.exec_seconds < best.exec_seconds * (1.0 - tolerance) {
            best = p;
        }
    }
    ScaleOutReport { algorithm, workload, recommended_k: best.k, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, Scale};

    #[test]
    fn advisor_returns_candidate_k() {
        let g = Dataset::Twitter.generate(Scale::Tiny);
        let report = recommend_scale_out(&g, OfflineWorkload::PageRank, &[2, 4, 8, 16], 0.1);
        assert!([2usize, 4, 8, 16].contains(&report.recommended_k));
        assert_eq!(report.points.len(), 4);
    }

    #[test]
    fn advisor_prefers_smaller_k_when_gains_vanish() {
        // With 100% tolerance nothing beats the smallest k.
        let g = Dataset::Twitter.generate(Scale::Tiny);
        let report = recommend_scale_out(&g, OfflineWorkload::PageRank, &[2, 8], 10.0);
        assert_eq!(report.recommended_k, 2);
    }

    #[test]
    fn comm_to_comp_rises_with_k() {
        // The paper's motivation: the communication-to-computation ratio
        // grows as partitions shrink.
        let g = Dataset::Twitter.generate(Scale::Tiny);
        let report = recommend_scale_out(&g, OfflineWorkload::PageRank, &[2, 16], 0.1);
        let at = |k: usize| {
            report.points.iter().find(|p| p.k == k).expect("candidate present").comm_to_comp
        };
        assert!(at(16) > at(2), "comm/comp must rise with k: {} vs {}", at(16), at(2));
    }

    #[test]
    fn advisor_uses_decision_tree_pick() {
        let g = Dataset::UsaRoad.generate(Scale::Tiny);
        let report = recommend_scale_out(&g, OfflineWorkload::Sssp, &[4], 0.1);
        assert_eq!(report.algorithm, Algorithm::Fennel, "road → FENNEL per Fig. 9");
    }

    #[test]
    #[should_panic(expected = "need at least one candidate")]
    fn empty_candidates_rejected() {
        let g = Dataset::Twitter.generate(Scale::Tiny);
        recommend_scale_out(&g, OfflineWorkload::Wcc, &[], 0.1);
    }
}
