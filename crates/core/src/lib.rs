//! # sgp-core
//!
//! The experiment framework of the SGP reproduction — the layer that
//! turns the substrate crates ([`sgp_graph`], [`sgp_partition`],
//! [`sgp_engine`], [`sgp_db`]) into the paper's tables and figures.
//!
//! * [`config`] — experiment scale knobs and the dataset registry
//!   (synthetic stand-ins for Twitter, UK2007-05, USA-Road, LDBC SNB).
//! * [`runners`] — suite runners producing typed result rows:
//!   partitioning quality (Fig. 2 / Table 4), offline analytics
//!   (Fig. 1/3/4/13), online queries (Table 5, Fig. 5/6/7/12/14/15),
//!   the workload-aware experiment (Fig. 8), and the fault-injection
//!   robustness suite (beyond the paper; DESIGN.md §7).
//! * [`decision`] — the paper's §6.4 decision tree as an executable
//!   artifact (Fig. 9).
//! * [`scaleout`] — the §7 future-work scale-out-factor advisor.
//! * [`trace_scenarios`] — the canonical traced workloads behind the
//!   `trace` experiment, the `--trace` flag, and the golden-snapshot
//!   tests (DESIGN.md §9).
//! * [`report`] — plain-text table rendering and JSON export.
//! * [`error`] — the shared [`SgpError`] type for fallible framework
//!   paths (config parsing, serialization, I/O).
//!
//! The six sub-crates are re-exported so downstream users can depend on
//! `sgp-core` alone.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod decision;
pub mod error;
pub mod report;
pub mod runners;
pub mod scaleout;
pub mod trace_scenarios;

pub use config::{Dataset, Scale};
pub use decision::{recommend, OnlineObjective, Recommendation, WorkloadClass};
pub use error::SgpError;
pub use scaleout::{recommend_scale_out, ScaleOutReport};

pub use sgp_db as db;
pub use sgp_engine as engine;
pub use sgp_fault as fault;
pub use sgp_graph as graph;
pub use sgp_partition as partition;
