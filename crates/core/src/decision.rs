//! The paper's decision tree (Fig. 9, §6.4) as an executable artifact.
//!
//! > "First, we recognize the limitations of the literature on online
//! > graph query workloads and recommend hash-based partitioning as a
//! > simple but effective solution, especially for latency critical
//! > applications. On the other hand, FENNEL can improve the aggregated
//! > throughput [...] for systems under medium load. For graph
//! > analytics, graph type and degree distribution play the most
//! > important role [...]. Edge-cut methods, FENNEL in particular, are
//! > effective for low-degree graphs like road networks. Hybrid model is
//! > most effective on heavy-tailed graphs [...]. For graphs with
//! > power-law degree distribution, we recommend HDRF."

use serde::{Deserialize, Serialize};
use sgp_graph::stats::GraphClass;
use sgp_graph::{Graph, GraphStats};
use sgp_partition::Algorithm;

/// The workload side of the tree's first split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Iterative offline analytics (PageRank, WCC, SSSP).
    OfflineAnalytics,
    /// Online graph queries (1-hop, 2-hop, shortest path).
    OnlineQueries,
}

/// For online queries: which objective dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnlineObjective {
    /// Tail latency is critical (user-facing SLOs).
    TailLatency,
    /// Aggregate throughput under medium load.
    Throughput,
}

/// A recommendation with the reasoning path taken through the tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The recommended algorithm.
    pub algorithm: Algorithm,
    /// Human-readable trace of the branches taken.
    pub reasoning: Vec<String>,
}

/// Walks Fig. 9 for an offline-analytics workload on a graph of the
/// given class, or an online workload with the given objective.
pub fn recommend(
    workload: WorkloadClass,
    graph_class: Option<GraphClass>,
    objective: Option<OnlineObjective>,
) -> Recommendation {
    let mut reasoning = Vec::new();
    match workload {
        WorkloadClass::OnlineQueries => {
            reasoning.push("workload = online queries".to_string());
            match objective.unwrap_or(OnlineObjective::TailLatency) {
                OnlineObjective::TailLatency => {
                    reasoning.push("tail latency critical → hash-based partitioning".to_string());
                    Recommendation { algorithm: Algorithm::EcrHash, reasoning }
                }
                OnlineObjective::Throughput => {
                    reasoning.push(
                        "optimize throughput under medium load → FENNEL (at the expense of tail latency)"
                            .to_string(),
                    );
                    Recommendation { algorithm: Algorithm::Fennel, reasoning }
                }
            }
        }
        WorkloadClass::OfflineAnalytics => {
            reasoning.push("workload = offline analytics".to_string());
            let class = graph_class.unwrap_or(GraphClass::HeavyTailed);
            match class {
                GraphClass::LowDegree => {
                    reasoning.push("low-degree graph (road network) → FENNEL".to_string());
                    Recommendation { algorithm: Algorithm::Fennel, reasoning }
                }
                GraphClass::PowerLaw => {
                    reasoning.push("power-law degree distribution → HDRF".to_string());
                    Recommendation { algorithm: Algorithm::Hdrf, reasoning }
                }
                GraphClass::HeavyTailed => {
                    reasoning.push(
                        "heavy-tailed graph (social network) → hybrid-cut (Ginger)".to_string(),
                    );
                    Recommendation { algorithm: Algorithm::Ginger, reasoning }
                }
            }
        }
    }
}

/// Convenience: classifies `g` and walks the analytics branch.
pub fn recommend_for_graph(g: &Graph, workload: WorkloadClass) -> Recommendation {
    let class = GraphStats::of(g).classify();
    recommend(workload, Some(class), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, Scale};

    #[test]
    fn online_latency_critical_says_hash() {
        let r = recommend(WorkloadClass::OnlineQueries, None, Some(OnlineObjective::TailLatency));
        assert_eq!(r.algorithm, Algorithm::EcrHash);
    }

    #[test]
    fn online_throughput_says_fennel() {
        let r = recommend(WorkloadClass::OnlineQueries, None, Some(OnlineObjective::Throughput));
        assert_eq!(r.algorithm, Algorithm::Fennel);
    }

    #[test]
    fn analytics_branches_match_fig9() {
        use sgp_graph::stats::GraphClass::*;
        assert_eq!(
            recommend(WorkloadClass::OfflineAnalytics, Some(LowDegree), None).algorithm,
            Algorithm::Fennel
        );
        assert_eq!(
            recommend(WorkloadClass::OfflineAnalytics, Some(PowerLaw), None).algorithm,
            Algorithm::Hdrf
        );
        assert_eq!(
            recommend(WorkloadClass::OfflineAnalytics, Some(HeavyTailed), None).algorithm,
            Algorithm::Ginger
        );
    }

    #[test]
    fn road_dataset_routes_to_fennel() {
        let g = Dataset::UsaRoad.generate(Scale::Tiny);
        let r = recommend_for_graph(&g, WorkloadClass::OfflineAnalytics);
        assert_eq!(r.algorithm, Algorithm::Fennel);
        assert!(r.reasoning.iter().any(|s| s.contains("low-degree")));
    }

    #[test]
    fn reasoning_is_nonempty() {
        let r = recommend(WorkloadClass::OnlineQueries, None, None);
        assert!(!r.reasoning.is_empty());
    }
}
