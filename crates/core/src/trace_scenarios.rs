//! Canonical traced scenarios (DESIGN.md §9).
//!
//! Two fixed workloads exercise every instrumented layer end to end:
//!
//! * **Engine scenario** — partition LDBC SNB with HDRF (vertex-cut, so
//!   mirror-creation counters fire), then run PageRank on a simulated
//!   4-machine cluster. Produces `partition.*` and `engine.*` events
//!   with simulated-nanosecond stamps.
//! * **DES scenario** — partition the same graph with hybrid-random,
//!   then drive the 1-hop query workload through the fault-injected
//!   cluster simulator under a crash-plus-straggler plan, so the
//!   failover/retry/drop lifecycle events all fire.
//!
//! Both are pure functions of `(Scale, seed constants)`: every stamp is
//! simulated time or a logical sequence number, so the rendered trace
//! JSON is byte-identical run to run. The `trace` experiment, the
//! `--trace <path>` flag of the experiments binary, the golden-snapshot
//! tests, and `sgp-xtask trace-summary` all consume these scenarios.

use crate::config::{Dataset, Scale};
use crate::runners::{default_order, RobustnessConfig};
use sgp_db::{
    ClusterSim, FaultSimConfig, FaultSimReport, MirrorDirectory, PartitionedStore, SimConfig,
    SimError, Workload, WorkloadKind,
};
use sgp_engine::apps::PageRank;
use sgp_engine::{run_program_traced, EngineOptions, Placement, RunReport};
use sgp_partition::{partition_traced, Algorithm, PartitionerConfig};
use sgp_trace::{CollectingSink, TraceSink};

/// Algorithm of the engine scenario: vertex-cut, so the partitioner
/// emits mirror-creation and replica counters.
pub const ENGINE_SCENARIO_ALGORITHM: Algorithm = Algorithm::Hdrf;

/// Algorithm of the DES scenario: hybrid-cut, so crashed masters fail
/// reads over to live mirrors (the failover counters fire).
pub const DB_SCENARIO_ALGORITHM: Algorithm = Algorithm::HybridRandom;

/// Machines simulated by both scenarios.
pub const SCENARIO_MACHINES: usize = 4;

/// PageRank supersteps in the engine scenario (kept short so the golden
/// trace stays reviewable).
pub const ENGINE_SCENARIO_ITERATIONS: usize = 8;

/// Fault-plan and load parameters of the DES scenario — a deliberately
/// small robustness configuration (fewer bindings/clients than the
/// `robustness` experiment) so the golden trace stays small while the
/// crash, straggler and message-loss paths all fire.
pub fn db_scenario_config() -> RobustnessConfig {
    RobustnessConfig {
        bindings: 60,
        sim: FaultSimConfig {
            base: SimConfig { clients_per_machine: 2, queries_per_client: 5, ..Default::default() },
            ..Default::default()
        },
        crash_at_ns: 500_000,
        ..Default::default()
    }
}

/// Runs the engine scenario, recording `partition.*` and `engine.*`
/// events into `sink`; returns the run report.
pub fn record_engine_scenario<S: TraceSink>(scale: Scale, sink: &mut S) -> RunReport {
    let g = Dataset::LdbcSnb.generate(scale);
    let cfg = PartitionerConfig::new(SCENARIO_MACHINES);
    let p = partition_traced(&g, ENGINE_SCENARIO_ALGORITHM, &cfg, default_order(), sink);
    let placement = Placement::build(&g, &p);
    let prog = PageRank::new(ENGINE_SCENARIO_ITERATIONS);
    run_program_traced(&g, &placement, &prog, &EngineOptions::default(), sink).1
}

/// Runs the DES scenario, recording `partition.*` and `db.*` events
/// into `sink`; returns the fault-sim report.
pub fn record_db_scenario<S: TraceSink>(
    scale: Scale,
    sink: &mut S,
) -> Result<FaultSimReport, SimError> {
    let g = Dataset::LdbcSnb.generate(scale);
    let cfg = db_scenario_config();
    let k = SCENARIO_MACHINES;
    let plan = cfg.build_plan(k);
    let pcfg = PartitionerConfig::new(k);
    let p = partition_traced(&g, DB_SCENARIO_ALGORITHM, &pcfg, default_order(), sink);
    let store = PartitionedStore::from_owner(g.clone(), k, p.masters(&g));
    let mirrors = MirrorDirectory::for_model(&g, &p);
    let workload =
        Workload::generate(&g, WorkloadKind::OneHop, cfg.bindings, cfg.skew, cfg.workload_seed);
    let sim = ClusterSim::prepare(&store, &workload);
    sim.run_faulted_traced(&cfg.sim, &plan, &mirrors, sink)
}

/// Canonical trace JSON of the engine scenario (the first golden).
pub fn engine_trace_json(scale: Scale) -> String {
    let mut sink = CollectingSink::new();
    record_engine_scenario(scale, &mut sink);
    sink.to_json()
}

/// Canonical trace JSON of the DES scenario (the second golden).
pub fn db_trace_json(scale: Scale) -> Result<String, SimError> {
    let mut sink = CollectingSink::new();
    record_db_scenario(scale, &mut sink)?;
    Ok(sink.to_json())
}

/// One document holding both scenarios back to back (the engine run
/// closes before the DES opens, so the stream stays well-nested) —
/// what `experiments --trace <path>` writes.
pub fn combined_trace_json(scale: Scale) -> Result<String, SimError> {
    let mut sink = CollectingSink::new();
    record_engine_scenario(scale, &mut sink);
    record_db_scenario(scale, &mut sink)?;
    Ok(sink.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_trace::parse_trace;

    #[test]
    fn engine_scenario_trace_is_deterministic_and_well_nested() {
        let mut sink = CollectingSink::new();
        let report = record_engine_scenario(Scale::Tiny, &mut sink);
        assert_eq!(report.num_iterations(), ENGINE_SCENARIO_ITERATIONS);
        sink.check_nesting().expect("well-nested engine scenario");
        assert_eq!(
            sink.counter_total("engine.gather_messages"),
            report.total_messages() - sink.counter_total("engine.update_messages")
        );
        let again = engine_trace_json(Scale::Tiny);
        assert_eq!(sink.to_json(), again, "same seed+config must give identical trace bytes");
        let parsed = parse_trace(&again).expect("canonical JSON parses");
        assert_eq!(parsed.events.len(), sink.len());
    }

    #[test]
    fn db_scenario_trace_is_deterministic_and_exercises_faults() {
        let mut sink = CollectingSink::new();
        let report = record_db_scenario(Scale::Tiny, &mut sink).expect("valid plan");
        sink.check_nesting().expect("well-nested DES scenario");
        assert!(report.failed > 0 || report.completed_ok > 0);
        assert_eq!(sink.counter_total("db.crashes"), 1, "the plan crashes one machine");
        assert_eq!(sink.counter_total("db.failovers"), report.failovers);
        let again = db_trace_json(Scale::Tiny).expect("valid plan");
        assert_eq!(sink.to_json(), again, "same seed+config must give identical trace bytes");
    }
}
