//! Experiment scale and the dataset registry.
//!
//! Table 3's datasets are multi-billion-edge artifacts; the reproduction
//! generates structural stand-ins at a configurable scale. `SGP_SCALE`
//! (`tiny` | `small` | `default` | `large`) selects how big.

use crate::error::SgpError;
use serde::{Deserialize, Serialize};
use sgp_graph::generators::{
    powerlaw_cm, rmat, road_grid, snb_social, PowerLawConfig, RmatConfig, RoadConfig, SnbConfig,
};
use sgp_graph::stats::GraphClass;
use sgp_graph::{Graph, GraphStats};

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Smoke-test size (CI, unit tests): thousands of edges.
    Tiny,
    /// Small laptop scale: tens of thousands of edges.
    Small,
    /// Default experiment scale: hundreds of thousands of edges.
    Default,
    /// Large: millions of edges (slow but richer tails).
    Large,
}

impl std::str::FromStr for Scale {
    type Err = SgpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "default" | "" => Ok(Scale::Default),
            "large" => Ok(Scale::Large),
            other => Err(SgpError::Config {
                what: "SGP_SCALE",
                value: other.to_string(),
                expected: "tiny|small|default|large",
            }),
        }
    }
}

impl Scale {
    /// Reads the scale from the `SGP_SCALE` environment variable,
    /// silently defaulting to [`Scale::Default`] on unset *or unknown*
    /// values. Prefer [`Scale::try_from_env`] in binaries so typos in
    /// `SGP_SCALE` fail loudly instead of running the wrong scale.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or(Scale::Default)
    }

    /// Reads the scale from the `SGP_SCALE` environment variable.
    /// Unset means [`Scale::Default`]; a set-but-unknown value is a
    /// [`SgpError::Config`].
    pub fn try_from_env() -> Result<Self, SgpError> {
        std::env::var("SGP_SCALE").unwrap_or_default().parse()
    }

    /// A scale-dependent multiplier with `Default` = 1.0.
    pub fn factor(&self) -> f64 {
        match self {
            Scale::Tiny => 0.05,
            Scale::Small => 0.25,
            Scale::Default => 1.0,
            Scale::Large => 4.0,
        }
    }
}

/// The four datasets of the paper's Table 3, as synthetic stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Twitter follower graph stand-in (heavy-tailed, R-MAT).
    Twitter,
    /// UK2007-05 web-graph stand-in (power-law configuration model).
    UkWeb,
    /// USA road network stand-in (perturbed lattice).
    UsaRoad,
    /// LDBC SNB SF-1000 friendship-graph stand-in (community social).
    LdbcSnb,
}

/// A Table 3 row for the *original* dataset, for paper-vs-measured
/// comparison in reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperDatasetRow {
    /// Edge count reported by the paper.
    pub edges: &'static str,
    /// Vertex count reported by the paper.
    pub vertices: &'static str,
    /// "Avg / Max Degree" column.
    pub degrees: &'static str,
    /// "Type" column.
    pub kind: &'static str,
}

impl Dataset {
    /// All datasets in Table 3 order.
    pub fn all() -> &'static [Dataset] {
        &[Dataset::Twitter, Dataset::UkWeb, Dataset::UsaRoad, Dataset::LdbcSnb]
    }

    /// The datasets used by the offline-analytics experiments (Table 2).
    pub fn offline_set() -> &'static [Dataset] {
        &[Dataset::Twitter, Dataset::UkWeb, Dataset::UsaRoad]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Twitter => "Twitter",
            Dataset::UkWeb => "UK2007-05",
            Dataset::UsaRoad => "USA-Road",
            Dataset::LdbcSnb => "LDBC-SNB",
        }
    }

    /// The structural class the stand-in must reproduce.
    pub fn expected_class(&self) -> GraphClass {
        match self {
            Dataset::Twitter | Dataset::LdbcSnb => GraphClass::HeavyTailed,
            Dataset::UkWeb => GraphClass::PowerLaw,
            Dataset::UsaRoad => GraphClass::LowDegree,
        }
    }

    /// The original dataset's Table 3 row.
    pub fn paper_row(&self) -> PaperDatasetRow {
        match self {
            Dataset::Twitter => PaperDatasetRow {
                edges: "1.46B",
                vertices: "41M",
                degrees: "35 / 2.9M",
                kind: "Heavy Tailed",
            },
            Dataset::UkWeb => PaperDatasetRow {
                edges: "3.73B",
                vertices: "105M",
                degrees: "35.5 / 975K",
                kind: "Power-law",
            },
            Dataset::UsaRoad => PaperDatasetRow {
                edges: "58.3M",
                vertices: "23M",
                degrees: "2.5 / 9",
                kind: "Low-degree",
            },
            Dataset::LdbcSnb => PaperDatasetRow {
                edges: "3.6M kn", // LDBC SNB SF-1000 knows edges (Table 3 lists 3.6M x 447M persons)
                vertices: "447M",
                degrees: "124 / 3682",
                kind: "Heavy Tailed",
            },
        }
    }

    /// Generates the stand-in graph at the given scale. Deterministic:
    /// the same `(dataset, scale)` always yields the same graph.
    pub fn generate(&self, scale: Scale) -> Graph {
        let f = scale.factor();
        match self {
            Dataset::Twitter => {
                // R-MAT scale grows logarithmically with the factor.
                let rscale = (13.0 + f.log2()).round().clamp(9.0, 17.0) as u32;
                rmat(RmatConfig { scale: rscale, edge_factor: 16, ..RmatConfig::default() })
            }
            Dataset::UkWeb => powerlaw_cm(PowerLawConfig {
                vertices: (24_000.0 * f) as usize,
                avg_degree: 14.0,
                exponent: 0.85,
                seed: 0x1107_u64,
            }),
            Dataset::UsaRoad => {
                let side = ((160.0 * f.sqrt()) as usize).max(24);
                road_grid(RoadConfig { width: side, height: side, ..RoadConfig::default() })
            }
            Dataset::LdbcSnb => snb_social(SnbConfig {
                persons: (16_000.0 * f) as usize,
                communities: ((160.0 * f) as usize).max(8),
                avg_friends: 22.0,
                ..SnbConfig::default()
            }),
        }
    }

    /// Generates and summarizes the stand-in (one measured Table 3 row).
    pub fn stats(&self, scale: Scale) -> GraphStats {
        GraphStats::of(&self.generate(scale))
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_generates_nonempty() {
        for &d in Dataset::all() {
            let g = d.generate(Scale::Tiny);
            assert!(g.num_vertices() > 100, "{d}: {}", g.num_vertices());
            assert!(g.num_edges() > 100, "{d}: {}", g.num_edges());
        }
    }

    #[test]
    fn stand_ins_match_expected_class() {
        for &d in Dataset::all() {
            let s = d.stats(Scale::Small);
            assert_eq!(
                s.classify(),
                d.expected_class(),
                "{d}: stats {s} classified {:?}",
                s.classify()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Twitter.generate(Scale::Tiny);
        let b = Dataset::Twitter.generate(Scale::Tiny);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn scale_orders_sizes() {
        let tiny = Dataset::UkWeb.generate(Scale::Tiny);
        let small = Dataset::UkWeb.generate(Scale::Small);
        assert!(tiny.num_edges() < small.num_edges());
    }

    #[test]
    fn scale_from_env_defaults() {
        // Do not set the variable: default expected. (Tests run in
        // parallel; avoid mutating the process environment.)
        if std::env::var("SGP_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Default);
        }
    }

    #[test]
    fn scale_parses_known_and_rejects_unknown() {
        assert_eq!("tiny".parse::<Scale>().ok(), Some(Scale::Tiny));
        assert_eq!("SMALL".parse::<Scale>().ok(), Some(Scale::Small));
        assert_eq!("default".parse::<Scale>().ok(), Some(Scale::Default));
        assert_eq!("".parse::<Scale>().ok(), Some(Scale::Default));
        assert_eq!("large".parse::<Scale>().ok(), Some(Scale::Large));
        let err = "huge".parse::<Scale>().unwrap_err().to_string();
        assert!(err.contains("SGP_SCALE") && err.contains("huge"), "{err}");
    }

    #[test]
    fn road_is_low_degree_even_at_tiny_scale() {
        let g = Dataset::UsaRoad.generate(Scale::Tiny);
        assert!(GraphStats::of(&g).max_degree <= 16);
    }
}
