//! The shared error type for fallible experiment-framework paths.
//!
//! The lint policy (`sgp-xtask lint`, rule `no-panic-in-lib`) forbids
//! `unwrap`/`expect` in library code unless the invariant is locally
//! provable. Paths whose failure depends on the *environment* — env
//! vars, serialization, I/O — cannot prove anything locally, so they
//! return `SgpError` instead and the binaries decide how to die.

use std::fmt;

/// An error from the experiment framework.
#[derive(Debug)]
pub enum SgpError {
    /// A configuration input (typically an environment variable) was
    /// present but unparseable.
    Config {
        /// Which knob was misconfigured (e.g. `SGP_SCALE`).
        what: &'static str,
        /// The offending value.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
    /// Serializing experiment output failed.
    Serialize(String),
    /// An I/O failure while reading inputs or writing results.
    Io(std::io::Error),
}

impl fmt::Display for SgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgpError::Config { what, value, expected } => {
                write!(f, "invalid {what}: `{value}` (expected {expected})")
            }
            SgpError::Serialize(msg) => write!(f, "serialization failed: {msg}"),
            SgpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SgpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SgpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SgpError {
    fn from(e: std::io::Error) -> Self {
        SgpError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SgpError::Config {
            what: "SGP_SCALE",
            value: "huge".into(),
            expected: "tiny|small|default|large",
        };
        let s = e.to_string();
        assert!(s.contains("SGP_SCALE"));
        assert!(s.contains("huge"));
        assert!(s.contains("tiny|small|default|large"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SgpError = io.into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
