//! Plain-text table rendering and JSON export for experiment results.

use serde::Serialize;

/// A simple fixed-width text table builder for paper-style output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column alignment and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Human-readable byte count (KiB/MiB/GiB).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Serializes any result rows to pretty JSON (for EXPERIMENTS.md
/// regeneration and downstream plotting), surfacing serializer errors.
pub fn try_to_json<T: Serialize>(rows: &T) -> Result<String, crate::error::SgpError> {
    serde_json::to_string_pretty(rows).map_err(|e| crate::error::SgpError::Serialize(e.to_string()))
}

/// Serializes any result rows to pretty JSON. Every row type in this
/// crate derives `Serialize` with no custom impls and all floats are
/// finite by construction, so serialization cannot fail on them; should
/// it ever fail anyway, the error is returned *as* a JSON object so
/// regenerated reports show the problem instead of a panic backtrace.
pub fn to_json<T: Serialize>(rows: &T) -> String {
    try_to_json(rows).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["alg", "rf"]);
        t.row(["HDRF", "3.20"]);
        t.row(["ECR", "12.00"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("alg"));
        assert!(lines[2].starts_with("HDRF"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_checks_arity() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn json_roundtrip() {
        #[derive(serde::Serialize)]
        struct R {
            a: u32,
        }
        let s = to_json(&vec![R { a: 1 }]);
        assert!(s.contains("\"a\": 1"));
        assert_eq!(try_to_json(&vec![R { a: 1 }]).as_deref().ok(), Some(s.as_str()));
    }

    #[test]
    fn try_to_json_surfaces_serializer_errors() {
        // JSON object keys must be strings; a tuple-keyed map cannot
        // serialize. (None of the crate's row types look like this —
        // the test just proves errors surface instead of panicking.)
        let bad: std::collections::BTreeMap<(u32, u32), u32> = [((1, 2), 3)].into_iter().collect();
        let err = try_to_json(&bad);
        assert!(matches!(err, Err(crate::error::SgpError::Serialize(_))));
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f2(1.005), "1.00"); // banker-ish rounding of format!
        assert_eq!(f3(0.1234), "0.123");
    }
}
