//! Criterion benchmarks of the observability layer (DESIGN.md §9).
//!
//! The headline number is **NullSink overhead**: the same engine run and
//! DES replay through `run_program` (hard-wired `NullSink`) versus the
//! `_traced` entry points with an explicit `NullSink`, versus a
//! `CollectingSink`. The first two must be indistinguishable — the
//! generic sink parameter monomorphizes to empty inlined bodies — and
//! CI runs this harness in `--test` mode so the comparison is *measured*
//! on every change, not asserted once and trusted forever.

use criterion::{criterion_group, criterion_main, Criterion};
use sgp_core::config::{Dataset, Scale};
use sgp_core::runners::default_order;
use sgp_core::trace_scenarios::{record_db_scenario, record_engine_scenario};
use sgp_engine::apps::PageRank;
use sgp_engine::{run_program, run_program_traced, EngineOptions, Placement};
use sgp_partition::{partition, Algorithm, PartitionerConfig};
use sgp_trace::{CollectingSink, NullSink, SummarySink};

const K: usize = 4;

fn bench_nullsink_overhead(c: &mut Criterion) {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let p = partition(&g, Algorithm::Hdrf, &PartitionerConfig::new(K), default_order());
    let placement = Placement::build(&g, &p);
    let opts = EngineOptions::default();
    let prog = PageRank::new(8);
    let mut group = c.benchmark_group("nullsink_overhead");
    group.sample_size(20);
    group.bench_function("engine_untraced", |b| {
        b.iter(|| run_program(&g, &placement, &prog, &opts));
    });
    group.bench_function("engine_nullsink", |b| {
        b.iter(|| run_program_traced(&g, &placement, &prog, &opts, &mut NullSink));
    });
    group.bench_function("engine_collecting", |b| {
        b.iter(|| {
            let mut sink = CollectingSink::new();
            run_program_traced(&g, &placement, &prog, &opts, &mut sink)
        });
    });
    group.finish();
}

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_scenarios");
    group.sample_size(10);
    group.bench_function("engine_scenario_summary", |b| {
        b.iter(|| {
            let mut sink = SummarySink::new();
            record_engine_scenario(Scale::Tiny, &mut sink)
        });
    });
    group.bench_function("db_scenario_collecting_json", |b| {
        b.iter(|| {
            let mut sink = CollectingSink::new();
            record_db_scenario(Scale::Tiny, &mut sink).expect("valid plan");
            sink.to_json()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_nullsink_overhead, bench_scenarios);
criterion_main!(benches);
