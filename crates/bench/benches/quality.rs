//! Parameter-sweep ablations over the design choices DESIGN.md calls
//! out: HDRF's λ, FENNEL's γ, Ginger's high-degree threshold, and
//! stream-order sensitivity. Criterion measures partitioning time; the
//! resulting *quality* is printed once per configuration so the sweep
//! doubles as an ablation table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgp_core::config::{Dataset, Scale};
use sgp_graph::StreamOrder;
use sgp_partition::metrics::{load_imbalance, replication_factor};
use sgp_partition::{partition, Algorithm, PartitionerConfig};

fn bench_hdrf_lambda_sweep(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let mut group = c.benchmark_group("hdrf_lambda");
    group.sample_size(10);
    println!("\nHDRF λ ablation (k=16, Twitter-like):");
    for lambda in [0.0f64, 0.5, 1.0, 1.1, 2.0, 4.0] {
        let mut cfg = PartitionerConfig::new(16);
        cfg.hdrf_lambda = lambda;
        let p = partition(&g, Algorithm::Hdrf, &cfg, StreamOrder::Bfs);
        println!(
            "  λ={lambda:<4}: RF={:.3} edge-imbalance={:.3}",
            replication_factor(&g, &p),
            load_imbalance(&p.edges_per_partition())
        );
        group.bench_with_input(BenchmarkId::from_parameter(lambda), &cfg, |b, cfg| {
            b.iter(|| partition(&g, Algorithm::Hdrf, cfg, StreamOrder::Bfs));
        });
    }
    group.finish();
}

fn bench_fennel_gamma_sweep(c: &mut Criterion) {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let mut group = c.benchmark_group("fennel_gamma");
    group.sample_size(10);
    println!("\nFENNEL γ ablation (k=8, SNB-like):");
    for gamma in [1.1f64, 1.3, 1.5, 1.8, 2.0] {
        let mut cfg = PartitionerConfig::new(8);
        cfg.fennel_gamma = gamma;
        let p = partition(&g, Algorithm::Fennel, &cfg, StreamOrder::Random { seed: 1 });
        println!(
            "  γ={gamma:<4}: ECR={:.3} vertex-imbalance={:.3}",
            sgp_partition::metrics::edge_cut_ratio(&g, &p).unwrap(),
            p.vertices_per_partition().map(|v| load_imbalance(&v)).unwrap()
        );
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &cfg, |b, cfg| {
            b.iter(|| partition(&g, Algorithm::Fennel, cfg, StreamOrder::Random { seed: 1 }));
        });
    }
    group.finish();
}

fn bench_ginger_threshold_sweep(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let mut group = c.benchmark_group("ginger_threshold");
    group.sample_size(10);
    println!("\nGinger high-degree-threshold ablation (k=8, Twitter-like):");
    for factor in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let mut cfg = PartitionerConfig::new(8);
        cfg.ginger_threshold_factor = factor;
        let p = partition(&g, Algorithm::Ginger, &cfg, StreamOrder::Random { seed: 2 });
        println!("  t={factor:<4}: RF={:.3}", replication_factor(&g, &p));
        group.bench_with_input(BenchmarkId::from_parameter(factor), &cfg, |b, cfg| {
            b.iter(|| partition(&g, Algorithm::Ginger, cfg, StreamOrder::Random { seed: 2 }));
        });
    }
    group.finish();
}

fn bench_stream_order_sensitivity(c: &mut Criterion) {
    // §4.2.2: plain greedy vertex-cut degenerates under BFS order; HDRF
    // does not.
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(8);
    let mut group = c.benchmark_group("stream_order");
    group.sample_size(10);
    println!("\nStream-order sensitivity (k=8, Twitter-like):");
    for (label, order) in [
        ("random", StreamOrder::Random { seed: 4 }),
        ("bfs", StreamOrder::Bfs),
        ("dfs", StreamOrder::Dfs),
        ("natural", StreamOrder::Natural),
    ] {
        for alg in [Algorithm::PowerGraphGreedy, Algorithm::Hdrf] {
            let p = partition(&g, alg, &cfg, order);
            println!(
                "  {label:<7} {:<4}: RF={:.3} edge-imbalance={:.3}",
                alg.short_name(),
                replication_factor(&g, &p),
                load_imbalance(&p.edges_per_partition())
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(label), &order, |b, order| {
            b.iter(|| partition(&g, Algorithm::Hdrf, &cfg, *order));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hdrf_lambda_sweep,
    bench_fennel_gamma_sweep,
    bench_ginger_threshold_sweep,
    bench_stream_order_sensitivity
);
criterion_main!(benches);
