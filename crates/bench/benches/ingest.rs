//! Criterion microbenchmarks of the incremental ingestion core: chunked
//! ingestion through the streaming sources versus materializing the
//! whole stream up front, on the vertex path (LDG) and the edge path
//! (HDRF). The chunked path is the one every entry point now runs on;
//! this bench keeps its overhead honest against the materialized
//! baseline it replaced.
//!
//! On top of the criterion groups, the custom `main` below writes
//! `BENCH_ingest.json` into the working directory: a best-of-3
//! wall-clock ingestion-rate summary comparing the sequential entry
//! point against the real-threads execution backend at
//! `threads ∈ {1, 2, 4}`, for **every Table 2 streaming algorithm**
//! (the offline METIS baseline has no ingestion loop and is skipped;
//! 2PS appears sequential-only because its clustering pass cannot be
//! split across loaders). CI uploads that file as the
//! ingestion-throughput artifact, the copy at the repo root records
//! the perf trajectory point for this machine, and `cargo xtask
//! bench-check` compares a fresh run against that copy.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sgp_core::config::{Dataset, Scale};
use sgp_graph::{EdgeStream, Graph, StreamOrder, VertexStream};
use sgp_partition::edge_cut::Ldg;
use sgp_partition::registry::StreamKind;
use sgp_partition::streaming::{run_edge_chunked, run_vertex_chunked};
use sgp_partition::vertex_cut::Hdrf;
use sgp_partition::{
    partition, partition_chunked, partition_threaded, Algorithm, LoaderConfig, PartitionerConfig,
    DEFAULT_CHUNK,
};
use sgp_trace::NullSink;

fn bench_vertex_ingest(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    let mut group = c.benchmark_group("ingest_vertex_ldg");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_vertices() as u64));
    for &chunk in &[1usize, 64, DEFAULT_CHUNK] {
        group.bench_with_input(BenchmarkId::new("chunked", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut p = Ldg::new(&cfg, g.num_vertices());
                run_vertex_chunked(&g, &mut p, cfg.k, order, chunk, &mut NullSink)
            });
        });
    }
    group.bench_function("materialized", |b| {
        b.iter(|| {
            // Baseline: collect the whole permuted stream, then ingest it
            // as one chunk — what the pre-refactor driver effectively did.
            let records: Vec<_> = VertexStream::new(&g, order).collect();
            let mut p = Ldg::new(&cfg, g.num_vertices());
            let mut sp =
                sgp_partition::streaming::VertexIngest::init(&mut p, g.num_vertices(), cfg.k);
            sp.ingest(&records);
            sp.seal(&g)
        });
    });
    group.finish();
}

fn bench_edge_ingest(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    let mut group = c.benchmark_group("ingest_edge_hdrf");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    for &chunk in &[1usize, 64, DEFAULT_CHUNK] {
        group.bench_with_input(BenchmarkId::new("chunked", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut p = Hdrf::new(&cfg, g.num_edges());
                run_edge_chunked(&g, &mut p, cfg.k, order, chunk, &mut NullSink)
            });
        });
    }
    group.bench_function("materialized", |b| {
        b.iter(|| {
            let edges = EdgeStream::new(&g, order);
            let mut p = Hdrf::new(&cfg, g.num_edges());
            let mut sp = sgp_partition::streaming::EdgeIngest::init(&g, &mut p, cfg.k);
            sp.ingest(edges.as_slice());
            sp.seal()
        });
    });
    group.finish();
}

fn bench_facade_end_to_end(c: &mut Criterion) {
    // The full facade path (init → ingest → seal) for every Table 2
    // algorithm, at the default chunk size.
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    let mut group = c.benchmark_group("ingest_facade");
    group.sample_size(10);
    for &alg in Algorithm::all() {
        group.bench_with_input(BenchmarkId::from_parameter(alg.short_name()), &alg, |b, &alg| {
            b.iter(|| partition_chunked(&g, alg, &cfg, order, DEFAULT_CHUNK));
        });
    }
    group.finish();
}

fn bench_threaded_ingest(c: &mut Criterion) {
    // The real-threads backend against the sequential registry entry
    // point, on two greedy edge-stream algorithms. Bit-identical output
    // (tested in `tests/streaming_core.rs`); this group watches the
    // cost of the delta-shipping barrier protocol.
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    for &alg in &[Algorithm::Hdrf, Algorithm::PowerGraphGreedy] {
        let mut group = c.benchmark_group(format!("ingest_threaded_{}", alg.short_name()));
        group.sample_size(10);
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_function("sequential", |b| {
            b.iter(|| partition(&g, alg, &cfg, order));
        });
        for &threads in &[1usize, 2, 4] {
            let lc = LoaderConfig::new(threads);
            group.bench_with_input(BenchmarkId::new("threads", threads), &lc, |b, lc| {
                b.iter(|| partition_threaded(&g, alg, &cfg, order, lc));
            });
        }
        group.finish();
    }
}

/// Best-of-3 wall-clock seconds for one run of `f`.
fn best_of_3<F: FnMut()>(mut f: F) -> f64 {
    (0..3)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Stream elements an algorithm ingests: vertices on the vertex and
/// hybrid paths (phase 1 streams vertices), edges otherwise.
fn stream_elements(g: &Graph, alg: Algorithm) -> usize {
    match alg.info().stream {
        StreamKind::Vertex | StreamKind::Hybrid => g.num_vertices(),
        _ => g.num_edges(),
    }
}

/// Writes the `BENCH_ingest.json` ingestion-rate summary: sequential
/// versus `partition_threaded` at 1/2/4 threads, for every Table 2
/// streaming algorithm (METIS is offline and skipped; algorithms that
/// cannot split their stream appear sequential-only). Hand-rendered
/// JSON so the artifact shape is pinned by this function alone.
fn emit_ingest_json() {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    let mut rows = Vec::new();
    for &alg in Algorithm::all() {
        if alg.info().stream == StreamKind::Offline {
            continue;
        }
        let elements = stream_elements(&g, alg);
        let mut push = |mode: &str, secs: f64| {
            rows.push(format!(
                "    {{\"algorithm\": \"{}\", \"mode\": \"{}\", \"elements\": {}, \"secs\": {:.6}, \"elements_per_sec\": {:.1}}}",
                alg.short_name(),
                mode,
                elements,
                secs,
                elements as f64 / secs.max(1e-9)
            ));
        };
        push("sequential", best_of_3(|| drop(partition(&g, alg, &cfg, order))));
        if !alg.supports_parallel_loaders() {
            continue;
        }
        for threads in [1usize, 2, 4] {
            let lc = LoaderConfig::new(threads);
            push(
                &format!("threads={threads}"),
                best_of_3(|| drop(partition_threaded(&g, alg, &cfg, order, &lc))),
            );
        }
    }
    let json = format!(
        "{{\n  \"version\": 1,\n  \"dataset\": \"twitter\",\n  \"scale\": \"tiny\",\n  \"k\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        cfg.k,
        rows.join(",\n")
    );
    match std::fs::write("BENCH_ingest.json", &json) {
        Ok(()) => println!("wrote BENCH_ingest.json"),
        Err(e) => eprintln!("could not write BENCH_ingest.json: {e}"),
    }
}

criterion_group!(
    benches,
    bench_vertex_ingest,
    bench_edge_ingest,
    bench_facade_end_to_end,
    bench_threaded_ingest
);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    emit_ingest_json();
}
