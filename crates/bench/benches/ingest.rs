//! Criterion microbenchmarks of the incremental ingestion core: chunked
//! ingestion through the streaming sources versus materializing the
//! whole stream up front, on the vertex path (LDG) and the edge path
//! (HDRF). The chunked path is the one every entry point now runs on;
//! this bench keeps its overhead honest against the materialized
//! baseline it replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgp_core::config::{Dataset, Scale};
use sgp_graph::{EdgeStream, StreamOrder, VertexStream};
use sgp_partition::edge_cut::Ldg;
use sgp_partition::streaming::{run_edge_chunked, run_vertex_chunked};
use sgp_partition::vertex_cut::Hdrf;
use sgp_partition::{partition_chunked, Algorithm, PartitionerConfig, DEFAULT_CHUNK};
use sgp_trace::NullSink;

fn bench_vertex_ingest(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    let mut group = c.benchmark_group("ingest_vertex_ldg");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_vertices() as u64));
    for &chunk in &[1usize, 64, DEFAULT_CHUNK] {
        group.bench_with_input(BenchmarkId::new("chunked", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut p = Ldg::new(&cfg, g.num_vertices());
                run_vertex_chunked(&g, &mut p, cfg.k, order, chunk, &mut NullSink)
            });
        });
    }
    group.bench_function("materialized", |b| {
        b.iter(|| {
            // Baseline: collect the whole permuted stream, then ingest it
            // as one chunk — what the pre-refactor driver effectively did.
            let records: Vec<_> = VertexStream::new(&g, order).collect();
            let mut p = Ldg::new(&cfg, g.num_vertices());
            let mut sp =
                sgp_partition::streaming::VertexIngest::init(&mut p, g.num_vertices(), cfg.k);
            sp.ingest(&records);
            sp.seal(&g)
        });
    });
    group.finish();
}

fn bench_edge_ingest(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    let mut group = c.benchmark_group("ingest_edge_hdrf");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    for &chunk in &[1usize, 64, DEFAULT_CHUNK] {
        group.bench_with_input(BenchmarkId::new("chunked", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut p = Hdrf::new(&cfg, g.num_edges());
                run_edge_chunked(&g, &mut p, cfg.k, order, chunk, &mut NullSink)
            });
        });
    }
    group.bench_function("materialized", |b| {
        b.iter(|| {
            let edges = EdgeStream::new(&g, order);
            let mut p = Hdrf::new(&cfg, g.num_edges());
            let mut sp = sgp_partition::streaming::EdgeIngest::init(&g, &mut p, cfg.k);
            sp.ingest(edges.as_slice());
            sp.seal()
        });
    });
    group.finish();
}

fn bench_facade_end_to_end(c: &mut Criterion) {
    // The full facade path (init → ingest → seal) for one algorithm of
    // each stream family, at the default chunk size.
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    let mut group = c.benchmark_group("ingest_facade");
    group.sample_size(10);
    for &alg in &[Algorithm::Ldg, Algorithm::Hdrf] {
        group.bench_with_input(BenchmarkId::from_parameter(alg.short_name()), &alg, |b, &alg| {
            b.iter(|| partition_chunked(&g, alg, &cfg, order, DEFAULT_CHUNK));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_ingest, bench_edge_ingest, bench_facade_end_to_end);
criterion_main!(benches);
