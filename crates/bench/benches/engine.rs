//! Criterion benchmarks of the GAS engine: full PageRank/WCC/SSSP runs
//! per cut model, plus the sender-side aggregation ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgp_core::config::{Dataset, Scale};
use sgp_core::runners::{run_offline_workload, OfflineWorkload};
use sgp_engine::{EngineOptions, Placement};
use sgp_graph::StreamOrder;
use sgp_partition::{partition, Algorithm, PartitionerConfig};

fn bench_engine_workloads(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(8);
    let order = StreamOrder::Random { seed: 3 };
    let mut group = c.benchmark_group("engine_workloads");
    group.sample_size(10);
    for &alg in &[Algorithm::EcrHash, Algorithm::Hdrf, Algorithm::Ginger] {
        let p = partition(&g, alg, &cfg, order);
        let placement = Placement::build(&g, &p);
        for &w in OfflineWorkload::all() {
            group.bench_with_input(
                BenchmarkId::new(w.name(), alg.short_name()),
                &(&placement, w),
                |b, (placement, w)| {
                    b.iter(|| run_offline_workload(&g, placement, *w, &EngineOptions::default()));
                },
            );
        }
    }
    group.finish();
}

fn bench_aggregation_ablation(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(8);
    let p = partition(&g, Algorithm::EcrHash, &cfg, StreamOrder::Natural);
    let placement = Placement::build(&g, &p);
    let mut group = c.benchmark_group("sender_side_aggregation");
    group.sample_size(10);
    for (label, agg) in [("on", true), ("off", false)] {
        group.bench_function(label, |b| {
            let opts = EngineOptions { sender_side_aggregation: agg, ..Default::default() };
            b.iter(|| {
                run_offline_workload(&g, &placement, OfflineWorkload::PageRank, &opts)
                    .total_messages()
            });
        });
    }
    group.finish();
}

fn bench_placement_build(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let p = partition(&g, Algorithm::Hdrf, &cfg, StreamOrder::Natural);
    c.bench_function("placement_build", |b| b.iter(|| Placement::build(&g, &p)));
}

criterion_group!(
    benches,
    bench_engine_workloads,
    bench_aggregation_ablation,
    bench_placement_build
);
criterion_main!(benches);
