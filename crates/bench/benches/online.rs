//! Criterion benchmarks of the online substrate: raw query execution
//! against the partitioned store and the discrete-event cluster
//! simulation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgp_core::config::{Dataset, Scale};
use sgp_core::runners::build_store;
use sgp_db::workload::{run_workload, Skew};
use sgp_db::{ClusterSim, SimConfig, Workload, WorkloadKind};
use sgp_partition::Algorithm;

fn bench_query_execution(c: &mut Criterion) {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let store = build_store(&g, Algorithm::Fennel, 8);
    let mut group = c.benchmark_group("query_execution");
    group.sample_size(10);
    for kind in [WorkloadKind::OneHop, WorkloadKind::TwoHop, WorkloadKind::ShortestPath] {
        let w = Workload::generate(&g, kind, 100, Skew::Zipf { theta: 0.9 }, 1);
        group.throughput(Throughput::Elements(w.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(kind), &w, |b, w| {
            b.iter(|| run_workload(&store, w, None));
        });
    }
    group.finish();
}

fn bench_cluster_sim(c: &mut Criterion) {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let store = build_store(&g, Algorithm::EcrHash, 8);
    let w = Workload::generate(&g, WorkloadKind::OneHop, 200, Skew::Zipf { theta: 0.9 }, 2);
    let sim = ClusterSim::prepare(&store, &w);
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    for clients in [4usize, 12, 24] {
        let cfg = SimConfig {
            clients_per_machine: clients,
            queries_per_client: 20,
            ..Default::default()
        };
        let total = clients * 8 * 20;
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::from_parameter(clients), &cfg, |b, cfg| {
            b.iter(|| sim.run(cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_execution, bench_cluster_sim);
criterion_main!(benches);
