//! Criterion benchmarks of the fault-injection path: the fault-injected
//! DES against its healthy baseline, mirror-directory construction, and
//! the engine's fault-inflated PageRank accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgp_core::config::{Dataset, Scale};
use sgp_core::runners::{build_store, default_order};
use sgp_db::workload::Skew;
use sgp_db::{ClusterSim, FaultSimConfig, MirrorDirectory, SimConfig, Workload, WorkloadKind};
use sgp_engine::apps::PageRank;
use sgp_engine::{run_program, run_program_with_faults, EngineOptions, Placement};
use sgp_fault::FaultPlan;
use sgp_partition::{partition, Algorithm, PartitionerConfig};

const K: usize = 8;

fn sim_cfg(clients: usize) -> FaultSimConfig {
    FaultSimConfig {
        base: SimConfig {
            clients_per_machine: clients,
            queries_per_client: 20,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn plan() -> FaultPlan {
    FaultPlan::healthy(K, 0xBE_EF)
        .with_crash(K as u32 - 1, 2_000_000)
        .with_straggler(0, 0, u64::MAX, 2.0)
        .with_message_loss(0.005)
}

fn bench_faulted_des(c: &mut Criterion) {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let store = build_store(&g, Algorithm::EcrHash, K);
    let w = Workload::generate(&g, WorkloadKind::OneHop, 200, Skew::Zipf { theta: 0.9 }, 2);
    let sim = ClusterSim::prepare(&store, &w);
    let cfg = sim_cfg(12);
    let plan = plan();
    let healthy = FaultPlan::healthy(K, 0xBE_EF);
    let mirrors = MirrorDirectory::edge_cut(K);
    let total = (12 * K * 20) as u64;
    let mut group = c.benchmark_group("faulted_des");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    group.bench_function("healthy_baseline", |b| b.iter(|| sim.run(&cfg.base)));
    group.bench_function("healthy_plan", |b| {
        b.iter(|| sim.run_faulted(&cfg, &healthy, &mirrors).expect("valid plan"));
    });
    group.bench_function("crash_straggler_loss", |b| {
        b.iter(|| sim.run_faulted(&cfg, &plan, &mirrors).expect("valid plan"));
    });
    group.finish();
}

fn bench_mirror_directory(c: &mut Criterion) {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let mut group = c.benchmark_group("mirror_directory");
    group.sample_size(10);
    for alg in [Algorithm::VcrHash, Algorithm::HybridRandom] {
        let p = partition(&g, alg, &PartitionerConfig::new(K), default_order());
        group.bench_with_input(BenchmarkId::from_parameter(alg.short_name()), &p, |b, p| {
            b.iter(|| MirrorDirectory::for_model(&g, p));
        });
    }
    group.finish();
}

fn bench_engine_fault_accounting(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let p = partition(&g, Algorithm::Hdrf, &PartitionerConfig::new(K), default_order());
    let placement = Placement::build(&g, &p);
    let opts = EngineOptions::default();
    let prog = PageRank::new(20);
    let plan = plan();
    let mut group = c.benchmark_group("engine_fault_accounting");
    group.sample_size(10);
    group.bench_function("pagerank_healthy", |b| {
        b.iter(|| run_program(&g, &placement, &prog, &opts));
    });
    group.bench_function("pagerank_faulted", |b| {
        b.iter(|| run_program_with_faults(&g, &placement, &prog, &opts, &plan));
    });
    group.finish();
}

criterion_group!(benches, bench_faulted_des, bench_mirror_directory, bench_engine_fault_accounting);
criterion_main!(benches);
