//! Criterion benchmarks of the fault-injection path: the fault-injected
//! DES against its healthy baseline, mirror-directory construction, and
//! the engine's fault-inflated PageRank accounting.
//!
//! On top of the criterion groups, the custom `main` below writes
//! `BENCH_fault.json` into the working directory: a best-of-3
//! wall-clock summary of the elastic-recovery DES (crash-then-rejoin
//! with priced migration) per partitioning model, carrying the
//! simulated RTO and data-moved accounting alongside the host seconds.
//! CI uploads that file as the recovery-bench artifact, and the copy at
//! the repo root records the perf trajectory point for this machine.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sgp_core::config::{Dataset, Scale};
use sgp_core::runners::{build_store, default_order};
use sgp_db::workload::Skew;
use sgp_db::{
    ClusterSim, DegradedConfig, ElasticPlan, FaultSimConfig, MirrorDirectory, PartitionedStore,
    SimConfig, Workload, WorkloadKind,
};
use sgp_engine::apps::PageRank;
use sgp_engine::{run_program, run_program_with_faults, EngineOptions, Placement};
use sgp_fault::FaultPlan;
use sgp_partition::{partition, plan_rebalance, Algorithm, MigrationConfig, PartitionerConfig};

const K: usize = 8;

fn sim_cfg(clients: usize) -> FaultSimConfig {
    FaultSimConfig {
        base: SimConfig {
            clients_per_machine: clients,
            queries_per_client: 20,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn plan() -> FaultPlan {
    FaultPlan::healthy(K, 0xBE_EF)
        .with_crash(K as u32 - 1, 2_000_000)
        .with_straggler(0, 0, u64::MAX, 2.0)
        .with_message_loss(0.005)
}

fn bench_faulted_des(c: &mut Criterion) {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let store = build_store(&g, Algorithm::EcrHash, K);
    let w = Workload::generate(&g, WorkloadKind::OneHop, 200, Skew::Zipf { theta: 0.9 }, 2);
    let sim = ClusterSim::prepare(&store, &w);
    let cfg = sim_cfg(12);
    let plan = plan();
    let healthy = FaultPlan::healthy(K, 0xBE_EF);
    let mirrors = MirrorDirectory::edge_cut(K);
    let total = (12 * K * 20) as u64;
    let mut group = c.benchmark_group("faulted_des");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    group.bench_function("healthy_baseline", |b| b.iter(|| sim.run(&cfg.base)));
    group.bench_function("healthy_plan", |b| {
        b.iter(|| sim.run_faulted(&cfg, &healthy, &mirrors).expect("valid plan"));
    });
    group.bench_function("crash_straggler_loss", |b| {
        b.iter(|| sim.run_faulted(&cfg, &plan, &mirrors).expect("valid plan"));
    });
    group.finish();
}

fn bench_mirror_directory(c: &mut Criterion) {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let mut group = c.benchmark_group("mirror_directory");
    group.sample_size(10);
    for alg in [Algorithm::VcrHash, Algorithm::HybridRandom] {
        let p = partition(&g, alg, &PartitionerConfig::new(K), default_order());
        group.bench_with_input(BenchmarkId::from_parameter(alg.short_name()), &p, |b, p| {
            b.iter(|| MirrorDirectory::for_model(&g, p));
        });
    }
    group.finish();
}

fn bench_engine_fault_accounting(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let p = partition(&g, Algorithm::Hdrf, &PartitionerConfig::new(K), default_order());
    let placement = Placement::build(&g, &p);
    let opts = EngineOptions::default();
    let prog = PageRank::new(20);
    let plan = plan();
    let mut group = c.benchmark_group("engine_fault_accounting");
    group.sample_size(10);
    group.bench_function("pagerank_healthy", |b| {
        b.iter(|| run_program(&g, &placement, &prog, &opts));
    });
    group.bench_function("pagerank_faulted", |b| {
        b.iter(|| run_program_with_faults(&g, &placement, &prog, &opts, &plan));
    });
    group.finish();
}

/// Best-of-3 wall-clock seconds for one run of `f`.
fn best_of_3<F: FnMut()>(mut f: F) -> f64 {
    (0..3)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Writes the `BENCH_fault.json` recovery summary: the elastic DES
/// (crash-then-rejoin of one machine, migration priced from a real
/// rebalance plan) for one algorithm of each partitioning model. Hand-
/// rendered JSON so the artifact shape is pinned by this function
/// alone.
fn emit_fault_json() {
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let k = K;
    let cfg = FaultSimConfig {
        base: SimConfig { clients_per_machine: 8, queries_per_client: 20, ..Default::default() },
        degraded: DegradedConfig { shed_queue_depth: 4, migration_ns_per_record: 2_000 },
        ..Default::default()
    };
    let queries = (8 * k * 20) as u64;
    let mut rows = Vec::new();
    for alg in [Algorithm::EcrHash, Algorithm::VcrHash, Algorithm::HybridRandom] {
        let p = partition(&g, alg, &PartitionerConfig::new(k), default_order());
        let owner = p.masters(&g);
        let store = PartitionedStore::from_owner(g.clone(), k, owner.clone());
        let mirrors = MirrorDirectory::for_model(&g, &p);
        let w = Workload::generate(&g, WorkloadKind::OneHop, 400, Skew::Zipf { theta: 0.6 }, 3);
        let sim = ClusterSim::prepare(&store, &w);
        let victim = k as u32 - 1;
        let mut live = vec![true; k];
        live[victim as usize] = false;
        let mplan = plan_rebalance(&g, &owner, &live, &MigrationConfig::default());
        let plan = FaultPlan::healthy(k, 0xE1A_57).with_crash_rejoin(victim, 2_000_000, 10_000_000);
        let elastic = ElasticPlan { records_per_event: vec![mplan.data_moved] };
        let report =
            sim.run_elastic(&cfg, &plan, &mirrors, &elastic).expect("k-1 machines survive");
        let secs = best_of_3(|| {
            sim.run_elastic(&cfg, &plan, &mirrors, &elastic).expect("k-1 machines survive");
        });
        rows.push(format!(
            "    {{\"algorithm\": \"{}\", \"queries\": {}, \"secs\": {:.6}, \"queries_per_sec\": {:.1}, \"rto_ms\": {:.3}, \"data_moved\": {}, \"shed_queries\": {}}}",
            alg.short_name(),
            queries,
            secs,
            queries as f64 / secs.max(1e-9),
            report.rto_ms,
            report.data_moved,
            report.shed_queries
        ));
    }
    let json = format!(
        "{{\n  \"version\": 1,\n  \"dataset\": \"ldbc_snb\", \"scale\": \"tiny\",\n  \"k\": {k},\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    match std::fs::write("BENCH_fault.json", &json) {
        Ok(()) => println!("wrote BENCH_fault.json"),
        Err(e) => eprintln!("could not write BENCH_fault.json: {e}"),
    }
}

criterion_group!(benches, bench_faulted_des, bench_mirror_directory, bench_engine_fault_accounting);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    emit_fault_json();
}
