//! Criterion microbenchmarks: partitioner throughput (elements/second)
//! on a fixed Twitter-like graph — the resource-usage comparison of
//! §4.1.1 ("approximately ten times faster than their offline
//! counterpart, METIS").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sgp_core::config::{Dataset, Scale};
use sgp_graph::StreamOrder;
use sgp_partition::{partition, Algorithm, PartitionerConfig};

fn bench_partitioners(c: &mut Criterion) {
    let g = Dataset::Twitter.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(16);
    let order = StreamOrder::Random { seed: 7 };
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    for &alg in Algorithm::all() {
        group.bench_with_input(BenchmarkId::from_parameter(alg.short_name()), &alg, |b, &alg| {
            b.iter(|| partition(&g, alg, &cfg, order));
        });
    }
    group.finish();
}

fn bench_streaming_vs_offline_speedup(c: &mut Criterion) {
    // The §4.1.1 claim in isolation: FENNEL vs the multilevel baseline.
    let g = Dataset::LdbcSnb.generate(Scale::Tiny);
    let cfg = PartitionerConfig::new(8);
    let order = StreamOrder::Random { seed: 9 };
    let mut group = c.benchmark_group("streaming_vs_offline");
    group.sample_size(10);
    group.bench_function("FNL", |b| b.iter(|| partition(&g, Algorithm::Fennel, &cfg, order)));
    group.bench_function("MTS", |b| b.iter(|| partition(&g, Algorithm::Metis, &cfg, order)));
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_streaming_vs_offline_speedup);
criterion_main!(benches);
