//! Regenerates every table and figure of the paper as part of
//! `cargo bench` (harness = false). This is the per-table/figure bench
//! target DESIGN.md's experiment index points at; it prints the same
//! rows/series the paper reports.
//!
//! Scale: `SGP_SCALE` if set, otherwise `small` (kept below the
//! `experiments` binary's default so benching stays minutes, not hours).

use sgp_bench::experiments::{run, Params, ALL_EXPERIMENTS};
use sgp_core::config::Scale;

fn main() {
    // Respect `cargo bench -- <filter>` semantics loosely: any extra arg
    // filters experiment ids by substring.
    let args: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let scale = if std::env::var("SGP_SCALE").is_ok() { Scale::from_env() } else { Scale::Small };
    let params = Params::for_scale(scale);
    println!("regenerating the paper's tables and figures (scale: {scale:?})");
    for &id in ALL_EXPERIMENTS {
        if !args.is_empty() && !args.iter().any(|a| id.contains(a.as_str())) {
            continue;
        }
        let start = std::time::Instant::now();
        println!("{}", run(id, &params));
        println!("[{id}: {:.1}s]", start.elapsed().as_secs_f64());
    }
}
