//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!   experiments `<id>`...      run specific experiments (table1..table5, fig1..fig15)
//!   experiments all            run everything (opt-in extras like `robustness` excluded)
//!   experiments --list         list experiment ids
//!   experiments --trace `<path>`  also write the canonical trace JSON to `<path>`
//!
//! `--trace` records the canonical traced scenarios (DESIGN.md §9) —
//! the HDRF→PageRank engine run and the fault-injected DES — into one
//! schema-versioned JSON document. It never changes the experiment
//! output on stdout: results files stay byte-identical with tracing on
//! or off. Render the dump with `cargo run -p sgp-xtask -- trace-summary <path>`.
//!
//! Scale via SGP_SCALE=tiny|small|default|large (default: default).

use sgp_bench::experiments::{run, Params, ALL_EXPERIMENTS, EXTRA_EXPERIMENTS};
use sgp_core::trace_scenarios::combined_trace_json;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        if i + 1 >= args.len() {
            eprintln!("error: --trace requires a file path");
            std::process::exit(2);
        }
        trace_path = Some(args.remove(i + 1));
        args.remove(i);
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--trace <path>] <id>... | all | --list");
        eprintln!("ids: {}", ALL_EXPERIMENTS.join(", "));
        eprintln!("opt-in (excluded from `all`): {}", EXTRA_EXPERIMENTS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        for id in EXTRA_EXPERIMENTS {
            println!("{id} (opt-in)");
        }
        return;
    }
    let params = match Params::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        let mut ids = Vec::new();
        for a in &args {
            let known = ALL_EXPERIMENTS.iter().chain(EXTRA_EXPERIMENTS.iter()).find(|&&id| id == a);
            match known {
                Some(&id) => ids.push(id),
                None => {
                    eprintln!("unknown experiment id: {a}");
                    eprintln!(
                        "known ids: {} (opt-in: {})",
                        ALL_EXPERIMENTS.join(", "),
                        EXTRA_EXPERIMENTS.join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        ids
    };
    println!("streaming-graph-partitioning experiment harness (scale: {:?})", params.scale);
    for id in ids {
        let start = std::time::Instant::now();
        let report = run(id, &params);
        println!("{report}");
        println!("[{id} completed in {:.1}s]", start.elapsed().as_secs_f64());
    }
    if let Some(path) = trace_path {
        // Written after the experiment output and reported on stderr so
        // stdout (the results files) is byte-identical with and without
        // tracing.
        let json = match combined_trace_json(params.scale) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: trace scenario failed: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[trace written to {path} ({} bytes)]", json.len());
    }
}
