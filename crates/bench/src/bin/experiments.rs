//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!   experiments `<id>`...      run specific experiments (table1..table5, fig1..fig15)
//!   experiments all            run everything (opt-in extras like `robustness` excluded)
//!   experiments --list         list experiment ids
//!
//! Scale via SGP_SCALE=tiny|small|default|large (default: default).

use sgp_bench::experiments::{run, Params, ALL_EXPERIMENTS, EXTRA_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments <id>... | all | --list");
        eprintln!("ids: {}", ALL_EXPERIMENTS.join(", "));
        eprintln!("opt-in (excluded from `all`): {}", EXTRA_EXPERIMENTS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        for id in EXTRA_EXPERIMENTS {
            println!("{id} (opt-in)");
        }
        return;
    }
    let params = match Params::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        let mut ids = Vec::new();
        for a in &args {
            let known = ALL_EXPERIMENTS.iter().chain(EXTRA_EXPERIMENTS.iter()).find(|&&id| id == a);
            match known {
                Some(&id) => ids.push(id),
                None => {
                    eprintln!("unknown experiment id: {a}");
                    eprintln!(
                        "known ids: {} (opt-in: {})",
                        ALL_EXPERIMENTS.join(", "),
                        EXTRA_EXPERIMENTS.join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        ids
    };
    println!("streaming-graph-partitioning experiment harness (scale: {:?})", params.scale);
    for id in ids {
        let start = std::time::Instant::now();
        let report = run(id, &params);
        println!("{report}");
        println!("[{id} completed in {:.1}s]", start.elapsed().as_secs_f64());
    }
}
