//! One function per table/figure of the paper. Each returns the rendered
//! plain-text report (and the harness can also dump the raw rows as
//! JSON). See DESIGN.md §4 for the experiment index.

use sgp_core::config::{Dataset, Scale};
use sgp_core::decision::{recommend, OnlineObjective, WorkloadClass};
use sgp_core::error::SgpError;
use sgp_core::report::{f2, f3, human_bytes, TextTable};
use sgp_core::runners::{
    churn_suite, elastic_suite, engine_robustness_suite, fig1_scatter, loaders_suite,
    offline_suite, online_run, quality_suite, robustness_suite, series_slope, workload_aware_suite,
    ChurnMethod, ChurnSuiteConfig, ElasticityConfig, OfflineWorkload, OnlineRunConfig,
    RobustnessConfig,
};
use sgp_core::trace_scenarios::{record_db_scenario, record_engine_scenario, SCENARIO_MACHINES};
use sgp_db::workload::Skew;
use sgp_db::{FaultSimConfig, LoadLevel, SimConfig, WorkloadKind};
use sgp_engine::apps::PageRank;
use sgp_engine::{run_program, EngineOptions, Placement};
use sgp_graph::{ChurnConfig, Graph, GraphBuilder, StreamOrder};
use sgp_partition::{Algorithm, Partitioning};
use sgp_trace::SummarySink;

/// Scale-dependent experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Dataset/graph scale.
    pub scale: Scale,
    /// Partition counts for the quality sweeps (paper: 8..128).
    pub ks_quality: Vec<usize>,
    /// Partition counts for offline execution (paper: 8..128).
    pub ks_offline: Vec<usize>,
    /// Partition counts for online execution (paper: 4..32).
    pub ks_online: Vec<usize>,
    /// Machines for the Fig. 4 load-distribution panels (paper: 64).
    pub fig4_k: usize,
    /// Machines for Table 5 / Fig. 7 (paper: 16).
    pub online_k: usize,
    /// Query bindings per workload (paper: 1000).
    pub bindings: usize,
    /// Queries per client in the cluster simulation.
    pub queries_per_client: usize,
}

impl Params {
    /// Parameters for a given scale (smaller scales shrink the sweep so
    /// smoke runs stay fast).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => Params {
                scale,
                ks_quality: vec![4, 8, 16],
                ks_offline: vec![4, 8],
                ks_online: vec![4, 8],
                fig4_k: 16,
                online_k: 8,
                bindings: 200,
                queries_per_client: 15,
            },
            Scale::Small => Params {
                scale,
                ks_quality: vec![8, 16, 32, 64],
                ks_offline: vec![8, 16, 32],
                ks_online: vec![4, 8, 16],
                fig4_k: 32,
                online_k: 16,
                bindings: 500,
                queries_per_client: 25,
            },
            Scale::Default | Scale::Large => Params {
                scale,
                ks_quality: vec![8, 16, 32, 64, 128],
                ks_offline: vec![8, 16, 32, 64, 128],
                ks_online: vec![4, 8, 16, 32],
                fig4_k: 64,
                online_k: 16,
                bindings: 1000,
                queries_per_client: 40,
            },
        }
    }

    /// Parameters from `SGP_SCALE`. A set-but-unknown value is an error
    /// so a typo (`SGP_SCALE=smal`) aborts instead of silently running
    /// the default scale.
    pub fn from_env() -> Result<Self, SgpError> {
        Ok(Self::for_scale(Scale::try_from_env()?))
    }

    fn online_cfg(&self, level: LoadLevel) -> OnlineRunConfig {
        OnlineRunConfig {
            bindings: self.bindings,
            skew: Skew::Zipf { theta: 0.6 },
            queries_per_client: self.queries_per_client,
            clients_per_machine: level.clients_per_machine(),
            seed: 0x0_1A7,
        }
    }
}

/// All experiment ids, in paper order, plus the Appendix-A extension
/// showcase.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "appendixA",
];

/// Opt-in experiments excluded from `all` (and from the checked-in
/// results files, which must stay byte-identical release to release):
/// run them by naming them explicitly.
pub const EXTRA_EXPERIMENTS: &[&str] = &["robustness", "trace", "loaders", "elastic", "churn"];

/// Runs one experiment by id; returns the rendered report.
///
/// # Panics
/// Panics on an unknown id (the binary validates first).
pub fn run(id: &str, params: &Params) -> String {
    match id {
        "table1" => table1(),
        "table2" => table2(params),
        "table3" => table3(params),
        "table4" => table4(params),
        "table5" => table5(params),
        "fig1" => fig1(params),
        "fig2" => fig2(params),
        "fig3" => fig3(params),
        "fig4" => fig4(params),
        "fig5" => fig5(params),
        "fig6" => fig6(params),
        "fig7" => fig7(params),
        "fig8" => fig8(params),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(params),
        "fig13" => fig13(params),
        "fig14" => fig14(params),
        "fig15" => fig15(params),
        "appendixA" => appendix_a(params),
        "robustness" => robustness(params),
        "trace" => trace_demo(params),
        "loaders" => loaders(params),
        "elastic" => elastic(params),
        "churn" => churn(params),
        other => panic!("unknown experiment id: {other}"),
    }
}

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

// ---------------------------------------------------------------------------

/// Table 1: characteristics of the streaming graph partitioning
/// algorithms.
pub fn table1() -> String {
    let mut t = TextTable::new([
        "Algorithm",
        "Model",
        "Stream",
        "Cost Metric",
        "Parallelization",
        "Method",
    ]);
    for alg in Algorithm::all() {
        let i = alg.info();
        t.row([
            i.short_name.to_string(),
            i.model.to_string(),
            format!("{:?}", i.stream),
            i.cost_metric.to_string(),
            i.parallelization.to_string(),
            i.method.to_string(),
        ]);
    }
    format!("{}{}", header("Table 1 — Characteristics of SGP algorithms"), t.render())
}

/// Table 2: the experiment dimensions of the reproduction.
pub fn table2(params: &Params) -> String {
    let mut t = TextTable::new(["Workload", "Parameter", "Values"]);
    t.row([
        "Offline Analytics".to_string(),
        "System".to_string(),
        "sgp-engine (PowerLyra-like GAS simulator)".to_string(),
    ]);
    t.row([
        "".to_string(),
        "Algorithms".to_string(),
        Algorithm::offline_suite().iter().map(|a| a.short_name()).collect::<Vec<_>>().join(", "),
    ]);
    t.row(["".to_string(), "Workloads".to_string(), "PageRank, WCC, SSSP".to_string()]);
    t.row(["".to_string(), "Cluster Size".to_string(), format!("{:?}", params.ks_offline)]);
    t.row([
        "".to_string(),
        "Datasets".to_string(),
        "Twitter, UK2007-05, USA-Road (stand-ins)".to_string(),
    ]);
    t.row([
        "Online Queries".to_string(),
        "System".to_string(),
        "sgp-db (JanusGraph-like store + DES cluster)".to_string(),
    ]);
    t.row([
        "".to_string(),
        "Algorithms".to_string(),
        Algorithm::online_suite().iter().map(|a| a.short_name()).collect::<Vec<_>>().join(", "),
    ]);
    t.row(["".to_string(), "Workloads".to_string(), "1-hop, 2-hop, SPSP".to_string()]);
    t.row(["".to_string(), "Cluster Size".to_string(), format!("{:?}", params.ks_online)]);
    t.row(["".to_string(), "Datasets".to_string(), "all four stand-ins".to_string()]);
    format!("{}{}", header("Table 2 — Experiment dimensions"), t.render())
}

/// Table 3: dataset characteristics — paper's originals vs our measured
/// stand-ins.
pub fn table3(params: &Params) -> String {
    let mut t = TextTable::new([
        "Dataset",
        "Paper |E|",
        "Paper |V|",
        "Paper Avg/Max",
        "Ours |E|",
        "Ours |V|",
        "Ours Avg/Max",
        "Type (measured)",
    ]);
    for &d in Dataset::all() {
        let paper = d.paper_row();
        let s = d.stats(params.scale);
        t.row([
            d.name().to_string(),
            paper.edges.to_string(),
            paper.vertices.to_string(),
            paper.degrees.to_string(),
            s.edges.to_string(),
            s.vertices.to_string(),
            format!("{:.1} / {}", s.avg_degree, s.max_degree),
            s.classify().to_string(),
        ]);
    }
    format!("{}{}", header("Table 3 — Graph datasets (paper vs stand-ins)"), t.render())
}

/// Table 4: edge-cut ratio for the SNB-like graph, ECR/LDG/FNL/MTS.
pub fn table4(params: &Params) -> String {
    let g = Dataset::LdbcSnb.generate(params.scale);
    let mut t = TextTable::new(["Partitions", "ECR", "LDG", "FNL", "MTS"]);
    for &k in &params.ks_online {
        let rows = quality_suite(Dataset::LdbcSnb.name(), &g, Algorithm::online_suite(), &[k]);
        let get = |alg: Algorithm| {
            rows.iter()
                .find(|r| r.algorithm == alg)
                .and_then(|r| r.quality.edge_cut_ratio)
                .map(f2)
                .unwrap_or_default()
        };
        t.row([
            k.to_string(),
            get(Algorithm::EcrHash),
            get(Algorithm::Ldg),
            get(Algorithm::Fennel),
            get(Algorithm::Metis),
        ]);
    }
    format!(
        "{}{}\n(paper at SF-1000: 4→0.75/0.74/0.47/0.31 ... 32→0.97/0.84/0.66/0.51)\n",
        header("Table 4 — Edge-cut ratio, LDBC-SNB-like graph"),
        t.render()
    )
}

/// Table 5: mean and p99 1-hop latencies under medium and high load.
pub fn table5(params: &Params) -> String {
    let g = Dataset::LdbcSnb.generate(params.scale);
    let mut t = TextTable::new([
        "Algorithm",
        "Medium Mean (ms)",
        "Medium 99th (ms)",
        "High Mean (ms)",
        "High 99th (ms)",
    ]);
    for &alg in Algorithm::online_suite() {
        let med = online_run(
            Dataset::LdbcSnb.name(),
            &g,
            alg,
            WorkloadKind::OneHop,
            params.online_k,
            &params.online_cfg(LoadLevel::Medium),
        );
        let high = online_run(
            Dataset::LdbcSnb.name(),
            &g,
            alg,
            WorkloadKind::OneHop,
            params.online_k,
            &params.online_cfg(LoadLevel::High),
        );
        t.row([
            alg.short_name().to_string(),
            f2(med.mean_latency_ms),
            f2(med.p99_latency_ms),
            f2(high.mean_latency_ms),
            f2(high.p99_latency_ms),
        ]);
    }
    format!(
        "{}{}\n(paper, 16 machines: locality-seeking SGP inflates the high-load tail — FNL's p99 up to 3.5x ECR's)\n",
        header(format!("Table 5 — 1-hop latency, {} machines", params.online_k).as_str()),
        t.render()
    )
}

/// Fig. 1: replication factor vs total network I/O per workload, per cut
/// model, on the Twitter-like graph.
pub fn fig1(params: &Params) -> String {
    let g = Dataset::Twitter.generate(params.scale);
    let algs = [
        Algorithm::EcrHash,
        Algorithm::Ldg,
        Algorithm::Fennel,
        Algorithm::VcrHash,
        Algorithm::Dbh,
        Algorithm::Hdrf,
        Algorithm::HybridRandom,
        Algorithm::Ginger,
    ];
    let mut out = header("Fig. 1 — Replication factor vs total network I/O (Twitter-like)");
    for workload in OfflineWorkload::all() {
        let points = fig1_scatter(&g, *workload, &params.ks_offline, &algs);
        let mut t = TextTable::new(["Series", "Alg", "k", "RF", "Network I/O"]);
        for p in &points {
            t.row([
                p.series.clone(),
                p.algorithm.short_name().to_string(),
                p.k.to_string(),
                f2(p.x),
                human_bytes(p.y_bytes),
            ]);
        }
        let slope = |series: &str| {
            let pts: Vec<_> = points.iter().filter(|p| p.series == series).cloned().collect();
            series_slope(&pts)
        };
        out.push_str(&format!("\n--- {workload} ---\n{}", t.render()));
        out.push_str(&format!(
            "slopes (bytes per mirror): edge-cut {:.0}, vertex-cut {:.0}, hybrid-cut {:.0}\n",
            slope("edge-cut"),
            slope("vertex-cut"),
            slope("hybrid-cut"),
        ));
    }
    out.push_str(
        "\n(paper: linear in RF for every workload; edge-cut's slope lowest for PageRank's \
         uni-directional communication; PageRank moves the most data)\n",
    );
    out
}

/// Fig. 2: replication factors of all algorithms over all graphs and
/// partition counts.
pub fn fig2(params: &Params) -> String {
    let mut out = header("Fig. 2 — Replication factors (all algorithms x datasets x k)");
    for &dataset in Dataset::offline_set() {
        let g = dataset.generate(params.scale);
        let rows =
            quality_suite(dataset.name(), &g, Algorithm::offline_suite(), &params.ks_quality);
        let mut t = TextTable::new({
            let mut h = vec!["k".to_string()];
            h.extend(Algorithm::offline_suite().iter().map(|a| a.short_name().to_string()));
            h
        });
        for &k in &params.ks_quality {
            let mut row = vec![k.to_string()];
            for &alg in Algorithm::offline_suite() {
                let rf = rows
                    .iter()
                    .find(|r| r.k == k && r.algorithm == alg)
                    .map(|r| f2(r.quality.replication_factor))
                    .unwrap_or_default();
                row.push(rf);
            }
            t.row(row);
        }
        out.push_str(&format!("\n--- {dataset} ---\n{}", t.render()));
    }
    out.push_str(
        "\n(paper: no single winner — FNL/LDG lowest on USA-Road, HDRF/DBH/HG lowest on \
         Twitter, HDRF lowest vertex-cut on UK2007-05)\n",
    );
    out
}

/// Fig. 3: execution time of the offline workloads on the Twitter-like
/// graph across cluster sizes.
pub fn fig3(params: &Params) -> String {
    let g = Dataset::Twitter.generate(params.scale);
    let rows = offline_suite(
        Dataset::Twitter.name(),
        &g,
        Algorithm::offline_suite(),
        OfflineWorkload::all(),
        &params.ks_offline,
    );
    let mut out = header("Fig. 3 — Offline workload execution time (Twitter-like, ms)");
    for workload in OfflineWorkload::all() {
        let mut t = TextTable::new({
            let mut h = vec!["k".to_string()];
            h.extend(Algorithm::offline_suite().iter().map(|a| a.short_name().to_string()));
            h
        });
        for &k in &params.ks_offline {
            let mut row = vec![k.to_string()];
            for &alg in Algorithm::offline_suite() {
                let v = rows
                    .iter()
                    .find(|r| r.k == k && r.algorithm == alg && r.workload == *workload)
                    .map(|r| f3(r.exec_seconds * 1e3))
                    .unwrap_or_default();
                row.push(v);
            }
            t.row(row);
        }
        out.push_str(&format!("\n--- {workload} ---\n{}", t.render()));
    }
    out.push_str(
        "\n(paper: edge-cut SGP slow on Twitter; vertex/hybrid-cut fastest, HDRF best; \
         differences shrink for WCC/SSSP; scaling flattens at high k)\n",
    );
    out
}

/// Fig. 4: distribution of per-worker computation time during PageRank.
pub fn fig4(params: &Params) -> String {
    let k = params.fig4_k;
    let mut out = header(
        format!(
            "Fig. 4 — Per-worker PageRank compute time, {k} machines (min/p25/med/p75/max, ms)"
        )
        .as_str(),
    );
    for &dataset in Dataset::offline_set() {
        let g = dataset.generate(params.scale);
        let rows = offline_suite(
            dataset.name(),
            &g,
            Algorithm::offline_suite(),
            &[OfflineWorkload::PageRank],
            &[k],
        );
        let mut t = TextTable::new(["Alg", "min", "p25", "median", "p75", "max", "max/med"]);
        for r in &rows {
            let d = r.compute_dist;
            t.row([
                r.algorithm.short_name().to_string(),
                f3(d[0] * 1e3),
                f3(d[1] * 1e3),
                f3(d[2] * 1e3),
                f3(d[3] * 1e3),
                f3(d[4] * 1e3),
                f2(d[4] / d[2].max(1e-12)),
            ]);
        }
        out.push_str(&format!("\n--- {dataset} ---\n{}", t.render()));
    }
    out.push_str(
        "\n(paper: balanced partition sizes do not imply balanced computation — edge-cut \
         spreads widest on the skewed graphs, tightest on USA-Road)\n",
    );
    out
}

/// Fig. 5: edge-cut ratio vs network I/O for the 1-hop workload on the
/// SNB-like graph.
pub fn fig5(params: &Params) -> String {
    let g = Dataset::LdbcSnb.generate(params.scale);
    let mut t = TextTable::new(["Alg", "k", "Edge-cut ratio", "Network I/O"]);
    let mut points: Vec<(f64, u64)> = Vec::new();
    for &k in &params.ks_online {
        for &alg in Algorithm::online_suite() {
            let row = online_run(
                Dataset::LdbcSnb.name(),
                &g,
                alg,
                WorkloadKind::OneHop,
                k,
                &params.online_cfg(LoadLevel::Medium),
            );
            points.push((row.edge_cut_ratio, row.network_bytes));
            t.row([
                alg.short_name().to_string(),
                k.to_string(),
                f3(row.edge_cut_ratio),
                human_bytes(row.network_bytes),
            ]);
        }
    }
    // Pearson correlation of (ecr, bytes) — the paper's "linear function".
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1 as f64).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 as f64 - my)).sum();
    let vx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = points.iter().map(|p| (p.1 as f64 - my).powi(2)).sum();
    let r = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
    format!(
        "{}{}\ncorrelation(edge-cut ratio, network I/O) = {:.3}   (paper: linear, all \
         algorithms on one trend)\n",
        header("Fig. 5 — Edge-cut ratio vs network I/O, 1-hop on SNB-like"),
        t.render(),
        r
    )
}

/// Fig. 6: aggregate throughput for 1-hop and 2-hop workloads under
/// medium and high load across cluster sizes.
pub fn fig6(params: &Params) -> String {
    let g = Dataset::LdbcSnb.generate(params.scale);
    let mut out = header("Fig. 6 — Aggregate throughput (queries/s), SNB-like");
    for kind in [WorkloadKind::OneHop, WorkloadKind::TwoHop] {
        for level in [LoadLevel::Medium, LoadLevel::High] {
            let mut t = TextTable::new({
                let mut h = vec!["k".to_string()];
                h.extend(Algorithm::online_suite().iter().map(|a| a.short_name().to_string()));
                h
            });
            for &k in &params.ks_online {
                let mut row = vec![k.to_string()];
                for &alg in Algorithm::online_suite() {
                    let r = online_run(
                        Dataset::LdbcSnb.name(),
                        &g,
                        alg,
                        kind,
                        k,
                        &params.online_cfg(level),
                    );
                    row.push(format!("{:.0}", r.throughput_qps));
                }
                t.row(row);
            }
            out.push_str(&format!("\n--- {kind}, {level} load ---\n{}", t.render()));
        }
    }
    out.push_str(
        "\n(paper: partitioning matters less than offline — MTS best, ~25%/18% over hash for \
         1-hop/2-hop; SGP gains evaporate under high load)\n",
    );
    out
}

/// Fig. 7: per-worker vertex-read distribution for the 1-hop workload.
pub fn fig7(params: &Params) -> String {
    fig_reads_distribution(
        params,
        &[Dataset::LdbcSnb],
        format!("Fig. 7 — Per-worker vertex reads, 1-hop, {} machines (SNB-like)", params.online_k),
    )
}

fn fig_reads_distribution(params: &Params, datasets: &[Dataset], title: String) -> String {
    let mut out = header(&title);
    for &dataset in datasets {
        let g = dataset.generate(params.scale);
        let mut t = TextTable::new(["Alg", "min", "p25", "median", "p75", "max", "RSD"]);
        for &alg in Algorithm::online_suite() {
            let row = online_run(
                dataset.name(),
                &g,
                alg,
                WorkloadKind::OneHop,
                params.online_k,
                &params.online_cfg(LoadLevel::Medium),
            );
            let d = row.reads_dist;
            t.row([
                alg.short_name().to_string(),
                format!("{:.0}", d[0]),
                format!("{:.0}", d[1]),
                format!("{:.0}", d[2]),
                format!("{:.0}", d[3]),
                format!("{:.0}", d[4]),
                f3(row.load_rsd),
            ]);
        }
        out.push_str(&format!("\n--- {dataset} ---\n{}", t.render()));
    }
    out.push_str(
        "\n(paper: unlike offline analytics, FNL and LDG suffer read imbalance on every \
         dataset once the workload is skewed)\n",
    );
    out
}

/// Fig. 8: workload-aware weighted repartitioning.
pub fn fig8(params: &Params) -> String {
    let g = Dataset::LdbcSnb.generate(params.scale);
    let run_cfg =
        OnlineRunConfig { skew: Skew::Zipf { theta: 1.1 }, ..params.online_cfg(LoadLevel::High) };
    let rows = workload_aware_suite(&g, params.online_k, &run_cfg);
    let mut t = TextTable::new(["Config", "Throughput (q/s)", "Load RSD"]);
    for r in &rows {
        t.row([r.label.clone(), format!("{:.0}", r.throughput_qps), f3(r.load_rsd)]);
    }
    format!(
        "{}{}\n(paper: complete workload information gives 13%–35% more throughput and a \
         balanced read distribution — 'MTS (W)' is the weighted configuration; \
         'aLDG (W)' is this reproduction's streaming extension, Appendix A)\n",
        header("Fig. 8 — Workload-aware repartitioning, 1-hop on SNB-like"),
        t.render()
    )
}

/// Fig. 9: the decision tree, exercised over every input combination.
pub fn fig9() -> String {
    use sgp_graph::stats::GraphClass;
    let mut t = TextTable::new(["Workload", "Graph / objective", "Recommendation"]);
    for class in [GraphClass::LowDegree, GraphClass::PowerLaw, GraphClass::HeavyTailed] {
        let r = recommend(WorkloadClass::OfflineAnalytics, Some(class), None);
        t.row(["Analytics".to_string(), class.to_string(), r.algorithm.to_string()]);
    }
    for obj in [OnlineObjective::TailLatency, OnlineObjective::Throughput] {
        let r = recommend(WorkloadClass::OnlineQueries, None, Some(obj));
        t.row(["Online Queries".to_string(), format!("{obj:?}"), r.algorithm.to_string()]);
    }
    format!("{}{}", header("Fig. 9 — Decision tree for picking an SGP algorithm"), t.render())
}

/// Fig. 10 (Appendix B): message counts on the worked 6-vertex example
/// under the three placement schemes.
pub fn fig10() -> String {
    // The example of Fig. 10: five edges into vertex 5, one chain edge.
    let g: Graph = GraphBuilder::new()
        .add_edge(0, 5)
        .add_edge(1, 5)
        .add_edge(2, 5)
        .add_edge(3, 5)
        .add_edge(4, 5)
        .add_edge(0, 1)
        .build();
    let owner = vec![0u32, 0, 1, 1, 2, 2];
    let edge_cut = Partitioning::from_vertex_owners(&g, 3, owner);
    let vertex_cut = Partitioning::from_edge_parts(&g, 3, vec![0, 1, 0, 1, 1, 2]);
    let pr = PageRank::new(1);
    let mut t = TextTable::new(["Placement", "Gather msgs", "Update msgs", "Total"]);
    for (label, p, aggregation) in [
        ("edge-cut, no aggregation (10a)", &edge_cut, false),
        ("edge-cut, sender-side agg (10b)", &edge_cut, true),
        ("vertex-cut, src-grouped (10c)", &vertex_cut, true),
    ] {
        let placement = Placement::build(&g, p);
        let opts = EngineOptions { sender_side_aggregation: aggregation, ..Default::default() };
        let (_, report) = run_program(&g, &placement, &pr, &opts);
        let gather: u64 = report.iterations.iter().map(|i| i.gather_messages).sum();
        let update: u64 = report.iterations.iter().map(|i| i.update_messages).sum();
        t.row([
            label.to_string(),
            gather.to_string(),
            update.to_string(),
            (gather + update).to_string(),
        ]);
    }
    format!(
        "{}{}\n(Appendix B: aggregation collapses per-edge messages to per-mirror ones; the \
         edge-cut placement never sends vertex updates for PageRank)\n",
        header("Fig. 10 — Cut models and inter-machine communication (worked example)"),
        t.render()
    )
}

/// Fig. 11 (Appendix C): the architecture this reproduction simulates.
pub fn fig11() -> String {
    format!(
        "{}\
         clients → partitioning-aware query router → worker machines\n\
         each worker = query-execution instance (sgp-db::query) co-located with its\n\
         storage shard (sgp-db::store); shards are an adjacency list cut by a\n\
         vertex-ownership map; the working set is memory-resident; closed-loop\n\
         clients drive the discrete-event simulation (sgp-db::sim).\n",
        header("Fig. 11 — JanusGraph-like architecture of the online substrate")
    )
}

/// Fig. 12: aggregate throughput with a *fixed* client population as the
/// cluster grows (the paper's 192 clients over 4..32 machines).
pub fn fig12(params: &Params) -> String {
    let g = Dataset::LdbcSnb.generate(params.scale);
    let total_clients = 24 * params.ks_online.iter().min().copied().unwrap_or(4);
    let mut t = TextTable::new({
        let mut h = vec!["k".to_string()];
        h.extend(Algorithm::online_suite().iter().map(|a| a.short_name().to_string()));
        h
    });
    for &k in &params.ks_online {
        let mut row = vec![k.to_string()];
        for &alg in Algorithm::online_suite() {
            let cfg = OnlineRunConfig {
                clients_per_machine: (total_clients / k).max(1),
                ..params.online_cfg(LoadLevel::Medium)
            };
            let r = online_run(Dataset::LdbcSnb.name(), &g, alg, WorkloadKind::OneHop, k, &cfg);
            row.push(format!("{:.0}", r.throughput_qps));
        }
        t.row(row);
    }
    format!(
        "{}{}\n({} fixed clients; paper: throughput degrades beyond 16 workers as \
         communication overhead dominates. Our simulator reproduces the diminishing \
         returns — throughput per added machine falls steadily — but not the outright \
         decline, which stems from Cassandra cluster-coordination costs outside the \
         model; see EXPERIMENTS.md)\n",
        header("Fig. 12 — Throughput vs cluster size, fixed client population"),
        t.render(),
        total_clients
    )
}

/// Fig. 13: the full offline grid — all workloads x datasets x k.
pub fn fig13(params: &Params) -> String {
    let mut out = header("Fig. 13 — Full offline grid (execution ms)");
    for &dataset in Dataset::offline_set() {
        let g = dataset.generate(params.scale);
        let rows = offline_suite(
            dataset.name(),
            &g,
            Algorithm::offline_suite(),
            OfflineWorkload::all(),
            &params.ks_offline,
        );
        for workload in OfflineWorkload::all() {
            let mut t = TextTable::new({
                let mut h = vec!["k".to_string()];
                h.extend(Algorithm::offline_suite().iter().map(|a| a.short_name().to_string()));
                h
            });
            for &k in &params.ks_offline {
                let mut row = vec![k.to_string()];
                for &alg in Algorithm::offline_suite() {
                    let v = rows
                        .iter()
                        .find(|r| r.k == k && r.algorithm == alg && r.workload == *workload)
                        .map(|r| f3(r.exec_seconds * 1e3))
                        .unwrap_or_default();
                    row.push(v);
                }
                t.row(row);
            }
            out.push_str(&format!("\n--- {dataset} / {workload} ---\n{}", t.render()));
        }
    }
    out
}

/// Fig. 14: 1-hop throughput on the real-world-like graphs.
pub fn fig14(params: &Params) -> String {
    let mut out = header(
        format!(
            "Fig. 14 — 1-hop throughput on real-world-like graphs, {} machines",
            params.online_k
        )
        .as_str(),
    );
    for &dataset in Dataset::offline_set() {
        let g = dataset.generate(params.scale);
        let mut t = TextTable::new(["Alg", "Medium (q/s)", "High (q/s)"]);
        for &alg in Algorithm::online_suite() {
            let med = online_run(
                dataset.name(),
                &g,
                alg,
                WorkloadKind::OneHop,
                params.online_k,
                &params.online_cfg(LoadLevel::Medium),
            );
            let high = online_run(
                dataset.name(),
                &g,
                alg,
                WorkloadKind::OneHop,
                params.online_k,
                &params.online_cfg(LoadLevel::High),
            );
            t.row([
                alg.short_name().to_string(),
                format!("{:.0}", med.throughput_qps),
                format!("{:.0}", high.throughput_qps),
            ]);
        }
        out.push_str(&format!("\n--- {dataset} ---\n{}", t.render()));
    }
    out
}

/// Fig. 15: per-worker read distributions on every dataset.
pub fn fig15(params: &Params) -> String {
    fig_reads_distribution(
        params,
        Dataset::all(),
        format!(
            "Fig. 15 — Per-worker vertex reads, 1-hop, {} machines (all datasets)",
            params.online_k
        ),
    )
}

/// Appendix A showcase: the generalized-cost-model algorithms the paper
/// surveys but does not evaluate — heterogeneous capacities
/// (LeBeane/BMI), attribute balancing (re-streaming on `a(u)`), and
/// edge-cut on edge streams (IOGP-class).
pub fn appendix_a(params: &Params) -> String {
    use sgp_core::runners::default_order;
    use sgp_partition::attribute::AttributeLdg;
    use sgp_partition::edge_cut::run_vertex_stream;
    use sgp_partition::edge_stream_cut::IogpStyle;
    use sgp_partition::hetero::{ClusterProfile, HeteroHdrf};
    use sgp_partition::metrics;
    use sgp_partition::vertex_cut::run_edge_stream;
    use sgp_partition::PartitionerConfig;

    let mut out = header("Appendix A — generalized cost models (survey algorithms, implemented)");

    // 1. Heterogeneous cluster: one machine with 4x capacity.
    let g = Dataset::Twitter.generate(params.scale);
    let k = 4;
    let cfg = PartitionerConfig::new(k);
    let profile = ClusterProfile::new(&[4.0, 1.0, 1.0, 1.0]);
    let mut hdrf = HeteroHdrf::new(&cfg, profile.clone(), g.num_edges());
    let p = run_edge_stream(&g, &mut hdrf, k, default_order());
    let counts = p.edges_per_partition();
    let total: usize = counts.iter().sum();
    let mut t = TextTable::new(["Machine", "Capacity share", "Edge share"]);
    for (i, &c) in counts.iter().enumerate() {
        t.row([i.to_string(), f3(profile.share(i)), f3(c as f64 / total as f64)]);
    }
    out.push_str(&format!(
        "\n--- heterogeneous HDRF (LeBeane-style), Twitter-like, machine 0 has 4x capacity ---\n{}",
        t.render()
    ));

    // 2. Attribute balancing vs plain LDG under skewed access weights.
    let g = Dataset::LdbcSnb.generate(params.scale);
    let cfg = PartitionerConfig::new(8);
    let weights: Vec<u64> = g.vertices().map(|v| 1 + (g.degree(v) as u64).pow(2) / 8).collect();
    let mut aldg = AttributeLdg::new(&cfg, weights.clone());
    let aware = run_vertex_stream(&g, &mut aldg, 8, default_order());
    let plain = sgp_partition::partition(&g, Algorithm::Ldg, &cfg, default_order());
    let load_imb = |p: &Partitioning| {
        let mut loads = vec![0u64; 8];
        for (v, &part) in p.vertex_owner.as_ref().unwrap().iter().enumerate() {
            loads[part as usize] += weights[v];
        }
        let avg = loads.iter().sum::<u64>() as f64 / 8.0;
        *loads.iter().max().unwrap() as f64 / avg
    };
    out.push_str(&format!(
        "\n--- attribute-balanced LDG (x_i = sum a(u)), SNB-like, degree^2 weights ---\n\
         plain LDG weight imbalance: {:.2}   attribute LDG: {:.2}   (slack 1.05)\n",
        load_imb(&plain),
        load_imb(&aware)
    ));

    // 3. Edge-cut on edge streams (IOGP-class): the quality gap of §4.1.2.
    let iogp = IogpStyle::new(&cfg, g.num_vertices()).run(&g, default_order());
    let ldg = plain;
    let hash = sgp_partition::partition(&g, Algorithm::EcrHash, &cfg, default_order());
    out.push_str(&format!(
        "\n--- edge-cut on edge streams (IOGP-style), SNB-like, k=8 ---\n\
         edge-cut ratio: hash {:.3}, IOGP-style {:.3}, LDG (vertex stream) {:.3}\n\
         (§4.1.2 expects vertex-stream < edge-stream < hash; IOGP's periodic\n\
         reassessment can close the gap to LDG on small community graphs)\n",
        metrics::edge_cut_ratio(&g, &hash).unwrap(),
        metrics::edge_cut_ratio(&g, &iogp).unwrap(),
        metrics::edge_cut_ratio(&g, &ldg).unwrap(),
    ));
    out
}

/// Robustness suite (opt-in; see [`EXTRA_EXPERIMENTS`]): availability,
/// goodput and fault-inflated runtime under one shared deterministic
/// fault plan — a permanent crash of machine `k − 1`, a 2× straggler on
/// machine 0, and 0.2% message loss. Mirror-bearing cuts (vertex,
/// hybrid) fail reads over to live mirrors; edge-cut cannot.
pub fn robustness(params: &Params) -> String {
    let k = params.online_k;
    let cfg = RobustnessConfig {
        bindings: params.bindings,
        sim: FaultSimConfig {
            base: SimConfig {
                clients_per_machine: LoadLevel::Medium.clients_per_machine(),
                queries_per_client: params.queries_per_client,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let g = Dataset::LdbcSnb.generate(params.scale);
    let algs = [
        Algorithm::EcrHash,
        Algorithm::Ldg,
        Algorithm::VcrHash,
        Algorithm::Hdrf,
        Algorithm::HybridRandom,
        Algorithm::Ginger,
    ];
    let mut out = header(
        format!("Robustness — fault injection, {k} machines (crash + straggler + message loss)")
            .as_str(),
    );
    match robustness_suite(Dataset::LdbcSnb.name(), &g, &algs, k, &cfg) {
        Ok(rows) => {
            let mut t = TextTable::new([
                "Alg",
                "Cut",
                "Avail",
                "Goodput q/s",
                "Offered q/s",
                "Retries",
                "Drops",
                "Failovers",
                "p50 ms",
                "p99 ms",
            ]);
            for r in &rows {
                t.row([
                    r.algorithm.short_name().to_string(),
                    r.cut_model.clone(),
                    f3(r.availability),
                    format!("{:.0}", r.goodput_qps),
                    format!("{:.0}", r.offered_qps),
                    r.retries.to_string(),
                    r.dropped_messages.to_string(),
                    r.failovers.to_string(),
                    f2(r.p50_latency_ms),
                    f2(r.p99_latency_ms),
                ]);
            }
            out.push_str(&format!(
                "\n--- online (DES): availability and goodput under faults ---\n{}",
                t.render()
            ));
        }
        Err(e) => out.push_str(&format!("\nonline robustness run failed: {e}\n")),
    }
    let rows = engine_robustness_suite(Dataset::LdbcSnb.name(), &g, &algs, k, &cfg);
    let mut t = TextTable::new([
        "Alg",
        "Cut",
        "Healthy ms",
        "Faulted ms",
        "Recovered",
        "Recomputed",
        "Recovery bytes",
        "Straggler ms",
    ]);
    for r in &rows {
        t.row([
            r.algorithm.short_name().to_string(),
            r.cut_model.clone(),
            f3(r.healthy_seconds * 1e3),
            f3(r.faulted_seconds * 1e3),
            r.recovered_vertices.to_string(),
            r.recomputed_vertices.to_string(),
            human_bytes(r.recovery_bytes),
            f3(r.straggler_extra_seconds * 1e3),
        ]);
    }
    out.push_str(&format!("\n--- engine: PageRank under the same plan ---\n{}", t.render()));
    out.push_str(
        "\n(replication pays under faults: vertex/hybrid-cut placements redirect reads to \
         live mirrors and restore crashed masters from mirror state, while edge-cut \
         placements lose the dead machine's masters and recompute them from scratch)\n",
    );
    out
}

/// Multi-loader ablation (opt-in; see [`EXTRA_EXPERIMENTS`]): quality
/// versus the number of parallel loaders `L` and the state
/// synchronization interval `T` — Table 1's "Parallelization" column
/// made measurable. Each loader streams its stride of the input against
/// shared state that is stale between barriers; everything is seeded and
/// deterministic, so the same invocation always renders byte-identical
/// output.
pub fn loaders(params: &Params) -> String {
    let k = params.online_k;
    let g = Dataset::Twitter.generate(params.scale);
    let algs = [Algorithm::Ldg, Algorithm::Dbh, Algorithm::PowerGraphGreedy, Algorithm::Hdrf];
    let orders = [("random", StreamOrder::Random { seed: 0x51C9_2019 }), ("bfs", StreamOrder::Bfs)];
    let loader_counts = [1usize, 2, 4, 8];
    let sync_intervals = [64usize, 1024];
    let rows = loaders_suite(
        Dataset::Twitter.name(),
        &g,
        &algs,
        k,
        &orders,
        &loader_counts,
        &sync_intervals,
    );
    let mut out = header(
        format!("Multi-loader ablation — {k} partitions, quality vs loaders and staleness")
            .as_str(),
    );
    for (order_name, _) in &orders {
        let mut t = TextTable::new(["Alg", "Loaders", "Sync T", "RF", "Edge-cut", "Edge imb."]);
        for r in rows.iter().filter(|r| r.order == *order_name) {
            t.row([
                r.algorithm.short_name().to_string(),
                r.loaders.to_string(),
                r.sync_interval.to_string(),
                f2(r.quality.replication_factor),
                r.quality.edge_cut_ratio.map(f3).unwrap_or_else(|| "n/a".to_string()),
                f2(r.quality.edge_imbalance),
            ]);
        }
        out.push_str(&format!("\n--- {order_name} stream order ---\n{}", t.render()));
    }
    out.push_str(
        "\n(hash methods are loader-count-invariant; greedy methods place against stale \
         state, so their quality degrades as L and the sync interval grow — the BFS \
         advantage of PowerGraph's greedy collapses fastest, while HDRF's partial-degree \
         scoring stays comparatively robust)\n",
    );
    out
}

/// Elasticity suite (opt-in; see [`EXTRA_EXPERIMENTS`]): availability,
/// p99 latency and recovery accounting while the cluster rides out a
/// crash-rejoin of machine `k − 1`. The rejoined machine's state
/// restore is priced by the bounded-movement rebalance over each
/// algorithm's own placement and charged to the DES, so the RTO and
/// data-moved columns separate the cut models (DESIGN.md §11).
pub fn elastic(params: &Params) -> String {
    let k = params.online_k;
    let cfg = ElasticityConfig {
        bindings: params.bindings,
        sim: FaultSimConfig {
            base: SimConfig {
                clients_per_machine: LoadLevel::Medium.clients_per_machine(),
                queries_per_client: params.queries_per_client,
                ..Default::default()
            },
            ..ElasticityConfig::default().sim
        },
        ..Default::default()
    };
    let g = Dataset::LdbcSnb.generate(params.scale);
    let algs = [
        Algorithm::EcrHash,
        Algorithm::Ldg,
        Algorithm::VcrHash,
        Algorithm::Hdrf,
        Algorithm::HybridRandom,
        Algorithm::Ginger,
    ];
    let mut out = header(
        format!("Elasticity — crash-rejoin of machine {}, bounded-movement recovery", k - 1)
            .as_str(),
    );
    match elastic_suite(Dataset::LdbcSnb.name(), &g, &algs, k, &cfg) {
        Ok(rows) => {
            let mut t = TextTable::new([
                "Alg",
                "Cut",
                "Avail",
                "p99 ms",
                "RTO ms",
                "Data moved",
                "Moves",
                "Balanced",
                "Shed",
                "Failovers",
            ]);
            for r in &rows {
                t.row([
                    r.algorithm.short_name().to_string(),
                    r.cut_model.clone(),
                    f3(r.availability),
                    f2(r.p99_latency_ms),
                    f2(r.rto_ms),
                    r.data_moved.to_string(),
                    r.vertices_moved.to_string(),
                    if r.balance_restored { "yes" } else { "no" }.to_string(),
                    r.shed_queries.to_string(),
                    r.failovers.to_string(),
                ]);
            }
            out.push_str(&format!(
                "\n--- online (DES): riding out a membership change ---\n{}",
                t.render()
            ));
            out.push_str(
                "\n(mirror-bearing cuts keep serving through the outage, so their availability \
                 dip is the admission-control shedding during restore; edge-cut loses the dead \
                 machine's masters outright. Data moved follows each placement's balance: the \
                 more even the masters, the less the rebalance ships)\n",
            );
        }
        Err(e) => out.push_str(&format!("\nelastic run failed: {e}\n")),
    }
    out
}

/// Churn suite (opt-in; see [`EXTRA_EXPERIMENTS`]): dynamic-graph
/// maintenance under a seeded edge insert/delete stream over every
/// dataset family. Each method starts from its own initial partition
/// and reacts to imbalance/cut-degradation triggers — 2PS and windowed
/// LDG repartition from scratch, restreamed LDG repairs under a
/// movement budget — so the table is the quality-vs-movement tradeoff
/// curve of DESIGN.md §12. Deterministic: same scale, same bytes.
pub fn churn(params: &Params) -> String {
    let k = 4;
    let mut out = header("Churn — dynamic-graph maintenance: quality vs movement");
    let mut t =
        TextTable::new(["Dataset", "Method", "Batches", "Repart", "Moved", "Cut", "RF", "Imbal"]);
    for &d in Dataset::all() {
        let g = d.generate(params.scale);
        let cfg = ChurnSuiteConfig {
            k,
            churn: ChurnConfig {
                batches: 6,
                inserts_per_batch: (g.num_edges() / 16).max(8),
                deletes_per_batch: (g.num_edges() / 20).max(6),
                seed: 0xC0_2019,
            },
            restream_budget: (g.num_vertices() / 8).max(16),
            ..ChurnSuiteConfig::default()
        };
        for r in churn_suite(d.name(), &g, ChurnMethod::all(), &cfg) {
            t.row([
                r.dataset.clone(),
                r.method.name().to_string(),
                r.batches.to_string(),
                r.repartitions.to_string(),
                r.vertices_moved.to_string(),
                f3(r.final_cut_ratio),
                f2(r.final_quality.replication_factor),
                f2(r.final_quality.edge_imbalance),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(quality vs movement: full repartitioning — 2PS, windowed LDG — buys the lowest \
         final cut at the price of relocating a large share of the graph on every trigger; \
         the budgeted restream holds movement at its cap and pays a modest cut penalty)\n",
    );
    out
}

/// Trace demo (opt-in; see [`EXTRA_EXPERIMENTS`]): runs the canonical
/// traced scenarios through a streaming [`SummarySink`] and renders the
/// aggregation — the same event streams `experiments --trace <path>`
/// dumps as JSON and `sgp-xtask trace-summary` renders from a file.
pub fn trace_demo(params: &Params) -> String {
    let k = SCENARIO_MACHINES;
    let mut sink = SummarySink::new();
    let engine_report = record_engine_scenario(params.scale, &mut sink);
    let db_report = record_db_scenario(params.scale, &mut sink);
    let mut out = header(
        format!("Trace — observability demo (HDRF→PageRank engine run + {k}-machine faulted DES)")
            .as_str(),
    );

    let mut t = TextTable::new(["Span", "Count", "Total", "Self"]);
    for (name, stat) in sink.spans_by_self_cost().into_iter().take(8) {
        t.row([
            name.to_string(),
            stat.count.to_string(),
            stat.total.to_string(),
            stat.self_total.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\n--- top spans by self cost (engine/db stamps are simulated ns, partition stamps \
         are stream elements) ---\n{}",
        t.render()
    ));

    let mut t = TextTable::new(["Machine", "Engine bytes", "Engine compute ms", "DB reads"]);
    for m in 0..k as u64 {
        t.row([
            m.to_string(),
            human_bytes(*sink.counters().get(&("engine.machine_bytes", m)).unwrap_or(&0)),
            f3(*sink.counters().get(&("engine.machine_compute_ns", m)).unwrap_or(&0) as f64 / 1e6),
            sink.counters().get(&("db.reads", m)).unwrap_or(&0).to_string(),
        ]);
    }
    out.push_str(&format!("\n--- per-machine load ---\n{}", t.render()));

    let mut t = TextTable::new(["Counter", "Total", "Report field"]);
    let traced_messages =
        sink.counter_total("engine.gather_messages") + sink.counter_total("engine.update_messages");
    t.row([
        "engine messages".to_string(),
        traced_messages.to_string(),
        engine_report.total_messages().to_string(),
    ]);
    t.row([
        "engine.network_bytes".to_string(),
        sink.counter_total("engine.network_bytes").to_string(),
        engine_report.total_network_bytes().to_string(),
    ]);
    for name in
        ["partition.balance_tiebreaks", "partition.mirror_creations", "partition.replicas_created"]
    {
        t.row([name.to_string(), sink.counter_total(name).to_string(), "—".to_string()]);
    }
    match &db_report {
        Ok(r) => {
            t.row([
                "db.queries_ok".to_string(),
                sink.counter_total("db.queries_ok").to_string(),
                r.completed_ok.to_string(),
            ]);
            t.row([
                "db.queries_failed".to_string(),
                sink.counter_total("db.queries_failed").to_string(),
                r.failed.to_string(),
            ]);
            t.row([
                "db.failovers".to_string(),
                sink.counter_total("db.failovers").to_string(),
                r.failovers.to_string(),
            ]);
            t.row([
                "db.retries".to_string(),
                sink.counter_total("db.retries").to_string(),
                r.retries.to_string(),
            ]);
            t.row([
                "db.dropped_messages".to_string(),
                sink.counter_total("db.dropped_messages").to_string(),
                r.dropped_messages.to_string(),
            ]);
        }
        Err(e) => {
            t.row(["db scenario".to_string(), format!("failed: {e}"), String::new()]);
        }
    }
    out.push_str(&format!(
        "\n--- counters vs untraced report fields (must match exactly; the differential \
         tests enforce this) ---\n{}",
        t.render()
    ));

    let mut t = TextTable::new(["Histogram", "Samples", "p50", "p99", "max"]);
    for name in ["engine.barrier_wait_ns", "db.query_latency_ns", "db.queue_depth"] {
        if let Some(h) = sink.histograms().get(name) {
            t.row([
                name.to_string(),
                h.count().to_string(),
                h.p50().to_string(),
                h.p99().to_string(),
                h.max().to_string(),
            ]);
        }
    }
    out.push_str(&format!(
        "\n--- histograms (log2 buckets; quantiles are bucket-resolution) ---\n{}",
        t.render()
    ));
    out.push_str(
        "\n(every stamp above is simulated time or a logical sequence number — rerunning \
         this experiment at the same scale reproduces it byte for byte)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params::for_scale(Scale::Tiny)
    }

    #[test]
    fn static_experiments_render() {
        for id in ["table1", "fig9", "fig10", "fig11"] {
            let out = run(id, &tiny());
            assert!(out.len() > 100, "{id} output too short");
        }
    }

    #[test]
    fn table3_includes_every_dataset() {
        let out = table3(&tiny());
        for d in Dataset::all() {
            assert!(out.contains(d.name()), "missing {d}");
        }
    }

    #[test]
    fn table4_has_expected_ordering_columns() {
        let out = table4(&tiny());
        assert!(out.contains("ECR") && out.contains("MTS"));
    }

    #[test]
    fn fig10_shows_aggregation_savings() {
        let out = fig10();
        assert!(out.contains("no aggregation"));
        // Edge-cut with aggregation must show 0 updates.
        let with_agg_line =
            out.lines().find(|l| l.contains("sender-side agg")).expect("aggregated row present");
        let cols: Vec<&str> = with_agg_line.split_whitespace().collect();
        assert_eq!(cols[cols.len() - 2], "0", "update column: {with_agg_line}");
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run("fig99", &tiny());
    }

    #[test]
    fn all_experiment_ids_listed_once() {
        let mut ids = ALL_EXPERIMENTS.to_vec();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
        assert_eq!(before, 21);
    }

    #[test]
    fn robustness_is_opt_in_and_renders() {
        // The fault suite must never join `all` — the checked-in results
        // files are byte-identical only while `all` is fault-free.
        assert!(!ALL_EXPERIMENTS.contains(&"robustness"));
        assert!(EXTRA_EXPERIMENTS.contains(&"robustness"));
        let out = run("robustness", &tiny());
        assert!(out.contains("availability and goodput"), "{out}");
        assert!(out.contains("PageRank under the same plan"), "{out}");
        assert!(out.contains("edge-cut") && out.contains("vertex-cut"), "{out}");
    }

    #[test]
    fn loaders_is_opt_in_deterministic_and_renders() {
        // Excluded from `all` like the other extras, and bit-stable:
        // the same seeded invocation must render identical output.
        assert!(!ALL_EXPERIMENTS.contains(&"loaders"));
        assert!(EXTRA_EXPERIMENTS.contains(&"loaders"));
        let out = run("loaders", &tiny());
        assert!(out.contains("Multi-loader ablation"), "{out}");
        assert!(out.contains("random stream order"), "{out}");
        assert!(out.contains("bfs stream order"), "{out}");
        for alg in ["LDG", "DBH", "PGG", "HDRF"] {
            assert!(out.contains(alg), "missing {alg} in {out}");
        }
        assert_eq!(out, run("loaders", &tiny()), "loaders report must be deterministic");
    }

    #[test]
    fn elastic_is_opt_in_deterministic_and_renders() {
        // Excluded from `all` like the other extras, and bit-stable:
        // the same seeded invocation must render identical output.
        assert!(!ALL_EXPERIMENTS.contains(&"elastic"));
        assert!(EXTRA_EXPERIMENTS.contains(&"elastic"));
        let out = run("elastic", &tiny());
        assert!(out.contains("Elasticity"), "{out}");
        assert!(out.contains("RTO ms"), "{out}");
        assert!(out.contains("Data moved"), "{out}");
        assert!(out.contains("edge-cut") && out.contains("vertex-cut"), "{out}");
        assert_eq!(out, run("elastic", &tiny()), "elastic report must be deterministic");
    }

    #[test]
    fn churn_is_opt_in_and_deterministic() {
        assert!(!ALL_EXPERIMENTS.contains(&"churn"));
        assert!(EXTRA_EXPERIMENTS.contains(&"churn"));
        let out = run("churn", &tiny());
        assert!(out.contains("quality vs movement"), "{out}");
        for label in ["2PS", "W-LDG", "reLDG"] {
            assert!(out.contains(label), "missing method {label} in {out}");
        }
        for dataset in ["Twitter", "UK2007-05", "USA-Road", "LDBC"] {
            assert!(out.contains(dataset), "missing dataset {dataset} in {out}");
        }
        assert_eq!(out, run("churn", &tiny()), "churn report must be deterministic");
    }

    #[test]
    fn trace_demo_is_opt_in_and_renders_all_layers() {
        assert!(!ALL_EXPERIMENTS.contains(&"trace"));
        assert!(EXTRA_EXPERIMENTS.contains(&"trace"));
        let out = run("trace", &tiny());
        assert!(out.contains("top spans by self cost"), "{out}");
        for span in ["partition.run", "engine.superstep", "db.run"] {
            assert!(out.contains(span), "missing span {span} in {out}");
        }
        assert!(out.contains("per-machine load"), "{out}");
        assert!(out.contains("db.queries_ok"), "{out}");
        assert!(out.contains("engine.barrier_wait_ns"), "{out}");
    }
}
