//! # sgp-bench
//!
//! Benchmark harness for the SGP reproduction. Two entry points:
//!
//! * the **`experiments` binary** (`cargo run --release -p sgp-bench --bin
//!   experiments -- <id>`) regenerates the rows/series of every table
//!   and figure in the paper (`table1`..`table5`, `fig1`..`fig15`,
//!   `all`), plus the opt-in `robustness` fault-injection suite; the set
//!   of experiment ids and their implementations live in [`experiments`];
//! * the **Criterion benches** (`cargo bench -p sgp-bench`) measure
//!   partitioner throughput, engine superstep cost, online query
//!   execution, and parameter-sweep ablations.
//!
//! Experiment scale is controlled by the `SGP_SCALE` environment
//! variable (`tiny` | `small` | `default` | `large`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
