//! Fault-injected discrete-event simulation: the healthy DES of
//! [`crate::sim`] extended with a deterministic [`FaultPlan`] — machine
//! crashes (with optional recovery), straggler slowdowns, and seeded
//! message loss on cross-machine traffic.
//!
//! The coordinator reacts to a lost or unanswered sub-request with a
//! timeout, then re-sends after an exponentially growing, capped
//! backoff ([`RetryPolicy`]). A sub-request aimed at a dead machine
//! fails over to a live **mirror** when the partitioning provides one:
//! vertex-cut and hybrid-cut placements replicate vertices across the
//! machines holding their incident edges, so a [`MirrorDirectory`]
//! built from such a [`Partitioning`] offers high failover coverage;
//! the edge-cut store (JanusGraph keeps a single copy of each vertex)
//! offers none, so its queries ride the retry loop until the machine
//! recovers — or fail. That asymmetry is the availability result this
//! module exists to measure (DESIGN.md §7).
//!
//! Every random decision — message drops, failover draws — is a
//! counter-keyed function of the plan seed, so a run under a fixed
//! plan is bit-for-bit reproducible.

use crate::sim::{rsd, ClusterSim, EventQueue, SimConfig};
use serde::{Deserialize, Serialize};
use sgp_fault::{FaultEvent, FaultPlan, MembershipKind, PlanError, RetryPolicy};
use sgp_graph::Graph;
use sgp_partition::{CutModel, Partitioning};
use sgp_trace::{keys, latency_summary_ms, NullSink, TraceSink};
use std::collections::VecDeque;

/// Why a fault-injected simulation could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cluster has zero machines.
    NoMachines,
    /// Every machine is permanently dead from t = 0: the plan leaves
    /// nothing to serve even one request.
    NoLiveMachines,
    /// The plan was written for a different cluster size.
    ClusterMismatch {
        /// Machines the plan covers.
        plan: usize,
        /// Machines in the simulated cluster.
        cluster: usize,
    },
    /// The plan failed its own validation.
    InvalidPlan(PlanError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoMachines => write!(f, "cluster has zero machines"),
            SimError::NoLiveMachines => {
                write!(f, "every machine is permanently dead from t=0; nothing can serve")
            }
            SimError::ClusterMismatch { plan, cluster } => {
                write!(f, "fault plan covers {plan} machines but the cluster has {cluster}")
            }
            SimError::InvalidPlan(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for SimError {
    fn from(e: PlanError) -> Self {
        SimError::InvalidPlan(e)
    }
}

/// Where reads of a machine's vertices can fail over when it dies.
///
/// Built once per (graph, partitioning). `coverage[m]` is the fraction
/// of vertices *mastered* on machine `m` that have at least one replica
/// elsewhere — the probability a random read of `m`'s data can be
/// served by a mirror. `peers[m]` ranks the machines holding those
/// replicas (most replicas first, ties by machine id), and failover
/// picks the first live one.
#[derive(Debug, Clone)]
pub struct MirrorDirectory {
    coverage: Vec<f64>,
    peers: Vec<Vec<u32>>,
}

impl MirrorDirectory {
    /// Directory for an edge-cut store: JanusGraph keeps a single copy
    /// of every vertex, so no machine's data survives its crash.
    pub fn edge_cut(machines: usize) -> Self {
        // sgp-lint: allow(no-float-accounting): mirror coverage is a ratio in [0,1], not simulated time
        MirrorDirectory { coverage: vec![0.0; machines], peers: vec![Vec::new(); machines] }
    }

    /// Directory derived from a replicating (vertex-cut or hybrid-cut)
    /// partitioning: every machine holding an edge incident to a vertex
    /// holds a replica of that vertex.
    pub fn from_partitioning(g: &Graph, p: &Partitioning) -> Self {
        let k = p.k;
        let masters = p.masters(g);
        let sets = p.replica_sets(g);
        let mut mastered = vec![0u64; k];
        let mut mirrored = vec![0u64; k];
        let mut peer_counts = vec![vec![0u64; k]; k];
        for (v, &m) in masters.iter().enumerate() {
            let m = m as usize;
            mastered[m] += 1;
            let mut has_mirror = false;
            for &r in &sets[v] {
                if r as usize != m {
                    has_mirror = true;
                    peer_counts[m][r as usize] += 1;
                }
            }
            if has_mirror {
                mirrored[m] += 1;
            }
        }
        let coverage = (0..k)
            // sgp-lint: allow(no-float-accounting): mirror coverage is a ratio in [0,1], not simulated time
            .map(|m| if mastered[m] == 0 { 0.0 } else { mirrored[m] as f64 / mastered[m] as f64 })
            .collect();
        let peers = peer_counts
            .into_iter()
            .map(|counts| {
                let mut ranked: Vec<u32> = counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(p, _)| p as u32)
                    .collect();
                ranked.sort_by_key(|&p| (std::cmp::Reverse(counts[p as usize]), p));
                ranked
            })
            .collect();
        MirrorDirectory { coverage, peers }
    }

    /// Directory matching the partitioning's cut model: replication for
    /// vertex-cut and hybrid-cut, none for edge-cut.
    pub fn for_model(g: &Graph, p: &Partitioning) -> Self {
        match p.model {
            CutModel::EdgeCut => MirrorDirectory::edge_cut(p.k),
            CutModel::VertexCut | CutModel::HybridCut => MirrorDirectory::from_partitioning(g, p),
        }
    }

    /// Number of machines the directory covers.
    pub fn machines(&self) -> usize {
        self.coverage.len()
    }

    /// Fraction of `machine`'s mastered vertices that have a mirror.
    pub fn coverage(&self, machine: u32) -> f64 {
        self.coverage[machine as usize]
    }

    /// First live mirror machine for data mastered on `machine`.
    pub fn failover_target(&self, machine: u32, is_up: impl Fn(u32) -> bool) -> Option<u32> {
        self.peers[machine as usize].iter().copied().find(|&p| is_up(p))
    }
}

/// Configuration of a fault-injected run: the healthy DES parameters
/// plus the coordinator's retry policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultSimConfig {
    /// Parameters shared with the healthy simulation.
    pub base: SimConfig,
    /// Timeout / retry / backoff behaviour of the coordinator.
    pub retry: RetryPolicy,
    /// Degraded-mode behaviour during recovery and migration. Defaults
    /// to fully off, so plain fault runs are byte-identical to before
    /// the elasticity layer existed.
    #[serde(default)]
    pub degraded: DegradedConfig,
}

impl Default for FaultSimConfig {
    fn default() -> Self {
        FaultSimConfig {
            base: SimConfig::default(),
            retry: RetryPolicy::default(),
            degraded: DegradedConfig::default(),
        }
    }
}

/// How the cluster degrades while a membership change is being repaired
/// (DESIGN.md §11). Both knobs default to "off"/free so that runs
/// without membership events — and old callers that never set them —
/// behave exactly as before.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DegradedConfig {
    /// Queue depth at which a machine sheds (fast-rejects) new shares
    /// while migration is in flight. `0` disables admission control.
    pub shed_queue_depth: usize,
    /// Simulated nanoseconds charged per migrated record — the DES cost
    /// of shipping one vertex or adjacency entry during rebalance.
    pub migration_ns_per_record: u64,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        DegradedConfig { shed_queue_depth: 0, migration_ns_per_record: 0 }
    }
}

/// The migration work a fault plan's membership events oblige, computed
/// by the caller (who holds the graph and partitioning — the DES sees
/// only query traces) with `sgp_partition::plan_rebalance` and charged
/// to the cost model here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElasticPlan {
    /// Records each membership event moves, aligned with the order
    /// [`sgp_fault::FaultPlan::membership_events`] yields them. Events
    /// beyond the end of the vector move nothing.
    pub records_per_event: Vec<u64>,
}

/// Results of one fault-injected run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSimReport {
    /// Fraction of post-warm-up queries that completed successfully.
    pub availability: f64,
    /// Successful queries per second (post-warm-up).
    pub goodput_qps: f64,
    /// All query completions (successes + failures) per second — the
    /// load the clients offered.
    pub offered_qps: f64,
    /// Successful post-warm-up completions.
    pub completed_ok: usize,
    /// Failed post-warm-up completions.
    pub failed: usize,
    /// Sub-request re-sends over the whole run.
    pub retries: u64,
    /// Cross-machine messages dropped by the plan over the whole run.
    pub dropped_messages: u64,
    /// Sub-requests redirected to a live mirror over the whole run.
    pub failovers: u64,
    /// Mean latency of successful queries, milliseconds.
    pub mean_latency_ms: f64,
    /// Median latency of successful queries, milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile latency of successful queries, milliseconds.
    pub p99_latency_ms: f64,
    /// Maximum latency of successful queries, milliseconds.
    pub max_latency_ms: f64,
    /// Vertex reads routed to each machine over the whole run,
    /// including retried work.
    pub reads_per_machine: Vec<u64>,
    /// Relative standard deviation of `reads_per_machine`.
    pub load_rsd: f64,
    /// Total simulated wall-clock seconds.
    pub sim_seconds: f64,
    /// Recovery time objective: the longest interval, in milliseconds,
    /// from a membership disruption to full service restored (machine
    /// back up and its migration drained). `0` when the plan has no
    /// membership events.
    #[serde(default)]
    pub rto_ms: f64,
    /// Migration records shipped over all membership events.
    #[serde(default)]
    pub data_moved: u64,
    /// Shares fast-rejected by admission control while the cluster was
    /// in degraded mode.
    #[serde(default)]
    pub shed_queries: u64,
}

/// Events of the fault-injected DES. `origin` is the machine the trace
/// *intended* (where the data is mastered): re-sends re-route from it,
/// so a share that failed over keeps retrying against the original
/// owner once it recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FEvent {
    /// A client becomes ready to issue its next query.
    Issue { client: u32 },
    /// A sub-request share arrives at (routed) `machine`.
    SubArrive { query: u32, machine: u32, origin: u32, reads: u32, service_ns: u64, attempt: u32 },
    /// A core of `machine` finishes a share; stale if `epoch` mismatches.
    SubDone { query: u32, machine: u32, attempt: u32, epoch: u32 },
    /// The coordinator declares a share of `query` lost.
    SubFail { query: u32, origin: u32, reads: u32, service_ns: u64, attempt: u32 },
    /// `machine` crashes, losing queued and in-flight work.
    Crash { machine: u32 },
    /// `machine` rejoins with an empty queue.
    Recover { machine: u32 },
    /// A scale-out `machine` comes online and starts pulling `records`
    /// of migrated state.
    Join { machine: u32, records: u64 },
    /// `machine` leaves the cluster for good; its `records` evacuate to
    /// the survivors.
    Leave { machine: u32, records: u64 },
    /// A crash-rejoin `machine` returns after being down since
    /// `down_since` and restores `records` of state.
    Rejoin { machine: u32, records: u64, down_since: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Share {
    query: u32,
    origin: u32,
    reads: u32,
    service_ns: u64,
    attempt: u32,
}

struct FMachine {
    cores: usize,
    busy: usize,
    up: bool,
    /// Incremented on every crash; `SubDone` events from before the
    /// crash carry the old epoch and are discarded.
    epoch: u32,
    fifo: VecDeque<Share>,
    in_flight: Vec<Share>,
}

struct FActive {
    trace_idx: u32,
    client: u32,
    /// Effective coordinator (the trace's, or its mirror when the
    /// trace's was dead at issue time).
    coordinator: u32,
    round: usize,
    pending: u32,
    round_has_remote: bool,
    failed: bool,
    start_ns: u64,
}

impl ClusterSim {
    /// Runs the discrete-event simulation under a fault plan.
    ///
    /// Fails with a typed [`SimError`] when the cluster is empty, the
    /// plan does not match the cluster or fails validation, or the plan
    /// leaves zero live machines from t = 0.
    pub fn run_faulted(
        &self,
        cfg: &FaultSimConfig,
        plan: &FaultPlan,
        mirrors: &MirrorDirectory,
    ) -> Result<FaultSimReport, SimError> {
        self.run_faulted_traced(cfg, plan, mirrors, &mut NullSink)
    }

    /// [`ClusterSim::run_faulted`] with trace events recorded into
    /// `sink` (DESIGN.md §9): the healthy instrumentation of
    /// [`ClusterSim::run_traced`](crate::sim) plus retry, drop,
    /// failover, crash and recovery counters.
    pub fn run_faulted_traced<S: TraceSink>(
        &self,
        cfg: &FaultSimConfig,
        plan: &FaultPlan,
        mirrors: &MirrorDirectory,
        sink: &mut S,
    ) -> Result<FaultSimReport, SimError> {
        self.run_elastic_traced(cfg, plan, mirrors, &ElasticPlan::default(), sink)
    }

    /// [`ClusterSim::run_faulted`] with the plan's membership events
    /// charged to the cost model: `elastic` carries the migration
    /// records each event moves (computed by the caller from the
    /// partitioning with `sgp_partition::plan_rebalance`), and
    /// `cfg.degraded` turns those records into a recovery window during
    /// which admission control may shed load (DESIGN.md §11).
    pub fn run_elastic(
        &self,
        cfg: &FaultSimConfig,
        plan: &FaultPlan,
        mirrors: &MirrorDirectory,
        elastic: &ElasticPlan,
    ) -> Result<FaultSimReport, SimError> {
        self.run_elastic_traced(cfg, plan, mirrors, elastic, &mut NullSink)
    }

    /// [`ClusterSim::run_elastic`] with trace events recorded into
    /// `sink`.
    pub fn run_elastic_traced<S: TraceSink>(
        &self,
        cfg: &FaultSimConfig,
        plan: &FaultPlan,
        mirrors: &MirrorDirectory,
        elastic: &ElasticPlan,
        sink: &mut S,
    ) -> Result<FaultSimReport, SimError> {
        if self.machines == 0 {
            return Err(SimError::NoMachines);
        }
        if plan.machines != self.machines {
            return Err(SimError::ClusterMismatch { plan: plan.machines, cluster: self.machines });
        }
        plan.validate()?;
        if plan.all_machines_dead_from_start() {
            return Err(SimError::NoLiveMachines);
        }
        assert_eq!(mirrors.machines(), self.machines, "mirror directory must match the cluster");
        assert!(cfg.base.clients_per_machine > 0 && cfg.base.queries_per_client > 0);
        assert!(cfg.retry.max_attempts > 0, "at least one attempt per sub-request");
        Ok(FaultRun::new(self, cfg, plan, mirrors, elastic, sink).execute())
    }
}

/// One in-progress fault-injected run; groups the DES state so event
/// handlers are methods instead of functions with a dozen arguments.
struct FaultRun<'a, S: TraceSink> {
    sim: &'a ClusterSim,
    sink: &'a mut S,
    cfg: &'a SimConfig,
    retry: &'a RetryPolicy,
    plan: &'a FaultPlan,
    mirrors: &'a MirrorDirectory,
    degraded: DegradedConfig,
    elastic: &'a ElasticPlan,
    machines: Vec<FMachine>,
    events: EventQueue<FEvent>,
    active: Vec<FActive>,
    free_slots: Vec<u32>,
    next_binding: usize,
    issued: usize,
    completed: usize,
    total_queries: usize,
    warmup: usize,
    warmup_end_ns: u64,
    last_completion_ns: u64,
    latencies_ns: Vec<u64>,
    reads_per_machine: Vec<u64>,
    ok: usize,
    failed: usize,
    retries: u64,
    dropped: u64,
    failovers: u64,
    /// Monotonic cross-machine send counter keying drop draws.
    msg_counter: u64,
    /// Monotonic counter keying failover draws.
    draw_counter: u64,
    /// Simulated instant until which the cluster is in degraded mode
    /// (migration traffic in flight); admission control only sheds
    /// before this instant.
    degraded_until: u64,
    /// Shares fast-rejected by admission control.
    shed: u64,
    /// Migration records shipped over all membership events so far.
    data_moved: u64,
    /// Longest disruption-to-restored interval observed (the report's
    /// RTO), in simulated nanoseconds.
    rto_ns: u64,
}

impl<'a, S: TraceSink> FaultRun<'a, S> {
    fn new(
        sim: &'a ClusterSim,
        cfg: &'a FaultSimConfig,
        plan: &'a FaultPlan,
        mirrors: &'a MirrorDirectory,
        elastic: &'a ElasticPlan,
        sink: &'a mut S,
    ) -> Self {
        let k = sim.machines;
        let clients = cfg.base.clients_per_machine * k;
        let total_queries = clients * cfg.base.queries_per_client;
        // sgp-lint: allow(no-float-accounting): warmup cutoff is a one-time fraction of the query count, rounded before the event loop starts
        let warmup = (total_queries as f64 * cfg.base.warmup_fraction) as usize;
        let machines = (0..k)
            .map(|_| FMachine {
                cores: cfg.base.cores_per_machine,
                busy: 0,
                up: true,
                epoch: 0,
                fifo: VecDeque::new(),
                in_flight: Vec::new(),
            })
            .collect();
        FaultRun {
            sim,
            sink,
            cfg: &cfg.base,
            retry: &cfg.retry,
            plan,
            mirrors,
            degraded: cfg.degraded,
            elastic,
            machines,
            events: EventQueue::new(),
            active: Vec::new(),
            free_slots: Vec::new(),
            next_binding: 0,
            issued: 0,
            completed: 0,
            total_queries,
            warmup,
            warmup_end_ns: 0,
            last_completion_ns: 0,
            latencies_ns: Vec::with_capacity(total_queries),
            reads_per_machine: vec![0; k],
            ok: 0,
            failed: 0,
            retries: 0,
            dropped: 0,
            failovers: 0,
            msg_counter: 0,
            draw_counter: 0,
            degraded_until: 0,
            shed: 0,
            data_moved: 0,
            rto_ns: 0,
        }
    }

    fn execute(mut self) -> FaultSimReport {
        // Schedule the plan's crash/recovery events first so a crash at
        // t = 0 lands before any client issue at t = 0. Straggler
        // windows need no events: the slowdown factor is queried at
        // every service start.
        let plan = self.plan;
        let mut membership_idx = 0usize;
        for e in &plan.events {
            match *e {
                FaultEvent::Crash { machine, at_ns, recovery_ns } => {
                    self.events.push(at_ns, FEvent::Crash { machine });
                    if let Some(d) = recovery_ns {
                        self.events.push(at_ns.saturating_add(d), FEvent::Recover { machine });
                    }
                }
                FaultEvent::Membership { machine, at_ns, kind, rejoin_ns } => {
                    let records =
                        self.elastic.records_per_event.get(membership_idx).copied().unwrap_or(0);
                    membership_idx += 1;
                    match kind {
                        MembershipKind::ScaleOut => {
                            // The joiner is outside the cluster until
                            // its membership event fires.
                            self.machines[machine as usize].up = false;
                            self.events.push(at_ns, FEvent::Join { machine, records });
                        }
                        MembershipKind::ScaleIn => {
                            self.events.push(at_ns, FEvent::Leave { machine, records });
                        }
                        MembershipKind::CrashRejoin => {
                            self.events.push(at_ns, FEvent::Crash { machine });
                            let d = rejoin_ns.unwrap_or(1);
                            self.events.push(
                                at_ns.saturating_add(d),
                                FEvent::Rejoin { machine, records, down_since: at_ns },
                            );
                        }
                    }
                }
                _ => {}
            }
        }
        let clients = self.cfg.clients_per_machine * self.sim.machines;
        for c in 0..clients as u32 {
            let jitter = (c as u64 * 1_000) % (self.cfg.request_overhead_ns as u64 + 1);
            self.events.push(jitter, FEvent::Issue { client: c });
        }
        self.sink.span_enter(keys::DB_RUN, 0, 0);
        while let Some((now, ev)) = self.events.pop() {
            match ev {
                FEvent::Issue { client } => self.on_issue(client, now),
                FEvent::SubArrive { query, machine, origin, reads, service_ns, attempt } => {
                    let share = Share { query, origin, reads, service_ns, attempt };
                    self.on_sub_arrive(machine, share, now);
                }
                FEvent::SubDone { query, machine, attempt, epoch } => {
                    self.on_sub_done(query, machine, attempt, epoch, now);
                }
                FEvent::SubFail { query, origin, reads, service_ns, attempt } => {
                    let share = Share { query, origin, reads, service_ns, attempt };
                    self.on_sub_fail(share, now);
                }
                FEvent::Crash { machine } => self.on_crash(machine, now),
                FEvent::Recover { machine } => {
                    self.machines[machine as usize].up = true;
                    self.sink.counter_add(keys::DB_RECOVERIES, machine as u64, 1);
                }
                FEvent::Join { machine, records } => {
                    self.machines[machine as usize].up = true;
                    self.sink.counter_add(keys::DB_MEMBERSHIP_EVENTS, machine as u64, 1);
                    self.begin_migration(machine, records, now, now);
                }
                FEvent::Leave { machine, records } => {
                    self.sink.counter_add(keys::DB_MEMBERSHIP_EVENTS, machine as u64, 1);
                    self.lose_work(machine, now);
                    self.begin_migration(machine, records, now, now);
                }
                FEvent::Rejoin { machine, records, down_since } => {
                    self.machines[machine as usize].up = true;
                    self.sink.counter_add(keys::DB_MEMBERSHIP_EVENTS, machine as u64, 1);
                    self.begin_migration(machine, records, now, down_since);
                }
            }
            if self.completed >= self.total_queries {
                break;
            }
        }
        if self.sink.enabled() {
            for (m, &r) in self.reads_per_machine.iter().enumerate() {
                self.sink.counter_add(keys::DB_READS, m as u64, r);
            }
        }
        self.sink.span_exit(keys::DB_RUN, 0, self.last_completion_ns);
        self.report()
    }

    /// Routes a share aimed at `target`: the target itself when up,
    /// else a live mirror when the seeded coverage draw finds one, else
    /// the (dead) target — the send will time out and ride the retry
    /// loop until recovery or exhaustion.
    fn route(&mut self, target: u32) -> (u32, bool) {
        if self.machines[target as usize].up {
            return (target, false);
        }
        self.draw_counter += 1;
        if self.plan.unit_draw(self.draw_counter) < self.mirrors.coverage(target) {
            let machines = &self.machines;
            if let Some(peer) = self.mirrors.failover_target(target, |m| machines[m as usize].up) {
                return (peer, true);
            }
        }
        (target, false)
    }

    /// Sends one share of `slot`'s current round at time `t`. Exactly
    /// one `SubDone` or `SubFail` eventually resolves every send.
    fn send_share(&mut self, slot: u32, share: Share, t: u64) {
        let coordinator = self.active[slot as usize].coordinator;
        let (routed, failed_over) = self.route(share.origin);
        if failed_over {
            self.failovers += 1;
            self.sink.counter_add(keys::DB_FAILOVERS, share.origin as u64, 1);
        }
        self.reads_per_machine[routed as usize] += share.reads as u64;
        let remote = routed != coordinator;
        self.active[slot as usize].round_has_remote |= remote;
        let delay = if remote { self.cfg.half_rtt_ns as u64 } else { 0 };
        if remote {
            self.msg_counter += 1;
            if self.plan.drop_message(self.msg_counter) {
                self.dropped += 1;
                self.sink.counter_add(keys::DB_DROPPED_MESSAGES, routed as u64, 1);
                self.events.push(
                    t + self.retry.timeout_ns,
                    FEvent::SubFail {
                        query: share.query,
                        origin: share.origin,
                        reads: share.reads,
                        service_ns: share.service_ns,
                        attempt: share.attempt,
                    },
                );
                return;
            }
        }
        self.events.push(
            t + delay,
            FEvent::SubArrive {
                query: share.query,
                machine: routed,
                origin: share.origin,
                reads: share.reads,
                service_ns: share.service_ns,
                attempt: share.attempt,
            },
        );
    }

    fn on_issue(&mut self, client: u32, now: u64) {
        if self.issued >= self.total_queries {
            return;
        }
        self.issued += 1;
        let trace_idx = (self.next_binding % self.sim.traces.len()) as u32;
        self.next_binding += 1;
        let home = self.sim.traces[trace_idx as usize].coordinator;
        let (coordinator, failed_over) = self.route(home);
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.active.push(FActive {
                    trace_idx: 0,
                    client: 0,
                    coordinator: 0,
                    round: 0,
                    pending: 0,
                    round_has_remote: false,
                    failed: false,
                    start_ns: 0,
                });
                (self.active.len() - 1) as u32
            }
        };
        let q = &mut self.active[slot as usize];
        q.trace_idx = trace_idx;
        q.client = client;
        q.coordinator = coordinator;
        q.round = 0;
        q.pending = 0;
        q.round_has_remote = false;
        q.failed = false;
        q.start_ns = now;
        if !self.machines[coordinator as usize].up {
            // The query's start vertex lives on a dead machine with no
            // usable mirror: the client times out and moves on.
            self.complete(slot, now + self.retry.timeout_ns, false);
            return;
        }
        if failed_over {
            self.failovers += 1;
            self.sink.counter_add(keys::DB_FAILOVERS, home as u64, 1);
        }
        self.dispatch_round(slot, now);
        if self.active[slot as usize].pending == 0 {
            self.complete(slot, now, true);
        }
    }

    fn on_sub_arrive(&mut self, machine: u32, share: Share, now: u64) {
        if !self.machines[machine as usize].up {
            // Arrived at a corpse; the coordinator notices by timeout.
            self.events.push(
                now + self.retry.timeout_ns,
                FEvent::SubFail {
                    query: share.query,
                    origin: share.origin,
                    reads: share.reads,
                    service_ns: share.service_ns,
                    attempt: share.attempt,
                },
            );
            return;
        }
        let slow = self.plan.slowdown(machine, now);
        let m = &mut self.machines[machine as usize];
        if m.busy < m.cores {
            m.busy += 1;
            // sgp-lint: allow(no-float-accounting): the one float->integral boundary applying the slowdown factor
            let effective = (share.service_ns as f64 * slow) as u64;
            let epoch = m.epoch;
            m.in_flight.push(share);
            self.events.push(
                now + effective,
                FEvent::SubDone { query: share.query, machine, attempt: share.attempt, epoch },
            );
        } else {
            // Admission control: while migration traffic is in flight,
            // a machine whose queue is already past the shed threshold
            // fast-rejects the share instead of queueing it — the
            // coordinator retries with backoff and may fail over.
            if self.degraded.shed_queue_depth > 0
                && now < self.degraded_until
                && m.fifo.len() >= self.degraded.shed_queue_depth
            {
                self.shed += 1;
                self.sink.counter_add(keys::DB_SHED_QUERIES, machine as u64, 1);
                self.events.push(
                    now,
                    FEvent::SubFail {
                        query: share.query,
                        origin: share.origin,
                        reads: share.reads,
                        service_ns: share.service_ns,
                        attempt: share.attempt,
                    },
                );
                return;
            }
            m.fifo.push_back(share);
            if self.sink.enabled() {
                let depth = m.fifo.len() as u64;
                self.sink.counter_add(keys::DB_QUEUE_ENQUEUED, machine as u64, 1);
                self.sink.histogram_record(keys::DB_QUEUE_DEPTH, machine as u64, depth);
            }
        }
    }

    fn on_sub_done(&mut self, query: u32, machine: u32, attempt: u32, epoch: u32, now: u64) {
        let slow = self.plan.slowdown(machine, now);
        {
            let m = &mut self.machines[machine as usize];
            if m.epoch != epoch {
                // Completion from before a crash: that work is lost and
                // its failure already scheduled; ignore.
                return;
            }
            m.busy -= 1;
            if let Some(idx) =
                m.in_flight.iter().position(|s| s.query == query && s.attempt == attempt)
            {
                m.in_flight.remove(idx);
            }
            if let Some(next) = m.fifo.pop_front() {
                m.busy += 1;
                // sgp-lint: allow(no-float-accounting): the one float->integral boundary applying the slowdown factor
                let effective = (next.service_ns as f64 * slow) as u64;
                let next_epoch = m.epoch;
                m.in_flight.push(next);
                self.events.push(
                    now + effective,
                    FEvent::SubDone {
                        query: next.query,
                        machine,
                        attempt: next.attempt,
                        epoch: next_epoch,
                    },
                );
            }
        }
        let q = &mut self.active[query as usize];
        q.pending -= 1;
        if q.pending > 0 {
            return;
        }
        if q.failed {
            self.complete(query, now, false);
            return;
        }
        let reply_delay = if q.round_has_remote { self.cfg.half_rtt_ns as u64 } else { 0 };
        let round_end = now + reply_delay;
        q.round += 1;
        let rounds = self.sim.traces[q.trace_idx as usize].rounds.len();
        if q.round < rounds {
            self.dispatch_round(query, round_end);
            if self.active[query as usize].pending == 0 {
                self.complete(query, round_end, true);
            }
        } else {
            self.complete(query, round_end, true);
        }
    }

    fn on_sub_fail(&mut self, share: Share, now: u64) {
        let q = &mut self.active[share.query as usize];
        if q.failed {
            q.pending -= 1;
            if q.pending == 0 {
                self.complete(share.query, now, false);
            }
            return;
        }
        if share.attempt >= self.retry.max_attempts {
            q.failed = true;
            q.pending -= 1;
            if q.pending == 0 {
                self.complete(share.query, now, false);
            }
            return;
        }
        self.retries += 1;
        self.sink.counter_add(keys::DB_RETRIES, share.origin as u64, 1);
        let resend_at = now + self.retry.backoff_ns(share.attempt);
        self.send_share(share.query, Share { attempt: share.attempt + 1, ..share }, resend_at);
    }

    fn on_crash(&mut self, machine: u32, now: u64) {
        self.sink.counter_add(keys::DB_CRASHES, machine as u64, 1);
        self.lose_work(machine, now);
    }

    /// Charges `records` of migration for the membership change at
    /// `machine` to the cost model: the cluster runs degraded until the
    /// transfer drains, and the recovery interval — measured from
    /// `since` (the crash instant for a rejoin, the event itself
    /// otherwise) — feeds the report's RTO.
    fn begin_migration(&mut self, machine: u32, records: u64, now: u64, since: u64) {
        self.data_moved += records;
        if records > 0 {
            self.sink.counter_add(keys::DB_DATA_MOVED, machine as u64, records);
        }
        let window = records.saturating_mul(self.degraded.migration_ns_per_record);
        let restored = now.saturating_add(window);
        self.degraded_until = self.degraded_until.max(restored);
        let rto = restored.saturating_sub(since);
        self.sink.histogram_record(keys::DB_RECOVERY_NS, machine as u64, rto);
        self.rto_ns = self.rto_ns.max(rto);
    }

    /// Takes `machine` out of service: bumps its epoch so stale
    /// completions are discarded and fails all queued and in-flight
    /// work after the coordinator's timeout.
    fn lose_work(&mut self, machine: u32, now: u64) {
        let lost: Vec<Share> = {
            let m = &mut self.machines[machine as usize];
            m.up = false;
            m.epoch += 1;
            m.busy = 0;
            let mut lost: Vec<Share> = m.in_flight.drain(..).collect();
            lost.extend(m.fifo.drain(..));
            lost
        };
        let fail_at = now + self.retry.timeout_ns;
        for share in lost {
            self.events.push(
                fail_at,
                FEvent::SubFail {
                    query: share.query,
                    origin: share.origin,
                    reads: share.reads,
                    service_ns: share.service_ns,
                    attempt: share.attempt,
                },
            );
        }
    }

    /// Issues the current round's shares of query `slot` at time `t`
    /// (same share-splitting as the healthy DES, routed through
    /// [`FaultRun::send_share`]).
    fn dispatch_round(&mut self, slot: u32, t: u64) {
        let sim = self.sim;
        let (trace_idx, mut round, coordinator) = {
            let q = &mut self.active[slot as usize];
            q.round_has_remote = false;
            (q.trace_idx as usize, q.round, q.coordinator)
        };
        let trace = &sim.traces[trace_idx];
        let mut pending = 0u32;
        // Skip over all-empty rounds.
        while round < trace.rounds.len() {
            let r = &trace.rounds[round];
            let mut remote_fanout = 0u32;
            for (m, &reads) in r.reads.iter().enumerate() {
                if reads == 0 {
                    continue;
                }
                let remote = m as u32 != coordinator;
                if remote {
                    remote_fanout += 1;
                }
                let shares = (reads as usize).min(self.cfg.intra_request_parallelism.max(1)) as u32;
                let per_share = reads / shares;
                let mut remainder = reads % shares;
                for share in 0..shares {
                    let mut share_reads = per_share;
                    if remainder > 0 {
                        share_reads += 1;
                        remainder -= 1;
                    }
                    let per_read = self.cfg.read_service_ns
                        // sgp-lint: allow(no-float-accounting): evaluating the float service-time model; the result is cast to integral ns on the next line
                        + if remote { self.cfg.remote_read_extra_ns } else { 0.0 };
                    // sgp-lint: allow(no-float-accounting): the one float->integral boundary for per-share service time
                    let mut service = (share_reads as f64 * per_read) as u64;
                    if share == 0 {
                        service += self.cfg.request_overhead_ns as u64;
                    }
                    pending += 1;
                    self.send_share(
                        slot,
                        Share {
                            query: slot,
                            origin: m as u32,
                            reads: share_reads,
                            service_ns: service,
                            attempt: 1,
                        },
                        t,
                    );
                }
            }
            // Scatter-gather fan-out on the coordinator.
            if remote_fanout > 0 {
                pending += 1;
                // sgp-lint: allow(no-float-accounting): the one float->integral boundary for coordinator fan-out time
                let service = (self.cfg.fanout_ns * remote_fanout as f64) as u64;
                self.send_share(
                    slot,
                    Share {
                        query: slot,
                        origin: coordinator,
                        reads: 0,
                        service_ns: service,
                        attempt: 1,
                    },
                    t,
                );
            }
            if pending > 0 {
                break;
            }
            round += 1;
        }
        let q = &mut self.active[slot as usize];
        q.round = round;
        q.pending = pending;
    }

    /// Completion bookkeeping shared by successful and failed queries:
    /// failed queries count toward totals and warm-up but contribute no
    /// latency sample.
    fn complete(&mut self, slot: u32, now: u64, success: bool) {
        let (client, start_ns, trace_idx) = {
            let q = &self.active[slot as usize];
            (q.client, q.start_ns, q.trace_idx)
        };
        self.completed += 1;
        self.last_completion_ns = now;
        if self.completed == self.warmup {
            self.warmup_end_ns = now;
        }
        if self.completed > self.warmup {
            if success {
                self.ok += 1;
                self.latencies_ns.push(now - start_ns);
                if self.sink.enabled() {
                    self.sink.span_enter(keys::DB_QUERY, trace_idx as u64, start_ns);
                    self.sink.span_exit(keys::DB_QUERY, trace_idx as u64, now);
                    self.sink.counter_add(keys::DB_QUERIES_OK, 0, 1);
                    self.sink.histogram_record(keys::DB_QUERY_LATENCY_NS, 0, now - start_ns);
                }
            } else {
                self.failed += 1;
                self.sink.counter_add(keys::DB_QUERIES_FAILED, 0, 1);
            }
        }
        self.free_slots.push(slot);
        self.events.push(now, FEvent::Issue { client });
    }

    // sgp-lint: allow-scope(no-float-accounting): report rendering — availability, qps and seconds are derived from integral counters after the clock stops
    fn report(mut self) -> FaultSimReport {
        let lat = latency_summary_ms(&mut self.latencies_ns);
        let window_ns = self.last_completion_ns.saturating_sub(self.warmup_end_ns).max(1);
        let window_s = window_ns as f64 / 1e9;
        let denom = (self.ok + self.failed).max(1) as f64;
        FaultSimReport {
            availability: self.ok as f64 / denom,
            goodput_qps: self.ok as f64 / window_s,
            offered_qps: (self.ok + self.failed) as f64 / window_s,
            completed_ok: self.ok,
            failed: self.failed,
            retries: self.retries,
            dropped_messages: self.dropped,
            failovers: self.failovers,
            mean_latency_ms: lat.mean_ms,
            p50_latency_ms: lat.p50_ms,
            p99_latency_ms: lat.p99_ms,
            max_latency_ms: lat.max_ms,
            load_rsd: rsd(&self.reads_per_machine),
            reads_per_machine: self.reads_per_machine,
            sim_seconds: self.last_completion_ns as f64 / 1e9,
            rto_ms: self.rto_ns as f64 / 1e6,
            data_moved: self.data_moved,
            shed_queries: self.shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryResult, QueryTrace, RoundTrace};
    use crate::store::PartitionedStore;
    use crate::workload::{Skew, Workload, WorkloadKind};
    use sgp_graph::generators::{snb_social, SnbConfig};
    use sgp_graph::StreamOrder;
    use sgp_partition::{partition, Algorithm, PartitionerConfig};

    fn two_machine_sim() -> ClusterSim {
        // One query class: coordinator 0 reads 2 local + 2 remote.
        let trace = QueryTrace {
            coordinator: 0,
            rounds: vec![RoundTrace { reads: vec![2, 2] }],
            result: QueryResult::Vertices(vec![]),
        };
        ClusterSim::from_traces(2, vec![trace])
    }

    fn quick_cfg() -> FaultSimConfig {
        FaultSimConfig {
            base: SimConfig {
                clients_per_machine: 4,
                queries_per_client: 25,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn full_coverage(machines: usize) -> MirrorDirectory {
        MirrorDirectory {
            coverage: vec![1.0; machines],
            peers: (0..machines)
                .map(|m| (0..machines as u32).filter(|&p| p as usize != m).collect())
                .collect(),
        }
    }

    #[test]
    fn healthy_plan_matches_healthy_sim_availability() {
        let sim = two_machine_sim();
        let cfg = quick_cfg();
        let plan = FaultPlan::healthy(2, 9);
        let r = sim.run_faulted(&cfg, &plan, &MirrorDirectory::edge_cut(2)).unwrap();
        assert_eq!(r.failed, 0);
        assert!((r.availability - 1.0).abs() < 1e-12);
        assert_eq!(r.retries, 0);
        assert_eq!(r.dropped_messages, 0);
        let healthy = sim.run(&cfg.base);
        assert_eq!(r.completed_ok, healthy.completed);
        assert!((r.goodput_qps - healthy.throughput_qps).abs() / healthy.throughput_qps < 0.05);
    }

    #[test]
    fn fixed_seed_run_is_bit_for_bit_reproducible() {
        let sim = two_machine_sim();
        let cfg = quick_cfg();
        let plan = FaultPlan::healthy(2, 42)
            .with_recovering_crash(1, 2_000_000, 30_000_000)
            .with_straggler(0, 0, 50_000_000, 2.0)
            .with_message_loss(0.02);
        let mirrors = full_coverage(2);
        let a = sim.run_faulted(&cfg, &plan, &mirrors).unwrap();
        let b = sim.run_faulted(&cfg, &plan, &mirrors).unwrap();
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "same plan + seed must reproduce the report bit-for-bit");
    }

    #[test]
    fn message_loss_triggers_retries_not_failures() {
        let sim = two_machine_sim();
        let cfg = quick_cfg();
        let plan = FaultPlan::healthy(2, 3).with_message_loss(0.05);
        let r = sim.run_faulted(&cfg, &plan, &MirrorDirectory::edge_cut(2)).unwrap();
        assert!(r.dropped_messages > 0, "5% loss over thousands of sends must drop some");
        assert!(r.retries >= r.dropped_messages, "every drop is retried");
        // 4 attempts at 5% loss: failure odds per share are ~6e-6.
        assert!(r.availability > 0.99, "retries should mask rare drops: {}", r.availability);
    }

    #[test]
    fn permanent_crash_without_mirrors_kills_availability() {
        let sim = two_machine_sim();
        let cfg = quick_cfg();
        let plan = FaultPlan::healthy(2, 5).with_crash(1, 0);
        let r = sim.run_faulted(&cfg, &plan, &MirrorDirectory::edge_cut(2)).unwrap();
        assert!(r.failed > 0, "remote reads on the dead machine must fail queries");
        assert!(r.availability < 1.0);
        assert_eq!(r.failovers, 0);
    }

    #[test]
    fn mirrors_restore_availability_after_crash() {
        let sim = two_machine_sim();
        let cfg = quick_cfg();
        let plan = FaultPlan::healthy(2, 5).with_crash(1, 0);
        let none = sim.run_faulted(&cfg, &plan, &MirrorDirectory::edge_cut(2)).unwrap();
        let full = sim.run_faulted(&cfg, &plan, &full_coverage(2)).unwrap();
        assert!(full.failovers > 0, "dead-machine reads must fail over");
        assert!(
            full.availability > none.availability,
            "mirrors must beat no mirrors: {} vs {}",
            full.availability,
            none.availability
        );
        assert!((full.availability - 1.0).abs() < 1e-12, "full coverage masks the crash");
    }

    #[test]
    fn recovering_crash_heals() {
        let sim = two_machine_sim();
        let cfg = quick_cfg();
        // Dead for 10 ms early in the run, then back.
        let plan = FaultPlan::healthy(2, 7).with_recovering_crash(1, 1_000_000, 10_000_000);
        let r = sim.run_faulted(&cfg, &plan, &MirrorDirectory::edge_cut(2)).unwrap();
        assert!(r.retries > 0, "the outage must trigger retries");
        assert!(r.availability > 0.5, "most of the run is healthy: {}", r.availability);
    }

    #[test]
    fn straggler_inflates_latency() {
        let sim = two_machine_sim();
        let cfg = quick_cfg();
        let healthy = sim
            .run_faulted(&cfg, &FaultPlan::healthy(2, 1), &MirrorDirectory::edge_cut(2))
            .unwrap();
        let slowed = sim
            .run_faulted(
                &cfg,
                &FaultPlan::healthy(2, 1).with_straggler(1, 0, u64::MAX, 4.0),
                &MirrorDirectory::edge_cut(2),
            )
            .unwrap();
        assert!(
            slowed.mean_latency_ms > 1.2 * healthy.mean_latency_ms,
            "a 4x straggler must inflate latency: {} vs {}",
            slowed.mean_latency_ms,
            healthy.mean_latency_ms
        );
        assert!(slowed.goodput_qps < healthy.goodput_qps);
    }

    #[test]
    fn all_dead_cluster_is_a_typed_error() {
        let sim = two_machine_sim();
        let plan = FaultPlan::healthy(2, 1).with_crash(0, 0).with_crash(1, 0);
        let err = sim.run_faulted(&quick_cfg(), &plan, &MirrorDirectory::edge_cut(2)).unwrap_err();
        assert_eq!(err, SimError::NoLiveMachines);
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let sim = two_machine_sim();
        let plan = FaultPlan::healthy(3, 1);
        let err = sim.run_faulted(&quick_cfg(), &plan, &MirrorDirectory::edge_cut(2)).unwrap_err();
        assert_eq!(err, SimError::ClusterMismatch { plan: 3, cluster: 2 });
    }

    #[test]
    fn replicating_cuts_survive_crashes_edge_cut_does_not() {
        // The acceptance criterion: under the same crash plan, a
        // vertex-cut (and hybrid-cut) store fails over to mirrors while
        // the edge-cut store cannot.
        let g = snb_social(SnbConfig {
            persons: 600,
            communities: 12,
            avg_friends: 10.0,
            ..SnbConfig::default()
        });
        let k = 4;
        let pcfg = PartitionerConfig::new(k);
        let w = Workload::generate(&g, WorkloadKind::OneHop, 300, Skew::Uniform, 11);
        let plan = FaultPlan::healthy(k, 17).with_crash((k - 1) as u32, 0);
        let cfg = quick_cfg();
        let mut avail = Vec::new();
        for alg in [Algorithm::EcrHash, Algorithm::VcrHash, Algorithm::HybridRandom] {
            let p = partition(&g, alg, &pcfg, StreamOrder::Random { seed: 4 });
            let store = PartitionedStore::from_owner(g.clone(), k, p.masters(&g));
            let sim = ClusterSim::prepare(&store, &w);
            let mirrors = MirrorDirectory::for_model(&g, &p);
            let r = sim.run_faulted(&cfg, &plan, &mirrors).unwrap();
            avail.push(r.availability);
        }
        let (ec, vc, hc) = (avail[0], avail[1], avail[2]);
        assert!(vc > ec, "vertex-cut availability must beat edge-cut: {vc} vs {ec}");
        assert!(hc > ec, "hybrid-cut availability must beat edge-cut: {hc} vs {ec}");
        assert!(ec < 1.0, "a quarter of the data is gone; edge-cut must lose queries");
    }

    #[test]
    fn mirror_directory_shapes() {
        let g = snb_social(SnbConfig { persons: 200, communities: 4, ..SnbConfig::default() });
        let p = partition(
            &g,
            Algorithm::VcrHash,
            &PartitionerConfig::new(3),
            StreamOrder::Random { seed: 1 },
        );
        let d = MirrorDirectory::from_partitioning(&g, &p);
        assert_eq!(d.machines(), 3);
        for m in 0..3u32 {
            assert!((0.0..=1.0).contains(&d.coverage(m)));
            assert!(d.failover_target(m, |_| true).is_none() || d.coverage(m) > 0.0);
        }
        let ec = MirrorDirectory::edge_cut(3);
        for m in 0..3u32 {
            assert_eq!(ec.coverage(m), 0.0);
            assert!(ec.failover_target(m, |_| true).is_none());
        }
    }

    #[test]
    fn plain_fault_run_reports_no_elastic_activity() {
        // Degraded mode off + no membership events: the elasticity
        // fields are inert zeros and the rest of the report matches a
        // pre-elasticity run.
        let sim = two_machine_sim();
        let plan = FaultPlan::healthy(2, 7).with_recovering_crash(1, 1_000_000, 10_000_000);
        let r = sim.run_faulted(&quick_cfg(), &plan, &MirrorDirectory::edge_cut(2)).unwrap();
        assert_eq!(r.rto_ms, 0.0);
        assert_eq!(r.data_moved, 0);
        assert_eq!(r.shed_queries, 0);
    }

    fn elastic_cfg() -> FaultSimConfig {
        FaultSimConfig {
            degraded: DegradedConfig { shed_queue_depth: 1, migration_ns_per_record: 10_000 },
            ..quick_cfg()
        }
    }

    #[test]
    fn scale_in_charges_migration_and_reports_rto() {
        let sim = two_machine_sim();
        let plan = FaultPlan::healthy(2, 7).with_scale_in(1, 2_000_000);
        let elastic = ElasticPlan { records_per_event: vec![500] };
        let r = sim.run_elastic(&elastic_cfg(), &plan, &full_coverage(2), &elastic).unwrap();
        assert_eq!(r.data_moved, 500);
        // 500 records at 10 us each -> a 5 ms recovery window.
        assert!((r.rto_ms - 5.0).abs() < 1e-9, "rto_ms = {}", r.rto_ms);
        assert!(r.failovers > 0, "post-departure reads must fail over to mirrors");
    }

    #[test]
    fn scale_out_machine_is_down_until_it_joins() {
        // Machine 1 only joins the two-machine cluster at 5 ms; before
        // that its reads fail over (full mirrors) or ride retries.
        let sim = two_machine_sim();
        let plan = FaultPlan::healthy(2, 7).with_scale_out(1, 5_000_000);
        let elastic = ElasticPlan { records_per_event: vec![200] };
        let r = sim.run_elastic(&elastic_cfg(), &plan, &full_coverage(2), &elastic).unwrap();
        assert_eq!(r.data_moved, 200);
        assert!(r.failovers > 0, "pre-join reads for machine 1 must fail over");
        // 200 records at 10 us -> 2 ms to populate the joiner.
        assert!((r.rto_ms - 2.0).abs() < 1e-9, "rto_ms = {}", r.rto_ms);
    }

    #[test]
    fn crash_rejoin_rto_spans_downtime_plus_migration() {
        let sim = two_machine_sim();
        let plan = FaultPlan::healthy(2, 7).with_crash_rejoin(1, 1_000_000, 10_000_000);
        let elastic = ElasticPlan { records_per_event: vec![300] };
        let r = sim.run_elastic(&elastic_cfg(), &plan, &full_coverage(2), &elastic).unwrap();
        assert_eq!(r.data_moved, 300);
        // 10 ms of downtime plus 3 ms of restore traffic.
        assert!((r.rto_ms - 13.0).abs() < 1e-9, "rto_ms = {}", r.rto_ms);
        assert!(r.retries > 0 || r.failovers > 0, "the outage must be visible");
    }

    #[test]
    fn admission_control_sheds_under_migration_pressure() {
        // Scale the survivor's queue pressure up: everything fails over
        // to machine 0 while machine 1 restores, and a shed threshold
        // of one rejects most of the pile-up.
        let sim = two_machine_sim();
        let cfg = FaultSimConfig {
            base: SimConfig {
                clients_per_machine: 16,
                queries_per_client: 25,
                ..Default::default()
            },
            degraded: DegradedConfig { shed_queue_depth: 1, migration_ns_per_record: 1_000_000 },
            ..Default::default()
        };
        let plan = FaultPlan::healthy(2, 7).with_crash_rejoin(1, 1_000_000, 2_000_000);
        let elastic = ElasticPlan { records_per_event: vec![10_000] };
        let shed = sim.run_elastic(&cfg, &plan, &full_coverage(2), &elastic).unwrap();
        assert!(shed.shed_queries > 0, "queue pressure past the threshold must shed");
        let open = FaultSimConfig {
            degraded: DegradedConfig { shed_queue_depth: 0, ..cfg.degraded },
            ..cfg
        };
        let unshed = sim.run_elastic(&open, &plan, &full_coverage(2), &elastic).unwrap();
        assert_eq!(unshed.shed_queries, 0, "threshold 0 disables admission control");
    }

    #[test]
    fn elastic_run_is_bit_for_bit_reproducible() {
        let sim = two_machine_sim();
        let plan = FaultPlan::healthy(2, 42)
            .with_crash_rejoin(0, 3_000_000, 5_000_000)
            .with_scale_in(1, 40_000_000)
            .with_message_loss(0.01);
        let elastic = ElasticPlan { records_per_event: vec![250, 400] };
        let mirrors = full_coverage(2);
        let cfg = elastic_cfg();
        let a = sim.run_elastic(&cfg, &plan, &mirrors, &elastic).unwrap();
        let b = sim.run_elastic(&cfg, &plan, &mirrors, &elastic).unwrap();
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "same plan + seed + migration load must reproduce bit-for-bit"
        );
        if let (Ok(ja), Ok(jb)) = (serde_json::to_string(&a), serde_json::to_string(&b)) {
            assert_eq!(ja, jb, "the serialized reports must be byte-identical too");
        }
    }
}
