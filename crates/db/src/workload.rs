//! Online-query workload generation and access recording.
//!
//! The paper generates "1000 bindings for each type of query" (§5.2.3)
//! and finds that *workload skew* — hot start vertices — is what breaks
//! structural-metric-based SGP for online queries (§6.3.3). The
//! [`Workload`] generator supports uniform bindings (the paper's
//! random-vertex protocol) and Zipf-skewed bindings (modelling the
//! LDBC-driven hotspots); the [`AccessRecorder`] captures per-vertex
//! access counts during execution, producing the weighted graph behind
//! the paper's Fig. 8 workload-aware repartitioning experiment.

use crate::query::{execute, Query, QueryTrace};
use crate::store::PartitionedStore;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sgp_graph::sampling::{seeded_rng, Zipf};
use sgp_graph::{Graph, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which query class a workload issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// 1-hop neighbourhood retrievals.
    OneHop,
    /// 2-hop neighbourhood retrievals.
    TwoHop,
    /// Single-pair shortest paths.
    ShortestPath,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(match self {
            WorkloadKind::OneHop => "1-hop",
            WorkloadKind::TwoHop => "2-hop",
            WorkloadKind::ShortestPath => "SPSP",
        })
    }
}

/// Start-vertex selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Skew {
    /// Uniformly random start vertices (paper's real-world-graph protocol).
    Uniform,
    /// Zipf(θ) over a random popularity permutation — the workload skew
    /// of §6.3.3.
    Zipf {
        /// Skew exponent (≈1 for social query logs).
        theta: f64,
    },
}

/// A bound workload: a query class plus its parameter bindings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Query class.
    pub kind: WorkloadKind,
    /// The generated queries, cycled by the simulator.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Generates `count` bindings for `kind` over `g`.
    pub fn generate(g: &Graph, kind: WorkloadKind, count: usize, skew: Skew, seed: u64) -> Self {
        assert!(g.num_vertices() > 0, "cannot bind queries on an empty graph");
        let mut rng = seeded_rng(seed);
        let n = g.num_vertices();
        // Popularity permutation: which vertex is "rank r popular".
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        sgp_graph::sampling::shuffle(&mut perm, &mut rng);
        let zipf = match skew {
            Skew::Uniform => None,
            Skew::Zipf { theta } => Some(Zipf::new(n, theta)),
        };
        let pick = |rng: &mut rand::rngs::StdRng| -> VertexId {
            match &zipf {
                Some(z) => perm[z.sample(rng)],
                None => rng.gen_range(0..n) as VertexId,
            }
        };
        let queries = (0..count)
            .map(|_| match kind {
                WorkloadKind::OneHop => Query::OneHop { start: pick(&mut rng) },
                WorkloadKind::TwoHop => Query::TwoHop { start: pick(&mut rng) },
                WorkloadKind::ShortestPath => {
                    let src = pick(&mut rng);
                    let mut dst = pick(&mut rng);
                    if dst == src {
                        dst = (dst + 1) % n as VertexId;
                    }
                    Query::ShortestPath { src, dst }
                }
            })
            .collect();
        Workload { kind, queries }
    }

    /// Generates a LinkBench-style *mixed* workload: the paper cites
    /// LinkBench, where 1-hop retrievals are "more than 50%" of the
    /// production mix. `mix` gives the relative weight of each query
    /// class (1-hop, 2-hop, shortest-path); queries are interleaved
    /// deterministically by weight.
    ///
    /// # Panics
    /// Panics if all weights are zero.
    pub fn generate_mixed(g: &Graph, mix: [u32; 3], count: usize, skew: Skew, seed: u64) -> Self {
        let total: u32 = mix.iter().sum();
        assert!(total > 0, "at least one query class must have weight");
        let kinds = [WorkloadKind::OneHop, WorkloadKind::TwoHop, WorkloadKind::ShortestPath];
        // Generate per-class pools, then interleave by weight so the mix
        // holds over any prefix (closed-loop clients cycle the list).
        let pools: Vec<Workload> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let share = ((count as u64 * mix[i] as u64).div_ceil(total as u64)) as usize;
                Workload::generate(g, kind, share.max(1), skew, seed ^ (i as u64 + 1))
            })
            .collect();
        let mut queries = Vec::with_capacity(count);
        let mut cursors = [0usize; 3];
        let mut credit = [0i64; 3];
        while queries.len() < count {
            for i in 0..3 {
                credit[i] += mix[i] as i64;
            }
            // Emit from the class with the most accumulated credit.
            // sgp-lint: allow(no-panic-in-lib): max_by_key over the literal non-empty range 0..3
            let i = (0..3).max_by_key(|&i| credit[i]).expect("three classes");
            credit[i] -= total as i64;
            let pool = &pools[i];
            queries.push(pool.queries[cursors[i] % pool.queries.len()]);
            cursors[i] += 1;
        }
        Workload { kind: WorkloadKind::OneHop, queries }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if no bindings were generated.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Thread-safe per-vertex access counter. JanusGraph instances serve
/// queries concurrently, so the recorder is shared; each vertex gets
/// its own atomic cell bumped with `Relaxed` ordering. The cells are
/// independent statistical counters — no cross-cell ordering is ever
/// observed — so the hot recording path is a single uncontended
/// fetch-add with no lock to convoy behind.
#[derive(Debug, Default)]
pub struct AccessRecorder {
    counts: Vec<AtomicU64>,
}

impl AccessRecorder {
    /// A recorder for `n` vertices.
    pub fn new(n: usize) -> Self {
        AccessRecorder { counts: (0..n).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Records one access to `v`.
    pub fn record(&self, v: VertexId) {
        self.counts[v as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records every vertex read in a query's execution: the start
    /// vertex plus all result-set vertices (what the store actually
    /// touched).
    pub fn record_query(&self, q: &Query, trace: &QueryTrace) {
        self.record(q.start_vertex());
        if let crate::query::QueryResult::Vertices(vs) = &trace.result {
            for &v in vs {
                self.record(v);
            }
        }
    }

    /// Snapshot of the raw counts.
    pub fn counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Converts the counts into the vertex-weight vector of the paper's
    /// Fig. 8: `1 + accesses` (the +1 keeps never-touched vertices
    /// placeable and the weighted total finite).
    pub fn vertex_weights(&self) -> Vec<u64> {
        self.counts.iter().map(|c| 1 + c.load(Ordering::Relaxed)).collect()
    }
}

/// Executes a full workload once against `store`, returning all traces
/// and (optionally) recording accesses. This is the trace-collection
/// pass the discrete-event simulator replays.
pub fn run_workload(
    store: &PartitionedStore,
    workload: &Workload,
    recorder: Option<&AccessRecorder>,
) -> Vec<QueryTrace> {
    workload
        .queries
        .iter()
        .map(|&q| {
            let t = execute(store, q);
            if let Some(rec) = recorder {
                rec.record_query(&q, &t);
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::generators::{snb_social, SnbConfig};
    use sgp_graph::GraphBuilder;
    use sgp_graph::StreamOrder;
    use sgp_partition::{partition, Algorithm, PartitionerConfig};

    fn small_store() -> PartitionedStore {
        let g = snb_social(SnbConfig {
            persons: 500,
            communities: 10,
            avg_friends: 6.0,
            ..SnbConfig::default()
        });
        let cfg = PartitionerConfig::new(4);
        let p = partition(&g, Algorithm::EcrHash, &cfg, StreamOrder::Natural);
        PartitionedStore::new(g, &p)
    }

    #[test]
    fn workload_generates_requested_count() {
        let s = small_store();
        let w = Workload::generate(s.graph(), WorkloadKind::OneHop, 100, Skew::Uniform, 1);
        assert_eq!(w.len(), 100);
    }

    #[test]
    fn zipf_workload_is_skewed() {
        let s = small_store();
        let w =
            Workload::generate(s.graph(), WorkloadKind::OneHop, 2000, Skew::Zipf { theta: 1.0 }, 2);
        let mut counts = std::collections::BTreeMap::new();
        for q in &w.queries {
            *counts.entry(q.start_vertex()).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 2000 / 500 * 10, "hot vertex should dominate: max {max}");
    }

    #[test]
    fn uniform_workload_covers_many_vertices() {
        let s = small_store();
        let w = Workload::generate(s.graph(), WorkloadKind::OneHop, 2000, Skew::Uniform, 3);
        let distinct: std::collections::BTreeSet<_> =
            w.queries.iter().map(|q| q.start_vertex()).collect();
        assert!(distinct.len() > 300, "uniform should spread: {}", distinct.len());
    }

    #[test]
    fn spsp_bindings_have_distinct_endpoints() {
        let s = small_store();
        let w = Workload::generate(s.graph(), WorkloadKind::ShortestPath, 500, Skew::Uniform, 4);
        for q in &w.queries {
            if let Query::ShortestPath { src, dst } = q {
                assert_ne!(src, dst);
            } else {
                panic!("wrong query kind");
            }
        }
    }

    #[test]
    fn recorder_counts_start_and_results() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).build();
        let p = sgp_partition::Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 1]);
        let store = PartitionedStore::new(g, &p);
        let rec = AccessRecorder::new(3);
        let w = Workload { kind: WorkloadKind::OneHop, queries: vec![Query::OneHop { start: 0 }] };
        run_workload(&store, &w, Some(&rec));
        assert_eq!(rec.counts(), vec![1, 1, 1]);
        assert_eq!(rec.vertex_weights(), vec![2, 2, 2]);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = std::sync::Arc::new(AccessRecorder::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = rec.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.record(2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counts()[2], 4000);
    }

    #[test]
    fn mixed_workload_matches_requested_ratios() {
        let s = small_store();
        // LinkBench-ish: 60% 1-hop, 30% 2-hop, 10% shortest path.
        let w = Workload::generate_mixed(s.graph(), [6, 3, 1], 1000, Skew::Uniform, 9);
        assert_eq!(w.len(), 1000);
        let count = |f: fn(&Query) -> bool| w.queries.iter().filter(|q| f(q)).count();
        let one = count(|q| matches!(q, Query::OneHop { .. }));
        let two = count(|q| matches!(q, Query::TwoHop { .. }));
        let sp = count(|q| matches!(q, Query::ShortestPath { .. }));
        assert!((one as i64 - 600).abs() <= 10, "1-hop {one}");
        assert!((two as i64 - 300).abs() <= 10, "2-hop {two}");
        assert!((sp as i64 - 100).abs() <= 10, "spsp {sp}");
        // The mix must hold over prefixes too (closed-loop fairness).
        let prefix_one =
            w.queries[..100].iter().filter(|q| matches!(q, Query::OneHop { .. })).count();
        assert!((prefix_one as i64 - 60).abs() <= 5, "prefix 1-hop {prefix_one}");
    }

    #[test]
    fn mixed_workload_runs_through_simulator() {
        let s = small_store();
        let w = Workload::generate_mixed(s.graph(), [5, 4, 1], 120, Skew::Zipf { theta: 0.8 }, 4);
        let sim = crate::sim::ClusterSim::prepare(&s, &w);
        let r = sim.run(&crate::sim::SimConfig {
            clients_per_machine: 4,
            queries_per_client: 10,
            ..Default::default()
        });
        assert!(r.throughput_qps > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one query class")]
    fn mixed_workload_rejects_zero_mix() {
        let s = small_store();
        Workload::generate_mixed(s.graph(), [0, 0, 0], 10, Skew::Uniform, 1);
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let s = small_store();
        let a =
            Workload::generate(s.graph(), WorkloadKind::TwoHop, 50, Skew::Zipf { theta: 0.8 }, 7);
        let b =
            Workload::generate(s.graph(), WorkloadKind::TwoHop, 50, Skew::Zipf { theta: 0.8 }, 7);
        assert_eq!(a.queries, b.queries);
    }
}
