//! Discrete-event simulation of the JanusGraph cluster serving
//! closed-loop concurrent clients.
//!
//! The paper measures throughput and latency "under two different
//! scenarios: (i) medium load [...] 12 concurrent clients per worker and
//! the system is at high utilization, and (ii) high load [...] the
//! number of concurrent clients is doubled and system is overloaded"
//! (§6.3.2). This module reproduces that methodology:
//!
//! * each query's machine-level work comes from its real execution
//!   trace ([`crate::query::QueryTrace`]): per communication round, each
//!   touched machine performs `overhead + reads·read_cost` of service;
//! * every machine is a multi-core FIFO server; rounds are scatter/gather
//!   barriers (a round ends when its slowest sub-request finishes);
//! * clients are closed-loop: each issues its next query the moment the
//!   previous one completes.
//!
//! Load imbalance — the paper's central online finding — emerges
//! naturally: a machine owning hot vertices accumulates queue, inflating
//! tail latency (Table 5) and capping aggregate throughput (Fig. 6).

use crate::query::QueryTrace;
use crate::store::PartitionedStore;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use sgp_trace::{keys, latency_summary_ms, NullSink, TraceSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The paper's two load scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadLevel {
    /// 12 concurrent clients per worker machine — "high utilization".
    Medium,
    /// 24 concurrent clients per worker machine — "overloaded".
    High,
}

impl LoadLevel {
    /// Concurrent closed-loop clients per machine.
    pub fn clients_per_machine(self) -> usize {
        match self {
            LoadLevel::Medium => 12,
            LoadLevel::High => 24,
        }
    }
}

impl std::fmt::Display for LoadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(match self {
            LoadLevel::Medium => "medium",
            LoadLevel::High => "high",
        })
    }
}

/// Simulation parameters (defaults approximate the paper's 12-core
/// workers; only relative results matter).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Closed-loop clients per machine.
    pub clients_per_machine: usize,
    /// Cores per machine (parallel servers).
    pub cores_per_machine: usize,
    /// Service nanoseconds per vertex read.
    pub read_service_ns: f64,
    /// Fixed service nanoseconds per sub-request (RPC handling,
    /// deserialization).
    pub request_overhead_ns: f64,
    /// One-way network latency for a remote sub-request, nanoseconds.
    pub half_rtt_ns: f64,
    /// Coordinator-side cost per *remote* sub-request in a round
    /// (request serialization + response merging), nanoseconds. This is
    /// what makes wide scatter-gather fan-outs expensive and reproduces
    /// the paper's Fig. 12 degradation past 16 machines.
    pub fanout_ns: f64,
    /// Maximum cores a single multi-get sub-request fans out over on its
    /// machine (storage engines parallelize batch reads; 1 = serial).
    pub intra_request_parallelism: usize,
    /// Extra service nanoseconds per *remote* read on top of
    /// [`SimConfig::read_service_ns`] (wire serialization on both ends,
    /// kernel crossings) — what makes cut edges expensive.
    pub remote_read_extra_ns: f64,
    /// Queries each client completes (simulation length).
    pub queries_per_client: usize,
    /// Fraction of completions discarded as warm-up ("measurements after
    /// caches are warmed up", §5.2.3).
    pub warmup_fraction: f64,
}

impl SimConfig {
    /// Configuration for one of the paper's load levels.
    pub fn for_load(level: LoadLevel) -> Self {
        SimConfig { clients_per_machine: level.clients_per_machine(), ..Default::default() }
    }
}

// sgp-lint: allow-scope(no-float-accounting): service-time parameters are float nanoseconds by the paper's cost-model convention; every event stamp derived from them is cast to integral ns exactly once
impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clients_per_machine: 12,
            cores_per_machine: 8,
            // Vertex reads dominate service time (Cassandra read path:
            // row lookup + deserialization), as in the paper's clusters.
            read_service_ns: 120_000.0,    // 120 µs per vertex read
            request_overhead_ns: 60_000.0, // 60 µs per RPC
            half_rtt_ns: 250_000.0,        // 0.5 ms round trip
            fanout_ns: 30_000.0,           // 30 µs per remote sub-request
            intra_request_parallelism: 8,
            remote_read_extra_ns: 60_000.0, // 60 µs per remote read
            queries_per_client: 60,
            warmup_fraction: 0.2,
        }
    }
}

/// Results of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Aggregate throughput, queries per second (post-warm-up).
    pub throughput_qps: f64,
    /// Mean latency, milliseconds.
    pub mean_latency_ms: f64,
    /// Median latency, milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile latency, milliseconds (Table 5's tail metric).
    pub p99_latency_ms: f64,
    /// Maximum observed latency, milliseconds.
    pub max_latency_ms: f64,
    /// Completed queries counted in the stats.
    pub completed: usize,
    /// Vertices read per machine (post-warm-up) — Fig. 7/15's quantity.
    pub reads_per_machine: Vec<u64>,
    /// Relative standard deviation of `reads_per_machine` — Fig. 8's
    /// load-balance metric.
    pub load_rsd: f64,
    /// Total simulated wall-clock seconds.
    pub sim_seconds: f64,
}

/// A prepared simulation: query traces are collected once and replayed
/// under any [`SimConfig`].
#[derive(Debug, Clone)]
pub struct ClusterSim {
    pub(crate) machines: usize,
    pub(crate) traces: Vec<QueryTrace>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A client becomes ready to issue its next query.
    Issue { client: u32 },
    /// A sub-request arrives at a machine's queue.
    SubArrive { query: u32, machine: u32, service_ns: u64 },
    /// A machine core finishes a sub-request of `query`.
    SubDone { query: u32, machine: u32 },
}

/// Time-ordered event queue with deterministic tie-breaking: events
/// scheduled for the same instant pop in insertion (FIFO) order, via a
/// monotonically increasing sequence number. `BinaryHeap` alone gives
/// no ordering guarantee between equal keys, so without the sequence
/// number same-time events would pop in an arbitrary (payload-derived)
/// order and replays would not be reproducible across refactors.
///
/// Shared by the healthy DES ([`ClusterSim::run`]) and the faulted one
/// ([`ClusterSim::run_faulted`](crate::fault_sim)).
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, E)>>,
    seq: u64,
}

impl<E: Ord> EventQueue<E> {
    pub(crate) fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `e` at time `t`, after every event already scheduled
    /// at `t`.
    pub(crate) fn push(&mut self, t: u64, e: E) {
        self.seq += 1;
        self.heap.push(Reverse((t, self.seq, e)));
    }

    /// Pops the earliest event; ties resolve in push order.
    pub(crate) fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e))
    }
}

struct Machine {
    cores: usize,
    busy: usize,
    fifo: VecDeque<(u32, u64)>, // (query, service_ns)
}

struct ActiveQuery {
    trace_idx: u32,
    client: u32,
    round: usize,
    pending: u32,
    round_has_remote: bool,
    start_ns: u64,
}

impl ClusterSim {
    /// Executes every binding of `workload` once against `store` to
    /// collect traces (this is also where an
    /// [`crate::workload::AccessRecorder`] would hook in).
    pub fn prepare(store: &PartitionedStore, workload: &Workload) -> Self {
        let traces = crate::workload::run_workload(store, workload, None);
        ClusterSim { machines: store.machines(), traces }
    }

    /// Builds a simulation from pre-collected traces.
    pub fn from_traces(machines: usize, traces: Vec<QueryTrace>) -> Self {
        assert!(!traces.is_empty(), "need at least one trace");
        ClusterSim { machines, traces }
    }

    /// Number of machines in the simulated cluster.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Runs the discrete-event simulation.
    pub fn run(&self, cfg: &SimConfig) -> SimReport {
        self.run_traced(cfg, &mut NullSink)
    }

    /// [`ClusterSim::run`] with trace events recorded into `sink`
    /// (DESIGN.md §9).
    ///
    /// Stamps are simulated nanoseconds from the event clock, so the
    /// trace is a pure function of the traces and config. Query
    /// lifecycle spans (`db.query`) are emitted at completion time as
    /// adjacent enter/exit pairs — concurrent queries overlap in sim
    /// time, and deferring emission keeps the event stream
    /// well-nested for [`sgp_trace::CollectingSink::check_nesting`].
    pub fn run_traced<S: TraceSink>(&self, cfg: &SimConfig, sink: &mut S) -> SimReport {
        assert!(cfg.clients_per_machine > 0 && cfg.queries_per_client > 0);
        let k = self.machines;
        let clients = cfg.clients_per_machine * k;
        let total_queries = clients * cfg.queries_per_client;
        // sgp-lint: allow(no-float-accounting): warmup cutoff is a one-time fraction of the query count, rounded before the event loop starts
        let warmup = (total_queries as f64 * cfg.warmup_fraction) as usize;

        let mut machines: Vec<Machine> = (0..k)
            .map(|_| Machine { cores: cfg.cores_per_machine, busy: 0, fifo: VecDeque::new() })
            .collect();
        let mut events: EventQueue<Event> = EventQueue::new();

        // Stagger client starts over one overhead period to avoid a
        // thundering herd at t=0.
        for c in 0..clients as u32 {
            let jitter = (c as u64 * 1_000) % (cfg.request_overhead_ns as u64 + 1);
            events.push(jitter, Event::Issue { client: c });
        }

        let mut active: Vec<ActiveQuery> = Vec::new();
        let mut free_slots: Vec<u32> = Vec::new();
        let mut next_binding = 0usize; // global cursor over the bindings
        let mut issued = 0usize;
        let mut completed = 0usize;
        let mut latencies_ns: Vec<u64> = Vec::with_capacity(total_queries);
        let mut reads_per_machine = vec![0u64; k];
        let mut warmup_end_ns = 0u64;
        let mut last_completion_ns = 0u64;

        sink.span_enter(keys::DB_RUN, 0, 0);
        while let Some((now, event)) = events.pop() {
            match event {
                Event::Issue { client } => {
                    if issued >= total_queries {
                        continue;
                    }
                    issued += 1;
                    let trace_idx = (next_binding % self.traces.len()) as u32;
                    next_binding += 1;
                    let slot = match free_slots.pop() {
                        Some(s) => s,
                        None => {
                            active.push(ActiveQuery {
                                trace_idx: 0,
                                client: 0,
                                round: 0,
                                pending: 0,
                                round_has_remote: false,
                                start_ns: 0,
                            });
                            (active.len() - 1) as u32
                        }
                    };
                    let q = &mut active[slot as usize];
                    q.trace_idx = trace_idx;
                    q.client = client;
                    q.round = 0;
                    q.pending = 0;
                    q.round_has_remote = false;
                    q.start_ns = now;
                    self.dispatch_round(slot, now, cfg, &mut active, &mut events);
                    // If the query had no rounds at all (degenerate), it
                    // completes instantly.
                    if active[slot as usize].pending == 0 {
                        complete_query(
                            slot,
                            now,
                            cfg,
                            &mut active,
                            &mut free_slots,
                            &mut events,
                            &mut completed,
                            warmup,
                            &mut warmup_end_ns,
                            &mut last_completion_ns,
                            &mut latencies_ns,
                            &mut reads_per_machine,
                            &self.traces,
                            k,
                            sink,
                        );
                    }
                }
                Event::SubArrive { query, machine, service_ns } => {
                    let m = &mut machines[machine as usize];
                    if m.busy < m.cores {
                        m.busy += 1;
                        events.push(now + service_ns, Event::SubDone { query, machine });
                    } else {
                        m.fifo.push_back((query, service_ns));
                        if sink.enabled() {
                            sink.counter_add(keys::DB_QUEUE_ENQUEUED, machine as u64, 1);
                            sink.histogram_record(
                                keys::DB_QUEUE_DEPTH,
                                machine as u64,
                                m.fifo.len() as u64,
                            );
                        }
                    }
                }
                Event::SubDone { query, machine } => {
                    // Free the core, admit the next queued sub-request.
                    let m = &mut machines[machine as usize];
                    m.busy -= 1;
                    if let Some((next_q, service)) = m.fifo.pop_front() {
                        m.busy += 1;
                        events.push(now + service, Event::SubDone { query: next_q, machine });
                    }
                    // Advance the owning query.
                    let slot = query;
                    let q = &mut active[slot as usize];
                    q.pending -= 1;
                    if q.pending > 0 {
                        continue;
                    }
                    let reply_delay = if q.round_has_remote { cfg.half_rtt_ns as u64 } else { 0 };
                    let round_end = now + reply_delay;
                    q.round += 1;
                    let trace = &self.traces[q.trace_idx as usize];
                    if q.round < trace.rounds.len() {
                        self.dispatch_round(slot, round_end, cfg, &mut active, &mut events);
                        if active[slot as usize].pending == 0 {
                            // Empty round (all-zero reads): treat as done.
                            complete_query(
                                slot,
                                round_end,
                                cfg,
                                &mut active,
                                &mut free_slots,
                                &mut events,
                                &mut completed,
                                warmup,
                                &mut warmup_end_ns,
                                &mut last_completion_ns,
                                &mut latencies_ns,
                                &mut reads_per_machine,
                                &self.traces,
                                k,
                                sink,
                            );
                        }
                    } else {
                        complete_query(
                            slot,
                            round_end,
                            cfg,
                            &mut active,
                            &mut free_slots,
                            &mut events,
                            &mut completed,
                            warmup,
                            &mut warmup_end_ns,
                            &mut last_completion_ns,
                            &mut latencies_ns,
                            &mut reads_per_machine,
                            &self.traces,
                            k,
                            sink,
                        );
                    }
                }
            }
            if completed >= total_queries {
                break;
            }
        }

        if sink.enabled() {
            for (m, &r) in reads_per_machine.iter().enumerate() {
                sink.counter_add(keys::DB_READS, m as u64, r);
            }
        }
        sink.span_exit(keys::DB_RUN, 0, last_completion_ns);

        let lat = latency_summary_ms(&mut latencies_ns);
        let window_ns = last_completion_ns.saturating_sub(warmup_end_ns).max(1);
        let counted = completed.saturating_sub(warmup);
        let load_rsd = rsd(&reads_per_machine);
        SimReport {
            // sgp-lint: allow(no-float-accounting): report rendering — qps is derived from integral counters after the clock stops
            throughput_qps: counted as f64 / (window_ns as f64 / 1e9),
            mean_latency_ms: lat.mean_ms,
            p50_latency_ms: lat.p50_ms,
            p99_latency_ms: lat.p99_ms,
            max_latency_ms: lat.max_ms,
            completed: counted,
            reads_per_machine,
            load_rsd,
            // sgp-lint: allow(no-float-accounting): report rendering — seconds are derived from the final integral stamp
            sim_seconds: last_completion_ns as f64 / 1e9,
        }
    }

    /// Issues the current round's sub-requests of query slot `slot` at
    /// time `t`.
    fn dispatch_round(
        &self,
        slot: u32,
        t: u64,
        cfg: &SimConfig,
        active: &mut [ActiveQuery],
        events: &mut EventQueue<Event>,
    ) {
        let q = &mut active[slot as usize];
        let trace = &self.traces[q.trace_idx as usize];
        let coordinator = trace.coordinator;
        let mut pending = 0u32;
        let mut has_remote = false;
        // Skip over all-empty rounds.
        while q.round < trace.rounds.len() {
            let round = &trace.rounds[q.round];
            let mut remote_fanout = 0u32;
            for (m, &reads) in round.reads.iter().enumerate() {
                if reads == 0 {
                    continue;
                }
                let remote = m as u32 != coordinator;
                has_remote |= remote;
                if remote {
                    remote_fanout += 1;
                }
                let delay = if remote { cfg.half_rtt_ns as u64 } else { 0 };
                // A batch read parallelizes over up to
                // `intra_request_parallelism` cores of the target
                // machine; the RPC overhead is paid once, on the first
                // share.
                let shares = (reads as usize).min(cfg.intra_request_parallelism.max(1)) as u32;
                let per_share = reads / shares;
                let mut remainder = reads % shares;
                for share in 0..shares {
                    let mut share_reads = per_share;
                    if remainder > 0 {
                        share_reads += 1;
                        remainder -= 1;
                    }
                    let per_read =
                        // sgp-lint: allow(no-float-accounting): evaluating the float service-time model; the result is cast to integral ns on the next line
                        cfg.read_service_ns + if remote { cfg.remote_read_extra_ns } else { 0.0 };
                    // sgp-lint: allow(no-float-accounting): the one float->integral boundary for per-share service time
                    let mut service = (share_reads as f64 * per_read) as u64;
                    if share == 0 {
                        service += cfg.request_overhead_ns as u64;
                    }
                    pending += 1;
                    events.push(
                        t + delay,
                        Event::SubArrive { query: slot, machine: m as u32, service_ns: service },
                    );
                }
            }
            // Scatter-gather fan-out: the coordinator serializes every
            // remote request and merges every remote response.
            if remote_fanout > 0 {
                pending += 1;
                // sgp-lint: allow(no-float-accounting): the one float->integral boundary for coordinator fan-out time
                let service = (cfg.fanout_ns * remote_fanout as f64) as u64;
                events.push(
                    t,
                    Event::SubArrive { query: slot, machine: coordinator, service_ns: service },
                );
            }
            if pending > 0 {
                break;
            }
            q.round += 1;
        }
        q.pending = pending;
        q.round_has_remote = has_remote;
    }
}

#[allow(clippy::too_many_arguments)]
fn complete_query<S: TraceSink>(
    slot: u32,
    now: u64,
    _cfg: &SimConfig,
    active: &mut [ActiveQuery],
    free_slots: &mut Vec<u32>,
    events: &mut EventQueue<Event>,
    completed: &mut usize,
    warmup: usize,
    warmup_end_ns: &mut u64,
    last_completion_ns: &mut u64,
    latencies_ns: &mut Vec<u64>,
    reads_per_machine: &mut [u64],
    traces: &[QueryTrace],
    _k: usize,
    sink: &mut S,
) {
    let q = &active[slot as usize];
    *completed += 1;
    *last_completion_ns = now;
    if *completed == warmup {
        *warmup_end_ns = now;
    }
    if *completed > warmup {
        latencies_ns.push(now - q.start_ns);
        let trace = &traces[q.trace_idx as usize];
        for r in &trace.rounds {
            for (m, &c) in r.reads.iter().enumerate() {
                reads_per_machine[m] += c as u64;
            }
        }
        if sink.enabled() {
            sink.span_enter(keys::DB_QUERY, q.trace_idx as u64, q.start_ns);
            sink.span_exit(keys::DB_QUERY, q.trace_idx as u64, now);
            sink.counter_add(keys::DB_QUERIES_COMPLETED, 0, 1);
            sink.histogram_record(keys::DB_QUERY_LATENCY_NS, 0, now - q.start_ns);
        }
    }
    let client = q.client;
    free_slots.push(slot);
    events.push(now, Event::Issue { client });
}

/// Relative standard deviation of per-machine loads.
// sgp-lint: allow-scope(no-float-accounting): relative standard deviation is a report statistic over final integral counters
pub(crate) fn rsd(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryResult, RoundTrace};
    use crate::workload::{Skew, Workload, WorkloadKind};
    use sgp_graph::generators::{snb_social, SnbConfig};
    use sgp_graph::StreamOrder;
    use sgp_partition::{partition, Algorithm, PartitionerConfig};

    fn store(k: usize, alg: Algorithm) -> PartitionedStore {
        let g = snb_social(SnbConfig {
            persons: 1500,
            communities: 20,
            avg_friends: 10.0,
            ..SnbConfig::default()
        });
        let cfg = PartitionerConfig::new(k);
        let p = partition(&g, alg, &cfg, StreamOrder::Random { seed: 4 });
        PartitionedStore::new(g, &p)
    }

    fn quick_cfg(clients: usize) -> SimConfig {
        SimConfig { clients_per_machine: clients, queries_per_client: 25, ..Default::default() }
    }

    #[test]
    fn simulation_completes_all_queries() {
        let s = store(4, Algorithm::EcrHash);
        let w = Workload::generate(s.graph(), WorkloadKind::OneHop, 200, Skew::Uniform, 1);
        let sim = ClusterSim::prepare(&s, &w);
        let cfg = quick_cfg(4);
        let r = sim.run(&cfg);
        let total = cfg.clients_per_machine * 4 * cfg.queries_per_client;
        let warmup = (total as f64 * cfg.warmup_fraction) as usize;
        assert_eq!(r.completed, total - warmup);
        assert!(r.throughput_qps > 0.0);
        assert!(r.mean_latency_ms > 0.0);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let s = store(4, Algorithm::EcrHash);
        let w = Workload::generate(s.graph(), WorkloadKind::OneHop, 200, Skew::Uniform, 2);
        let sim = ClusterSim::prepare(&s, &w);
        let r = sim.run(&quick_cfg(8));
        assert!(r.p50_latency_ms <= r.p99_latency_ms);
        assert!(r.p99_latency_ms <= r.max_latency_ms);
        assert!(r.p50_latency_ms > 0.0);
    }

    #[test]
    fn higher_load_raises_latency() {
        let s = store(4, Algorithm::EcrHash);
        let w = Workload::generate(s.graph(), WorkloadKind::OneHop, 400, Skew::Uniform, 3);
        let sim = ClusterSim::prepare(&s, &w);
        let medium = sim.run(&quick_cfg(LoadLevel::Medium.clients_per_machine()));
        let high = sim.run(&quick_cfg(LoadLevel::High.clients_per_machine()));
        assert!(
            high.mean_latency_ms > medium.mean_latency_ms,
            "overload must raise latency: {} vs {}",
            high.mean_latency_ms,
            medium.mean_latency_ms
        );
    }

    #[test]
    fn deterministic_replay() {
        let s = store(2, Algorithm::EcrHash);
        let w = Workload::generate(s.graph(), WorkloadKind::OneHop, 100, Skew::Uniform, 5);
        let sim = ClusterSim::prepare(&s, &w);
        let a = sim.run(&quick_cfg(4));
        let b = sim.run(&quick_cfg(4));
        assert_eq!(a.completed, b.completed);
        assert!((a.throughput_qps - b.throughput_qps).abs() < 1e-9);
        assert!((a.p99_latency_ms - b.p99_latency_ms).abs() < 1e-9);
    }

    #[test]
    fn skewed_workload_imbalances_reads() {
        let s = store(8, Algorithm::Fennel);
        let uniform = Workload::generate(s.graph(), WorkloadKind::OneHop, 500, Skew::Uniform, 6);
        let skewed =
            Workload::generate(s.graph(), WorkloadKind::OneHop, 500, Skew::Zipf { theta: 1.1 }, 6);
        let ru = ClusterSim::prepare(&s, &uniform).run(&quick_cfg(4));
        let rs = ClusterSim::prepare(&s, &skewed).run(&quick_cfg(4));
        assert!(
            rs.load_rsd > ru.load_rsd,
            "Zipf workload should imbalance reads: {} vs {}",
            rs.load_rsd,
            ru.load_rsd
        );
    }

    #[test]
    fn synthetic_single_round_trace() {
        // One query, one machine, fixed service: latency must equal
        // overhead + one read.
        let trace = QueryTrace {
            coordinator: 0,
            rounds: vec![RoundTrace { reads: vec![1] }],
            result: QueryResult::Vertices(vec![]),
        };
        let sim = ClusterSim::from_traces(1, vec![trace]);
        let cfg = SimConfig {
            clients_per_machine: 1,
            cores_per_machine: 1,
            queries_per_client: 10,
            warmup_fraction: 0.0,
            ..Default::default()
        };
        let r = sim.run(&cfg);
        let expected_ms = (cfg.request_overhead_ns + cfg.read_service_ns) / 1e6;
        assert!(
            (r.mean_latency_ms - expected_ms).abs() < 1e-6,
            "latency {} expected {expected_ms}",
            r.mean_latency_ms
        );
    }

    #[test]
    fn queueing_kicks_in_with_one_core() {
        // Two clients, one single-core machine: second query waits.
        let trace = QueryTrace {
            coordinator: 0,
            rounds: vec![RoundTrace { reads: vec![4] }],
            result: QueryResult::Vertices(vec![]),
        };
        let sim = ClusterSim::from_traces(1, vec![trace]);
        let base = SimConfig {
            clients_per_machine: 1,
            cores_per_machine: 1,
            queries_per_client: 20,
            warmup_fraction: 0.1,
            ..Default::default()
        };
        let solo = sim.run(&base);
        let crowded = sim.run(&SimConfig { clients_per_machine: 4, ..base });
        assert!(
            crowded.mean_latency_ms > 1.9 * solo.mean_latency_ms,
            "4 clients on 1 core must queue: {} vs {}",
            crowded.mean_latency_ms,
            solo.mean_latency_ms
        );
    }

    #[test]
    fn rsd_of_balanced_loads_is_zero() {
        assert!(rsd(&[10, 10, 10]) < 1e-12);
        assert!(rsd(&[20, 0]) > 0.9);
        assert_eq!(rsd(&[]), 0.0);
    }

    #[test]
    fn event_queue_breaks_time_ties_in_push_order() {
        // Same-time events must pop exactly in insertion order — the
        // determinism guarantee every replay in this crate rests on.
        let mut q: EventQueue<Event> = EventQueue::new();
        for client in (0..50u32).rev() {
            q.push(7_777, Event::Issue { client });
        }
        q.push(7_776, Event::Issue { client: 99 });
        let (t0, first) = q.pop().expect("queue is non-empty");
        assert_eq!((t0, first), (7_776, Event::Issue { client: 99 }));
        let mut popped = Vec::new();
        while let Some((t, Event::Issue { client })) = q.pop() {
            assert_eq!(t, 7_777);
            popped.push(client);
        }
        let expected: Vec<u32> = (0..50u32).rev().collect();
        assert_eq!(popped, expected, "ties must resolve FIFO, not by payload order");
    }
}
