//! # sgp-db
//!
//! A JanusGraph-like distributed graph-database substrate for the SGP
//! reproduction: the system behind the paper's online-query experiments
//! (Table 4, Table 5, Figures 5–8, 12, 14, 15).
//!
//! Architecture (the paper's Appendix C / Fig. 11): every worker machine
//! hosts a query-execution instance co-located with its storage shard; a
//! **partitioning-aware query router** forwards each client query to the
//! machine owning its start vertex. The storage layer is an adjacency
//! list sharded by an *edge-cut* vertex-ownership map (JanusGraph "does
//! not provide support for vertex-cut partitioning").
//!
//! * [`store::PartitionedStore`] — the sharded adjacency store + router.
//! * [`query`] — the paper's three online query classes (1-hop, 2-hop,
//!   single-pair shortest path), executed for real with a full trace of
//!   which machine read which vertices in which communication round.
//! * [`workload`] — parameter-binding generators (uniform and
//!   Zipf-skewed, the paper's workload-skew knob) and the access
//!   recorder behind the workload-aware experiment (Fig. 8).
//! * [`sim::ClusterSim`] — a discrete-event simulation of the cluster
//!   serving closed-loop concurrent clients (12/machine = the paper's
//!   *medium load*, 24/machine = *high load*), producing throughput,
//!   mean/p99 latency, and per-machine read distributions.
//! * [`fault_sim`] — the same DES under a deterministic
//!   [`sgp_fault::FaultPlan`]: crashes, stragglers, message loss,
//!   retry/backoff, and mirror failover, producing availability and
//!   goodput (DESIGN.md §7).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod fault_sim;
pub mod query;
pub mod sim;
pub mod store;
pub mod workload;

pub use fault_sim::{
    DegradedConfig, ElasticPlan, FaultSimConfig, FaultSimReport, MirrorDirectory, SimError,
};
pub use query::{Query, QueryResult, QueryTrace};
pub use sim::{ClusterSim, LoadLevel, SimConfig, SimReport};
pub use store::{PartitionedStore, StoreError};
pub use workload::{AccessRecorder, Workload, WorkloadKind};
