//! The sharded adjacency store and partitioning-aware query router.

use serde::{Deserialize, Serialize};
use sgp_graph::{Graph, VertexId};
use sgp_partition::{PartitionId, Partitioning};

/// A distributed graph store: the full adjacency structure plus the
/// vertex-ownership map that shards it over `k` machines.
///
/// Mirrors JanusGraph-on-Cassandra as configured in the paper's
/// Appendix C: "adjacency list representation", one storage shard
/// co-located with each query-execution instance, placement controlled
/// by a Byte Ordered Partitioner so arbitrary edge-cut partitionings can
/// be installed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionedStore {
    graph: Graph,
    owner: Vec<PartitionId>,
    k: usize,
}

impl PartitionedStore {
    /// Builds a store from an edge-cut partitioning.
    ///
    /// # Panics
    /// Panics if `p` carries no vertex ownership (vertex-cut placements
    /// cannot back an adjacency-list store — §5.2.2 of the paper).
    pub fn new(graph: Graph, p: &Partitioning) -> Self {
        let owner = p
            .vertex_owner
            .clone()
            .expect("graph database requires a vertex-disjoint (edge-cut) partitioning");
        assert_eq!(owner.len(), graph.num_vertices());
        PartitionedStore { graph, owner, k: p.k }
    }

    /// Builds a store directly from an ownership map (used by the
    /// workload-aware repartitioning path).
    pub fn from_owner(graph: Graph, k: usize, owner: Vec<PartitionId>) -> Self {
        assert_eq!(owner.len(), graph.num_vertices());
        assert!(owner.iter().all(|&p| (p as usize) < k));
        PartitionedStore { graph, owner, k }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.k
    }

    /// The stored graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The ownership map.
    pub fn owner_map(&self) -> &[PartitionId] {
        &self.owner
    }

    /// The partitioning-aware router (Appendix C): the machine a client
    /// query for start vertex `v` is forwarded to.
    #[inline]
    pub fn route(&self, v: VertexId) -> PartitionId {
        self.owner[v as usize]
    }

    /// Undirected neighbourhood of `v` — what a JanusGraph `both()`
    /// traversal step reads from the adjacency shard.
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut n: Vec<VertexId> = self.graph.undirected_neighbors(v).collect();
        n.sort_unstable();
        n.dedup();
        n
    }

    /// Vertices stored per machine.
    pub fn vertices_per_machine(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.k];
        for &p in &self.owner {
            counts[p as usize] += 1;
        }
        counts
    }

    /// Fraction of edges whose endpoints live on different machines —
    /// the store-level edge-cut ratio driving remote reads.
    pub fn edge_cut_ratio(&self) -> f64 {
        sgp_partition::metrics::edge_cut_ratio_from_owner(&self.graph, &self.owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::GraphBuilder;

    fn store() -> PartitionedStore {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).add_edge(2, 0).build();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0]);
        PartitionedStore::new(g, &p)
    }

    #[test]
    fn router_follows_ownership() {
        let s = store();
        assert_eq!(s.route(0), 0);
        assert_eq!(s.route(1), 1);
        assert_eq!(s.route(2), 0);
    }

    #[test]
    fn neighbors_are_undirected_and_deduped() {
        let s = store();
        assert_eq!(s.neighbors(0), vec![1, 2]);
        assert_eq!(s.neighbors(1), vec![0, 2]);
    }

    #[test]
    fn vertices_per_machine_counts() {
        let s = store();
        assert_eq!(s.vertices_per_machine(), vec![2, 1]);
    }

    #[test]
    fn edge_cut_ratio_exposed() {
        let s = store();
        // Edges: (0,1) cut, (1,2) cut, (2,0) local → 2/3.
        assert!((s.edge_cut_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "vertex-disjoint")]
    fn vertex_cut_rejected() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let p = Partitioning::from_edge_parts(&g, 2, vec![0]);
        PartitionedStore::new(g, &p);
    }
}
