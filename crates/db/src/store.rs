//! The sharded adjacency store and partitioning-aware query router.

use serde::{Deserialize, Serialize};
use sgp_graph::{Graph, VertexId};
use sgp_partition::{PartitionId, Partitioning};
use std::fmt;

/// Why a [`PartitionedStore`] could not be built from a partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The partitioning carries no vertex-ownership map (a vertex-cut
    /// placement — §5.2.2: adjacency-list stores need edge-cut).
    NotVertexDisjoint,
    /// The ownership map does not cover the graph's vertices.
    OwnerLengthMismatch {
        /// Vertices in the graph.
        expected: usize,
        /// Entries in the ownership map.
        got: usize,
    },
    /// An owner id is outside `0..k`.
    OwnerOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Its out-of-range owner.
        owner: PartitionId,
        /// The machine count.
        k: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotVertexDisjoint => {
                write!(f, "graph database requires a vertex-disjoint (edge-cut) partitioning")
            }
            StoreError::OwnerLengthMismatch { expected, got } => {
                write!(f, "ownership map covers {got} vertices but the graph has {expected}")
            }
            StoreError::OwnerOutOfRange { vertex, owner, k } => {
                write!(f, "vertex {vertex} owned by machine {owner}, but k = {k}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A distributed graph store: the full adjacency structure plus the
/// vertex-ownership map that shards it over `k` machines.
///
/// Mirrors JanusGraph-on-Cassandra as configured in the paper's
/// Appendix C: "adjacency list representation", one storage shard
/// co-located with each query-execution instance, placement controlled
/// by a Byte Ordered Partitioner so arbitrary edge-cut partitionings can
/// be installed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionedStore {
    graph: Graph,
    owner: Vec<PartitionId>,
    k: usize,
}

impl PartitionedStore {
    /// Builds a store from an edge-cut partitioning.
    ///
    /// # Panics
    /// Panics if `p` carries no vertex ownership (vertex-cut placements
    /// cannot back an adjacency-list store — §5.2.2 of the paper).
    /// [`PartitionedStore::try_new`] is the non-panicking equivalent.
    pub fn new(graph: Graph, p: &Partitioning) -> Self {
        // sgp-lint: allow(no-panic-in-lib): documented panic; callers that cannot prove edge-cut use try_new
        Self::try_new(graph, p).expect("graph database requires a vertex-disjoint partitioning")
    }

    /// Builds a store from an edge-cut partitioning, reporting *why* an
    /// incompatible partitioning was rejected instead of panicking.
    pub fn try_new(graph: Graph, p: &Partitioning) -> Result<Self, StoreError> {
        let owner = p.vertex_owner.clone().ok_or(StoreError::NotVertexDisjoint)?;
        Self::try_from_owner(graph, p.k, owner)
    }

    /// Builds a store directly from an ownership map (used by the
    /// workload-aware repartitioning path).
    ///
    /// # Panics
    /// Panics when the map does not cover the graph or names a machine
    /// `>= k`; [`PartitionedStore::try_from_owner`] reports instead.
    pub fn from_owner(graph: Graph, k: usize, owner: Vec<PartitionId>) -> Self {
        // sgp-lint: allow(no-panic-in-lib): documented panic; callers that cannot prove coverage use try_from_owner
        Self::try_from_owner(graph, k, owner).expect("ownership map must cover the graph")
    }

    /// Validating constructor behind [`PartitionedStore::from_owner`].
    pub fn try_from_owner(
        graph: Graph,
        k: usize,
        owner: Vec<PartitionId>,
    ) -> Result<Self, StoreError> {
        if owner.len() != graph.num_vertices() {
            return Err(StoreError::OwnerLengthMismatch {
                expected: graph.num_vertices(),
                got: owner.len(),
            });
        }
        if let Some((v, &p)) = owner.iter().enumerate().find(|&(_, &p)| (p as usize) >= k) {
            return Err(StoreError::OwnerOutOfRange { vertex: v as VertexId, owner: p, k });
        }
        Ok(PartitionedStore { graph, owner, k })
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.k
    }

    /// The stored graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The ownership map.
    pub fn owner_map(&self) -> &[PartitionId] {
        &self.owner
    }

    /// The partitioning-aware router (Appendix C): the machine a client
    /// query for start vertex `v` is forwarded to.
    #[inline]
    pub fn route(&self, v: VertexId) -> PartitionId {
        self.owner[v as usize]
    }

    /// Undirected neighbourhood of `v` — what a JanusGraph `both()`
    /// traversal step reads from the adjacency shard.
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut n: Vec<VertexId> = self.graph.undirected_neighbors(v).collect();
        n.sort_unstable();
        n.dedup();
        n
    }

    /// Vertices stored per machine.
    pub fn vertices_per_machine(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.k];
        for &p in &self.owner {
            counts[p as usize] += 1;
        }
        counts
    }

    /// Fraction of edges whose endpoints live on different machines —
    /// the store-level edge-cut ratio driving remote reads.
    pub fn edge_cut_ratio(&self) -> f64 {
        sgp_partition::metrics::edge_cut_ratio_from_owner(&self.graph, &self.owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::GraphBuilder;

    fn store() -> PartitionedStore {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).add_edge(2, 0).build();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0]);
        PartitionedStore::new(g, &p)
    }

    #[test]
    fn router_follows_ownership() {
        let s = store();
        assert_eq!(s.route(0), 0);
        assert_eq!(s.route(1), 1);
        assert_eq!(s.route(2), 0);
    }

    #[test]
    fn neighbors_are_undirected_and_deduped() {
        let s = store();
        assert_eq!(s.neighbors(0), vec![1, 2]);
        assert_eq!(s.neighbors(1), vec![0, 2]);
    }

    #[test]
    fn vertices_per_machine_counts() {
        let s = store();
        assert_eq!(s.vertices_per_machine(), vec![2, 1]);
    }

    #[test]
    fn edge_cut_ratio_exposed() {
        let s = store();
        // Edges: (0,1) cut, (1,2) cut, (2,0) local → 2/3.
        assert!((s.edge_cut_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "vertex-disjoint")]
    fn vertex_cut_rejected() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let p = Partitioning::from_edge_parts(&g, 2, vec![0]);
        PartitionedStore::new(g, &p);
    }

    #[test]
    fn try_new_reports_vertex_cut() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let p = Partitioning::from_edge_parts(&g, 2, vec![0]);
        assert_eq!(PartitionedStore::try_new(g, &p).err(), Some(StoreError::NotVertexDisjoint));
    }

    #[test]
    fn try_from_owner_validates_coverage_and_range() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).build();
        let short = PartitionedStore::try_from_owner(g.clone(), 2, vec![0, 1]);
        assert_eq!(short.err(), Some(StoreError::OwnerLengthMismatch { expected: 3, got: 2 }));
        let oob = PartitionedStore::try_from_owner(g.clone(), 2, vec![0, 1, 2]);
        assert_eq!(oob.err(), Some(StoreError::OwnerOutOfRange { vertex: 2, owner: 2, k: 2 }));
        assert!(PartitionedStore::try_from_owner(g, 2, vec![0, 1, 1]).is_ok());
    }
}
