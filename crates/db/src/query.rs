//! Online graph queries (§5.2.3): 1-hop, 2-hop, and single-pair shortest
//! path, executed against a [`PartitionedStore`] with a full trace of the
//! distributed execution.
//!
//! Execution model (Appendix C): the router forwards the query to the
//! machine owning the start vertex (the *coordinator*). Each traversal
//! step is a communication **round**: the coordinator batches the
//! vertices it must read per machine, issues one request per machine,
//! and waits for all of them (scatter/gather RPC). The trace records,
//! per round, how many vertices each machine read — the quantity behind
//! Fig. 7/15 — plus the derived message and byte counts behind Fig. 5.

use crate::store::PartitionedStore;
use serde::{Deserialize, Serialize};
use sgp_graph::VertexId;

/// Approximate serialized size of one vertex record on the wire
/// (JanusGraph vertices carry properties; 100 B is a conservative stand-in).
pub const VERTEX_RECORD_BYTES: u64 = 100;

/// Fixed RPC envelope size per inter-machine request.
pub const RPC_HEADER_BYTES: u64 = 64;

/// An online query (the paper's three classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Query {
    /// All adjacent vertices of `start` — "more than 50% of Facebook's
    /// LinkBench".
    OneHop {
        /// Start vertex.
        start: VertexId,
    },
    /// The distinct 2-hop neighbourhood of `start`.
    TwoHop {
        /// Start vertex.
        start: VertexId,
    },
    /// Unweighted single-pair shortest path via bidirectional BFS.
    ShortestPath {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
}

impl Query {
    /// The vertex the router dispatches on.
    pub fn start_vertex(&self) -> VertexId {
        match *self {
            Query::OneHop { start } | Query::TwoHop { start } => start,
            Query::ShortestPath { src, .. } => src,
        }
    }
}

/// Result payload of a query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryResult {
    /// Neighbour set (1-hop / 2-hop).
    Vertices(Vec<VertexId>),
    /// Shortest-path length, `None` if unreachable.
    PathLength(Option<u32>),
}

impl QueryResult {
    /// Number of vertices in the result (path queries count 0).
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Vertices(v) => v.len(),
            QueryResult::PathLength(_) => 0,
        }
    }

    /// True for an empty vertex result.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-round read counts: `reads[machine]` vertices were read on that
/// machine in this round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Vertices read per machine this round.
    pub reads: Vec<u32>,
}

impl RoundTrace {
    /// Machines touched this round.
    pub fn machines_touched(&self) -> usize {
        self.reads.iter().filter(|&&r| r > 0).count()
    }

    /// Total vertices read this round.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().map(|&r| r as u64).sum()
    }
}

/// Full execution trace of one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryTrace {
    /// The coordinator machine the router picked.
    pub coordinator: u32,
    /// One entry per communication round.
    pub rounds: Vec<RoundTrace>,
    /// The query result.
    pub result: QueryResult,
}

impl QueryTrace {
    /// Total vertices read per machine over all rounds.
    pub fn reads_per_machine(&self, k: usize) -> Vec<u64> {
        let mut totals = vec![0u64; k];
        for r in &self.rounds {
            for (m, &c) in r.reads.iter().enumerate() {
                totals[m] += c as u64;
            }
        }
        totals
    }

    /// Vertices read on machines other than the coordinator — the remote
    /// read amplification that the edge-cut ratio controls.
    pub fn remote_reads(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| r.reads.iter().enumerate())
            .filter(|&(m, _)| m as u32 != self.coordinator)
            .map(|(_, &c)| c as u64)
            .sum()
    }

    /// Bytes moved over the network: vertex records from remote machines
    /// plus one RPC envelope per (round, remote machine) pair.
    pub fn network_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for r in &self.rounds {
            for (m, &c) in r.reads.iter().enumerate() {
                if m as u32 != self.coordinator && c > 0 {
                    bytes += RPC_HEADER_BYTES + c as u64 * VERTEX_RECORD_BYTES;
                }
            }
        }
        bytes
    }

    /// Number of inter-machine request messages.
    pub fn network_messages(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| r.reads.iter().enumerate())
            .filter(|&(m, &c)| m as u32 != self.coordinator && c > 0)
            .count() as u64
    }
}

/// Executes `query` against `store`, producing the result and trace.
pub fn execute(store: &PartitionedStore, query: Query) -> QueryTrace {
    match query {
        Query::OneHop { start } => one_hop(store, start),
        Query::TwoHop { start } => two_hop(store, start),
        Query::ShortestPath { src, dst } => shortest_path(store, src, dst),
    }
}

fn one_hop(store: &PartitionedStore, start: VertexId) -> QueryTrace {
    let k = store.machines();
    let coordinator = store.route(start);
    // Round 1: read the start vertex + its adjacency at the coordinator.
    let mut r1 = vec![0u32; k];
    r1[coordinator as usize] = 1;
    // Round 2: fetch each neighbour's record from its owner.
    let neighbors = store.neighbors(start);
    let mut r2 = vec![0u32; k];
    for &w in &neighbors {
        r2[store.route(w) as usize] += 1;
    }
    QueryTrace {
        coordinator,
        rounds: vec![RoundTrace { reads: r1 }, RoundTrace { reads: r2 }],
        result: QueryResult::Vertices(neighbors),
    }
}

fn two_hop(store: &PartitionedStore, start: VertexId) -> QueryTrace {
    let k = store.machines();
    let coordinator = store.route(start);
    let mut r1 = vec![0u32; k];
    r1[coordinator as usize] = 1;
    let frontier = store.neighbors(start);
    // Round 2: read adjacency of every 1-hop neighbour at its owner.
    let mut r2 = vec![0u32; k];
    let mut second_hop: Vec<VertexId> = Vec::new();
    for &w in &frontier {
        r2[store.route(w) as usize] += 1;
        second_hop.extend(store.neighbors(w));
    }
    second_hop.sort_unstable();
    second_hop.dedup();
    second_hop.retain(|&v| v != start && frontier.binary_search(&v).is_err());
    // Round 3: fetch the distinct second-hop records.
    let mut r3 = vec![0u32; k];
    for &w in &second_hop {
        r3[store.route(w) as usize] += 1;
    }
    QueryTrace {
        coordinator,
        rounds: vec![RoundTrace { reads: r1 }, RoundTrace { reads: r2 }, RoundTrace { reads: r3 }],
        result: QueryResult::Vertices(second_hop),
    }
}

fn shortest_path(store: &PartitionedStore, src: VertexId, dst: VertexId) -> QueryTrace {
    let k = store.machines();
    let coordinator = store.route(src);
    let mut rounds: Vec<RoundTrace> = Vec::new();
    if src == dst {
        return QueryTrace { coordinator, rounds, result: QueryResult::PathLength(Some(0)) };
    }
    // Bidirectional BFS: expand the smaller frontier each round; every
    // expanded vertex is one adjacency read at its owner.
    let n = store.graph().num_vertices();
    let mut dist_f: Vec<u32> = vec![u32::MAX; n];
    let mut dist_b: Vec<u32> = vec![u32::MAX; n];
    dist_f[src as usize] = 0;
    dist_b[dst as usize] = 0;
    let mut frontier_f = vec![src];
    let mut frontier_b = vec![dst];
    let mut df = 0u32;
    let mut db = 0u32;
    let mut best: Option<u32> = None;
    while !frontier_f.is_empty() && !frontier_b.is_empty() {
        if let Some(b) = best {
            if df + db + 1 >= b {
                break;
            }
        }
        let forward = frontier_f.len() <= frontier_b.len();
        let (frontier, dist_mine, dist_other, depth) = if forward {
            (&mut frontier_f, &mut dist_f, &dist_b, &mut df)
        } else {
            (&mut frontier_b, &mut dist_b, &dist_f, &mut db)
        };
        let mut reads = vec![0u32; k];
        let mut next = Vec::new();
        for &v in frontier.iter() {
            reads[store.route(v) as usize] += 1;
            for w in store.neighbors(v) {
                if dist_mine[w as usize] == u32::MAX {
                    dist_mine[w as usize] = *depth + 1;
                    if dist_other[w as usize] != u32::MAX {
                        let total = *depth + 1 + dist_other[w as usize];
                        best = Some(best.map_or(total, |b| b.min(total)));
                    }
                    next.push(w);
                }
            }
        }
        *depth += 1;
        *frontier = next;
        rounds.push(RoundTrace { reads });
    }
    QueryTrace { coordinator, rounds, result: QueryResult::PathLength(best) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::GraphBuilder;
    use sgp_partition::Partitioning;

    /// Path 0-1-2-3-4 plus a hub 5 connected to everything.
    fn store() -> PartitionedStore {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(5, 0)
            .add_edge(5, 1)
            .add_edge(5, 2)
            .add_edge(5, 3)
            .add_edge(5, 4)
            .build();
        let p = Partitioning::from_vertex_owners(&g, 3, vec![0, 0, 1, 1, 2, 2]);
        PartitionedStore::new(g, &p)
    }

    #[test]
    fn one_hop_reads_neighbors_at_owners() {
        let s = store();
        let t = execute(&s, Query::OneHop { start: 5 });
        assert_eq!(t.coordinator, 2);
        assert_eq!(t.result, QueryResult::Vertices(vec![0, 1, 2, 3, 4]));
        // Round 2 reads: 0,1 on m0; 2,3 on m1; 4 on m2.
        assert_eq!(t.rounds[1].reads, vec![2, 2, 1]);
        // Remote reads = reads off machine 2 = 4.
        assert_eq!(t.remote_reads(), 4);
    }

    #[test]
    fn one_hop_local_when_all_colocated() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).build();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 0, 0]);
        let s = PartitionedStore::new(g, &p);
        let t = execute(&s, Query::OneHop { start: 0 });
        assert_eq!(t.remote_reads(), 0);
        assert_eq!(t.network_bytes(), 0);
        assert_eq!(t.network_messages(), 0);
    }

    #[test]
    fn two_hop_excludes_start_and_first_hop() {
        let s = store();
        let t = execute(&s, Query::TwoHop { start: 0 });
        // 1-hop of 0: {1, 5}; 2-hop: neighbors of 1 and 5 minus {0,1,5}.
        assert_eq!(t.result, QueryResult::Vertices(vec![2, 3, 4]));
        assert_eq!(t.rounds.len(), 3);
    }

    #[test]
    fn shortest_path_on_path_graph() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).build();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0, 1]);
        let s = PartitionedStore::new(g, &p);
        let t = execute(&s, Query::ShortestPath { src: 0, dst: 3 });
        assert_eq!(t.result, QueryResult::PathLength(Some(3)));
        assert!(!t.rounds.is_empty());
    }

    #[test]
    fn shortest_path_through_hub_is_two() {
        let s = store();
        let t = execute(&s, Query::ShortestPath { src: 0, dst: 4 });
        assert_eq!(t.result, QueryResult::PathLength(Some(2))); // via hub 5
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = GraphBuilder::new().add_edge(0, 1).ensure_vertices(4).build();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 0, 1, 1]);
        let s = PartitionedStore::new(g, &p);
        let t = execute(&s, Query::ShortestPath { src: 0, dst: 3 });
        assert_eq!(t.result, QueryResult::PathLength(None));
    }

    #[test]
    fn shortest_path_same_vertex() {
        let s = store();
        let t = execute(&s, Query::ShortestPath { src: 2, dst: 2 });
        assert_eq!(t.result, QueryResult::PathLength(Some(0)));
        assert!(t.rounds.is_empty());
    }

    #[test]
    fn trace_accounting_consistency() {
        let s = store();
        let t = execute(&s, Query::TwoHop { start: 5 });
        let per_machine = t.reads_per_machine(3);
        let total: u64 = per_machine.iter().sum();
        let per_round: u64 = t.rounds.iter().map(|r| r.total_reads()).sum();
        assert_eq!(total, per_round);
        assert!(t.network_bytes() >= t.network_messages() * RPC_HEADER_BYTES);
    }

    #[test]
    fn better_partitioning_means_fewer_remote_reads() {
        // Same graph, two stores: one colocating the path, one splitting
        // every adjacent pair.
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).add_edge(0, 3).build();
        let good = PartitionedStore::new(
            g.clone(),
            &Partitioning::from_vertex_owners(&g, 2, vec![0, 0, 0, 0]),
        );
        let bad = PartitionedStore::new(
            g.clone(),
            &Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 1, 1]),
        );
        let tg = execute(&good, Query::OneHop { start: 0 });
        let tb = execute(&bad, Query::OneHop { start: 0 });
        assert!(tg.remote_reads() < tb.remote_reads());
        assert!(tg.network_bytes() < tb.network_bytes());
    }
}
