//! Online-substrate invariants: query results are placement-invariant,
//! traces account exactly, and the DES conserves queries.

use sgp_db::query::{execute, Query, QueryResult};
use sgp_db::workload::{run_workload, Skew};
use sgp_db::{
    ClusterSim, FaultSimConfig, MirrorDirectory, PartitionedStore, SimConfig, SimError, Workload,
    WorkloadKind,
};
use sgp_fault::FaultPlan;
use sgp_graph::generators::{snb_social, SnbConfig};
use sgp_graph::{Graph, StreamOrder};
use sgp_partition::{partition, Algorithm, PartitionerConfig};

fn graph() -> Graph {
    snb_social(SnbConfig {
        persons: 800,
        communities: 10,
        avg_friends: 8.0,
        ..SnbConfig::default()
    })
}

fn store(g: &Graph, alg: Algorithm, k: usize) -> PartitionedStore {
    let cfg = PartitionerConfig::new(k);
    let p = partition(g, alg, &cfg, StreamOrder::Random { seed: 11 });
    PartitionedStore::new(g.clone(), &p)
}

/// Query *results* must not depend on the partitioning — only traces do.
#[test]
fn results_are_placement_invariant() {
    let g = graph();
    let stores: Vec<PartitionedStore> = [Algorithm::EcrHash, Algorithm::Fennel, Algorithm::Metis]
        .iter()
        .map(|&a| store(&g, a, 4))
        .collect();
    let queries = [
        Query::OneHop { start: 5 },
        Query::TwoHop { start: 17 },
        Query::ShortestPath { src: 3, dst: 90 },
    ];
    for q in queries {
        let results: Vec<QueryResult> = stores.iter().map(|s| execute(s, q).result).collect();
        assert_eq!(results[0], results[1], "{q:?}");
        assert_eq!(results[1], results[2], "{q:?}");
    }
}

/// 1-hop results equal the store's adjacency; round-1 read is exactly 1.
#[test]
fn one_hop_trace_exact() {
    let g = graph();
    let s = store(&g, Algorithm::EcrHash, 4);
    for start in [0u32, 13, 201] {
        let t = execute(&s, Query::OneHop { start });
        match &t.result {
            QueryResult::Vertices(vs) => assert_eq!(vs, &s.neighbors(start)),
            other => panic!("unexpected result {other:?}"),
        }
        assert_eq!(t.rounds[0].total_reads(), 1);
        assert_eq!(t.rounds[1].total_reads(), s.neighbors(start).len() as u64);
    }
}

/// Shortest-path lengths agree with a reference BFS on the undirected
/// view.
#[test]
fn shortest_path_matches_reference_bfs() {
    let g = graph();
    let s = store(&g, Algorithm::Ldg, 4);
    let bfs = |src: u32, dst: u32| -> Option<u32> {
        let mut dist = vec![u32::MAX; g.num_vertices()];
        let mut q = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            if v == dst {
                return Some(dist[v as usize]);
            }
            for w in s.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    q.push_back(w);
                }
            }
        }
        None
    };
    for (src, dst) in [(0u32, 50u32), (7, 700), (100, 101), (3, 3)] {
        let t = execute(&s, Query::ShortestPath { src, dst });
        assert_eq!(t.result, QueryResult::PathLength(bfs(src, dst)), "{src}->{dst}");
    }
}

/// Total reads across a workload equal the sum over traces, and remote
/// reads are bounded by total reads.
#[test]
fn workload_trace_accounting() {
    let g = graph();
    let s = store(&g, Algorithm::Fennel, 8);
    let w = Workload::generate(&g, WorkloadKind::TwoHop, 100, Skew::Zipf { theta: 0.8 }, 5);
    let traces = run_workload(&s, &w, None);
    for t in &traces {
        let per_machine: u64 = t.reads_per_machine(8).iter().sum();
        let per_round: u64 = t.rounds.iter().map(|r| r.total_reads()).sum();
        assert_eq!(per_machine, per_round);
        assert!(t.remote_reads() <= per_round);
    }
}

/// The DES conserves queries: completed = issued − warm-up, regardless
/// of load level, and simulated time advances.
#[test]
fn des_conserves_queries() {
    let g = graph();
    let s = store(&g, Algorithm::EcrHash, 4);
    let w = Workload::generate(&g, WorkloadKind::OneHop, 100, Skew::Uniform, 6);
    let sim = ClusterSim::prepare(&s, &w);
    for clients in [1usize, 6, 20] {
        let cfg = SimConfig {
            clients_per_machine: clients,
            queries_per_client: 12,
            warmup_fraction: 0.25,
            ..Default::default()
        };
        let r = sim.run(&cfg);
        let total = clients * 4 * 12;
        let warmup = (total as f64 * 0.25) as usize;
        assert_eq!(r.completed, total - warmup, "clients={clients}");
        assert!(r.sim_seconds > 0.0);
        assert!(r.throughput_qps.is_finite());
    }
}

/// More cores strictly help (or at least never hurt) under load.
#[test]
fn more_cores_do_not_hurt() {
    let g = graph();
    let s = store(&g, Algorithm::EcrHash, 4);
    let w = Workload::generate(&g, WorkloadKind::TwoHop, 150, Skew::Zipf { theta: 0.8 }, 7);
    let sim = ClusterSim::prepare(&s, &w);
    let run = |cores: usize| {
        sim.run(&SimConfig {
            clients_per_machine: 16,
            cores_per_machine: cores,
            queries_per_client: 12,
            ..Default::default()
        })
    };
    let few = run(2);
    let many = run(16);
    assert!(
        many.mean_latency_ms <= few.mean_latency_ms * 1.05,
        "16 cores ({} ms) must not be slower than 2 ({} ms)",
        many.mean_latency_ms,
        few.mean_latency_ms
    );
}

/// Degenerate fault plan: a cluster with every machine permanently dead
/// from t = 0 is rejected with a typed error, not a hang or a panic.
#[test]
fn all_machines_dead_is_a_typed_sim_error() {
    let g = graph();
    let s = store(&g, Algorithm::EcrHash, 4);
    let w = Workload::generate(&g, WorkloadKind::OneHop, 50, Skew::Uniform, 9);
    let sim = ClusterSim::prepare(&s, &w);
    let mut plan = FaultPlan::healthy(4, 1);
    for m in 0..4u32 {
        plan = plan.with_crash(m, 0);
    }
    let err = sim
        .run_faulted(&FaultSimConfig::default(), &plan, &MirrorDirectory::edge_cut(4))
        .unwrap_err();
    assert_eq!(err, SimError::NoLiveMachines);
    // One survivor is enough to run.
    let mut plan = FaultPlan::healthy(4, 1);
    for m in 0..3u32 {
        plan = plan.with_crash(m, 0);
    }
    let cfg = FaultSimConfig {
        base: SimConfig { clients_per_machine: 2, queries_per_client: 5, ..Default::default() },
        ..Default::default()
    };
    let r = sim.run_faulted(&cfg, &plan, &MirrorDirectory::edge_cut(4)).expect("one machine up");
    assert!(r.availability <= 1.0);
}

/// The faulted DES conserves queries too: ok + failed completions equal
/// issued − warm-up.
#[test]
fn faulted_des_conserves_queries() {
    let g = graph();
    let s = store(&g, Algorithm::EcrHash, 4);
    let w = Workload::generate(&g, WorkloadKind::OneHop, 100, Skew::Uniform, 6);
    let sim = ClusterSim::prepare(&s, &w);
    let cfg = FaultSimConfig {
        base: SimConfig {
            clients_per_machine: 6,
            queries_per_client: 12,
            warmup_fraction: 0.25,
            ..Default::default()
        },
        ..Default::default()
    };
    let plan = FaultPlan::healthy(4, 21)
        .with_recovering_crash(2, 1_000_000, 20_000_000)
        .with_straggler(0, 0, 40_000_000, 2.0)
        .with_message_loss(0.01);
    let r = sim.run_faulted(&cfg, &plan, &MirrorDirectory::edge_cut(4)).expect("plan is valid");
    let total = 6 * 4 * 12;
    let warmup = (total as f64 * 0.25) as usize;
    assert_eq!(r.completed_ok + r.failed, total - warmup);
    assert!(r.sim_seconds > 0.0);
    assert!(r.goodput_qps.is_finite() && r.offered_qps >= r.goodput_qps);
}

/// Remote-read pricing: a store with a worse edge-cut ratio moves more
/// bytes for the same workload.
#[test]
fn worse_cut_more_bytes() {
    let g = graph();
    let good = store(&g, Algorithm::Metis, 8);
    let bad = store(&g, Algorithm::EcrHash, 8);
    assert!(good.edge_cut_ratio() < bad.edge_cut_ratio());
    let w = Workload::generate(&g, WorkloadKind::OneHop, 200, Skew::Uniform, 8);
    let bytes = |s: &PartitionedStore| -> u64 {
        run_workload(s, &w, None).iter().map(|t| t.network_bytes()).sum()
    };
    assert!(bytes(&good) < bytes(&bad));
}
