//! Parser round-trip property over the real workspace: for every `.rs`
//! file cargo would build, the item parse must tile the token stream —
//! every token owned by exactly one item (or the trailing run), in
//! order — and re-emitting the items must reproduce the file
//! byte-for-byte. [`sgp_xtask::parser::emit`] asserts the tiling
//! internally and concatenates the spans, so one call checks both.
//!
//! This is the contract the semantic tier builds on: a parser that
//! dropped or double-counted a token would silently detach fn bodies
//! from their names and shift every reachability path.

use sgp_xtask::lexer::lex;
use sgp_xtask::parser::{self, parse};
use sgp_xtask::workspace;
use std::path::PathBuf;

/// The real workspace root: `SGP_LINT_ROOT` when set (the offline test
/// harness points it at the checkout), else two levels up from this
/// crate.
fn workspace_root() -> PathBuf {
    match std::env::var_os("SGP_LINT_ROOT") {
        Some(root) => PathBuf::from(root),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

#[test]
fn every_workspace_file_roundtrips_through_the_parser() {
    let ws = workspace::discover(&workspace_root()).expect("discover workspace");
    let mut checked = 0usize;
    let mut fns = 0usize;
    for member in &ws.members {
        for file in &member.files {
            let source = std::fs::read_to_string(&file.path)
                .unwrap_or_else(|e| panic!("read {}: {e}", file.rel));
            let tokens = lex(&source);
            let parsed = parse(&source, &tokens);
            let rebuilt = parser::emit(&source, &tokens, &parsed)
                .unwrap_or_else(|e| panic!("{}: item spans do not tile the file: {e}", file.rel));
            assert_eq!(rebuilt, source, "{}: parser round-trip differs from source", file.rel);

            // The parse is not a degenerate single-opaque-blob tiling:
            // count named fns so a parser that classified everything as
            // `Other` would fail loudly here instead of passing the
            // byte-identity check vacuously.
            fn count_fns(items: &[sgp_xtask::ast::Item]) -> usize {
                items
                    .iter()
                    .map(|i| {
                        usize::from(i.kind == sgp_xtask::ast::ItemKind::Fn) + count_fns(&i.children)
                    })
                    .sum()
            }
            fns += count_fns(&parsed.items);
            checked += 1;
        }
    }
    assert!(checked >= 20, "workspace scan looks wrong: only {checked} files");
    assert!(fns >= 100, "parser found only {fns} fns across the workspace");
}
