//! Runs the linter over the seeded fixture workspace and asserts the
//! exact (rule, file, line) set of findings — no more, no less.
//!
//! Line numbers are located by MARK tokens in the fixture sources, so
//! the assertions survive fixture edits.

use sgp_xtask::{run_lint, LintConfig, Severity};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

/// 1-based line of the first line containing `mark` in `rel` (relative
/// to the fixture root).
fn mark_line(rel: &str, mark: &str) -> usize {
    let path = fixture_root().join(rel);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    text.lines()
        .position(|l| l.contains(mark))
        .unwrap_or_else(|| panic!("no line contains {mark} in {rel}"))
        + 1
}

const GRAPH_LIB: &str = "crates/graph/src/lib.rs";
const CORE_LIB: &str = "crates/core/src/lib.rs";
const UNSAFETY_LIB: &str = "crates/unsafety/src/lib.rs";
const PARTITION_EXEC: &str = "crates/partition/src/exec.rs";
const SEND_REGISTRY: &str = "tests/goldens/SEND_REGISTRY";
const UNSAFE_REGISTRY: &str = "tests/goldens/UNSAFE_REGISTRY";
const ENGINE_LIB: &str = "crates/engine/src/lib.rs";
const ENGINE_TOML: &str = "crates/engine/Cargo.toml";
const ENGINE_SMOKE: &str = "crates/engine/tests/smoke.rs";
const DB_SIM: &str = "crates/db/src/sim.rs";
const GRAPH_PIPELINE: &str = "crates/graph/src/pipeline.rs";
const ENGINE_SPANS: &str = "crates/engine/src/spans.rs";
const PARTITION_REGISTRY: &str = "crates/partition/src/registry.rs";
const SURFACES_REGISTRY: &str = "tests/goldens/ALGORITHM_SURFACES";
const PANIC_AUDIT: &str = "tests/goldens/PANIC_AUDIT";
const RECOVERY_LIB: &str = "crates/recovery/src/lib.rs";
const FAULT_LIB: &str = "crates/fault/src/lib.rs";
const PARTITION_LIB: &str = "crates/partition/src/lib.rs";
const TRACE_LIB: &str = "crates/trace/src/lib.rs";
const TRACE_KEYS: &str = "crates/trace/src/keys.rs";
const WINDOWED_LIB: &str = "crates/windowed/src/lib.rs";

#[test]
fn fixture_findings_match_exactly() {
    let report = run_lint(&LintConfig::new(fixture_root())).expect("fixture lints");

    let mut expected: Vec<(String, String, usize)> = vec![
        // Manifest hygiene.
        (
            "workspace-dep-hygiene".into(),
            ENGINE_TOML.into(),
            mark_line(ENGINE_TOML, "MARK-inline-version"),
        ),
        ("workspace-dep-hygiene".into(), ENGINE_TOML.into(), 0),
        // Crate-root attribute policy (reported at line 1).
        ("crate-attr-policy".into(), ENGINE_LIB.into(), 1),
        // Hash containers, including use-declarations and test files.
        ("no-hash-iteration".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-hash-use")),
        ("no-hash-iteration".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-hashset-use")),
        ("no-hash-iteration".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-hash-local")),
        (
            "no-hash-iteration".into(),
            ENGINE_LIB.into(),
            mark_line(ENGINE_LIB, "MARK-hashset-local"),
        ),
        (
            "no-hash-iteration".into(),
            ENGINE_SMOKE.into(),
            mark_line(ENGINE_SMOKE, "MARK-test-hashset"),
        ),
        // Wall-clock and ambient randomness.
        ("no-wallclock-in-sim".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-instant")),
        ("no-wallclock-in-sim".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-rng")),
        // Panic-capable constructs in library code.
        ("no-panic-in-lib".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-unwrap")),
        ("no-panic-in-lib".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-panic")),
        // An unjustified allow both fires itself and fails to suppress.
        ("bad-allow-directive".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-bad-allow")),
        ("no-panic-in-lib".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-unsuppressed")),
        // A justified line allow whose rule no longer fires is a
        // stale-allow ERROR — the allowlist cannot rot silently.
        ("stale-allow".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-stale-allow")),
        // A justified file-scoped allow that suppresses nothing is only
        // a warning (file allows cover future code by design).
        ("unused-allow".into(), FAULT_LIB.into(), mark_line(FAULT_LIB, "MARK-unused-file-allow")),
        // The elastic recovery path is determinism-scoped: RTO comes
        // from simulated time, migration targets from seeded order.
        (
            "no-wallclock-in-sim".into(),
            RECOVERY_LIB.into(),
            mark_line(RECOVERY_LIB, "MARK-recovery-instant"),
        ),
        (
            "no-hash-iteration".into(),
            RECOVERY_LIB.into(),
            mark_line(RECOVERY_LIB, "MARK-recovery-hash"),
        ),
        // Float arithmetic in the simulated-time accounting scope.
        ("no-float-accounting".into(), DB_SIM.into(), mark_line(DB_SIM, "MARK-float-cast")),
        // A hardcoded trace-key string bypassing the registry.
        (
            "trace-key-registry".into(),
            PARTITION_LIB.into(),
            mark_line(PARTITION_LIB, "MARK-hardcoded-key"),
        ),
        // A registry constant no crate references.
        (
            "trace-key-registry".into(),
            TRACE_KEYS.into(),
            mark_line(TRACE_KEYS, "MARK-registry-unused"),
        ),
        // A schema constant that drifted ahead of the goldens pin.
        ("schema-version-sync".into(), FAULT_LIB.into(), mark_line(FAULT_LIB, "MARK-schema-drift")),
        // The fault-plan crate is determinism-scoped too: seeded plans
        // must not read ambient randomness or iterate hash containers.
        ("no-wallclock-in-sim".into(), FAULT_LIB.into(), mark_line(FAULT_LIB, "MARK-fault-rng")),
        ("no-hash-iteration".into(), FAULT_LIB.into(), mark_line(FAULT_LIB, "MARK-fault-hash")),
        // The partitioner crate is determinism-scoped too: the
        // multi-loader merge path must replay decision logs in seeded
        // rotation order, never hash-iteration order.
        (
            "no-hash-iteration".into(),
            PARTITION_LIB.into(),
            mark_line(PARTITION_LIB, "MARK-loader-merge-hash"),
        ),
        // A per-element allocation inside a placement kernel — advisory
        // only: the hot path wants a struct-owned scratch buffer, but a
        // justified allow can keep a deliberate allocation.
        (
            "no-alloc-in-place-loop".into(),
            PARTITION_LIB.into(),
            mark_line(PARTITION_LIB, "MARK-place-alloc"),
        ),
        // The windowed look-ahead buffer is determinism-scoped too: the
        // buffer must flush in arrival order, never hash-iteration
        // order, or `W = 1` stops degenerating to one-pass streaming.
        (
            "no-hash-iteration".into(),
            WINDOWED_LIB.into(),
            mark_line(WINDOWED_LIB, "MARK-window-hash"),
        ),
        // The observability crate is determinism-scoped too: stamps come
        // from simulated time or sequence numbers, never the wall clock.
        (
            "no-wallclock-in-sim".into(),
            TRACE_LIB.into(),
            mark_line(TRACE_LIB, "MARK-trace-instant"),
        ),
        // Thread discipline: lock types and spawn-shaped calls are
        // confined to the designated execution backend.
        ("thread-discipline".into(), GRAPH_LIB.into(), mark_line(GRAPH_LIB, "MARK-thread-mutex")),
        ("thread-discipline".into(), GRAPH_LIB.into(), mark_line(GRAPH_LIB, "MARK-thread-spawn")),
        // Atomic ordering policy: bare ordering names and unjustified
        // strong orderings fire; a stale justification fires too.
        (
            "atomic-ordering-policy".into(),
            CORE_LIB.into(),
            mark_line(CORE_LIB, "MARK-bare-ordering"),
        ),
        ("atomic-ordering-policy".into(), CORE_LIB.into(), mark_line(CORE_LIB, "MARK-seqcst")),
        ("stale-allow".into(), CORE_LIB.into(), mark_line(CORE_LIB, "MARK-stale-ordering-allow")),
        // no-unsafe: the unregistered block fires in-source; the stale
        // registry entry fires at the registry line.
        (
            "no-unsafe".into(),
            UNSAFETY_LIB.into(),
            mark_line(UNSAFETY_LIB, "MARK-unregistered-unsafe"),
        ),
        (
            "no-unsafe".into(),
            UNSAFE_REGISTRY.into(),
            mark_line(UNSAFE_REGISTRY, "MARK-stale-unsafe"),
        ),
        // send-bound-registry: unaudited payload, inference-typed
        // constructor, and the stale registry entry.
        (
            "send-bound-registry".into(),
            PARTITION_EXEC.into(),
            mark_line(PARTITION_EXEC, "MARK-unregistered-send"),
        ),
        (
            "send-bound-registry".into(),
            PARTITION_EXEC.into(),
            mark_line(PARTITION_EXEC, "MARK-untyped-ctor"),
        ),
        (
            "send-bound-registry".into(),
            SEND_REGISTRY.into(),
            mark_line(SEND_REGISTRY, "MARK-stale-send"),
        ),
        // panic-reachability: panic sites transitively reachable from a
        // public entry point. The depth-1 engine sites fire both the
        // per-file panic rule (above) and reachability; the pipeline
        // seeds prove depth ≥ 2 chains and method-call edges, while the
        // orphan fn's expect stays per-file only (unreached).
        ("panic-reachability".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-unwrap")),
        ("panic-reachability".into(), ENGINE_LIB.into(), mark_line(ENGINE_LIB, "MARK-panic")),
        (
            "panic-reachability".into(),
            ENGINE_LIB.into(),
            mark_line(ENGINE_LIB, "MARK-unsuppressed"),
        ),
        (
            "panic-reachability".into(),
            GRAPH_PIPELINE.into(),
            mark_line(GRAPH_PIPELINE, "MARK-deep-unwrap"),
        ),
        (
            "panic-reachability".into(),
            GRAPH_PIPELINE.into(),
            mark_line(GRAPH_PIPELINE, "MARK-deep-panic"),
        ),
        (
            "panic-reachability".into(),
            GRAPH_PIPELINE.into(),
            mark_line(GRAPH_PIPELINE, "MARK-method-indexing"),
        ),
        // ...their per-file co-findings (the partition lib.rs indexing
        // is suppressed by the used PANIC_AUDIT entry instead).
        (
            "no-panic-in-lib".into(),
            GRAPH_PIPELINE.into(),
            mark_line(GRAPH_PIPELINE, "MARK-deep-unwrap"),
        ),
        (
            "no-panic-in-lib".into(),
            GRAPH_PIPELINE.into(),
            mark_line(GRAPH_PIPELINE, "MARK-deep-panic"),
        ),
        (
            "no-panic-in-lib".into(),
            GRAPH_PIPELINE.into(),
            mark_line(GRAPH_PIPELINE, "MARK-orphan-expect"),
        ),
        // ...and the stale PANIC_AUDIT entry (db has no indexing).
        (
            "panic-reachability".into(),
            PANIC_AUDIT.into(),
            mark_line(PANIC_AUDIT, "MARK-stale-audit"),
        ),
        // algorithm-surface-exhaustiveness: gaps anchor at the missing
        // variant's declaration line. Delta is missing on three
        // surfaces (stream-dispatch, threaded-loaders, table-all);
        // Alpha and Gamma only on threaded-loaders. Gamma's absence
        // from stream-dispatch is excused by the used registry entry.
        (
            "algorithm-surface-exhaustiveness".into(),
            PARTITION_REGISTRY.into(),
            mark_line(PARTITION_REGISTRY, "MARK-alpha-variant"),
        ),
        (
            "algorithm-surface-exhaustiveness".into(),
            PARTITION_REGISTRY.into(),
            mark_line(PARTITION_REGISTRY, "MARK-gamma-variant"),
        ),
        (
            "algorithm-surface-exhaustiveness".into(),
            PARTITION_REGISTRY.into(),
            mark_line(PARTITION_REGISTRY, "MARK-delta-variant"),
        ),
        (
            "algorithm-surface-exhaustiveness".into(),
            PARTITION_REGISTRY.into(),
            mark_line(PARTITION_REGISTRY, "MARK-delta-variant"),
        ),
        (
            "algorithm-surface-exhaustiveness".into(),
            PARTITION_REGISTRY.into(),
            mark_line(PARTITION_REGISTRY, "MARK-delta-variant"),
        ),
        // ...and the registry's own rot: stale, unknown variant,
        // unknown surface.
        (
            "algorithm-surface-exhaustiveness".into(),
            SURFACES_REGISTRY.into(),
            mark_line(SURFACES_REGISTRY, "MARK-stale-surface"),
        ),
        (
            "algorithm-surface-exhaustiveness".into(),
            SURFACES_REGISTRY.into(),
            mark_line(SURFACES_REGISTRY, "MARK-unknown-variant"),
        ),
        (
            "algorithm-surface-exhaustiveness".into(),
            SURFACES_REGISTRY.into(),
            mark_line(SURFACES_REGISTRY, "MARK-unknown-surface"),
        ),
        // span-guard-balance: double enter, stray exit, unbound guard,
        // and a never-exited hardcoded key (which also fires the
        // key-registry rule on the same line).
        (
            "span-guard-balance".into(),
            ENGINE_SPANS.into(),
            mark_line(ENGINE_SPANS, "MARK-span-double-enter"),
        ),
        (
            "span-guard-balance".into(),
            ENGINE_SPANS.into(),
            mark_line(ENGINE_SPANS, "MARK-span-stray-exit"),
        ),
        (
            "span-guard-balance".into(),
            ENGINE_SPANS.into(),
            mark_line(ENGINE_SPANS, "MARK-span-unbound-guard"),
        ),
        (
            "span-guard-balance".into(),
            ENGINE_SPANS.into(),
            mark_line(ENGINE_SPANS, "MARK-span-adhoc"),
        ),
        (
            "trace-key-registry".into(),
            ENGINE_SPANS.into(),
            mark_line(ENGINE_SPANS, "MARK-span-adhoc"),
        ),
    ];
    expected.sort();

    let mut actual: Vec<(String, String, usize)> =
        report.findings.iter().map(|f| (f.rule.clone(), f.file.clone(), f.line)).collect();
    actual.sort();

    assert_eq!(
        actual, expected,
        "finding set mismatch\nactual:\n{:#?}\nexpected:\n{:#?}",
        actual, expected
    );
    assert_eq!(report.errors(), 59);
    assert_eq!(report.warnings(), 2);
    assert_eq!(report.exit_code(), 1, "seeded fixture must fail the lint");
}

#[test]
fn fixture_warn_counts_only_under_strict() {
    let mut cfg = LintConfig::new(fixture_root());
    let lenient = run_lint(&cfg).expect("fixture lints");
    cfg.strict = true;
    let strict = run_lint(&cfg).expect("fixture lints");
    // Both fail here (errors exist), but strict counts the warning too.
    assert_eq!(lenient.errors(), strict.errors());
    assert_eq!(strict.warnings(), 2);
    assert_eq!(strict.exit_code(), 1);
}

#[test]
fn out_of_scope_fixture_crate_is_clean() {
    let report = run_lint(&LintConfig::new(fixture_root())).expect("fixture lints");
    assert!(
        report.findings.iter().all(|f| !f.file.starts_with("crates/util/")),
        "mini-util is outside every scope and satisfies the policies: {:#?}",
        report.findings
    );
}

#[test]
fn severities_are_as_catalogued() {
    let report = run_lint(&LintConfig::new(fixture_root())).expect("fixture lints");
    for f in &report.findings {
        let advisory = f.rule == "unused-allow" || f.rule == "no-alloc-in-place-loop";
        let want = if advisory { Severity::Warn } else { Severity::Error };
        assert_eq!(f.severity, want, "{}: {}", f.rule, f.file);
    }
}

#[test]
fn json_output_is_stable_and_wellformed() {
    let report = run_lint(&LintConfig::new(fixture_root())).expect("fixture lints");
    let a = sgp_xtask::render_json(&report);
    let b = sgp_xtask::render_json(&report);
    assert_eq!(a, b, "rendering is deterministic");
    assert!(a.starts_with("{\n  \"version\": 1,\n"));
    assert!(a.contains("\"errors\": 59"));
    assert!(a.contains("\"warnings\": 2"));
    assert!(a.contains("\"rule\": \"no-hash-iteration\""));
    // Findings arrive sorted by (file, line, rule): the manifest file
    // sorts before src/lib.rs, which sorts before tests/smoke.rs, and
    // the crates sort engine < fault < partition < trace.
    let toml_pos = a.find("crates/engine/Cargo.toml").expect("manifest finding present");
    let lib_pos = a.find("crates/engine/src/lib.rs").expect("lib finding present");
    let smoke_pos = a.find("crates/engine/tests/smoke.rs").expect("test finding present");
    let fault_pos = a.find("crates/fault/src/lib.rs").expect("fault finding present");
    let partition_pos = a.find("crates/partition/src/lib.rs").expect("partition finding present");
    let trace_pos = a.find("crates/trace/src/lib.rs").expect("trace finding present");
    assert!(toml_pos < lib_pos && lib_pos < smoke_pos, "sorted by file");
    assert!(smoke_pos < fault_pos, "engine files sort before fault files");
    assert!(fault_pos < partition_pos, "fault files sort before partition files");
    assert!(partition_pos < trace_pos, "partition files sort before trace files");
}
