//! The linter's own acceptance gate: the *real* workspace must be
//! completely clean — zero errors, zero warnings. Every historical
//! violation is either fixed or carries a justified allow directive.

use sgp_xtask::{run_lint, LintConfig};
use std::path::PathBuf;

/// The real workspace root: `SGP_LINT_ROOT` when set (used by build
/// harnesses that relocate the crate), else two levels up from this
/// crate's manifest.
fn workspace_root() -> PathBuf {
    match std::env::var_os("SGP_LINT_ROOT") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

#[test]
fn real_workspace_is_lint_clean() {
    let mut cfg = LintConfig::new(workspace_root());
    cfg.strict = true;
    let report = run_lint(&cfg).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "the workspace must stay lint-clean; run `cargo run -p sgp-xtask -- lint` and fix:\n{}",
        sgp_xtask::render_text(&report)
    );
    assert_eq!(report.exit_code(), 0);
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(report.files_scanned > 50, "scanned {} files", report.files_scanned);
    assert!(report.manifests_scanned >= 8, "checked {} manifests", report.manifests_scanned);
}
