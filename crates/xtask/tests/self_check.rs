//! The linter's own acceptance gate: the *real* workspace must be
//! completely clean — zero errors, zero warnings. Every historical
//! violation is either fixed or carries a justified allow directive.

use sgp_xtask::{run_lint, LintConfig};
use std::path::PathBuf;

/// The real workspace root: `SGP_LINT_ROOT` when set (used by build
/// harnesses that relocate the crate), else two levels up from this
/// crate's manifest.
fn workspace_root() -> PathBuf {
    match std::env::var_os("SGP_LINT_ROOT") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

#[test]
fn real_workspace_is_lint_clean() {
    let mut cfg = LintConfig::new(workspace_root());
    cfg.strict = true;
    let report = run_lint(&cfg).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "the workspace must stay lint-clean; run `cargo run -p sgp-xtask -- lint` and fix:\n{}",
        sgp_xtask::render_text(&report)
    );
    assert_eq!(report.exit_code(), 0);
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(report.files_scanned > 50, "scanned {} files", report.files_scanned);
    assert!(report.manifests_scanned >= 8, "checked {} manifests", report.manifests_scanned);
}

#[test]
fn every_rule_is_described_and_catalogued() {
    use sgp_xtask::rules::{describe, ALL_RULES};

    // The `rules` subcommand and the SARIF catalogue both promise a
    // human explanation per rule id; an empty describe() would render
    // as a blank row in one and an empty shortDescription in the other.
    for rule in ALL_RULES {
        assert!(!describe(rule).trim().is_empty(), "rule `{rule}` has no description");
    }

    // The SARIF driver catalogue must carry every rule id even when a
    // run has zero findings — CI annotation resolves results against it.
    let report = run_lint(&LintConfig::new(workspace_root())).expect("workspace lints");
    let sarif = sgp_xtask::render_sarif(&report);
    for rule in ALL_RULES {
        assert!(
            sarif.contains(&format!("\"id\": \"{rule}\"")),
            "rule `{rule}` missing from the SARIF catalogue"
        );
    }
    for rule in ["panic-reachability", "algorithm-surface-exhaustiveness", "span-guard-balance"] {
        assert!(ALL_RULES.contains(&rule), "semantic-tier rule `{rule}` not registered");
    }
}
