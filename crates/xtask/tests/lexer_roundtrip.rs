//! Lexer round-trip property over the real workspace: for every `.rs`
//! file cargo would build, the token stream must tile the source exactly
//! — contiguous byte spans starting at 0 and ending at `len`, with the
//! concatenation of token texts reproducing the file byte-for-byte, and
//! line/column positions consistent with the newlines actually seen.
//!
//! This is the contract every rule builds on: a lexer that drops or
//! double-counts a byte would silently shift `file:line` spans and
//! detach allow directives from their violations.

use sgp_xtask::lexer::{lex, TokenKind};
use sgp_xtask::workspace;
use std::path::PathBuf;

/// The real workspace root: `SGP_LINT_ROOT` when set (the offline test
/// harness points it at the checkout), else two levels up from this
/// crate.
fn workspace_root() -> PathBuf {
    match std::env::var_os("SGP_LINT_ROOT") {
        Some(root) => PathBuf::from(root),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

#[test]
fn every_workspace_file_roundtrips_through_the_lexer() {
    let ws = workspace::discover(&workspace_root()).expect("discover workspace");
    let mut checked = 0usize;
    for member in &ws.members {
        for file in &member.files {
            let source = std::fs::read_to_string(&file.path)
                .unwrap_or_else(|e| panic!("read {}: {e}", file.rel));
            let tokens = lex(&source);

            // Spans tile the source: contiguous, in order, no gaps.
            let mut offset = 0usize;
            for t in &tokens {
                assert_eq!(t.start, offset, "{}: gap before token at byte {}", file.rel, t.start);
                assert!(t.end > t.start, "{}: empty token at byte {}", file.rel, t.start);
                offset = t.end;
            }
            assert_eq!(offset, source.len(), "{}: tokens do not cover the file", file.rel);

            // Concatenated texts reproduce the bytes.
            let rebuilt: String = tokens.iter().map(|t| t.text(&source)).collect();
            assert_eq!(rebuilt, source, "{}: token texts differ from source", file.rel);

            // Line numbers agree with the newlines seen so far.
            let mut line = 1usize;
            for t in &tokens {
                assert_eq!(t.line, line, "{}: token at byte {} has wrong line", file.rel, t.start);
                line += t.text(&source).matches('\n').count();
            }

            // Every string/char/block comment in committed code is
            // terminated (the lexer tolerates unterminated ones, but the
            // tree must not contain any).
            for t in &tokens {
                let ok = match t.kind {
                    TokenKind::Str { terminated, .. } => terminated,
                    TokenKind::Char { terminated } => terminated,
                    TokenKind::BlockComment { terminated, .. } => terminated,
                    _ => true,
                };
                assert!(ok, "{}: unterminated token at byte {}", file.rel, t.start);
            }
            checked += 1;
        }
    }
    assert!(checked >= 20, "workspace scan looks wrong: only {checked} files");
}
