//! Fixture: no-unsafe applies to *every* member, even ones outside the
//! determinism scopes. The registered FFI shim in `ffi.rs` is covered
//! by its UNSAFE_REGISTRY entry; the block below is not, so exactly
//! one finding fires here.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// The audited FFI boundary, registered in
/// tests/goldens/UNSAFE_REGISTRY.
pub mod ffi;

/// An unregistered unsafe block — must fire.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p } // MARK-unregistered-unsafe
}
