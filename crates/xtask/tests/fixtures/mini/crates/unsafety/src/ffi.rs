//! Registered FFI boundary: the UNSAFE_REGISTRY entry for this file
//! carries the audit, so no finding may fire here.

/// Reads a byte through a raw pointer; the caller-supplied-valid-
/// pointer contract is argued in tests/goldens/UNSAFE_REGISTRY.
pub fn read_byte(p: *const u8) -> u8 {
    unsafe { *p }
}
