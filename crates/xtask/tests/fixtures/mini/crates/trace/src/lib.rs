//! Fixture: the observability crate is determinism-scoped — trace
//! stamps must be simulated time or logical sequence numbers, never
//! wallclock, or identical seeds stop producing byte-identical dumps.
//! This file seeds exactly one wallclock violation; the manifest and
//! crate attributes are clean, so only that finding may fire.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// A span stamp taken from the machine clock instead of the simulation.
pub fn wallclock_span_stamp() -> u64 {
    let t = std::time::Instant::now(); // MARK-trace-instant
    let _ = t;
    0
}
