//! Fixture: the observability crate is determinism-scoped — trace
//! stamps must be simulated time or logical sequence numbers, never
//! wallclock, or identical seeds stop producing byte-identical dumps.
//! This file seeds exactly one wallclock violation; the manifest and
//! crate attributes are clean, so only that finding may fire.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// The canonical trace-key registry.
pub mod keys;

/// Version stamp of the JSON trace document schema — matches the
/// `trace=` pin in tests/goldens/SCHEMA_VERSIONS, so the sync rule
/// stays quiet (the drifted fixture lives in the fault crate).
pub const SCHEMA_VERSION: u64 = 1;

/// A span stamp taken from the machine clock instead of the simulation.
pub fn wallclock_span_stamp() -> u64 {
    let t = std::time::Instant::now(); // MARK-trace-instant
    let _ = t;
    0
}
