//! Fixture: the canonical trace-key registry. `PARTITION_RUN` is
//! referenced by the partition crate; `DB_ORPHANED` is referenced by
//! nobody, so the registry rule must flag it as dead schema surface.

/// Root span for one partitioner run (referenced by sgp-partition).
pub const PARTITION_RUN: &str = "partition.run";

/// Root span for one engine run (referenced by sgp-engine).
pub const ENGINE_RUN: &str = "engine.run";

/// Per-pass span inside one engine run (referenced by sgp-engine).
pub const ENGINE_PASS: &str = "engine.pass";

/// An orphaned key no crate ever emits.
pub const DB_ORPHANED: &str = "db.orphaned"; // MARK-registry-unused
