//! Fixture: the database-simulator crate. Its simulated-time and
//! message-accounting paths (src/sim.rs) must stay integral; this crate
//! root is clean, so only the seeded sim.rs findings may fire.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Simulated clock and queue accounting.
pub mod sim;
