//! Fixture: the simulated-time accounting path — inside the
//! no-float-accounting scope. One seeded violation, one scoped-allow
//! negative (quantile rendering), one test-code negative.

/// Mean queue depth computed through floats — silently loses
/// integral-tick precision mid-simulation, so the rule must fire.
pub fn mean_queue_depth(total_ticks: u64, samples: u64) -> u64 {
    let avg = total_ticks as f64 / samples.max(1) as f64; // MARK-float-cast
    avg as u64
}

/// p99 latency in milliseconds for a report footer — rendering, not
/// accounting, so the scoped allow below keeps the rule quiet.
// sgp-lint: allow-scope(no-float-accounting): quantile rendering is presentation, not simulated-time accounting
pub fn p99_ms(sorted_ns: &[u64]) -> f64 {
    let idx = (sorted_ns.len() as f64 * 0.99) as usize;
    sorted_ns.get(idx).copied().unwrap_or(0) as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_in_test_code_are_exempt() {
        assert!(mean_queue_depth(10, 4) as f64 >= 2.0);
    }
}
