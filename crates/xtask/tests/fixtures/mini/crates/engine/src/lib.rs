//! Fixture: a determinism-scoped crate seeded with one violation of
//! every source rule, plus tricky negatives that must NOT fire. The
//! integration test locates expected findings by the MARK tokens.
#![deny(unsafe_code)]
// The crate root deliberately lacks `#![warn(missing_docs)]`.

use std::collections::HashMap; // MARK-hash-use
use std::collections::HashSet; // MARK-hashset-use

pub fn nondeterministic_lookup(keys: &[u32]) -> Vec<u32> {
    let mut m: HashMap<u32, u32> = HashMap::new(); // MARK-hash-local
    let mut seen: HashSet<u32> = HashSet::new(); // MARK-hashset-local
    for &k in keys {
        m.insert(k, k * 2);
        seen.insert(k);
    }
    m.values().copied().collect()
}

pub fn wallclock_seed() -> u64 {
    let start = std::time::Instant::now(); // MARK-instant
    let _rng = rand::thread_rng(); // MARK-rng
    start.elapsed().as_nanos() as u64
}

pub fn panicky(v: Option<u32>) -> u32 {
    let first = v.unwrap(); // MARK-unwrap
    if first > 100 {
        panic!("too big"); // MARK-panic
    }
    first
}

// MARK-bad-allow sgp-lint: allow(no-panic-in-lib)
pub fn unjustified(v: Option<u32>) -> u32 {
    v.expect("missing justification above, so this still fires") // MARK-unsuppressed
}

pub fn suppressed() -> u32 {
    // sgp-lint: allow(no-panic-in-lib): fixture negative — a justified directive must silence the next line
    todo!()
}

// sgp-lint: allow(no-hash-iteration): fixture — nothing nearby uses a hash container, so this line allow is stale MARK-stale-allow
pub fn no_hashes_here() -> u32 {
    7
}

// ---- negatives: none of the following may produce findings ----

/// Mentions HashMap, Instant, unwrap() and panic! only in docs.
pub fn doc_only() -> u32 {
    let s = "HashMap iteration and thread_rng in a string";
    let r = r#"raw string with unwrap() and SystemTime"#;
    /* block comment: HashSet::new().unwrap() panic! */
    let lifetime_tick: &'static str = "not a char literal";
    let quote = '"';
    let fallback = None.unwrap_or(3u32);
    (s.len() + r.len() + lifetime_tick.len() + quote as usize) as u32 + fallback
}

/* a nested /* block comment: HashMap::new().unwrap() and
std::time::Instant::now() */ still inside the outer comment, so
panic!("never fires") stays invisible to every rule */
/// Raw strings with hash guards hide `.unwrap()` and thread_rng too.
pub fn lexer_adversarial() -> u32 {
    let deep = r##"hash-guarded raw: "quoted" # thread_rng() .unwrap()"##;
    let byte_raw = br#"HashSet::new() panic!("nope")"#;
    (deep.len() + byte_raw.len()) as u32
}

/// A doc comment spelling out `sgp-lint: allow(no-panic-in-lib): docs
/// never carry directives` must not parse as one — were it parsed, it
/// would surface below as a stale-allow error.
pub fn doc_directive_is_inert() -> u32 {
    11
}

// sgp-lint: allow-scope(no-panic-in-lib): fixture negative — the whole item below may unwrap
pub fn scoped_suppression(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("still inside the allow-scope item");
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
