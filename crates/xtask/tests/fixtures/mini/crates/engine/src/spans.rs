//! Fixture: span-guard balance seeds. Each fn body is checked on its
//! own: every `span_enter` must pair with a `span_exit` on the same
//! key, and a `guard_span` result must be let-bound (the guard *is*
//! the obligation to close the span). The balanced and guard-held fns
//! at the bottom are negatives that must stay silent.

/// Unbalanced: enters ENGINE_RUN twice but exits once.
pub fn run_twice(sink: &mut TraceSink) {
    sink.span_enter(keys::ENGINE_RUN, 0, 0); // MARK-span-double-enter
    sink.span_enter(keys::ENGINE_RUN, 1, 1);
    sink.span_exit(keys::ENGINE_RUN, 0, 2);
}

/// Unbalanced the other way: an exit with no matching enter.
pub fn stray_exit(sink: &mut TraceSink) {
    sink.span_exit(keys::ENGINE_PASS, 0, 9); // MARK-span-stray-exit
}

/// An unbound guard: the SpanGuard is dropped on the spot, so the
/// span is opened and never closed — the binding must be kept.
pub fn leak_guard(sink: &mut TraceSink) {
    sink.guard_span(keys::ENGINE_PASS, 0, 0); // MARK-span-unbound-guard
}

/// A hardcoded string key that is also never exited — this line seeds
/// both the key-registry rule and the balance rule.
pub fn adhoc_span(sink: &mut TraceSink) {
    sink.span_enter("engine.adhoc", 0, 0); // MARK-span-adhoc
}

/// Negative: a plain enter/exit pair on the fall-through path.
pub fn balanced(sink: &mut TraceSink) {
    sink.span_enter(keys::ENGINE_PASS, 0, 0);
    sink.span_exit(keys::ENGINE_PASS, 0, 1);
}

/// Negative: a let-bound guard carries the obligation, no textual
/// exit needed in this body.
pub fn guard_held(sink: &mut TraceSink) {
    let span = sink.guard_span(keys::ENGINE_RUN, 0, 0);
    span.exit(sink, 1);
}
