//! Fixture integration test: hash containers are banned even in test
//! code (seed-order replay), but unwrap in tests is fine.

use std::collections::HashSet; // MARK-test-hashset

#[test]
fn integration_tests_may_unwrap_but_not_hash() {
    let mut s: Vec<u32> = vec![3, 1, 2];
    s.sort_unstable();
    assert_eq!(s.first().copied().unwrap(), 1);
}
