//! Fixture: the elastic recovery path is determinism-scoped — RTO and
//! migration accounting must come from simulated time and seeded draws,
//! never from the host. This crate reuses the `sgp-db` package name (the
//! layer the real recovery path lives in) and seeds one wallclock and
//! one hash-iteration violation inside a membership-rejoin handler; the
//! manifest and crate attributes are clean, so only those two findings
//! may fire.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Measuring recovery time with the host clock instead of the DES
/// clock makes the reported RTO depend on the machine running the sim.
pub fn rejoin_rto_ms() -> u128 {
    let started = std::time::Instant::now(); // MARK-recovery-instant
    started.elapsed().as_millis()
}

/// Iterating a hash container makes the migration target order — and
/// therefore the data-moved accounting — nondeterministic.
pub fn migration_targets(live: &[u32]) -> Vec<u32> {
    let mut up: std::collections::HashSet<u32> = Default::default(); // MARK-recovery-hash
    for &m in live {
        up.insert(m);
    }
    up.into_iter().collect()
}
