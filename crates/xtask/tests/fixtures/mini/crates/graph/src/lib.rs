//! Fixture: the graph crate is thread-discipline-scoped — concurrency
//! belongs to the designated execution backend, not to ad-hoc locks
//! and threads scattered through the loaders. This file seeds exactly
//! two violations (a lock type and a spawn call); the mere *words*
//! `channel` and `bounded` outside call position must stay silent.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Builds a degree snapshot behind a lock — but lock types may not even
/// be named outside the execution backend.
pub fn locked_snapshot() -> u32 {
    let m = std::sync::Mutex::new(7u32); // MARK-thread-mutex
    let v = *m.lock().unwrap_or_else(|e| e.into_inner());
    v
}

/// Spawns a background counter — same problem, call-position form.
pub fn background_count() {
    std::thread::spawn(|| {}); // MARK-thread-spawn
}

/// Negative: `channel` as a plain local and `bounded` in prose are not
/// constructor calls, so neither may fire. Retries are bounded by the
/// stream length.
pub fn channel_width() -> u32 {
    let channel = 3;
    channel
}
