//! Fixture: panic-reachability seeds. The public entry points are
//! clean themselves; the panic sites live in private helpers only
//! reachable through call chains, so the rule must print the path.
//! `orphan` is called by nobody — its `expect` still fires the
//! per-file panic rule but must stay out of the reachability report.

/// Public pipeline entry: clean itself, everything below is reachable.
pub fn run_pipeline(input: Option<u32>) -> u32 {
    stage_one(input)
}

/// First private stage: still clean, forwards deeper.
fn stage_one(input: Option<u32>) -> u32 {
    guard(stage_two(input)) + 1
}

/// Second stage — the deep panic site: reachable only via
/// `run_pipeline -> stage_one -> stage_two`.
fn stage_two(input: Option<u32>) -> u32 {
    input.unwrap() // MARK-deep-unwrap
}

/// Range guard — reachable via `run_pipeline -> stage_one -> guard`.
fn guard(v: u32) -> u32 {
    if v > 9 {
        panic!("fixture guard"); // MARK-deep-panic
    }
    v
}

/// A picker whose indexing is reachable only through a *method* edge.
pub struct Picker {
    slots: Vec<u32>,
}

impl Picker {
    /// Public entry: delegates to the private method below.
    pub fn pick_first(&self) -> u32 {
        self.poke(0)
    }

    fn poke(&self, at: usize) -> u32 {
        self.slots[at] // MARK-method-indexing
    }
}

/// Unreached negative: no entry point calls this, so its `expect`
/// stays out of the reachability report.
fn orphan(v: Option<u32>) -> u32 {
    v.expect("unreached") // MARK-orphan-expect
}
