//! Fixture: the dynamic-partitioning tier's bounded look-ahead window
//! is determinism-scoped — the buffer must flush in arrival order so
//! that `W = 1` degenerates bit-identically to one-pass streaming.
//! Parking buffered elements in a hash container and draining it by
//! iteration silently replaces arrival order with hasher order, so the
//! flushed placements (and every differential built on them) depend on
//! hash seeding. This crate reuses the `sgp-partition` package name
//! (the layer the real window buffer lives in) and seeds exactly that
//! violation; everything else is clean, so only the one finding may
//! fire.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Drains a fake look-ahead buffer of parked stream elements — through
/// a hash map keyed by vertex, so the flush order (and therefore every
/// placement decided at the flush) follows hasher seeding instead of
/// the documented arrival order.
pub fn flush_window(parked: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut buffer: std::collections::HashMap<u32, u32> = Default::default(); // MARK-window-hash
    for &(vertex, record) in parked {
        buffer.insert(vertex, record);
    }
    buffer.into_iter().collect()
}
