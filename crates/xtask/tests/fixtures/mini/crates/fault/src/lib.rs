//! Fixture: the fault-plan crate is determinism-scoped — every draw in
//! a seeded plan must come from the plan's own counters, never from
//! ambient machine state. This file seeds one wallclock and one
//! hash-iteration violation inside a fault-plan module; the manifest and
//! crate attributes are clean, so only those two findings may fire.
#![deny(unsafe_code)]
#![warn(missing_docs)]

// sgp-lint: allow-file(no-panic-in-lib): fixture — nothing in this file panics, so this file allow is unused MARK-unused-file-allow

/// FaultPlan document schema version — drifted one ahead of the
/// `fault-plan=` pin in tests/goldens/SCHEMA_VERSIONS, so the
/// schema-version-sync rule must fire here.
pub const FAULT_PLAN_SCHEMA_VERSION: u32 = 2; // MARK-schema-drift

/// A fault plan whose "random" crash times come from the wrong place.
pub fn ambient_crash_time() -> u64 {
    let _rng = rand::thread_rng(); // MARK-fault-rng
    0
}

/// Iterating a hash container makes fault-event order nondeterministic.
pub fn unordered_fault_events(machines: &[u32]) -> usize {
    let mut pending: std::collections::HashMap<u32, u64> = Default::default(); // MARK-fault-hash
    for &m in machines {
        pending.insert(m, 0);
    }
    pending.len()
}
