//! Fixture: atomic-ordering policy. Orderings must be spelled
//! `Ordering::X` at the call site, and anything stronger than Relaxed
//! needs a justified allow. This file seeds a bare-import use, an
//! unjustified SeqCst, and a stale allow; the justified Acquire and
//! the plain Relaxed uses must stay silent.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicU64, Ordering};

/// A shared hit counter.
pub struct Hits(pub AtomicU64);

/// Bare ordering at the call site — unreviewable without chasing the
/// import.
pub fn bump(h: &Hits) {
    h.0.fetch_add(1, Relaxed); // MARK-bare-ordering
}

/// An unjustified sequentially-consistent load.
pub fn read_strict(h: &Hits) -> u64 {
    h.0.load(Ordering::SeqCst) // MARK-seqcst
}

/// A justified strong ordering passes.
pub fn read_acquire(h: &Hits) -> u64 {
    // sgp-lint: allow(atomic-ordering-policy): pairs with the Release store in publish()
    h.0.load(Ordering::Acquire)
}

/// The blessed default needs no ceremony.
pub fn read(h: &Hits) -> u64 {
    h.0.load(Ordering::Relaxed)
}

/// A stale allow: the strong ordering it once justified was relaxed
/// away, so the directive must fire stale-allow.
pub fn publish(h: &Hits) {
    // sgp-lint: allow(atomic-ordering-policy): was Release before the refactor MARK-stale-ordering-allow
    h.0.store(0, Ordering::Relaxed);
}
