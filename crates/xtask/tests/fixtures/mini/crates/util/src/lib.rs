//! Fixture: a crate *outside* the determinism scopes. Hash containers,
//! wall-clock and unwrap are all allowed here; only the attribute and
//! manifest policies apply (and this crate satisfies both).
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Out-of-scope crates may use hash containers and wall-clock freely.
pub fn hash_and_clock() -> u64 {
    let mut m = HashMap::new();
    m.insert(1u32, std::time::Instant::now());
    m.len() as u64
}

/// Out-of-scope crates may unwrap.
pub fn may_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}
