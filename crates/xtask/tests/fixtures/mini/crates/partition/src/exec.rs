//! Fixture: the designated execution backend. Thread and channel
//! primitives are legal here — thread-discipline exempts this file, so
//! the crossbeam scope and spawn below must stay silent — but every
//! channel payload type must be pinned by a turbofish and audited in
//! tests/goldens/SEND_REGISTRY.

/// Format version of the Send registry this backend is audited
/// against; matches the `send-registry=` pin in SCHEMA_VERSIONS.
pub const SEND_REGISTRY_SCHEMA_VERSION: u32 = 1;

/// An audited payload: plain owned data.
pub struct RegisteredMsg(pub u32);

/// A payload nobody audited.
pub struct SecretMsg(pub u32);

/// Ships an audited payload over an explicitly typed channel — clean.
pub fn run_registered() {
    let (tx, rx) = crossbeam::channel::bounded::<RegisteredMsg>(1);
    std::thread::spawn(move || drop(rx));
    drop(tx);
}

/// Ships an unaudited payload type across a thread boundary.
pub fn run_unregistered() {
    let (tx, _rx) = crossbeam::channel::bounded::<SecretMsg>(1); // MARK-unregistered-send
    drop(tx);
}

/// Lets inference pick the payload — the registry cannot audit that.
pub fn run_untyped() {
    let (tx, _rx) = crossbeam::channel::unbounded(); // MARK-untyped-ctor
    tx.send(RegisteredMsg(1)).ok();
}
