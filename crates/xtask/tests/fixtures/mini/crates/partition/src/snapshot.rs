//! Fixture negative: the snapshot round-trip surface uses a
//! wildcard-free match, which is compiler-exhaustive — adding a
//! variant fails compilation here, so the exhaustiveness rule must
//! treat every variant as covered and stay silent.

use crate::registry::Algorithm;

/// The on-disk tag of an algorithm, round-tripped by the snapshot
/// header parser.
pub fn tag(alg: &Algorithm) -> u8 {
    match alg {
        Algorithm::Alpha => 0,
        Algorithm::Beta => 1,
        Algorithm::Gamma => 2,
        Algorithm::Delta => 3,
    }
}
