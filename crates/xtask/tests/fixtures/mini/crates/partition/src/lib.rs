//! Fixture: the partitioner crate is determinism-scoped, and its
//! multi-loader merge path is the most tempting place to smuggle in a
//! hash container — decision logs keyed by loader id "just need a map".
//! Iterating one at a synchronization barrier would make the merged
//! global state depend on hash-iteration order, silently breaking the
//! same-seed ⇒ byte-identical-partitioning contract. This file seeds
//! exactly that violation, plus one advisory hot-path allocation inside
//! a `fn place` body (the `no-alloc-in-place-loop` warning) and one
//! hardcoded trace key; everything else in the crate is clean, so only
//! those seeded findings may fire.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Merges per-loader decision logs into a global assignment — through a
/// hash map, so the replay order (and any non-commutative state folded
/// over it) depends on hasher seeding instead of the documented seeded
/// rotation.
pub fn merge_loader_decisions(logs: &[(u32, u32)]) -> Vec<u32> {
    let mut by_loader: std::collections::HashMap<u32, Vec<u32>> = Default::default(); // MARK-loader-merge-hash
    for &(loader, decision) in logs {
        by_loader.entry(loader).or_default().push(decision);
    }
    let mut merged = Vec::new();
    for (_, decisions) in by_loader {
        merged.extend(decisions);
    }
    merged
}

/// A clean, deterministic counterpart: loaders are dense indices, so a
/// vector of logs replayed in seeded rotation order needs no hashing.
pub fn merge_in_rotation(logs: &[Vec<u32>], start: usize) -> Vec<u32> {
    let mut merged = Vec::new();
    for step in 0..logs.len() {
        merged.extend(logs[(start + step) % logs.len()].iter().copied());
    }
    merged
}

/// A placement kernel that rebuilds its candidate-score buffer on every
/// streamed element — exactly the per-element allocation the advisory
/// `no-alloc-in-place-loop` rule exists to surface: the buffer belongs
/// on the partitioner struct as a reusable scratch field.
pub fn place(degrees: &[u32], k: usize) -> usize {
    let mut scores: Vec<u32> = Vec::with_capacity(k); // MARK-place-alloc
    for p in 0..k {
        scores.push(degrees.get(p).copied().unwrap_or(0));
    }
    scores.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(p, _)| p).unwrap_or(0)
}

/// Emits the run span through the canonical registry constant — the
/// key-registry rule resolves `keys::PARTITION_RUN` and stays quiet —
/// then smuggles in a hardcoded string key, which must fire: a literal
/// here would drift the goldens-pinned trace schema silently.
pub fn record_run(sink: &mut TraceSink) {
    sink.span_enter(keys::PARTITION_RUN);
    sink.counter_add("partition.hardcoded", 1); // MARK-hardcoded-key
    sink.span_exit(keys::PARTITION_RUN);
}
