//! Fixture: the canonical `Algorithm` table and the two in-file
//! surfaces the exhaustiveness rule reads from the enum's own file —
//! the `all()` table and the `supports_parallel_loaders` predicate.
//! `Delta` is deliberately absent from `all()`, and the predicate only
//! names `Beta`, so the rule must report the gaps per surface at the
//! missing variant's declaration line.

/// The streaming algorithms of the mini study.
pub enum Algorithm {
    /// Greedy vertex placement.
    Alpha, // MARK-alpha-variant
    /// Hash-based edge placement.
    Beta,
    /// Windowed look-ahead placement.
    Gamma, // MARK-gamma-variant
    /// Restreamed placement — newest variant, not yet wired to every
    /// surface.
    Delta, // MARK-delta-variant
}

impl Algorithm {
    /// The canonical table. `Delta` is missing, so the `table-all`
    /// surface must flag it (and every surface that inherits coverage
    /// by calling `all()` misses it too).
    pub fn all() -> [Algorithm; 3] {
        [Algorithm::Alpha, Algorithm::Beta, Algorithm::Gamma] // MARK-all-table
    }

    /// Threaded-loader support. Only `Beta` is named, so `Alpha`,
    /// `Gamma` and `Delta` are unhandled on the `threaded-loaders`
    /// surface — the `matches!` macro is not a `match` expression, so
    /// the negation covers nothing the rule can see.
    pub fn supports_parallel_loaders(&self) -> bool {
        !matches!(self, Algorithm::Beta)
    }
}
