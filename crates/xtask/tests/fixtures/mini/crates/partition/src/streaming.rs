//! Fixture: the streaming dispatch surface. The match carries a
//! wildcard arm, so only the variants its arm heads name are covered;
//! `Gamma` is excused by a registry entry, and `Delta` silently falls
//! into `_ =>` — exactly the drift the exhaustiveness rule reports.

use crate::registry::Algorithm;

/// Dispatches one streamed element to a placement kernel.
pub fn dispatch(alg: &Algorithm) -> u32 {
    match alg {
        Algorithm::Alpha => 1,
        Algorithm::Beta => 2,
        _ => 0, // MARK-stream-wildcard
    }
}
