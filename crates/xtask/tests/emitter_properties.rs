//! Emitter agreement properties: for arbitrary finding sets, the JSON
//! and SARIF renderings must agree on finding count and ordering, and
//! both must be well-formed JSON. Randomness comes from a seeded
//! xorshift generator, so every run exercises the same cases.

use sgp_xtask::{render_json, render_sarif, Finding, LintReport, Severity};

/// Deterministic xorshift64* PRNG — no third-party crates, fixed seeds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const RULES: &[&str] = &[
    "no-hash-iteration",
    "no-panic-in-lib",
    "trace-key-registry",
    "no-float-accounting",
    "schema-version-sync",
    "stale-allow",
    "unused-allow",
];

/// Messages deliberately include every JSON-hostile character class the
/// escaper handles.
const MESSAGES: &[&str] = &[
    "plain message",
    "quotes \" and backslashes \\ inside",
    "newline\nand\ttab",
    "control \u{1} char and unicode ±∞",
    "",
];

fn arbitrary_report(rng: &mut Rng) -> LintReport {
    let n = rng.below(12) as usize;
    let mut findings = Vec::with_capacity(n);
    for _ in 0..n {
        let rule = RULES[rng.below(RULES.len() as u64) as usize];
        let severity = if rng.below(3) == 0 { Severity::Warn } else { Severity::Error };
        let file = format!("crates/x{}/src/lib.rs", rng.below(4));
        let line = rng.below(300) as usize; // 0 = file-level finding
        let message = MESSAGES[rng.below(MESSAGES.len() as u64) as usize];
        findings.push(Finding::new(rule, severity, &file, line, message));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    LintReport {
        findings,
        files_scanned: rng.below(200) as usize,
        manifests_scanned: rng.below(20) as usize,
        strict: rng.below(2) == 1,
    }
}

/// A minimal JSON well-formedness check: balanced structure with
/// correct string/escape handling. Accepts a superset of JSON (it does
/// not validate numbers), which is enough to catch broken quoting or
/// bracket mismatches in the hand-rolled emitters.
fn assert_wellformed_json(doc: &str) {
    let mut stack: Vec<char> = Vec::new();
    let mut chars = doc.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => loop {
                match chars.next() {
                    Some('\\') => {
                        chars.next();
                    }
                    Some('"') => break,
                    Some(_) => {}
                    None => panic!("unterminated string in rendered JSON"),
                }
            },
            '{' | '[' => stack.push(c),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced brace"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced bracket"),
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed structure in rendered JSON");
}

/// `ruleId` values in SARIF result order (results only — the rule
/// catalogue under `tool.driver.rules` uses `"id"`, not `"ruleId"`).
fn sarif_rule_ids(sarif: &str) -> Vec<String> {
    sarif
        .match_indices("\"ruleId\": \"")
        .map(|(i, pat)| {
            let rest = &sarif[i + pat.len()..];
            rest[..rest.find('"').expect("closing quote")].to_string()
        })
        .collect()
}

/// `"rule"` values in JSON finding order.
fn json_rules(json: &str) -> Vec<String> {
    json.match_indices("{\"rule\": \"")
        .map(|(i, pat)| {
            let rest = &json[i + pat.len()..];
            rest[..rest.find('"').expect("closing quote")].to_string()
        })
        .collect()
}

#[test]
fn json_and_sarif_agree_on_count_and_order_for_arbitrary_findings() {
    let mut rng = Rng(0x5eed_1234_abcd_9876);
    for case in 0..200 {
        let report = arbitrary_report(&mut rng);
        let json = render_json(&report);
        let sarif = render_sarif(&report);

        assert_wellformed_json(&json);
        assert_wellformed_json(&sarif);

        let jr = json_rules(&json);
        let sr = sarif_rule_ids(&sarif);
        assert_eq!(jr.len(), report.findings.len(), "case {case}: JSON finding count");
        assert_eq!(sr.len(), report.findings.len(), "case {case}: SARIF result count");
        assert_eq!(jr, sr, "case {case}: emitters disagree on finding order");

        // Severity totals agree with the report in both renderings.
        assert!(json.contains(&format!("\"errors\": {}", report.errors())));
        assert_eq!(
            sarif.matches("\"level\": \"error\"").count(),
            report.errors(),
            "case {case}: SARIF error levels"
        );
        assert_eq!(
            sarif.matches("\"level\": \"warning\"").count(),
            report.warnings(),
            "case {case}: SARIF warning levels"
        );
    }
}

#[test]
fn rendering_is_deterministic_across_calls() {
    let mut rng = Rng(42);
    let report = arbitrary_report(&mut rng);
    assert_eq!(render_json(&report), render_json(&report));
    assert_eq!(render_sarif(&report), render_sarif(&report));
}
