//! `sgp-xtask trace-summary`: human-readable rendering of a trace dump.
//!
//! Reads the canonical trace JSON written by `experiments --trace
//! <path>` (or any [`sgp_trace`] `CollectingSink` export), replays the
//! event stream into streaming aggregates — the same semantics as
//! `sgp_trace::SummarySink`, but over parsed (owned-name) events — and
//! renders:
//!
//! * top-k spans by self cost (duration minus time in child spans),
//! * the per-machine load table (engine bytes/compute, DB reads),
//! * counter totals by name,
//! * histogram quantiles (log₂-bucket resolution).
//!
//! The renderer is read-only and deterministic: identical input bytes
//! produce identical output bytes.

use sgp_trace::{parse_trace, EventKind, Log2Histogram};
use std::collections::{BTreeMap, BTreeSet};

/// Aggregate cost of one span name (mirror of `sgp_trace::SpanStat`
/// for parsed events).
#[derive(Debug, Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total: u64,
    self_total: u64,
}

/// Pads `s` to `w` columns (left-aligned).
fn pad(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

/// Renders rows as a fixed-width text table with a header rule.
fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let mut out = String::new();
    let header: Vec<String> = headers.iter().enumerate().map(|(i, h)| pad(h, widths[i])).collect();
    out.push_str(header.join("  ").trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().enumerate().map(|(i, c)| pad(c, widths[i])).collect();
        out.push_str(cells.join("  ").trim_end());
        out.push('\n');
    }
    out
}

/// Parses `text` as canonical trace JSON and renders the summary; `top`
/// bounds the span table.
pub fn summarize(text: &str, top: usize) -> Result<String, String> {
    let trace = parse_trace(text)?;
    let mut counters: BTreeMap<(String, u64), u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Log2Histogram> = BTreeMap::new();
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut stack: Vec<(String, u64, u64, u64)> = Vec::new();
    for e in &trace.events {
        match e.kind {
            EventKind::Counter => {
                *counters.entry((e.name.clone(), e.key)).or_insert(0) += e.value;
            }
            EventKind::Histogram => {
                histograms.entry(e.name.clone()).or_default().record(e.value);
            }
            EventKind::SpanEnter => stack.push((e.name.clone(), e.key, e.value, 0)),
            EventKind::SpanExit => match stack.pop() {
                Some((n, k, enter, child_total)) if n == e.name && k == e.key => {
                    let duration = e.value.saturating_sub(enter);
                    if let Some((_, _, _, parent_children)) = stack.last_mut() {
                        *parent_children += duration;
                    }
                    let agg = spans.entry(n).or_default();
                    agg.count += 1;
                    agg.total += duration;
                    agg.self_total += duration.saturating_sub(child_total);
                }
                Some(frame) => stack.push(frame), // mismatched exit: not attributed
                None => {}
            },
        }
    }

    let mut out = format!(
        "trace summary (schema_version {}, {} events)\n",
        trace.schema_version,
        trace.events.len()
    );

    let mut ranked: Vec<(&String, &SpanAgg)> = spans.iter().collect();
    ranked.sort_by(|a, b| b.1.self_total.cmp(&a.1.self_total).then(a.0.cmp(b.0)));
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .take(top)
        .map(|(name, s)| {
            vec![
                (*name).clone(),
                s.count.to_string(),
                s.total.to_string(),
                s.self_total.to_string(),
            ]
        })
        .collect();
    out.push_str("\n== top spans by self cost (stamp units) ==\n");
    out.push_str(&render_table(&["span", "count", "total", "self"], &rows));
    if !stack.is_empty() {
        out.push_str(&format!("({} span(s) never exited — partial trace?)\n", stack.len()));
    }

    // Per-machine load: the counters keyed by machine id.
    const MACHINE_COUNTERS: &[&str] =
        &["engine.machine_bytes", "engine.machine_compute_ns", "db.reads", "db.queue_enqueued"];
    let machines: BTreeSet<u64> = counters
        .keys()
        .filter(|(n, _)| MACHINE_COUNTERS.contains(&n.as_str()))
        .map(|&(_, k)| k)
        .collect();
    if !machines.is_empty() {
        let rows: Vec<Vec<String>> = machines
            .iter()
            .map(|&m| {
                let mut row = vec![m.to_string()];
                for name in MACHINE_COUNTERS {
                    let v = counters.get(&((*name).to_string(), m)).copied().unwrap_or(0);
                    row.push(v.to_string());
                }
                row
            })
            .collect();
        out.push_str("\n== per-machine load ==\n");
        out.push_str(&render_table(
            &["machine", "engine bytes", "engine compute ns", "db reads", "db enqueued"],
            &rows,
        ));
    }

    let mut by_name: BTreeMap<&String, u64> = BTreeMap::new();
    for ((name, _), v) in &counters {
        *by_name.entry(name).or_insert(0) += v;
    }
    let rows: Vec<Vec<String>> =
        by_name.iter().map(|(n, v)| vec![(*n).clone(), v.to_string()]).collect();
    out.push_str("\n== counter totals ==\n");
    out.push_str(&render_table(&["counter", "total"], &rows));

    if !histograms.is_empty() {
        let rows: Vec<Vec<String>> = histograms
            .iter()
            .map(|(n, h)| {
                vec![
                    n.clone(),
                    h.count().to_string(),
                    h.p50().to_string(),
                    h.p99().to_string(),
                    h.max().to_string(),
                ]
            })
            .collect();
        out.push_str("\n== histograms (log2-bucket quantiles) ==\n");
        out.push_str(&render_table(&["histogram", "samples", "p50", "p99", "max"], &rows));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_trace::{CollectingSink, TraceSink};

    fn sample_json() -> String {
        let mut s = CollectingSink::new();
        s.span_enter("engine.run", 0, 0);
        s.span_enter("engine.superstep", 0, 0);
        s.counter_add("engine.machine_bytes", 0, 100);
        s.counter_add("engine.machine_bytes", 1, 300);
        s.histogram_record("engine.barrier_wait_ns", 0, 4_000);
        s.span_exit("engine.superstep", 0, 900);
        s.span_exit("engine.run", 0, 1_000);
        s.to_json()
    }

    #[test]
    fn renders_spans_machines_counters_and_histograms() {
        let out = summarize(&sample_json(), 8).expect("valid trace");
        assert!(out.contains("schema_version 1"), "{out}");
        assert!(out.contains("engine.superstep"), "{out}");
        assert!(out.contains("top spans by self cost"), "{out}");
        assert!(out.contains("per-machine load"), "{out}");
        assert!(out.contains("engine.machine_bytes  400"), "{out}");
        assert!(out.contains("engine.barrier_wait_ns"), "{out}");
        // Self cost: engine.run spends all 1000 stamps minus the 900 in
        // its child superstep.
        let run_line = out.lines().find(|l| l.starts_with("engine.run")).expect("span row");
        assert!(run_line.trim_end().ends_with("100"), "{run_line}");
    }

    #[test]
    fn summarize_is_deterministic() {
        let json = sample_json();
        assert_eq!(summarize(&json, 8), summarize(&json, 8));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(summarize("not json", 8).is_err());
    }
}
