//! A lightweight Rust source scanner.
//!
//! The scanner does not parse Rust; it lexes just enough to answer the
//! three questions the rules need:
//!
//! 1. *What does each line look like with string literals and comments
//!    blanked out?* — so `"HashMap"` in a doc comment or an error string
//!    never trips the determinism rule. Masking preserves character
//!    positions (each masked character becomes a space).
//! 2. *Which lines are test code?* — `#[cfg(test)]` / `#[test]` items
//!    are tracked by brace matching so `no-panic-in-lib` skips unit
//!    tests embedded in library files.
//! 3. *Which allow directives does the file carry?* — `// sgp-lint:
//!    allow(rule): justification` comments, with their line numbers.
//!
//! The lexer understands line comments, nested block comments, string
//! literals with escapes, raw strings (`r#"…"#`, any number of hashes),
//! byte and raw byte strings, char literals, and the char-vs-lifetime
//! ambiguity of `'`.

use std::path::Path;

/// The scope of an allow directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveScope {
    /// Applies to the directive's own line and the line after it.
    Line,
    /// Applies to the whole file.
    File,
}

/// A parsed `sgp-lint:` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive appears on.
    pub line: usize,
    /// `allow(...)` or `allow-file(...)`.
    pub scope: DirectiveScope,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Trailing justification text (may be empty — that is an error the
    /// rules layer reports).
    pub justification: String,
    /// Raw directive text for diagnostics.
    pub raw: String,
}

/// A scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Per-line source with strings and comments blanked.
    pub masked: Vec<String>,
    /// Per-line flag: true when the line is inside a `#[cfg(test)]` /
    /// `#[test]` item.
    pub is_test: Vec<bool>,
    /// All `sgp-lint:` directives in the file.
    pub directives: Vec<Directive>,
}

impl ScannedFile {
    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.masked.len()
    }
}

/// Reads and scans one file.
pub fn scan_file(path: &Path, rel: &str) -> Result<ScannedFile, String> {
    let source = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Ok(scan_source(&source, rel))
}

/// Scans in-memory source (entry point for unit tests).
pub fn scan_source(source: &str, rel: &str) -> ScannedFile {
    let (masked, comments) = mask(source);
    let is_test = test_spans(&masked);
    let mut directives = Vec::new();
    for (line, text) in &comments {
        if let Some(d) = parse_directive(*line, text) {
            directives.push(d);
        }
    }
    ScannedFile { rel: rel.to_string(), masked, is_test, directives }
}

// ---------------------------------------------------------------------------
// Masking lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    BlockComment(u32),
    /// String literal (also byte strings — identical escaping).
    Str,
    /// Raw string terminated by `"` + `hashes` `#`s.
    RawStr(u32),
    /// Char or byte-char literal.
    CharLit,
}

/// Returns (masked lines, line-comment texts by 1-based line).
fn mask(source: &str) -> (Vec<String>, Vec<(usize, String)>) {
    let chars: Vec<char> = source.chars().collect();
    let mut state = State::Code;
    let mut masked_all = String::with_capacity(source.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut current_comment = String::new();
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                comments.push((line, std::mem::take(&mut current_comment)));
                state = State::Code;
            }
            masked_all.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    current_comment.clear();
                    current_comment.push_str("//");
                    masked_all.push_str("  ");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    masked_all.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    masked_all.push(' ');
                    i += 1;
                } else if c == 'r'
                    && matches!(chars.get(i + 1), Some('"') | Some('#'))
                    && raw_string_hashes(&chars, i + 1).is_some()
                {
                    let hashes = raw_string_hashes(&chars, i + 1).unwrap_or(0);
                    state = State::RawStr(hashes);
                    // mask 'r', the hashes, and the opening quote
                    for _ in 0..(2 + hashes as usize) {
                        masked_all.push(' ');
                    }
                    i += 2 + hashes as usize;
                } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                    state = State::Str;
                    masked_all.push_str("  ");
                    i += 2;
                } else if c == 'b'
                    && chars.get(i + 1) == Some(&'r')
                    && raw_string_hashes(&chars, i + 2).is_some()
                {
                    let hashes = raw_string_hashes(&chars, i + 2).unwrap_or(0);
                    state = State::RawStr(hashes);
                    for _ in 0..(3 + hashes as usize) {
                        masked_all.push(' ');
                    }
                    i += 3 + hashes as usize;
                } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                    state = State::CharLit;
                    masked_all.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    // Disambiguate char literal vs lifetime: 'x' is a char
                    // literal only when a closing quote follows within the
                    // literal; '\… is always a char literal.
                    if chars.get(i + 1) == Some(&'\\') {
                        state = State::CharLit;
                        masked_all.push(' ');
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        state = State::CharLit;
                        masked_all.push(' ');
                        i += 1;
                    } else {
                        // A lifetime: keep the tick, the identifier stays
                        // visible code (harmless to the rules).
                        masked_all.push('\'');
                        i += 1;
                    }
                } else {
                    // Identifier characters that could prefix a string
                    // (e.g. the `r` in `parser"…"` is impossible; `r` only
                    // starts a raw string when not part of an identifier).
                    masked_all.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                current_comment.push(c);
                masked_all.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    masked_all.push_str("  ");
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    masked_all.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    masked_all.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    masked_all.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        masked_all.push(' ');
                        i += 1;
                    }
                    i += 1;
                } else if c == '"' {
                    masked_all.push(' ');
                    state = State::Code;
                    i += 1;
                } else {
                    masked_all.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i + 1, hashes) {
                    for _ in 0..(1 + hashes as usize) {
                        masked_all.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    masked_all.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    masked_all.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        masked_all.push(' ');
                        i += 1;
                    }
                    i += 1;
                } else if c == '\'' {
                    masked_all.push(' ');
                    state = State::Code;
                    i += 1;
                } else {
                    masked_all.push(' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment && !current_comment.is_empty() {
        comments.push((line, current_comment));
    }
    let masked: Vec<String> = masked_all.split('\n').map(str::to_string).collect();
    (masked, comments)
}

/// If position `at` starts `#*"` (zero or more hashes then a quote),
/// returns the hash count; otherwise `None`.
fn raw_string_hashes(chars: &[char], at: usize) -> Option<u32> {
    let mut j = at;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// True when `hashes` `#` characters follow position `at`.
fn closes_raw_string(chars: &[char], at: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|n| chars.get(at + n) == Some(&'#'))
}

// ---------------------------------------------------------------------------
// Test-span detection
// ---------------------------------------------------------------------------

/// Marks lines belonging to `#[cfg(test)]` / `#[test]` items by brace
/// matching over the masked source. Attributes are assumed to fit on one
/// line (true throughout this workspace; multi-line test attributes
/// would simply not be skipped, which fails safe — extra findings, not
/// missed ones).
fn test_spans(masked: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; masked.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut in_test = false;
    let mut test_depth: i64 = 0;

    for (li, line) in masked.iter().enumerate() {
        let normalized: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        if !in_test && (normalized.contains("#[cfg(test)") || normalized.contains("#[test]")) {
            pending = true;
            is_test[li] = true;
        }
        if pending || in_test {
            is_test[li] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending {
                        pending = false;
                        in_test = true;
                        test_depth = depth;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if in_test && depth == test_depth {
                        in_test = false;
                    }
                }
                ';' => {
                    // `#[cfg(test)] use …;` — attribute over a braceless
                    // item; nothing to span. (No statement can legally sit
                    // between an attribute and its item, so any `;` while
                    // pending belongs to a braceless item.)
                    if pending {
                        pending = false;
                    }
                }
                _ => {}
            }
        }
    }
    is_test
}

// ---------------------------------------------------------------------------
// Directive parsing
// ---------------------------------------------------------------------------

/// Parses one line comment into a directive, if it contains `sgp-lint:`.
///
/// Doc comments (`///`, `//!`) never carry directives — they are
/// documentation *about* the syntax, not uses of it.
fn parse_directive(line: usize, comment: &str) -> Option<Directive> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let idx = comment.find("sgp-lint:")?;
    let rest = comment[idx + "sgp-lint:".len()..].trim_start();
    let (scope, after_kw) = if let Some(r) = rest.strip_prefix("allow-file") {
        (DirectiveScope::File, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (DirectiveScope::Line, r)
    } else {
        // Unknown directive verb — surface it with an empty rule; the
        // rules layer reports it as malformed.
        return Some(Directive {
            line,
            scope: DirectiveScope::Line,
            rule: String::new(),
            justification: String::new(),
            raw: rest.to_string(),
        });
    };
    let after_kw = after_kw.trim_start();
    let (rule, tail) = match after_kw.strip_prefix('(').and_then(|r| r.split_once(')')) {
        Some((rule, tail)) => (rule.trim().to_string(), tail),
        None => (String::new(), after_kw),
    };
    let justification = tail.trim_start().trim_start_matches([':', '-', '—']).trim().to_string();
    Some(Directive { line, scope, rule, justification, raw: rest.to_string() })
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn masked_join(src: &str) -> String {
        scan_source(src, "t.rs").masked.join("\n")
    }

    #[test]
    fn masks_line_and_block_comments() {
        let m = masked_join("let a = 1; // HashMap here\n/* panic! */ let b = 2;");
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let a = 1;"));
        assert!(m.contains("let b = 2;"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = masked_join("/* outer /* inner unwrap() */ still comment */ let x = 3;");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let x = 3;"));
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let m = masked_join(r##"let s = "HashMap"; let r = r#"thread_rng "quoted""#; let t = 1;"##);
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("thread_rng"));
        assert!(m.contains("let t = 1;"));
    }

    #[test]
    fn masks_byte_and_escaped_strings() {
        let m = masked_join(r#"let b = b"unwrap()"; let e = "esc \" unwrap()"; done();"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("done();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = masked_join("fn f<'a>(x: &'a str, c: char) -> &'a str { let _q = '\"'; x }");
        // The quote char literal must be masked; the trailing code kept.
        assert!(m.contains("fn f<'a>"));
        assert!(m.ends_with("x }"));
    }

    #[test]
    fn char_literal_with_escape() {
        let m = masked_join(r"let c = '\n'; let d = '\''; after();");
        assert!(m.contains("after();"));
    }

    #[test]
    fn comment_preserves_column_positions() {
        let src = "abc // xyz";
        let m = masked_join(src);
        assert_eq!(m.chars().count(), src.chars().count());
        assert!(m.starts_with("abc"));
    }

    #[test]
    fn cfg_test_block_is_marked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}\n";
        let s = scan_source(src, "t.rs");
        assert!(!s.is_test[0], "lib line");
        assert!(s.is_test[1] && s.is_test[2] && s.is_test[3] && s.is_test[4]);
        assert!(!s.is_test[5], "code after test mod");
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_swallow_next_block() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\npub fn real() { body(); }\n";
        let s = scan_source(src, "t.rs");
        assert!(!s.is_test[2], "fn after braceless cfg(test) item is not test code");
    }

    #[test]
    fn test_attr_in_string_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\nfn f() { g(); }\n";
        let s = scan_source(src, "t.rs");
        assert!(!s.is_test[1]);
    }

    #[test]
    fn parses_line_directive_with_justification() {
        let s = scan_source(
            "// sgp-lint: allow(no-panic-in-lib): value constructed two lines up\nx.unwrap();\n",
            "t.rs",
        );
        assert_eq!(s.directives.len(), 1);
        let d = &s.directives[0];
        assert_eq!(d.scope, DirectiveScope::Line);
        assert_eq!(d.rule, "no-panic-in-lib");
        assert!(d.justification.contains("constructed"));
        assert_eq!(d.line, 1);
    }

    #[test]
    fn parses_file_directive_and_missing_justification() {
        let s = scan_source(
            "// sgp-lint: allow-file(no-wallclock-in-sim): bench-only harness\n// sgp-lint: allow(no-panic-in-lib)\n",
            "t.rs",
        );
        assert_eq!(s.directives.len(), 2);
        assert_eq!(s.directives[0].scope, DirectiveScope::File);
        assert!(s.directives[1].justification.is_empty());
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        let s = scan_source(
            "//! Write `// sgp-lint: allow(x): y` to suppress.\n/// e.g. // sgp-lint: allow(z): w\n",
            "t.rs",
        );
        assert!(s.directives.is_empty());
    }

    #[test]
    fn directive_inside_string_is_not_parsed() {
        let s = scan_source("let s = \"// sgp-lint: allow(x): y\";\n", "t.rs");
        assert!(s.directives.is_empty());
    }

    #[test]
    fn trailing_comment_without_newline_is_captured() {
        let s = scan_source("x.unwrap(); // sgp-lint: allow(no-panic-in-lib): provable", "t.rs");
        assert_eq!(s.directives.len(), 1);
        assert_eq!(s.directives[0].line, 1);
    }
}
