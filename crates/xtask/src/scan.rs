//! Token-backed source scanning.
//!
//! [`scan_source`] lexes a file once (see [`crate::lexer`]) and derives
//! everything the rules need from the token stream:
//!
//! 1. *The tokens themselves* — rules pattern-match identifiers, method
//!    calls and macro bangs over tokens, so text inside string literals,
//!    raw strings, char literals and (doc) comments can never produce a
//!    finding.
//! 2. *Masked lines* — the source with literal/comment tokens blanked
//!    (columns preserved), used by checks that still compare shapes of
//!    whole lines (crate-root attributes).
//! 3. *Test spans* — `#[cfg(test)]` / `#[test]` attributes are located
//!    as token sequences and their items delimited by brace matching, so
//!    `no-panic-in-lib` skips unit tests embedded in library files.
//! 4. *Allow directives* — `// sgp-lint: …` comments, parsed only from
//!    plain (non-doc) line-comment tokens and anchored to the token's
//!    line. Doc comments describing the syntax never count.
//!
//! Directives come in three scopes:
//!
//! ```text
//! // sgp-lint: allow(<rule>): <why>        same line or the line after
//! // sgp-lint: allow-scope(<rule>): <why>  the next brace-delimited item
//! // sgp-lint: allow-file(<rule>): <why>   the whole file
//! ```
//!
//! `allow-scope` must sit on its own line above the item it exempts; its
//! reach ends at the item's closing brace (or the `;` of a braceless
//! item).

use crate::lexer::{self, DocStyle, Token, TokenKind};
use std::path::Path;

/// The scope of an allow directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveScope {
    /// Applies to the directive's own line and the line after it.
    Line,
    /// Applies from the directive to the end of the next brace-delimited
    /// item (inclusive).
    Scope {
        /// 1-based last line the directive covers.
        end_line: usize,
    },
    /// Applies to the whole file.
    File,
}

/// A parsed `sgp-lint:` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive appears on.
    pub line: usize,
    /// `allow(...)`, `allow-scope(...)` or `allow-file(...)`.
    pub scope: DirectiveScope,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Trailing justification text (may be empty — that is an error the
    /// rules layer reports).
    pub justification: String,
    /// Raw directive text for diagnostics.
    pub raw: String,
}

/// A scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// The raw source text (tokens index into it).
    pub source: String,
    /// The lossless token stream.
    pub tokens: Vec<Token>,
    /// Per-line source with strings, chars and comments blanked
    /// (column-preserving).
    pub masked: Vec<String>,
    /// Per-line flag: true when the line is inside a `#[cfg(test)]` /
    /// `#[test]` item.
    pub is_test: Vec<bool>,
    /// All `sgp-lint:` directives in the file.
    pub directives: Vec<Directive>,
}

impl ScannedFile {
    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.masked.len()
    }

    /// Whether 1-based `line` sits inside a test item.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.is_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Reads and scans one file.
pub fn scan_file(path: &Path, rel: &str) -> Result<ScannedFile, String> {
    let source = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Ok(scan_source(&source, rel))
}

/// Scans in-memory source (entry point for unit tests).
pub fn scan_source(source: &str, rel: &str) -> ScannedFile {
    let tokens = lexer::lex(source);
    let masked = masked_lines(source, &tokens);
    let is_test = test_spans(source, &tokens, masked.len());
    let mut directives = Vec::new();
    for t in &tokens {
        if t.kind != TokenKind::LineComment(DocStyle::None) {
            continue;
        }
        if let Some(mut d) = parse_directive(t.line, t.text(source)) {
            if matches!(d.scope, DirectiveScope::Scope { .. }) {
                d.scope = DirectiveScope::Scope {
                    end_line: scope_end(source, &tokens, t.line, masked.len()),
                };
            }
            directives.push(d);
        }
    }
    ScannedFile {
        rel: rel.to_string(),
        source: source.to_string(),
        tokens,
        masked,
        is_test,
        directives,
    }
}

// ---------------------------------------------------------------------------
// Masked lines
// ---------------------------------------------------------------------------

/// True for token kinds whose text is opaque to the rules.
fn is_opaque(kind: TokenKind) -> bool {
    matches!(
        kind,
        TokenKind::LineComment(_)
            | TokenKind::BlockComment { .. }
            | TokenKind::Str { .. }
            | TokenKind::Char { .. }
    )
}

/// Rebuilds the source with opaque tokens blanked to spaces (newlines
/// kept), then splits into lines. Character counts per line are
/// preserved, so columns in the masked text line up with the source.
fn masked_lines(source: &str, tokens: &[Token]) -> Vec<String> {
    let mut out = String::with_capacity(source.len());
    for t in tokens {
        let text = t.text(source);
        if is_opaque(t.kind) {
            for c in text.chars() {
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
        } else {
            out.push_str(text);
        }
    }
    out.split('\n').map(str::to_string).collect()
}

// ---------------------------------------------------------------------------
// Test-span detection
// ---------------------------------------------------------------------------

/// The single source character of a token (only meaningful for
/// `Punct`, whose tokens are exactly one char).
fn punct(source: &str, t: &Token) -> Option<char> {
    if t.kind == TokenKind::Punct {
        source[t.start..t.end].chars().next()
    } else {
        None
    }
}

/// Marks lines belonging to `#[cfg(test)]` / `#[test]` items.
///
/// Attributes are recognised as token sequences (`#` `[` … `]`), so an
/// attribute split across lines, or attribute-looking text inside a
/// string, behaves correctly. The item following a test attribute is
/// delimited by brace matching; a `;` before any `{` ends a braceless
/// item (`#[cfg(test)] use …;`).
fn test_spans(source: &str, tokens: &[Token], num_lines: usize) -> Vec<bool> {
    let mut is_test = vec![false; num_lines];
    let nt: Vec<usize> = (0..tokens.len()).filter(|&i| !lexer::is_trivia(tokens[i].kind)).collect();

    let mut k = 0usize;
    while k < nt.len() {
        let t = &tokens[nt[k]];
        if punct(source, t) == Some('#')
            && nt.get(k + 1).is_some_and(|&j| punct(source, &tokens[j]) == Some('['))
        {
            let (is_test_attr, close_k) = read_attribute(source, tokens, &nt, k);
            if is_test_attr {
                let start_line = t.line;
                let end_line = item_end_line(source, tokens, &nt, close_k + 1, num_lines);
                for line in start_line..=end_line.min(num_lines) {
                    is_test[line - 1] = true;
                }
            }
            k = close_k + 1;
            continue;
        }
        k += 1;
    }
    is_test
}

/// Reads the attribute group starting at `nt[k]` (`#`). Returns whether
/// it is a test attribute and the `nt` index of the closing `]`.
fn read_attribute(source: &str, tokens: &[Token], nt: &[usize], k: usize) -> (bool, usize) {
    let mut depth = 0i64;
    let mut idents: Vec<&str> = Vec::new();
    let mut m = k + 1; // at the `[`
    while m < nt.len() {
        let t = &tokens[nt[m]];
        match punct(source, t) {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if t.kind == TokenKind::Ident {
                    idents.push(t.text(source));
                }
            }
        }
        m += 1;
    }
    let is_test_attr = match idents.first() {
        Some(&"cfg") => idents[1..].contains(&"test"),
        Some(&"test") => true,
        _ => false,
    };
    (is_test_attr, m.min(nt.len().saturating_sub(1)))
}

/// Finds the last line of the item starting at `nt[from]`: the matching
/// close of its first `{`, or a `;` before any `{` (braceless item).
/// Further attribute groups between `from` and the item are part of it.
fn item_end_line(
    source: &str,
    tokens: &[Token],
    nt: &[usize],
    from: usize,
    num_lines: usize,
) -> usize {
    let mut depth = 0i64;
    let mut m = from;
    while m < nt.len() {
        let t = &tokens[nt[m]];
        match punct(source, t) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth <= 0 {
                    return t.line;
                }
            }
            Some(';') if depth == 0 => return t.line,
            _ => {}
        }
        m += 1;
    }
    num_lines
}

/// Computes the last covered line of an `allow-scope` directive on
/// `dir_line`: the end of the first item that *starts* on a later line.
fn scope_end(source: &str, tokens: &[Token], dir_line: usize, num_lines: usize) -> usize {
    let nt: Vec<usize> = (0..tokens.len()).filter(|&i| !lexer::is_trivia(tokens[i].kind)).collect();
    let from = match nt.iter().position(|&i| tokens[i].line > dir_line) {
        Some(p) => p,
        None => return dir_line,
    };
    item_end_line(source, tokens, &nt, from, num_lines)
}

// ---------------------------------------------------------------------------
// Directive parsing
// ---------------------------------------------------------------------------

/// Parses one plain line comment into a directive, if it contains
/// `sgp-lint:`. Doc comments never reach here — they are documentation
/// *about* the syntax, not uses of it.
fn parse_directive(line: usize, comment: &str) -> Option<Directive> {
    let idx = comment.find("sgp-lint:")?;
    let rest = comment[idx + "sgp-lint:".len()..].trim_start();
    let (scope, after_kw) = if let Some(r) = rest.strip_prefix("allow-file") {
        (DirectiveScope::File, r)
    } else if let Some(r) = rest.strip_prefix("allow-scope") {
        // The real end line is filled in by `scan_source`, which has the
        // token stream in hand.
        (DirectiveScope::Scope { end_line: line }, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (DirectiveScope::Line, r)
    } else {
        // Unknown directive verb — surface it with an empty rule; the
        // rules layer reports it as malformed.
        return Some(Directive {
            line,
            scope: DirectiveScope::Line,
            rule: String::new(),
            justification: String::new(),
            raw: rest.to_string(),
        });
    };
    let after_kw = after_kw.trim_start();
    let (rule, tail) = match after_kw.strip_prefix('(').and_then(|r| r.split_once(')')) {
        Some((rule, tail)) => (rule.trim().to_string(), tail),
        None => (String::new(), after_kw),
    };
    let justification = tail.trim_start().trim_start_matches([':', '-', '—']).trim().to_string();
    Some(Directive { line, scope, rule, justification, raw: rest.to_string() })
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn masked_join(src: &str) -> String {
        scan_source(src, "t.rs").masked.join("\n")
    }

    #[test]
    fn masks_line_and_block_comments() {
        let m = masked_join("let a = 1; // HashMap here\n/* panic! */ let b = 2;");
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let a = 1;"));
        assert!(m.contains("let b = 2;"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = masked_join("/* outer /* inner unwrap() */ still comment */ let x = 3;");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let x = 3;"));
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let m = masked_join(r##"let s = "HashMap"; let r = r#"thread_rng "quoted""#; let t = 1;"##);
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("thread_rng"));
        assert!(m.contains("let t = 1;"));
    }

    #[test]
    fn masks_byte_and_escaped_strings() {
        let m = masked_join(r#"let b = b"unwrap()"; let e = "esc \" unwrap()"; done();"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("done();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = masked_join("fn f<'a>(x: &'a str, c: char) -> &'a str { let _q = '\"'; x }");
        // The quote char literal must be masked; the trailing code kept.
        assert!(m.contains("fn f<'a>"));
        assert!(m.ends_with("x }"));
    }

    #[test]
    fn char_literal_with_escape() {
        let m = masked_join(r"let c = '\n'; let d = '\''; after();");
        assert!(m.contains("after();"));
    }

    #[test]
    fn comment_preserves_column_positions() {
        let src = "abc // xyz";
        let m = masked_join(src);
        assert_eq!(m.chars().count(), src.chars().count());
        assert!(m.starts_with("abc"));
    }

    #[test]
    fn cfg_test_block_is_marked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}\n";
        let s = scan_source(src, "t.rs");
        assert!(!s.is_test[0], "lib line");
        assert!(s.is_test[1] && s.is_test[2] && s.is_test[3] && s.is_test[4]);
        assert!(!s.is_test[5], "code after test mod");
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_swallow_next_block() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\npub fn real() { body(); }\n";
        let s = scan_source(src, "t.rs");
        assert!(!s.is_test[2], "fn after braceless cfg(test) item is not test code");
    }

    #[test]
    fn multi_line_test_attribute_is_recognised() {
        let src = "#[cfg(\n    test\n)]\nmod tests {\n    fn t() {}\n}\nfn real() {}\n";
        let s = scan_source(src, "t.rs");
        assert!(s.is_test[0] && s.is_test[3] && s.is_test[5]);
        assert!(!s.is_test[6], "item after the test mod");
    }

    #[test]
    fn test_attr_in_string_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\nfn f() { g(); }\n";
        let s = scan_source(src, "t.rs");
        assert!(!s.is_test[1]);
    }

    #[test]
    fn parses_line_directive_with_justification() {
        let s = scan_source(
            "// sgp-lint: allow(no-panic-in-lib): value constructed two lines up\nx.unwrap();\n",
            "t.rs",
        );
        assert_eq!(s.directives.len(), 1);
        let d = &s.directives[0];
        assert_eq!(d.scope, DirectiveScope::Line);
        assert_eq!(d.rule, "no-panic-in-lib");
        assert!(d.justification.contains("constructed"));
        assert_eq!(d.line, 1);
    }

    #[test]
    fn parses_file_directive_and_missing_justification() {
        let s = scan_source(
            "// sgp-lint: allow-file(no-wallclock-in-sim): bench-only harness\n// sgp-lint: allow(no-panic-in-lib)\n",
            "t.rs",
        );
        assert_eq!(s.directives.len(), 2);
        assert_eq!(s.directives[0].scope, DirectiveScope::File);
        assert!(s.directives[1].justification.is_empty());
    }

    #[test]
    fn allow_scope_covers_the_next_item_only() {
        let src = "\
// sgp-lint: allow-scope(no-panic-in-lib): whole fn is a rendering helper
fn render() {
    x.unwrap();
}
fn after() {}
";
        let s = scan_source(src, "t.rs");
        assert_eq!(s.directives.len(), 1);
        assert_eq!(s.directives[0].scope, DirectiveScope::Scope { end_line: 4 });
    }

    #[test]
    fn allow_scope_on_braceless_item_ends_at_semicolon() {
        let src = "// sgp-lint: allow-scope(no-hash-iteration): re-export only\nuse x::HashMap;\nfn f() {}\n";
        let s = scan_source(src, "t.rs");
        assert_eq!(s.directives[0].scope, DirectiveScope::Scope { end_line: 2 });
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        let s = scan_source(
            "//! Write `// sgp-lint: allow(x): y` to suppress.\n/// e.g. // sgp-lint: allow(z): w\n",
            "t.rs",
        );
        assert!(s.directives.is_empty());
    }

    #[test]
    fn directive_inside_string_is_not_parsed() {
        let s = scan_source("let s = \"// sgp-lint: allow(x): y\";\n", "t.rs");
        assert!(s.directives.is_empty());
    }

    #[test]
    fn directive_inside_raw_string_is_not_parsed() {
        let s = scan_source(
            "let doc = r#\"\n// sgp-lint: allow-file(no-panic-in-lib): smuggled\n\"#;\n",
            "t.rs",
        );
        assert!(s.directives.is_empty());
    }

    #[test]
    fn trailing_comment_without_newline_is_captured() {
        let s = scan_source("x.unwrap(); // sgp-lint: allow(no-panic-in-lib): provable", "t.rs");
        assert_eq!(s.directives.len(), 1);
        assert_eq!(s.directives[0].line, 1);
    }
}
