//! Cross-file semantic rules.
//!
//! These rules need the whole workspace scanned before they can run —
//! they correlate declarations in one crate with uses in another:
//!
//! * [`trace-key-registry`](crate::rules::TRACE_KEY_REGISTRY) — every
//!   key passed to a `TraceSink` method (`span_enter`, `span_exit`,
//!   `counter_add`, `histogram_record`) in the instrumented crates must
//!   be a constant from the canonical `sgp_trace::keys` module, and
//!   every constant in that module must be referenced somewhere. This
//!   pins the trace schema: a renamed or orphaned key would silently
//!   drift the byte-exact trace goldens.
//! * [`no-float-accounting`](crate::rules::NO_FLOAT_ACCOUNTING) — the
//!   simulated-time and message-accounting paths (`sgp-db` simulators,
//!   `sgp-engine` wire/placement accounting) must stay integral: float
//!   literals and `as f32`/`as f64` casts are findings. Real-valued
//!   *algorithm* state (PageRank ranks, the analytic cost model) is out
//!   of scope by design; quantile/report rendering inside scoped files
//!   carries `allow-scope` directives.
//! * [`schema-version-sync`](crate::rules::SCHEMA_VERSION_SYNC) — the
//!   schema-version constants in `sgp-trace` (JSON trace documents) and
//!   `sgp-fault` (FaultPlan) must agree with the single source of truth
//!   committed at `tests/goldens/SCHEMA_VERSIONS`.
//!
//! * [`no-unsafe`](crate::rules::NO_UNSAFE) — `unsafe` is banned in
//!   every member and every target kind (sources, tests, benches). The
//!   *only* suppression is a per-file entry in the committed audit
//!   registry `tests/goldens/UNSAFE_REGISTRY`; an entry whose file no
//!   longer contains `unsafe` is itself an error, so the registry
//!   cannot rot. (The compiler's `unsafe_code = "deny"` covers compiled
//!   targets; this rule also covers fixture corpora and keeps the audit
//!   trail reviewable in one file.)
//! * [`send-bound-registry`](crate::rules::SEND_BOUND_REGISTRY) — the
//!   threaded execution backend (`sgp-partition` `src/exec.rs`) ships
//!   values across threads, so every channel constructor there must pin
//!   its payload type with a turbofish (`bounded::<VertexWork>(1)`),
//!   and each payload type must be audited in
//!   `tests/goldens/SEND_REGISTRY` (one line per type, with the
//!   justification that it is plain owned data). Stale registry entries
//!   are errors.
//!
//! The first three charge suppressions to the same per-file
//! [`AllowTable`]s as the per-file rules, so `stale-allow`/
//! `unused-allow` bookkeeping covers them uniformly. The two
//! registry-backed rules deliberately bypass allow directives: their
//! audit trail must live in exactly one reviewable file each.

use crate::lexer::{self, Token, TokenKind};
use crate::report::{Finding, Severity};
use crate::rules::{
    AllowTable, NO_FLOAT_ACCOUNTING, NO_UNSAFE, SCHEMA_VERSION_SYNC, SEND_BOUND_REGISTRY,
    TRACE_KEY_REGISTRY,
};
use crate::workspace::{FileKind, Workspace};
use crate::ScannedEntry;
use std::collections::{BTreeMap, BTreeSet};

/// The `TraceSink`/`SpanGuardExt` methods whose first argument is a
/// trace key.
const SINK_METHODS: &[&str] =
    &["span_enter", "span_exit", "counter_add", "histogram_record", "guard_span"];

/// Crates whose library code emits trace events (the registry's crate,
/// `sgp-trace`, is exempt: its sink impls forward caller-supplied
/// names).
const CALLSITE_SCOPE: &[&str] = &["sgp-partition", "sgp-engine", "sgp-db", "sgp-core"];

/// Files whose accounting must stay integral: (package, path suffix).
/// `engine.rs`/`cost.rs` hold the paper's real-valued analytic cost
/// model and are deliberately outside this list.
const FLOAT_SCOPE: &[(&str, &str)] = &[
    ("sgp-db", "src/sim.rs"),
    ("sgp-db", "src/fault_sim.rs"),
    ("sgp-engine", "src/wire.rs"),
    ("sgp-engine", "src/placement.rs"),
    ("sgp-partition", "src/migration.rs"),
];

/// Workspace-relative path of the schema-version source of truth.
pub const SCHEMA_VERSIONS_REL: &str = "tests/goldens/SCHEMA_VERSIONS";
/// Workspace-relative path of the `unsafe` audit registry.
pub const UNSAFE_REGISTRY_REL: &str = "tests/goldens/UNSAFE_REGISTRY";
/// Workspace-relative path of the channel-payload Send audit registry.
pub const SEND_REGISTRY_REL: &str = "tests/goldens/SEND_REGISTRY";

/// (manifest key, package, constant name) for each pinned schema.
const SCHEMA_SPECS: &[(&str, &str, &str)] = &[
    ("trace", "sgp-trace", "SCHEMA_VERSION"),
    ("fault-plan", "sgp-fault", "FAULT_PLAN_SCHEMA_VERSION"),
    ("send-registry", "sgp-partition", "SEND_REGISTRY_SCHEMA_VERSION"),
    ("snapshot", "sgp-partition", "SNAPSHOT_SCHEMA_VERSION"),
    ("algorithm-surfaces", "sgp-partition", "ALGORITHM_SURFACES_SCHEMA_VERSION"),
];

/// Runs every cross-file rule.
pub fn check_all(
    ws: &Workspace,
    entries: &[ScannedEntry],
    allows: &mut [AllowTable<'_>],
    findings: &mut Vec<Finding>,
) {
    check_trace_key_registry(ws, entries, allows, findings);
    check_float_accounting(ws, entries, allows, findings);
    check_schema_version_sync(ws, entries, allows, findings);
    check_no_unsafe(ws, entries, findings);
    check_send_bound_registry(ws, entries, findings);
}

// ---------------------------------------------------------------------------
// Token-walk helpers (shared by the three rules)
// ---------------------------------------------------------------------------

fn prev_nontrivia(tokens: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !lexer::is_trivia(tokens[j].kind))
}

fn next_nontrivia(tokens: &[Token], i: usize) -> Option<usize> {
    (i + 1..tokens.len()).find(|&j| !lexer::is_trivia(tokens[j].kind))
}

fn punct_char(source: &str, t: &Token) -> Option<char> {
    (t.kind == TokenKind::Punct).then(|| source[t.start..t.end].chars().next().unwrap_or('\0'))
}

/// Extracts `(name, value, line)` for every `const NAME: … = "…"; `
/// string constant in a file.
fn string_consts(scanned: &crate::scan::ScannedFile) -> Vec<(String, String, usize)> {
    let src = &scanned.source;
    let toks = &scanned.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && toks[i].text(src) == "const" {
            if let Some(ni) = next_nontrivia(toks, i) {
                if toks[ni].kind == TokenKind::Ident {
                    let name = toks[ni].text(src).to_string();
                    let line = toks[ni].line;
                    // Scan to the terminating `;`, remembering the first
                    // string literal on the way.
                    let mut j = ni;
                    let mut value: Option<String> = None;
                    while let Some(k) = next_nontrivia(toks, j) {
                        if punct_char(src, &toks[k]) == Some(';') {
                            break;
                        }
                        if value.is_none() {
                            if let TokenKind::Str { .. } = toks[k].kind {
                                value = Some(
                                    toks[k].text(src).trim_matches(['r', '#', '"']).to_string(),
                                );
                            }
                        }
                        j = k;
                    }
                    if let Some(v) = value {
                        out.push((name, v, line));
                    }
                    i = j + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Extracts the integer value and line of `const NAME: … = <int>;`.
fn int_const(scanned: &crate::scan::ScannedFile, name: &str) -> Option<(u64, usize)> {
    let src = &scanned.source;
    let toks = &scanned.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || toks[i].text(src) != name {
            continue;
        }
        let is_const_decl = prev_nontrivia(toks, i)
            .is_some_and(|p| toks[p].kind == TokenKind::Ident && toks[p].text(src) == "const");
        if !is_const_decl {
            continue;
        }
        let line = toks[i].line;
        let mut j = i;
        while let Some(k) = next_nontrivia(toks, j) {
            if punct_char(src, &toks[k]) == Some(';') {
                break;
            }
            if let TokenKind::Number { float: false } = toks[k].kind {
                let digits: String =
                    toks[k].text(src).chars().take_while(char::is_ascii_digit).collect();
                if let Ok(v) = digits.parse::<u64>() {
                    return Some((v, line));
                }
            }
            j = k;
        }
        return None;
    }
    None
}

// ---------------------------------------------------------------------------
// trace-key-registry
// ---------------------------------------------------------------------------

fn check_trace_key_registry(
    ws: &Workspace,
    entries: &[ScannedEntry],
    allows: &mut [AllowTable<'_>],
    findings: &mut Vec<Finding>,
) {
    // Locate the canonical registry module.
    let registry_idx = entries.iter().position(|e| {
        ws.members[e.member].name == "sgp-trace" && e.scanned.rel.ends_with("src/keys.rs")
    });
    let registry: Vec<(String, String, usize)> =
        registry_idx.map(|i| string_consts(&entries[i].scanned)).unwrap_or_default();
    let registry_names: BTreeSet<&str> = registry.iter().map(|(n, _, _)| n.as_str()).collect();

    // Pass over every sink call site in the instrumented crates.
    for (ei, e) in entries.iter().enumerate() {
        let member = &ws.members[e.member];
        if !CALLSITE_SCOPE.contains(&member.name.as_str()) || e.kind != FileKind::LibSrc {
            continue;
        }
        let src = &e.scanned.source;
        let toks = &e.scanned.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokenKind::Ident || !SINK_METHODS.contains(&t.text(src)) {
                continue;
            }
            if e.scanned.is_test_line(t.line) {
                continue;
            }
            if !crate::rules::is_method_call(src, toks, i) {
                continue;
            }
            let Some(open) = next_nontrivia(toks, i) else { continue };
            // First argument, skipping reference sigils.
            let mut arg = next_nontrivia(toks, open);
            while let Some(a) = arg {
                if punct_char(src, &toks[a]) == Some('&') {
                    arg = next_nontrivia(toks, a);
                } else {
                    break;
                }
            }
            let Some(a) = arg else { continue };
            match toks[a].kind {
                TokenKind::Str { .. } => {
                    let line = toks[a].line;
                    if !allows[ei].allows(TRACE_KEY_REGISTRY, line) {
                        findings.push(Finding::new(
                            TRACE_KEY_REGISTRY,
                            Severity::Error,
                            &e.scanned.rel,
                            line,
                            format!(
                                "hardcoded trace key {} — declare it in sgp_trace::keys and pass \
                                 the constant, so the goldens-pinned schema has one source of \
                                 truth",
                                toks[a].text(src)
                            ),
                        ));
                    }
                }
                TokenKind::Ident => {
                    // Resolve a path like `keys::PARTITION_RUN` to its
                    // final segment.
                    let mut last = a;
                    let mut j = a;
                    while let (Some(c1), Some(c2)) = (
                        next_nontrivia(toks, j),
                        next_nontrivia(toks, j).and_then(|k| next_nontrivia(toks, k)),
                    ) {
                        if punct_char(src, &toks[c1]) == Some(':')
                            && punct_char(src, &toks[c2]) == Some(':')
                        {
                            if let Some(seg) = next_nontrivia(toks, c2) {
                                if toks[seg].kind == TokenKind::Ident {
                                    last = seg;
                                    j = seg;
                                    continue;
                                }
                            }
                        }
                        break;
                    }
                    let name = toks[last].text(src);
                    let line = toks[last].line;
                    if registry_idx.is_some()
                        && !registry_names.contains(name)
                        && !allows[ei].allows(TRACE_KEY_REGISTRY, line)
                    {
                        findings.push(Finding::new(
                            TRACE_KEY_REGISTRY,
                            Severity::Error,
                            &e.scanned.rel,
                            line,
                            format!(
                                "trace key argument `{name}` does not name a sgp_trace::keys \
                                 constant — route every key through the registry"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    // Every registry constant must be referenced somewhere outside the
    // registry module itself (call sites, re-exports, or tests).
    let Some(ri) = registry_idx else { return };
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for (ei, e) in entries.iter().enumerate() {
        if ei == ri {
            continue;
        }
        let src = &e.scanned.source;
        for t in &e.scanned.tokens {
            if t.kind == TokenKind::Ident {
                if let Some(name) = registry_names.get(t.text(src)) {
                    used.insert(name);
                }
            }
        }
    }
    let rel = entries[ri].scanned.rel.clone();
    for (name, value, line) in &registry {
        if !used.contains(name.as_str()) && !allows[ri].allows(TRACE_KEY_REGISTRY, *line) {
            findings.push(Finding::new(
                TRACE_KEY_REGISTRY,
                Severity::Error,
                &rel,
                *line,
                format!(
                    "registry key `{name}` (\"{value}\") is never referenced by any crate — \
                     delete it or wire up the instrumentation it promises"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// no-float-accounting
// ---------------------------------------------------------------------------

fn check_float_accounting(
    ws: &Workspace,
    entries: &[ScannedEntry],
    allows: &mut [AllowTable<'_>],
    findings: &mut Vec<Finding>,
) {
    for (ei, e) in entries.iter().enumerate() {
        let member = &ws.members[e.member];
        let scoped = FLOAT_SCOPE
            .iter()
            .any(|(pkg, suffix)| member.name == *pkg && e.scanned.rel.ends_with(suffix));
        if !scoped {
            continue;
        }
        let src = &e.scanned.source;
        let toks = &e.scanned.tokens;
        let mut reported: BTreeSet<usize> = BTreeSet::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            let is_float_literal = matches!(t.kind, TokenKind::Number { float: true });
            let is_float_cast = t.kind == TokenKind::Ident
                && t.text(src) == "as"
                && next_nontrivia(toks, i).is_some_and(|n| {
                    toks[n].kind == TokenKind::Ident && matches!(toks[n].text(src), "f32" | "f64")
                });
            if !is_float_literal && !is_float_cast {
                continue;
            }
            let line = t.line;
            if e.scanned.is_test_line(line) || reported.contains(&line) {
                continue;
            }
            if !allows[ei].allows(NO_FLOAT_ACCOUNTING, line) {
                reported.insert(line);
                let what =
                    if is_float_cast { "an `as f32`/`as f64` cast" } else { "a float literal" };
                findings.push(Finding::new(
                    NO_FLOAT_ACCOUNTING,
                    Severity::Error,
                    &e.scanned.rel,
                    line,
                    format!(
                        "{what} in a simulated-time/message-accounting path — accounting must \
                         stay integral (ticks, ns, bytes); quantile/report rendering belongs \
                         under a scoped allow"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// schema-version-sync
// ---------------------------------------------------------------------------

fn check_schema_version_sync(
    ws: &Workspace,
    entries: &[ScannedEntry],
    allows: &mut [AllowTable<'_>],
    findings: &mut Vec<Finding>,
) {
    let Ok(text) = std::fs::read_to_string(ws.root.join(SCHEMA_VERSIONS_REL)) else {
        // Workspaces without a goldens manifest (e.g. ad-hoc fixture
        // trees) simply don't pin schema versions.
        return;
    };
    let mut pinned: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = line
            .split_once('=')
            .and_then(|(k, v)| v.trim().parse::<u64>().ok().map(|v| (k.trim(), v)));
        match parsed {
            Some((key, value)) if SCHEMA_SPECS.iter().any(|(k, _, _)| *k == key) => {
                pinned.insert(key, (value, idx + 1));
            }
            _ => findings.push(Finding::new(
                SCHEMA_VERSION_SYNC,
                Severity::Error,
                SCHEMA_VERSIONS_REL,
                idx + 1,
                format!("unrecognised schema pin `{line}` — expected `<name>=<integer>` with a known name"),
            )),
        }
    }

    for (key, pkg, const_name) in SCHEMA_SPECS {
        let found = entries.iter().enumerate().find_map(|(ei, e)| {
            (ws.members[e.member].name == *pkg && e.kind == FileKind::LibSrc)
                .then(|| int_const(&e.scanned, const_name).map(|(v, l)| (ei, v, l)))
                .flatten()
        });
        match (found, pinned.get(key)) {
            (Some((ei, value, line)), Some(&(want, _))) => {
                if value != want && !allows[ei].allows(SCHEMA_VERSION_SYNC, line) {
                    let rel = entries[ei].scanned.rel.clone();
                    findings.push(Finding::new(
                        SCHEMA_VERSION_SYNC,
                        Severity::Error,
                        &rel,
                        line,
                        format!(
                            "`{const_name}` is {value} but {SCHEMA_VERSIONS_REL} pins `{key}={want}` \
                             — bump the pin and re-bless the goldens in the same change, or revert \
                             the constant"
                        ),
                    ));
                }
            }
            (Some((ei, value, _)), None) => {
                let rel = entries[ei].scanned.rel.clone();
                findings.push(Finding::new(
                    SCHEMA_VERSION_SYNC,
                    Severity::Error,
                    SCHEMA_VERSIONS_REL,
                    0,
                    format!(
                        "missing pin `{key}={value}` for `{pkg}::{const_name}` (declared in {rel})"
                    ),
                ));
            }
            (None, Some(&(want, mline))) => {
                // A pin exists but the constant is gone: only meaningful
                // when the crate itself is present in this workspace.
                if ws.members.iter().any(|m| m.name == *pkg) {
                    findings.push(Finding::new(
                        SCHEMA_VERSION_SYNC,
                        Severity::Error,
                        SCHEMA_VERSIONS_REL,
                        mline,
                        format!(
                            "pin `{key}={want}` has no matching `{const_name}` constant in {pkg}"
                        ),
                    ));
                }
            }
            (None, None) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Registry files (shared by no-unsafe and send-bound-registry)
// ---------------------------------------------------------------------------

/// Parses a `<key> = <justification>` registry file at `rel` under the
/// workspace root. `#` comments and blank lines are skipped; malformed
/// entries (no `=`, empty key or empty justification) become findings
/// under `rule`. A missing file is an empty registry, not an error.
pub(crate) fn parse_registry(
    ws: &Workspace,
    rel: &str,
    rule: &'static str,
    findings: &mut Vec<Finding>,
) -> Vec<(String, usize)> {
    let Ok(text) = std::fs::read_to_string(ws.root.join(rel)) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once('=') {
            Some((key, just)) if !key.trim().is_empty() && !just.trim().is_empty() => {
                entries.push((key.trim().to_string(), idx + 1));
            }
            _ => findings.push(Finding::new(
                rule,
                Severity::Error,
                rel,
                idx + 1,
                format!(
                    "malformed registry entry `{line}` — expected `<key> = <justification>` with \
                     both sides non-empty"
                ),
            )),
        }
    }
    entries
}

// ---------------------------------------------------------------------------
// no-unsafe
// ---------------------------------------------------------------------------

fn check_no_unsafe(ws: &Workspace, entries: &[ScannedEntry], findings: &mut Vec<Finding>) {
    let registry = parse_registry(ws, UNSAFE_REGISTRY_REL, NO_UNSAFE, findings);
    let mut used = vec![false; registry.len()];
    for e in entries {
        let src = &e.scanned.source;
        let mut reported: BTreeSet<usize> = BTreeSet::new();
        for t in &e.scanned.tokens {
            if t.kind != TokenKind::Ident || t.text(src) != "unsafe" {
                continue;
            }
            let mut registered = false;
            for (i, (key, _)) in registry.iter().enumerate() {
                if key == &e.scanned.rel {
                    used[i] = true;
                    registered = true;
                }
            }
            if registered || reported.contains(&t.line) {
                continue;
            }
            reported.insert(t.line);
            findings.push(Finding::new(
                NO_UNSAFE,
                Severity::Error,
                &e.scanned.rel,
                t.line,
                format!(
                    "`unsafe` outside the audit registry — soundness arguments live in \
                     {UNSAFE_REGISTRY_REL}; add `{} = <why this is sound>` there after review, \
                     or rewrite without unsafe",
                    e.scanned.rel
                ),
            ));
        }
    }
    for (i, (key, line)) in registry.iter().enumerate() {
        if !used[i] {
            findings.push(Finding::new(
                NO_UNSAFE,
                Severity::Error,
                UNSAFE_REGISTRY_REL,
                *line,
                format!(
                    "stale registry entry `{key}` — that file no longer contains `unsafe`, so \
                     delete the entry (the audit trail cannot rot)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// send-bound-registry
// ---------------------------------------------------------------------------

/// Channel constructors whose payload type crosses a thread boundary.
const CHANNEL_CTORS: &[&str] = &["channel", "bounded", "unbounded"];

/// Type names that never need a registry entry: std building blocks
/// whose Send-ness is the compiler's problem, plus path/qualifier
/// segments. The registry audits the *workspace* payload types.
const SEND_EXEMPT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str", "String", "Vec", "VecDeque", "Option", "Box", "Arc", "Result",
];

fn check_send_bound_registry(
    ws: &Workspace,
    entries: &[ScannedEntry],
    findings: &mut Vec<Finding>,
) {
    let registry = parse_registry(ws, SEND_REGISTRY_REL, SEND_BOUND_REGISTRY, findings);
    let mut used = vec![false; registry.len()];
    let mut any_designated = false;

    for e in entries {
        let member = &ws.members[e.member];
        if !crate::rules::is_exec_backend(member, &e.scanned.rel) {
            continue;
        }
        any_designated = true;
        let src = &e.scanned.source;
        let toks = &e.scanned.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokenKind::Ident
                || !CHANNEL_CTORS.contains(&t.text(src))
                || e.scanned.is_test_line(t.line)
            {
                continue;
            }
            let n1 = next_nontrivia(toks, i);
            // `name(…)` with no turbofish: the payload type is inferred,
            // so the registry has nothing to audit — reject.
            if n1.is_some_and(|j| punct_char(src, &toks[j]) == Some('(')) {
                findings.push(Finding::new(
                    SEND_BOUND_REGISTRY,
                    Severity::Error,
                    &e.scanned.rel,
                    t.line,
                    format!(
                        "channel constructor `{}(…)` without an explicit payload turbofish — \
                         write `{}::<T>(…)` so {SEND_REGISTRY_REL} can audit `T`",
                        t.text(src),
                        t.text(src)
                    ),
                ));
                continue;
            }
            // `name::<…>(…)`: audit every workspace type named in the
            // turbofish. `name::ident` (a path segment, e.g. the
            // `channel` in `crossbeam::channel::bounded`) is skipped —
            // the final constructor segment gets checked on its own.
            let n2 = n1.and_then(|j| next_nontrivia(toks, j));
            let n3 = n2.and_then(|j| next_nontrivia(toks, j));
            let is_turbofish = n1.is_some_and(|j| punct_char(src, &toks[j]) == Some(':'))
                && n2.is_some_and(|j| punct_char(src, &toks[j]) == Some(':'))
                && n3.is_some_and(|j| punct_char(src, &toks[j]) == Some('<'));
            if !is_turbofish {
                continue;
            }
            let mut depth = 1usize;
            let mut j = n3;
            while let Some(k) = j.and_then(|j| next_nontrivia(toks, j)) {
                match punct_char(src, &toks[k]) {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if toks[k].kind == TokenKind::Ident {
                            let name = toks[k].text(src);
                            // A segment followed by `::` is a path
                            // qualifier, not the payload type itself.
                            let qualifier = next_nontrivia(toks, k)
                                .is_some_and(|q| punct_char(src, &toks[q]) == Some(':'));
                            if !qualifier && !SEND_EXEMPT_TYPES.contains(&name) {
                                let mut registered = false;
                                for (ri, (key, _)) in registry.iter().enumerate() {
                                    if key == name {
                                        used[ri] = true;
                                        registered = true;
                                    }
                                }
                                if !registered {
                                    findings.push(Finding::new(
                                        SEND_BOUND_REGISTRY,
                                        Severity::Error,
                                        &e.scanned.rel,
                                        toks[k].line,
                                        format!(
                                            "channel payload type `{name}` is not audited in \
                                             {SEND_REGISTRY_REL} — verify it is plain owned data \
                                             (no Rc/RefCell/raw pointers) and register it"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
                j = Some(k);
            }
        }
    }

    // Stale entries only mean something where designated files exist at
    // all (fixture trees without an exec backend pin nothing).
    if any_designated {
        for (i, (key, line)) in registry.iter().enumerate() {
            if !used[i] {
                findings.push(Finding::new(
                    SEND_BOUND_REGISTRY,
                    Severity::Error,
                    SEND_REGISTRY_REL,
                    *line,
                    format!(
                        "stale Send-registry entry `{key}` — no channel in the execution backend \
                         carries that payload any more; delete the entry"
                    ),
                ));
            }
        }
    }
}
