//! # sgp-xtask
//!
//! The workspace's in-tree static-analysis pass. The headline claim of
//! this repository (EXPERIMENTS.md) is that every table and figure is
//! reproduced **bit-for-bit** from one deterministic run; `sgp-xtask
//! lint` is the tool that statically enforces the invariants behind that
//! claim instead of trusting convention:
//!
//! * [`lexer`] — a hand-rolled, dependency-free Rust lexer (raw strings,
//!   nested block comments, char-vs-lifetime disambiguation, doc
//!   comments, float-aware number literals) producing a lossless token
//!   stream with byte offsets and line/column spans.
//! * [`scan`] — derives everything the rules consume from one lex:
//!   tokens, masked lines, `#[cfg(test)]` spans, and `sgp-lint:`
//!   directives anchored to comment tokens.
//! * [`rules`] — the per-file rule catalogue:
//!   * `no-hash-iteration` — `HashMap`/`HashSet` (nondeterministic
//!     iteration order) are banned in the determinism-scoped crates;
//!     use `BTreeMap`/`BTreeSet` or sort before iterating.
//!   * `no-panic-in-lib` — `unwrap()`/`expect()`/`panic!`/`todo!`/
//!     `unimplemented!`/`dbg!` in non-test library code must be
//!     rewritten as `Result` or carry a justified allow directive.
//!   * `crate-attr-policy` — every crate root must carry
//!     `#![deny(unsafe_code)]` and `#![warn(missing_docs)]`.
//!   * `no-wallclock-in-sim` — `std::time::Instant`, `SystemTime` and
//!     `thread_rng` are forbidden inside the deterministic simulators.
//!   * `thread-discipline` — thread, channel and lock primitives
//!     (`spawn`, `channel`, `Mutex`, `crossbeam`, …) are confined to
//!     the designated execution backend (`sgp-partition`
//!     `src/exec.rs`); everywhere else they need a justified allow.
//!   * `atomic-ordering-policy` — atomic orderings are written
//!     `Ordering::X` at the call site, and anything stronger than
//!     `Relaxed` must justify its acquire/release pairing.
//!   * `workspace-dep-hygiene` — member `Cargo.toml`s must inherit
//!     dependencies and opt into the shared `[workspace.lints]` table.
//!   * `no-alloc-in-place-loop` — advisory (warning): Vec/String
//!     construction inside a partitioner `fn place` body allocates per
//!     streamed element; hoist a scratch buffer into the partitioner
//!     struct (DESIGN.md §13) or carry a justified allow.
//! * [`crossfile`] — the whole-workspace semantic rules:
//!   `trace-key-registry` (every `TraceSink` key is a `sgp_trace::keys`
//!   constant, every constant is used), `no-float-accounting` (integral
//!   simulated time and message accounting), `schema-version-sync`
//!   (schema constants agree with `tests/goldens/SCHEMA_VERSIONS`),
//!   `no-unsafe` (`unsafe` anywhere — tests and benches included —
//!   requires a per-file entry in `tests/goldens/UNSAFE_REGISTRY`), and
//!   `send-bound-registry` (channel payload types in the execution
//!   backend are pinned by turbofish and audited in
//!   `tests/goldens/SEND_REGISTRY`; stale registry entries are errors).
//! * [`manifest`] — a minimal TOML section reader for the hygiene rule.
//! * [`report`] — findings, text diagnostics with `file:line` spans,
//!   stable machine-readable JSON, and a SARIF 2.1.0 emitter for CI
//!   annotation.
//! * [`trace_summary`] — the `sgp-xtask trace-summary` renderer for
//!   trace dumps written by `experiments --trace <path>`.
//! * [`bench_check`] — the `sgp-xtask bench-check` throughput gate:
//!   compares a fresh `BENCH_ingest.json` against the committed copy at
//!   the repo root and fails on a >20% `elements_per_sec` regression on
//!   any `(algorithm, mode)` pair.
//!
//! ## Allow directives
//!
//! A violation is suppressed by a justified directive in a plain line
//! comment (doc comments never carry directives):
//!
//! ```text
//! // sgp-lint: allow(<rule>): <justification>        same or next line
//! // sgp-lint: allow-scope(<rule>): <justification>  next brace-delimited item
//! // sgp-lint: allow-file(<rule>): <justification>   the whole file
//! ```
//!
//! The justification is mandatory; a directive without one is itself a
//! `bad-allow-directive` error and does **not** suppress the finding.
//! A line-scoped allow whose rule no longer fires on its span is a
//! `stale-allow` **error** (the allowlist cannot rot silently);
//! scope/file allows that suppress nothing are `unused-allow` warnings.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bench_check;
pub mod callgraph;
pub mod crossfile;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod report;
pub mod rules;
pub mod scan;
pub mod semantic;
pub mod symbols;
pub mod trace_summary;
pub mod workspace;

pub use report::{render_json, render_sarif, render_text, Finding, LintReport, Severity};
pub use trace_summary::summarize;

use rules::AllowTable;
use std::path::PathBuf;
use workspace::FileKind;

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Treat warnings as errors for the exit code.
    pub strict: bool,
    /// When set, only findings in these workspace-relative files are
    /// reported (the `--diff <git-ref>` fast path). The whole workspace
    /// is still scanned — cross-file rules need it — so a finding in an
    /// unchanged file is *suppressed from the report*, not undetected;
    /// the full-workspace strict run remains the merge gate. Findings of
    /// the cross-file exhaustiveness rule are retained whenever any of
    /// its input files (surfaces, registry module, fallback registry)
    /// changed, since the finding anchors at the enum declaration, not
    /// at the file that drifted.
    pub only_files: Option<Vec<String>>,
    /// When set, the reachability call graph is written here as
    /// Graphviz DOT after the run (`--emit-callgraph`).
    pub emit_callgraph: Option<PathBuf>,
}

impl LintConfig {
    /// A config rooted at `root` with default settings.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig { root: root.into(), strict: false, only_files: None, emit_callgraph: None }
    }
}

/// One scanned source file, paired with the index of its owning member
/// in [`workspace::Workspace::members`]. Cross-file rules iterate these.
pub struct ScannedEntry {
    /// Index into `ws.members`.
    pub member: usize,
    /// Target classification of the file.
    pub kind: FileKind,
    /// The scan result (tokens, masked lines, test spans, directives).
    pub scanned: scan::ScannedFile,
}

/// Runs the full rule catalogue over the workspace at `cfg.root`.
///
/// The run is two-pass: every source file is scanned first (pass 1), so
/// the cross-file rules in [`crossfile`] can correlate declarations and
/// uses across crates (pass 2). Allow-directive bookkeeping spans both
/// passes and is finalised last, which is what makes `stale-allow`
/// sound: a directive is stale only if *no* rule — per-file or
/// cross-file — charged a suppression to it.
///
/// Returns an error string only for environmental failures (unreadable
/// root, missing root manifest); findings — including broken fixture
/// code — are data, not errors.
pub fn run_lint(cfg: &LintConfig) -> Result<LintReport, String> {
    let ws = workspace::discover(&cfg.root)?;
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    let mut manifests_scanned = 0usize;

    rules::check_root_manifest(&ws, &mut findings);
    manifests_scanned += 1;

    // Pass 1: manifests, crate roots, and a full scan of every file.
    let mut entries: Vec<ScannedEntry> = Vec::new();
    for (mi, member) in ws.members.iter().enumerate() {
        rules::check_member_manifest(member, &mut findings);
        manifests_scanned += 1;
        rules::check_crate_root_attrs(member, &mut findings);
        for file in &member.files {
            match scan::scan_file(&file.path, &file.rel) {
                Ok(scanned) => {
                    files_scanned += 1;
                    entries.push(ScannedEntry { member: mi, kind: file.kind, scanned });
                }
                Err(e) => findings.push(Finding::io_error(&file.rel, &e)),
            }
        }
    }

    // Pass 2: per-file rules, then cross-file rules, sharing one allow
    // table per file.
    let mut allows: Vec<AllowTable<'_>> =
        entries.iter().map(|e| AllowTable::new(&e.scanned)).collect();
    for (i, e) in entries.iter().enumerate() {
        rules::check_source_file(
            &ws.members[e.member],
            e.kind,
            &e.scanned,
            &mut allows[i],
            &mut findings,
        );
    }
    crossfile::check_all(&ws, &entries, &mut allows, &mut findings);

    // Semantic tier: parse every file into items, build the symbol
    // table and call graph, then run the reachability/exhaustiveness/
    // span-balance families (DESIGN.md §6).
    let symbols = symbols::SymbolTable::build(&ws, &entries);
    let graph = callgraph::CallGraph::build(&symbols, &entries);
    semantic::check_all(&ws, &entries, &symbols, &graph, &mut allows, &mut findings);
    if let Some(path) = &cfg.emit_callgraph {
        let roots = semantic::entry_points(&ws, &entries, &symbols);
        std::fs::write(path, graph.to_dot(&symbols, &roots))
            .map_err(|e| format!("cannot write call graph to {}: {e}", path.display()))?;
    }

    for table in allows {
        table.finish(&mut findings);
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    if let Some(only) = &cfg.only_files {
        let keep: std::collections::BTreeSet<&str> = only.iter().map(String::as_str).collect();
        // The exhaustiveness rule is whole-workspace: a changed surface
        // file produces findings anchored at the enum declaration, so
        // those findings survive the diff filter whenever any of the
        // rule's inputs changed.
        let exhaustiveness_live = only.iter().any(|f| semantic::is_exhaustiveness_input(f));
        findings.retain(|f| {
            keep.contains(f.file.as_str())
                || (exhaustiveness_live && f.rule == rules::ALGORITHM_SURFACE_EXHAUSTIVENESS)
        });
    }
    Ok(LintReport { findings, files_scanned, manifests_scanned, strict: cfg.strict })
}
