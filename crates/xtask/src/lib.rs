//! # sgp-xtask
//!
//! The workspace's in-tree static-analysis pass. The headline claim of
//! this repository (EXPERIMENTS.md) is that every table and figure is
//! reproduced **bit-for-bit** from one deterministic run; `sgp-xtask
//! lint` is the tool that statically enforces the invariants behind that
//! claim instead of trusting convention:
//!
//! * [`rules`] — the rule catalogue:
//!   * `no-hash-iteration` — `HashMap`/`HashSet` (nondeterministic
//!     iteration order) are banned in the determinism-scoped crates
//!     (`sgp-engine`, `sgp-db`, `sgp-core`, `sgp-partition`,
//!     `sgp-trace`); use `BTreeMap`/`BTreeSet` or sort before
//!     iterating.
//!   * `no-panic-in-lib` — `unwrap()`/`expect()`/`panic!`/`todo!`/
//!     `unimplemented!`/`dbg!` in non-test library code must be
//!     rewritten as `Result` or carry a justified allow directive.
//!   * `crate-attr-policy` — every crate root must carry
//!     `#![deny(unsafe_code)]` and `#![warn(missing_docs)]`.
//!   * `no-wallclock-in-sim` — `std::time::Instant`, `SystemTime` and
//!     `thread_rng` are forbidden inside the deterministic simulators;
//!     only the bench harness's wall-clock footers are exempt (the
//!     `sgp-bench` crate and binaries are out of scope).
//!   * `workspace-dep-hygiene` — member `Cargo.toml`s must inherit
//!     dependencies (`workspace = true`, no inline versions) and opt
//!     into the shared `[workspace.lints]` table.
//! * [`scan`] — a lightweight Rust scanner that masks string literals
//!   and comments (so rule patterns never false-positive on docs) and
//!   tracks `#[cfg(test)]` spans.
//! * [`manifest`] — a minimal TOML section reader for the hygiene rule.
//! * [`report`] — findings, text diagnostics with `file:line` spans, and
//!   stable machine-readable JSON.
//! * [`trace_summary`] — the `sgp-xtask trace-summary` renderer for
//!   trace dumps written by `experiments --trace <path>` (top spans by
//!   self cost, per-machine load, counter totals, histogram quantiles).
//!
//! ## Allow directives
//!
//! A violation is suppressed by a justified directive in a line comment:
//!
//! ```text
//! // sgp-lint: allow(<rule>): <justification>       (this or the next line)
//! // sgp-lint: allow-file(<rule>): <justification>  (the whole file)
//! ```
//!
//! The justification is mandatory; a directive without one is itself a
//! `bad-allow-directive` error and does **not** suppress the finding.
//! Directives that never fire are reported as `unused-allow` warnings.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod report;
pub mod rules;
pub mod scan;
pub mod trace_summary;
pub mod workspace;

pub use report::{render_json, render_text, Finding, LintReport, Severity};
pub use trace_summary::summarize;

use std::path::PathBuf;

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Treat warnings as errors for the exit code.
    pub strict: bool,
}

impl LintConfig {
    /// A config rooted at `root` with default settings.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig { root: root.into(), strict: false }
    }
}

/// Runs the full rule catalogue over the workspace at `cfg.root`.
///
/// Returns an error string only for environmental failures (unreadable
/// root, missing root manifest); findings — including broken fixture
/// code — are data, not errors.
pub fn run_lint(cfg: &LintConfig) -> Result<LintReport, String> {
    let ws = workspace::discover(&cfg.root)?;
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    let mut manifests_scanned = 0usize;

    rules::check_root_manifest(&ws, &mut findings);
    manifests_scanned += 1;

    for member in &ws.members {
        rules::check_member_manifest(member, &mut findings);
        manifests_scanned += 1;
        rules::check_crate_root_attrs(member, &mut findings);
        for file in &member.files {
            let scanned = match scan::scan_file(&file.path, &file.rel) {
                Ok(s) => s,
                Err(e) => {
                    findings.push(Finding::io_error(&file.rel, &e));
                    continue;
                }
            };
            files_scanned += 1;
            rules::check_source_file(member, file, &scanned, &mut findings);
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Ok(LintReport { findings, files_scanned, manifests_scanned, strict: cfg.strict })
}
