//! A hand-rolled, dependency-free Rust lexer.
//!
//! The lexer turns a source file into a flat, *lossless* token stream:
//! every byte of the input belongs to exactly one token, tokens carry
//! byte offsets plus 1-based line/column spans, and concatenating the
//! token texts reproduces the file byte-for-byte (enforced by the
//! `lexer_roundtrip` integration test over every `.rs` file in the
//! workspace).
//!
//! It understands the lexical shapes that defeat line-regex scanners:
//!
//! * raw strings with any number of hashes (`r#"…"#`, `br##"…"##`),
//!   including multi-line bodies containing quotes and hashes;
//! * byte strings and C strings (`b"…"`, `c"…"`);
//! * nested block comments (`/* a /* b */ c */`) and block doc
//!   comments (`/** … */`, `/*! … */`);
//! * line comments vs. outer/inner doc comments (`//`, `///`, `//!`,
//!   and the non-doc `////…` form);
//! * char literals vs. lifetimes (`'a'` vs `'a`), escaped chars
//!   (`'\''`, `'\n'`), byte chars (`b'x'`);
//! * raw identifiers (`r#match`);
//! * numeric literals, with float detection (`1.5`, `1.`, `1e9`,
//!   `2.5e-3`, `1f64`) that does not misfire on hex digits
//!   (`0x1f32`), ranges (`1..2`), method calls on integers
//!   (`1.max(2)`), or tuple indexing (`x.0`).
//!
//! It deliberately does **not** parse: rules pattern-match over the
//! token stream (see [`crate::rules`]), which is exactly enough to
//! anchor findings and allow directives to tokens instead of lines.

/// Doc-comment flavour of a comment token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocStyle {
    /// A plain (non-doc) comment.
    None,
    /// An outer doc comment (`///` or `/**`).
    Outer,
    /// An inner doc comment (`//!` or `/*!`).
    Inner,
}

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (including newlines).
    Whitespace,
    /// A `//`-style comment, up to but excluding the newline.
    LineComment(DocStyle),
    /// A `/* … */` comment (possibly nested; `terminated` is false when
    /// the file ends inside it).
    BlockComment {
        /// Doc flavour (`/**` outer, `/*!` inner).
        doc: DocStyle,
        /// Whether the closing `*/` was found.
        terminated: bool,
    },
    /// A string literal: `"…"`, `b"…"`, `c"…"`, `r"…"`, `r#"…"#`,
    /// `br#"…"#` — `raw` distinguishes the no-escape forms.
    Str {
        /// Raw string (no escape processing, hash-delimited).
        raw: bool,
        /// Whether the closing delimiter was found.
        terminated: bool,
    },
    /// A char or byte-char literal (`'x'`, `'\n'`, `b'x'`).
    Char {
        /// Whether the closing quote was found.
        terminated: bool,
    },
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A numeric literal; `float` is true for `1.5`, `1.`, `1e9`,
    /// `1f64` and friends.
    Number {
        /// Whether the literal is floating-point.
        float: bool,
    },
    /// A single punctuation character (`.`, `{`, `!`, …).
    Punct,
}

/// One token with its byte span and source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset past the last byte (exclusive).
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column (in characters) of the first byte.
    pub col: usize,
}

impl Token {
    /// The token's text inside `source` (the string it was lexed from).
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// Lexes `source` into a lossless token stream.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s str,
    chars: Vec<(usize, char)>,
    /// Index into `chars` of the next unconsumed character.
    pos: usize,
    line: usize,
    col: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Byte offset of the character at `self.pos + ahead` (or EOF).
    fn offset(&self, ahead: usize) -> usize {
        self.chars.get(self.pos + ahead).map_or(self.src.len(), |&(o, _)| o)
    }

    /// Consumes `n` characters, updating line/column bookkeeping.
    fn bump(&mut self, n: usize) {
        for _ in 0..n {
            if let Some(&(_, c)) = self.chars.get(self.pos) {
                self.pos += 1;
                if c == '\n' {
                    self.line += 1;
                    self.col = 1;
                } else {
                    self.col += 1;
                }
            }
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.chars.len() {
            let start = self.offset(0);
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind();
            let end = self.offset(0);
            debug_assert!(end > start, "lexer must always make progress");
            self.tokens.push(Token { kind, start, end, line, col });
        }
        self.tokens
    }

    /// Lexes one token starting at the current position and returns its
    /// kind; the position is left just past the token.
    fn next_kind(&mut self) -> TokenKind {
        let c = self.peek(0).unwrap_or('\0');
        if c.is_whitespace() {
            let mut n = 1;
            while self.peek(n).is_some_and(char::is_whitespace) {
                n += 1;
            }
            self.bump(n);
            return TokenKind::Whitespace;
        }
        if c == '/' && self.peek(1) == Some('/') {
            return self.line_comment();
        }
        if c == '/' && self.peek(1) == Some('*') {
            return self.block_comment();
        }
        if c == '"' {
            return self.string(0, false);
        }
        if c == '\'' {
            return self.char_or_lifetime();
        }
        if is_ident_start(c) {
            return self.ident_or_prefixed_literal(c);
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        self.bump(1);
        TokenKind::Punct
    }

    fn line_comment(&mut self) -> TokenKind {
        let doc = if self.peek(2) == Some('/') && self.peek(3) != Some('/') {
            DocStyle::Outer
        } else if self.peek(2) == Some('!') {
            DocStyle::Inner
        } else {
            DocStyle::None
        };
        let mut n = 2;
        while self.peek(n).is_some_and(|c| c != '\n') {
            n += 1;
        }
        self.bump(n);
        TokenKind::LineComment(doc)
    }

    fn block_comment(&mut self) -> TokenKind {
        let doc = if self.peek(2) == Some('*')
            && self.peek(3) != Some('*')
            && self.peek(3) != Some('/')
        {
            DocStyle::Outer
        } else if self.peek(2) == Some('!') {
            DocStyle::Inner
        } else {
            DocStyle::None
        };
        let mut n = 2;
        let mut depth = 1u32;
        let terminated = loop {
            match (self.peek(n), self.peek(n + 1)) {
                (Some('*'), Some('/')) => {
                    n += 2;
                    depth -= 1;
                    if depth == 0 {
                        break true;
                    }
                }
                (Some('/'), Some('*')) => {
                    n += 2;
                    depth += 1;
                }
                (Some(_), _) => n += 1,
                (None, _) => break false,
            }
        };
        self.bump(n);
        TokenKind::BlockComment { doc, terminated }
    }

    /// Lexes `"…"` with escapes. `prefix` characters (the `b` of a byte
    /// string, already validated) are consumed along with the literal.
    fn string(&mut self, prefix: usize, _byte: bool) -> TokenKind {
        let mut n = prefix + 1; // past the opening quote
        let terminated = loop {
            match self.peek(n) {
                Some('\\') => n += if self.peek(n + 1).is_some() { 2 } else { 1 },
                Some('"') => {
                    n += 1;
                    break true;
                }
                Some(_) => n += 1,
                None => break false,
            }
        };
        self.bump(n);
        TokenKind::Str { raw: false, terminated }
    }

    /// Lexes `r#*"…"#*` (prefix = chars before the first `#`/`"`, i.e.
    /// 1 for `r`, 2 for `br`).
    fn raw_string(&mut self, prefix: usize) -> TokenKind {
        let mut n = prefix;
        let mut hashes = 0usize;
        while self.peek(n) == Some('#') {
            hashes += 1;
            n += 1;
        }
        n += 1; // the opening quote (caller validated it)
        let terminated = loop {
            match self.peek(n) {
                Some('"') => {
                    if (0..hashes).all(|h| self.peek(n + 1 + h) == Some('#')) {
                        n += 1 + hashes;
                        break true;
                    }
                    n += 1;
                }
                Some(_) => n += 1,
                None => break false,
            }
        };
        self.bump(n);
        TokenKind::Str { raw: true, terminated }
    }

    /// Disambiguates `'a'` (char), `'\n'` (char), `'a` (lifetime).
    fn char_or_lifetime(&mut self) -> TokenKind {
        match self.peek(1) {
            Some('\\') => self.char_literal(0),
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                if self.peek(2) == Some('\'') {
                    self.char_literal(0)
                } else {
                    // `'ident` — a lifetime or loop label.
                    let mut n = 2;
                    while self.peek(n).is_some_and(is_ident_continue) {
                        n += 1;
                    }
                    self.bump(n);
                    TokenKind::Lifetime
                }
            }
            _ => self.char_literal(0),
        }
    }

    /// Lexes a (possibly byte-) char literal; `prefix` is 1 for `b'x'`.
    fn char_literal(&mut self, prefix: usize) -> TokenKind {
        let mut n = prefix + 1;
        let terminated = loop {
            match self.peek(n) {
                Some('\\') => n += if self.peek(n + 1).is_some() { 2 } else { 1 },
                Some('\'') => {
                    n += 1;
                    break true;
                }
                Some('\n') | None => break false,
                Some(_) => n += 1,
            }
        };
        self.bump(n);
        TokenKind::Char { terminated }
    }

    /// An identifier, keyword, raw identifier, or a string/char literal
    /// with an identifier-like prefix (`r"…"`, `b'x'`, `br#"…"#`,
    /// `c"…"`).
    fn ident_or_prefixed_literal(&mut self, first: char) -> TokenKind {
        match first {
            'r' => {
                if self.peek(1) == Some('"')
                    || (self.peek(1) == Some('#') && self.raw_quote_after(2))
                {
                    return self.raw_string(1);
                }
                if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) {
                    // Raw identifier `r#match`.
                    let mut n = 3;
                    while self.peek(n).is_some_and(is_ident_continue) {
                        n += 1;
                    }
                    self.bump(n);
                    return TokenKind::Ident;
                }
            }
            'b' => {
                if self.peek(1) == Some('"') {
                    return self.string(1, true);
                }
                if self.peek(1) == Some('\'') {
                    return self.char_literal(1);
                }
                if self.peek(1) == Some('r')
                    && (self.peek(2) == Some('"')
                        || (self.peek(2) == Some('#') && self.raw_quote_after(3)))
                {
                    return self.raw_string(2);
                }
            }
            'c' => {
                if self.peek(1) == Some('"') {
                    return self.string(1, false);
                }
            }
            _ => {}
        }
        let mut n = 1;
        while self.peek(n).is_some_and(is_ident_continue) {
            n += 1;
        }
        self.bump(n);
        TokenKind::Ident
    }

    /// True when, starting at `ahead` (just past the first `#`), zero
    /// or more further hashes are followed by a quote — i.e. the `#`
    /// run belongs to a raw-string opener, not a raw identifier.
    fn raw_quote_after(&self, mut ahead: usize) -> bool {
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    fn number(&mut self) -> TokenKind {
        let mut n = 1;
        let mut float = false;
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b') | Some('X'));
        if radix_prefixed {
            n = 2;
            while self.peek(n).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                n += 1;
            }
            self.bump(n);
            return TokenKind::Number { float: false };
        }
        while self.peek(n).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            n += 1;
        }
        // Fractional part: `.` followed by a digit (`1.5`), or a
        // trailing `.` not starting a range or method call (`1.`).
        if self.peek(n) == Some('.') {
            match self.peek(n + 1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    n += 1;
                    while self.peek(n).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        n += 1;
                    }
                }
                Some(c) if c == '.' || is_ident_start(c) => {}
                _ => {
                    float = true;
                    n += 1;
                }
            }
        }
        // Exponent: `e`/`E` with optional sign and at least one digit.
        if matches!(self.peek(n), Some('e') | Some('E')) {
            let mut m = n + 1;
            if matches!(self.peek(m), Some('+') | Some('-')) {
                m += 1;
            }
            if self.peek(m).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                n = m;
                while self.peek(n).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    n += 1;
                }
            }
        }
        // Type suffix (`u64`, `f64`, `usize` …).
        let suffix_start = n;
        while self.peek(n).is_some_and(is_ident_continue) {
            n += 1;
        }
        if !float && n > suffix_start {
            let sfx: String = (suffix_start..n).filter_map(|i| self.peek(i)).collect();
            if sfx.starts_with("f32") || sfx.starts_with("f64") {
                float = true;
            }
        }
        self.bump(n);
        TokenKind::Number { float }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True for token kinds that carry no syntactic weight (whitespace and
/// comments) — rule matchers skip these when looking at neighbours.
pub fn is_trivia(kind: TokenKind) -> bool {
    matches!(
        kind,
        TokenKind::Whitespace | TokenKind::LineComment(_) | TokenKind::BlockComment { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let mut at = 0;
        for t in &toks {
            assert_eq!(t.start, at, "token gap in {src:?}");
            at = t.end;
        }
        assert_eq!(at, src.len(), "tokens must cover {src:?}");
    }

    #[test]
    fn covers_every_byte() {
        for src in [
            "",
            "fn main() {}\n",
            "let s = r##\"raw \"# inside\"##; // done",
            "/* outer /* inner */ tail */ let x = '\\'';",
            "let π = 3.14; let 网 = \"多字节\";",
            "b'\\xFF' b\"bytes\" br#\"raw bytes\"# c\"cstr\"",
            "let unterminated = \"oops",
            "/* never closed",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"contains "# and " quotes"##;"####;
        let k = kinds(src);
        assert!(k
            .iter()
            .any(|(kind, text)| matches!(kind, TokenKind::Str { raw: true, terminated: true })
                && text.contains("contains")));
        // Nothing inside the raw string leaks out as an ident.
        assert!(!k.iter().any(|(kind, text)| *kind == TokenKind::Ident && text == "contains"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let k = kinds("let r#match = 1;");
        assert!(k.iter().any(|(kind, text)| *kind == TokenKind::Ident && text == "r#match"));
    }

    #[test]
    fn nested_block_comments() {
        let k = kinds("/* a /* b */ c */ x");
        assert_eq!(k.len(), 2);
        assert!(matches!(k[0].0, TokenKind::BlockComment { terminated: true, .. }));
        assert_eq!(k[1].1, "x");
    }

    #[test]
    fn doc_comment_styles() {
        assert!(matches!(kinds("/// outer")[0].0, TokenKind::LineComment(DocStyle::Outer)));
        assert!(matches!(kinds("//! inner")[0].0, TokenKind::LineComment(DocStyle::Inner)));
        assert!(matches!(kinds("// plain")[0].0, TokenKind::LineComment(DocStyle::None)));
        assert!(matches!(kinds("//// not doc")[0].0, TokenKind::LineComment(DocStyle::None)));
        assert!(matches!(
            kinds("/** outer block */")[0].0,
            TokenKind::BlockComment { doc: DocStyle::Outer, .. }
        ));
        assert!(matches!(
            kinds("/*! inner block */")[0].0,
            TokenKind::BlockComment { doc: DocStyle::Inner, .. }
        ));
        // `/**/` is an empty plain comment, not a doc comment.
        assert!(matches!(
            kinds("/**/")[0].0,
            TokenKind::BlockComment { doc: DocStyle::None, terminated: true }
        ));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let nl = '\\n'; }");
        let lifetimes: Vec<_> = k.iter().filter(|(kind, _)| *kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> =
            k.iter().filter(|(kind, _)| matches!(kind, TokenKind::Char { .. })).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn byte_char_is_char_not_ident() {
        let k = kinds("let b = b'x'; let n = b'\\n';");
        assert_eq!(k.iter().filter(|(kind, _)| matches!(kind, TokenKind::Char { .. })).count(), 2);
    }

    #[test]
    fn number_float_detection() {
        let one = |src: &str| {
            let k = kinds(src);
            k.iter()
                .find_map(|(kind, _)| match kind {
                    TokenKind::Number { float } => Some(*float),
                    _ => None,
                })
                .expect("number token")
        };
        assert!(one("1.5"));
        assert!(one("1."));
        assert!(one("1e9"));
        assert!(one("2.5e-3"));
        assert!(one("1f64"));
        assert!(one("3f32"));
        assert!(!one("1"));
        assert!(!one("1_000u64"));
        assert!(!one("0x1f32"), "hex digits are not a float suffix");
        assert!(!one("0b1010"));
    }

    #[test]
    fn ranges_and_method_calls_on_ints_are_not_floats() {
        let k = kinds("for i in 1..10 { let m = 1.max(2); let t = x.0; }");
        for (kind, text) in &k {
            if let TokenKind::Number { float } = kind {
                assert!(!float, "{text} misdetected as float");
            }
        }
    }

    #[test]
    fn line_and_col_positions() {
        let src = "ab\n  cd\n";
        let toks: Vec<_> = lex(src).into_iter().filter(|t| t.kind == TokenKind::Ident).collect();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn multibyte_chars_keep_byte_offsets_consistent() {
        let src = "let s = \"héllo wörld\"; let x = 1;";
        roundtrip(src);
        let toks = lex(src);
        let s = toks.iter().find(|t| matches!(t.kind, TokenKind::Str { .. })).expect("str");
        assert!(s.text(src).starts_with('"') && s.text(src).ends_with('"'));
    }

    #[test]
    fn cstring_literal() {
        let k = kinds("let p = c\"path\";");
        assert!(k.iter().any(|(kind, _)| matches!(kind, TokenKind::Str { raw: false, .. })));
        assert!(!k.iter().any(|(_, text)| text == "path"));
    }
}
