//! Findings and their human/machine renderings.

use std::fmt;

/// How severe a finding is. `Error` findings fail the run; `Warn`
/// findings fail it only under `--strict`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not fail the run unless `--strict`.
    Warn,
    /// Fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `no-panic-in-lib`).
    pub rule: String,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for file-level findings such as a missing
    /// manifest section).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Constructs a finding.
    pub fn new(
        rule: &str,
        severity: Severity,
        file: &str,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            rule: rule.to_string(),
            severity,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }

    /// A finding representing a file the linter could not read.
    pub fn io_error(file: &str, err: &str) -> Self {
        Finding::new("io-error", Severity::Error, file, 0, format!("cannot scan file: {err}"))
    }
}

/// The result of one lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests checked.
    pub manifests_scanned: usize,
    /// Whether warnings count toward the exit code.
    pub strict: bool,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn).count()
    }

    /// Process exit code: 0 when clean, 1 when violations remain.
    pub fn exit_code(&self) -> i32 {
        let failing = self.errors() + if self.strict { self.warnings() } else { 0 };
        i32::from(failing > 0)
    }
}

/// Renders findings as human diagnostics with `file:line` spans plus a
/// summary line.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        if f.line > 0 {
            out.push_str(&format!(
                "{}[{}] {}:{} — {}\n",
                f.severity, f.rule, f.file, f.line, f.message
            ));
        } else {
            out.push_str(&format!("{}[{}] {} — {}\n", f.severity, f.rule, f.file, f.message));
        }
    }
    out.push_str(&format!(
        "sgp-xtask lint: {} error(s), {} warning(s) across {} file(s), {} manifest(s)\n",
        report.errors(),
        report.warnings(),
        report.files_scanned,
        report.manifests_scanned,
    ));
    out
}

/// Renders the report as stable machine-readable JSON.
///
/// Schema (version 1):
///
/// ```json
/// {
///   "version": 1,
///   "errors": 2,
///   "warnings": 1,
///   "files_scanned": 120,
///   "manifests_scanned": 8,
///   "findings": [
///     {"rule": "...", "severity": "error", "file": "...", "line": 32, "message": "..."}
///   ]
/// }
/// ```
///
/// Findings are sorted by `(file, line, rule)`, so output is stable
/// across runs and machines.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"errors\": {},\n", report.errors()));
    out.push_str(&format!("  \"warnings\": {},\n", report.warnings()));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"manifests_scanned\": {},\n", report.manifests_scanned));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_string(&f.rule)));
        out.push_str(&format!("\"severity\": {}, ", json_string(&f.severity.to_string())));
        out.push_str(&format!("\"file\": {}, ", json_string(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": {}", json_string(&f.message)));
        out.push('}');
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the report as a SARIF 2.1.0 document for CI annotation
/// (GitHub code scanning understands this directly).
///
/// The emitter is deliberately minimal and deterministic: one run, the
/// full rule catalogue under `tool.driver.rules`, and one `result` per
/// finding **in the same `(file, line, rule)` order as [`render_json`]**
/// — the `emitter_properties` test pins that agreement. Findings with
/// line 0 (file-level) omit the `region`.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"sgp-xtask\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in crate::rules::ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n            {");
        out.push_str(&format!("\"id\": {}, ", json_string(rule)));
        out.push_str(&format!(
            "\"shortDescription\": {{\"text\": {}}}",
            json_string(crate::rules::describe(rule))
        ));
        out.push('}');
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match f.severity {
            Severity::Error => "error",
            Severity::Warn => "warning",
        };
        out.push_str("\n        {");
        out.push_str(&format!("\"ruleId\": {}, ", json_string(&f.rule)));
        out.push_str(&format!("\"level\": \"{level}\", "));
        out.push_str(&format!("\"message\": {{\"text\": {}}}, ", json_string(&f.message)));
        out.push_str("\"locations\": [{\"physicalLocation\": {");
        out.push_str(&format!("\"artifactLocation\": {{\"uri\": {}}}", json_string(&f.file)));
        if f.line > 0 {
            out.push_str(&format!(", \"region\": {{\"startLine\": {}}}", f.line));
        }
        out.push_str("}}]}");
    }
    if !report.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(findings: Vec<Finding>) -> LintReport {
        LintReport { findings, files_scanned: 3, manifests_scanned: 2, strict: false }
    }

    #[test]
    fn exit_code_reflects_errors() {
        let clean = report(vec![]);
        assert_eq!(clean.exit_code(), 0);
        let bad = report(vec![Finding::new("r", Severity::Error, "f.rs", 1, "m")]);
        assert_eq!(bad.exit_code(), 1);
    }

    #[test]
    fn warnings_only_fail_in_strict_mode() {
        let mut r = report(vec![Finding::new("r", Severity::Warn, "f.rs", 1, "m")]);
        assert_eq!(r.exit_code(), 0);
        r.strict = true;
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_render_is_wellformed_for_empty_and_nonempty() {
        let empty = render_json(&report(vec![]));
        assert!(empty.contains("\"findings\": []"));
        let one = render_json(&report(vec![Finding::new(
            "no-panic-in-lib",
            Severity::Error,
            "crates/db/src/store.rs",
            32,
            "msg",
        )]));
        assert!(one.contains("\"rule\": \"no-panic-in-lib\""));
        assert!(one.contains("\"line\": 32"));
    }

    #[test]
    fn sarif_render_is_wellformed_and_ordered() {
        let r = report(vec![
            Finding::new("no-hash-iteration", Severity::Error, "a.rs", 3, "first"),
            Finding::new("unused-allow", Severity::Warn, "b.rs", 0, "file-level"),
        ]);
        let s = render_sarif(&r);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"sgp-xtask\""));
        let first = s.find("\"ruleId\": \"no-hash-iteration\"").expect("first result");
        let second = s.find("\"ruleId\": \"unused-allow\"").expect("second result");
        assert!(first < second, "results keep report order");
        assert!(s.contains("\"level\": \"warning\""));
        assert!(s.contains("\"startLine\": 3"));
        // Line-0 findings carry no region.
        let b_loc = s.find("\"uri\": \"b.rs\"").expect("b.rs location");
        assert!(!s[b_loc..].contains("startLine"), "file-level finding has no region");
    }

    #[test]
    fn text_render_has_spans_and_summary() {
        let r = report(vec![Finding::new("x", Severity::Error, "a.rs", 7, "boom")]);
        let s = render_text(&r);
        assert!(s.contains("error[x] a.rs:7 — boom"));
        assert!(s.contains("1 error(s), 0 warning(s)"));
    }
}
