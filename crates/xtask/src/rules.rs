//! The rule catalogue and its per-file enforcement.
//!
//! Rules are scoped by *package name*, not path, so the same engine
//! lints the real workspace and the fixture corpus identically:
//!
//! | rule | scope |
//! |------|-------|
//! | `no-hash-iteration`   | `sgp-engine`, `sgp-db`, `sgp-core`, `sgp-partition`, `sgp-fault`, `sgp-trace` — all targets incl. tests |
//! | `no-panic-in-lib`     | the above + `sgp-graph` — library sources only, test spans skipped |
//! | `no-wallclock-in-sim` | the above + `sgp-graph` — all targets |
//! | `thread-discipline`   | the `no-panic-in-lib` crates — library sources, test spans skipped; `sgp-partition`'s `src/exec.rs`/`src/exec/` is the single designated exemption |
//! | `atomic-ordering-policy` | the `no-panic-in-lib` crates — library sources, test spans skipped, **no** exec exemption |
//! | `no-alloc-in-place-loop` | `sgp-partition` — library sources, `fn place` bodies only, test spans skipped; **advisory** (warning, not error) |
//! | `crate-attr-policy`   | every member |
//! | `workspace-dep-hygiene` | every member manifest + the root manifest |
//!
//! Cross-file rules (`trace-key-registry`, `no-float-accounting`,
//! `schema-version-sync`, `no-unsafe`, `send-bound-registry`) live in
//! [`crate::crossfile`]; the first three share the per-file
//! [`AllowTable`]s so suppressions and staleness are tracked uniformly,
//! while the two registry-backed rules are suppressed *only* by their
//! committed registry files (`tests/goldens/UNSAFE_REGISTRY`,
//! `tests/goldens/SEND_REGISTRY`), whose stale entries are errors.
//!
//! The bench harness (`sgp-bench`) and binary targets are outside the
//! determinism scopes: wall-clock footers and CLI conveniences live
//! there by design.
//!
//! ## Matching is token-based
//!
//! Source rules walk the lexer's token stream ([`crate::lexer`]), so a
//! `HashMap` in a doc comment, a `panic!` spelled inside a raw string,
//! or an `unwrap` in an error message can never fire. A method-call
//! match (`.unwrap()`) follows the receiver dot across line breaks; the
//! finding lands on the line of the method name itself.

use crate::lexer::{self, Token, TokenKind};
use crate::manifest::Manifest;
use crate::report::{Finding, Severity};
use crate::scan::{DirectiveScope, ScannedFile};
use crate::workspace::{FileKind, Member, Workspace};

/// Rule: hash-container iteration order is nondeterministic.
pub const NO_HASH_ITERATION: &str = "no-hash-iteration";
/// Rule: panicking constructs in library code.
pub const NO_PANIC_IN_LIB: &str = "no-panic-in-lib";
/// Rule: crate roots must carry the policy attributes.
pub const CRATE_ATTR_POLICY: &str = "crate-attr-policy";
/// Rule: wall-clock and ambient randomness in deterministic simulators.
pub const NO_WALLCLOCK_IN_SIM: &str = "no-wallclock-in-sim";
/// Rule: manifests must inherit workspace dependencies and lints.
pub const WORKSPACE_DEP_HYGIENE: &str = "workspace-dep-hygiene";
/// Rule: thread/channel/lock primitives outside the execution backend.
pub const THREAD_DISCIPLINE: &str = "thread-discipline";
/// Rule: atomic orderings must be written qualified; beyond Relaxed
/// needs a justification.
pub const ATOMIC_ORDERING_POLICY: &str = "atomic-ordering-policy";
/// Rule: `unsafe` requires an entry in the committed audit registry.
pub const NO_UNSAFE: &str = "no-unsafe";
/// Rule: channel payload types must be audited in the Send registry.
pub const SEND_BOUND_REGISTRY: &str = "send-bound-registry";
/// Rule: trace keys must come from the `sgp_trace::keys` registry.
pub const TRACE_KEY_REGISTRY: &str = "trace-key-registry";
/// Rule: no float arithmetic in accounting/simulated-time paths.
pub const NO_FLOAT_ACCOUNTING: &str = "no-float-accounting";
/// Rule: schema-version constants must match the pinned manifest.
pub const SCHEMA_VERSION_SYNC: &str = "schema-version-sync";
/// Rule: allocation in a partitioner's per-element `place` hot path.
pub const NO_ALLOC_IN_PLACE_LOOP: &str = "no-alloc-in-place-loop";
/// Rule: panicking constructs reachable from a public entry point.
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// Rule: every `Algorithm` variant must be handled on every surface.
pub const ALGORITHM_SURFACE_EXHAUSTIVENESS: &str = "algorithm-surface-exhaustiveness";
/// Rule: span_enter/span_exit must balance per function body.
pub const SPAN_GUARD_BALANCE: &str = "span-guard-balance";
/// Meta rule: malformed or unjustified allow directives.
pub const BAD_ALLOW_DIRECTIVE: &str = "bad-allow-directive";
/// Meta rule: a line-scoped allow whose rule no longer fires there.
pub const STALE_ALLOW: &str = "stale-allow";
/// Meta rule: scope/file allow directives that never suppressed anything.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// All enforceable rule ids (the meta rules included, so directives can
/// be validated against this list).
pub const ALL_RULES: &[&str] = &[
    NO_HASH_ITERATION,
    NO_PANIC_IN_LIB,
    CRATE_ATTR_POLICY,
    NO_WALLCLOCK_IN_SIM,
    WORKSPACE_DEP_HYGIENE,
    THREAD_DISCIPLINE,
    ATOMIC_ORDERING_POLICY,
    NO_UNSAFE,
    SEND_BOUND_REGISTRY,
    TRACE_KEY_REGISTRY,
    NO_FLOAT_ACCOUNTING,
    SCHEMA_VERSION_SYNC,
    NO_ALLOC_IN_PLACE_LOOP,
    PANIC_REACHABILITY,
    ALGORITHM_SURFACE_EXHAUSTIVENESS,
    SPAN_GUARD_BALANCE,
    BAD_ALLOW_DIRECTIVE,
    STALE_ALLOW,
    UNUSED_ALLOW,
];

/// One-line description per rule, for `sgp-xtask rules`.
pub fn describe(rule: &str) -> &'static str {
    match rule {
        NO_HASH_ITERATION => {
            "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or sort \
             before iterating (determinism-scoped crates)"
        }
        NO_PANIC_IN_LIB => {
            "unwrap()/expect()/panic!/todo!/unimplemented!/dbg! in non-test library code must be \
             rewritten as Result or carry a justified allow directive"
        }
        CRATE_ATTR_POLICY => {
            "every crate root must carry #![deny(unsafe_code)] and #![warn(missing_docs)]"
        }
        NO_WALLCLOCK_IN_SIM => {
            "std::time::Instant/SystemTime and thread_rng are forbidden in the deterministic \
             simulators; wall-clock belongs to the bench harness only"
        }
        WORKSPACE_DEP_HYGIENE => {
            "crate manifests must inherit dependencies (workspace = true, no inline versions) and \
             opt into [workspace.lints]"
        }
        THREAD_DISCIPLINE => {
            "thread, channel and lock primitives (spawn/channel/Mutex/crossbeam/…) are confined \
             to the designated execution backend (sgp-partition src/exec.rs); everywhere else in \
             the determinism-scoped libraries they need a justified allow"
        }
        ATOMIC_ORDERING_POLICY => {
            "atomic memory orderings must be spelled `Ordering::X` at the call site (no bare \
             imports), and any ordering stronger than Relaxed must carry an allow justifying the \
             acquire/release pairing it implements"
        }
        NO_UNSAFE => {
            "`unsafe` is banned everywhere (sources, tests, benches); the only suppression is a \
             per-file entry in tests/goldens/UNSAFE_REGISTRY, and stale entries are errors"
        }
        SEND_BOUND_REGISTRY => {
            "every channel constructor in the execution backend must pin its payload type with a \
             turbofish, and that type must be audited in tests/goldens/SEND_REGISTRY (guards \
             which types may cross the loader-thread boundary)"
        }
        TRACE_KEY_REGISTRY => {
            "every TraceSink span/counter/histogram key must be a sgp_trace::keys constant, and \
             every registry constant must be used somewhere (guards the byte-exact trace goldens)"
        }
        NO_FLOAT_ACCOUNTING => {
            "f32/f64 literals and casts are banned in the simulated-time and message-accounting \
             paths of sgp-db/sgp-engine; quantile/report rendering may use a scoped allow"
        }
        SCHEMA_VERSION_SYNC => {
            "schema-version constants (sgp-trace JSON, sgp-fault FaultPlan) must agree with the \
             single source of truth in tests/goldens/SCHEMA_VERSIONS"
        }
        NO_ALLOC_IN_PLACE_LOOP => {
            "advisory: Vec/String construction (vec!/Vec/String/to_vec/to_string/collect/to_owned) \
             inside a partitioner `fn place` body allocates once per streamed element — hoist a \
             scratch buffer into the partitioner struct (DESIGN.md §13) or justify with an allow"
        }
        PANIC_REACHABILITY => {
            "unwrap/expect/panic!/todo!/unimplemented!/indexing in any fn transitively reachable \
             from a public entry point of the determinism-scope crates is an error; the finding \
             prints the call path, panics are suppressed by the no-panic-in-lib allow they already \
             carry, and indexing is audited per file in tests/goldens/PANIC_AUDIT"
        }
        ALGORITHM_SURFACE_EXHAUSTIVENESS => {
            "every Algorithm enum variant must be explicitly handled on every algorithm surface \
             (streaming dispatch, snapshot round-trip, threaded-loader support, ingest bench \
             table, churn/elastic suites) — matched, table-listed, or registered as a documented \
             fallback in tests/goldens/ALGORITHM_SURFACES; stale registry entries are errors"
        }
        SPAN_GUARD_BALANCE => {
            "every span_enter in a function body must be matched by a span_exit on the \
             fall-through path of the same body, or replaced by a let-bound guard_span guard \
             (guards the byte-exact trace goldens against orphaned spans)"
        }
        BAD_ALLOW_DIRECTIVE => "sgp-lint allow directives must name a known rule and justify it",
        STALE_ALLOW => {
            "a line-scoped allow whose rule no longer fires on its attached span is dead and must \
             be deleted, so the allowlist cannot rot"
        }
        UNUSED_ALLOW => "allow-scope/allow-file directives that suppress nothing should be removed",
        _ => "unknown rule",
    }
}

/// Crates whose hash-container use breaks replay determinism.
const HASH_SCOPE: &[&str] =
    &["sgp-engine", "sgp-db", "sgp-core", "sgp-partition", "sgp-fault", "sgp-trace"];
/// Crates whose library code must be panic-free.
const PANIC_SCOPE: &[&str] =
    &["sgp-graph", "sgp-engine", "sgp-db", "sgp-core", "sgp-partition", "sgp-fault", "sgp-trace"];
/// Crates forbidden to read wall-clock or ambient randomness.
const WALLCLOCK_SCOPE: &[&str] =
    &["sgp-graph", "sgp-engine", "sgp-db", "sgp-core", "sgp-partition", "sgp-fault", "sgp-trace"];
/// Crates whose library code may not create threads, channels or locks
/// outside the designated execution backend, and whose atomic orderings
/// are policed.
const THREAD_SCOPE: &[&str] =
    &["sgp-graph", "sgp-engine", "sgp-db", "sgp-core", "sgp-partition", "sgp-fault", "sgp-trace"];

fn in_scope(member: &Member, scope: &[&str]) -> bool {
    scope.contains(&member.name.as_str())
}

/// Is `rel` part of the designated threaded-execution backend — the one
/// module allowed to own thread/channel primitives? Shared with the
/// cross-file `send-bound-registry` rule, which only scans these files.
pub fn is_exec_backend(member: &Member, rel: &str) -> bool {
    member.name == "sgp-partition" && (rel.ends_with("src/exec.rs") || rel.contains("/src/exec/"))
}

// ---------------------------------------------------------------------------
// Allow tables
// ---------------------------------------------------------------------------

/// Tracks which findings each directive suppressed, to report stale and
/// unused ones once every rule (per-file *and* cross-file) has run.
///
/// Attachment semantics, by directive form:
///
/// * `allow(rule)` — suppresses findings on the directive's own line or
///   the line immediately after it (trailing-comment and
///   line-above placements; nothing further).
/// * `allow-scope(rule)` — suppresses findings from the directive line
///   through the end of the next brace-delimited item.
/// * `allow-file(rule)` — suppresses findings anywhere in the file.
pub struct AllowTable<'a> {
    scanned: &'a ScannedFile,
    used: Vec<bool>,
}

impl<'a> AllowTable<'a> {
    /// A table for one scanned file; no directive is used yet.
    pub fn new(scanned: &'a ScannedFile) -> Self {
        AllowTable { scanned, used: vec![false; scanned.directives.len()] }
    }

    /// The file this table belongs to (workspace-relative).
    pub fn rel(&self) -> &str {
        &self.scanned.rel
    }

    /// Is `(rule, line)` suppressed by a well-formed directive? Marks the
    /// directive used. Malformed directives (unknown rule, missing
    /// justification) never suppress.
    pub fn allows(&mut self, rule: &str, line: usize) -> bool {
        let mut hit = false;
        for (i, d) in self.scanned.directives.iter().enumerate() {
            if d.rule != rule || d.justification.is_empty() {
                continue;
            }
            let applies = match d.scope {
                DirectiveScope::File => true,
                DirectiveScope::Scope { end_line } => d.line <= line && line <= end_line,
                DirectiveScope::Line => d.line == line || d.line + 1 == line,
            };
            if applies {
                self.used[i] = true;
                hit = true;
            }
        }
        hit
    }

    /// Emits the meta findings: `bad-allow-directive` for malformed
    /// directives, `stale-allow` (error) for line-scoped allows that
    /// suppressed nothing, and `unused-allow` (warn) for scope/file
    /// allows that suppressed nothing.
    pub fn finish(self, findings: &mut Vec<Finding>) {
        for (i, d) in self.scanned.directives.iter().enumerate() {
            if d.rule.is_empty() || !ALL_RULES.contains(&d.rule.as_str()) {
                findings.push(Finding::new(
                    BAD_ALLOW_DIRECTIVE,
                    Severity::Error,
                    &self.scanned.rel,
                    d.line,
                    format!(
                        "malformed sgp-lint directive (unknown or missing rule name): `{}`",
                        d.raw.trim()
                    ),
                ));
            } else if d.justification.is_empty() {
                findings.push(Finding::new(
                    BAD_ALLOW_DIRECTIVE,
                    Severity::Error,
                    &self.scanned.rel,
                    d.line,
                    format!(
                        "allow({}) directive is missing its mandatory justification — write \
                         `// sgp-lint: allow({}): <why this is sound>`",
                        d.rule, d.rule
                    ),
                ));
            } else if !self.used[i] {
                match d.scope {
                    DirectiveScope::Line => findings.push(Finding::new(
                        STALE_ALLOW,
                        Severity::Error,
                        &self.scanned.rel,
                        d.line,
                        format!(
                            "allow({}) is stale: the rule no longer fires on line {} or {} — the \
                             violation was fixed, so delete the directive",
                            d.rule,
                            d.line,
                            d.line + 1
                        ),
                    )),
                    DirectiveScope::Scope { .. } | DirectiveScope::File => {
                        findings.push(Finding::new(
                            UNUSED_ALLOW,
                            Severity::Warn,
                            &self.scanned.rel,
                            d.line,
                            format!("allow({}) directive suppresses nothing; remove it", d.rule),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Token matchers
// ---------------------------------------------------------------------------

/// Index of the previous non-trivia token before `i`, if any.
fn prev_nontrivia(tokens: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !lexer::is_trivia(tokens[j].kind))
}

/// Index of the next non-trivia token after `i`, if any.
fn next_nontrivia(tokens: &[Token], i: usize) -> Option<usize> {
    (i + 1..tokens.len()).find(|&j| !lexer::is_trivia(tokens[j].kind))
}

fn punct_is(source: &str, tokens: &[Token], i: Option<usize>, c: char) -> bool {
    i.is_some_and(|i| {
        tokens[i].kind == TokenKind::Punct && source[tokens[i].start..tokens[i].end].starts_with(c)
    })
}

/// Is token `i` a method call `.name(` (whitespace/newlines allowed
/// around the dot and before the parenthesis)?
pub fn is_method_call(source: &str, tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == TokenKind::Ident
        && punct_is(source, tokens, prev_nontrivia(tokens, i), '.')
        && punct_is(source, tokens, next_nontrivia(tokens, i), '(')
}

/// Is token `i` a macro invocation `name!`?
pub fn is_macro_bang(source: &str, tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == TokenKind::Ident && punct_is(source, tokens, next_nontrivia(tokens, i), '!')
}

/// Is token `i` invoked as a function or constructor — `name(…)` or
/// `name::<T>(…)`? Distinguishes `thread::spawn(f)` from an identifier
/// that merely *names* spawn (`fn spawn_rate()`, `let channel = 3;`).
pub fn is_call_position(source: &str, tokens: &[Token], i: usize) -> bool {
    let n1 = next_nontrivia(tokens, i);
    if punct_is(source, tokens, n1, '(') {
        return true;
    }
    let n2 = n1.and_then(|j| next_nontrivia(tokens, j));
    let n3 = n2.and_then(|j| next_nontrivia(tokens, j));
    punct_is(source, tokens, n1, ':')
        && punct_is(source, tokens, n2, ':')
        && punct_is(source, tokens, n3, '<')
}

/// Token-index spans `(open_brace, close_brace)` of every `fn place`
/// *body* in the file. A trait method declaration (`fn place(…) -> …;`)
/// has no body — a `;` before any `{` at bracket depth 0 — and yields
/// no span. Only the exact identifier `place` counts; `place_hybrid_edges`
/// and friends are ordinary functions outside the per-element hot path.
pub fn place_body_spans(source: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_place_fn = tokens[i].kind == TokenKind::Ident
            && tokens[i].text(source) == "place"
            && prev_nontrivia(tokens, i).is_some_and(|p| {
                tokens[p].kind == TokenKind::Ident && tokens[p].text(source) == "fn"
            });
        if !is_place_fn {
            i += 1;
            continue;
        }
        // Scan the signature for the body's opening brace, bailing on a
        // bodiless declaration.
        let mut open = None;
        let mut depth = 0i64;
        for (j, t) in tokens.iter().enumerate().skip(i + 1) {
            if t.kind != TokenKind::Punct {
                continue;
            }
            match t.text(source).chars().next() {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                Some(';') if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        // Brace-match to the end of the body.
        let mut braces = 0i64;
        let mut close = open;
        for (j, t) in tokens.iter().enumerate().skip(open) {
            if t.kind != TokenKind::Punct {
                continue;
            }
            match t.text(source).chars().next() {
                Some('{') => braces += 1,
                Some('}') => {
                    braces -= 1;
                    if braces == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        spans.push((open, close));
        i = close + 1;
    }
    spans
}

// ---------------------------------------------------------------------------
// Source-file rules
// ---------------------------------------------------------------------------

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "dbg"];

/// Synchronisation-primitive type names that fire `thread-discipline`
/// wherever they appear (declaration, import or use — a lock type has
/// no business even being *named* outside the execution backend).
const THREAD_SYNC_TYPES: &[&str] =
    &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc", "crossbeam", "parking_lot"];
/// Function names that fire `thread-discipline` only in call position,
/// since they are common English words in other contexts.
const THREAD_SPAWN_CALLS: &[&str] = &["spawn", "channel", "bounded", "unbounded"];
/// The atomic memory orderings policed by `atomic-ordering-policy`.
/// `std::cmp::Ordering` variants (Less/Equal/Greater) never collide.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs every source-level rule over one scanned file, charging
/// suppressions to `allows` (finalised later by [`AllowTable::finish`]).
pub fn check_source_file(
    member: &Member,
    file_kind: FileKind,
    scanned: &ScannedFile,
    allows: &mut AllowTable<'_>,
    findings: &mut Vec<Finding>,
) {
    let hash_applies = in_scope(member, HASH_SCOPE);
    let wallclock_applies = in_scope(member, WALLCLOCK_SCOPE);
    let panic_applies = in_scope(member, PANIC_SCOPE) && file_kind == FileKind::LibSrc;
    let thread_applies = in_scope(member, THREAD_SCOPE)
        && file_kind == FileKind::LibSrc
        && !is_exec_backend(member, &scanned.rel);
    let ordering_applies = in_scope(member, THREAD_SCOPE) && file_kind == FileKind::LibSrc;
    let alloc_applies = member.name == "sgp-partition" && file_kind == FileKind::LibSrc;

    let src = &scanned.source;
    let tokens = &scanned.tokens;
    let place_spans = if alloc_applies { place_body_spans(src, tokens) } else { Vec::new() };
    // One finding per (rule, line), matching the old per-line reporting.
    let mut reported: std::collections::BTreeSet<(&'static str, usize)> =
        std::collections::BTreeSet::new();

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(src);
        let line = t.line;

        if hash_applies && matches!(text, "HashMap" | "HashSet") {
            if !reported.contains(&(NO_HASH_ITERATION, line))
                && !allows.allows(NO_HASH_ITERATION, line)
            {
                reported.insert((NO_HASH_ITERATION, line));
                findings.push(Finding::new(
                    NO_HASH_ITERATION,
                    Severity::Error,
                    &scanned.rel,
                    line,
                    format!(
                        "`{text}` has nondeterministic iteration order — use \
                         `BTreeMap`/`BTreeSet` or collect+sort (bit-for-bit reproduction scope)"
                    ),
                ));
            }
        }
        if wallclock_applies && matches!(text, "Instant" | "SystemTime" | "thread_rng") {
            if !reported.contains(&(NO_WALLCLOCK_IN_SIM, line))
                && !allows.allows(NO_WALLCLOCK_IN_SIM, line)
            {
                reported.insert((NO_WALLCLOCK_IN_SIM, line));
                findings.push(Finding::new(
                    NO_WALLCLOCK_IN_SIM,
                    Severity::Error,
                    &scanned.rel,
                    line,
                    format!(
                        "`{text}` reads ambient machine state; deterministic simulators must \
                         take seeds/counters as inputs (wall-clock belongs to sgp-bench footers)"
                    ),
                ));
            }
        }
        if thread_applies && !scanned.is_test_line(line) {
            let sync_type = THREAD_SYNC_TYPES.contains(&text);
            let spawn_call = !sync_type
                && THREAD_SPAWN_CALLS.contains(&text)
                && is_call_position(src, tokens, i);
            if (sync_type || spawn_call)
                && !reported.contains(&(THREAD_DISCIPLINE, line))
                && !allows.allows(THREAD_DISCIPLINE, line)
            {
                reported.insert((THREAD_DISCIPLINE, line));
                let what = if sync_type {
                    format!("synchronisation primitive `{text}`")
                } else {
                    format!("thread/channel constructor `{text}(…)`")
                };
                findings.push(Finding::new(
                    THREAD_DISCIPLINE,
                    Severity::Error,
                    &scanned.rel,
                    line,
                    format!(
                        "{what} outside the designated execution backend — concurrency lives in \
                         sgp-partition src/exec.rs (route through exec::scoped_workers) or \
                         carries a justified allow"
                    ),
                ));
            }
        }
        if ordering_applies && !scanned.is_test_line(line) && ATOMIC_ORDERINGS.contains(&text) {
            let p1 = prev_nontrivia(tokens, i);
            let p2 = p1.and_then(|j| prev_nontrivia(tokens, j));
            let p3 = p2.and_then(|j| prev_nontrivia(tokens, j));
            let qualified = punct_is(src, tokens, p1, ':')
                && punct_is(src, tokens, p2, ':')
                && p3.is_some_and(|j| {
                    tokens[j].kind == TokenKind::Ident && tokens[j].text(src) == "Ordering"
                });
            let complaint = if !qualified {
                Some(format!(
                    "bare atomic ordering `{text}` — write `Ordering::{text}` at the call site \
                     so every ordering decision is locally visible and grep-able"
                ))
            } else if text != "Relaxed" {
                Some(format!(
                    "`Ordering::{text}` is stronger than Relaxed — justify the acquire/release \
                     pairing it implements with an allow directive, or relax it"
                ))
            } else {
                None
            };
            if let Some(msg) = complaint {
                if !reported.contains(&(ATOMIC_ORDERING_POLICY, line))
                    && !allows.allows(ATOMIC_ORDERING_POLICY, line)
                {
                    reported.insert((ATOMIC_ORDERING_POLICY, line));
                    findings.push(Finding::new(
                        ATOMIC_ORDERING_POLICY,
                        Severity::Error,
                        &scanned.rel,
                        line,
                        msg,
                    ));
                }
            }
        }
        if alloc_applies
            && !scanned.is_test_line(line)
            && place_spans.iter().any(|&(open, close)| open < i && i < close)
        {
            let ty = matches!(text, "Vec" | "String");
            let mac = !ty && text == "vec" && is_macro_bang(src, tokens, i);
            let method = !ty
                && !mac
                && matches!(text, "to_vec" | "to_string" | "collect" | "to_owned")
                && is_method_call(src, tokens, i);
            if (ty || mac || method)
                && !reported.contains(&(NO_ALLOC_IN_PLACE_LOOP, line))
                && !allows.allows(NO_ALLOC_IN_PLACE_LOOP, line)
            {
                reported.insert((NO_ALLOC_IN_PLACE_LOOP, line));
                let what = if method { format!("`.{text}()`") } else { format!("`{text}`") };
                findings.push(Finding::new(
                    NO_ALLOC_IN_PLACE_LOOP,
                    Severity::Warn,
                    &scanned.rel,
                    line,
                    format!(
                        "{what} in a `fn place` body allocates once per streamed element — hoist \
                         a scratch buffer into the partitioner struct (DESIGN.md §13) or justify \
                         with an allow directive"
                    ),
                ));
            }
        }
        if panic_applies && !scanned.is_test_line(line) {
            let method = PANIC_METHODS.contains(&text) && is_method_call(src, tokens, i);
            let mac = !method && PANIC_MACROS.contains(&text) && is_macro_bang(src, tokens, i);
            if (method || mac)
                && !reported.contains(&(NO_PANIC_IN_LIB, line))
                && !allows.allows(NO_PANIC_IN_LIB, line)
            {
                reported.insert((NO_PANIC_IN_LIB, line));
                let what = if method { format!("`.{text}()`") } else { format!("`{text}!`") };
                findings.push(Finding::new(
                    NO_PANIC_IN_LIB,
                    Severity::Error,
                    &scanned.rel,
                    line,
                    format!(
                        "{what} can panic mid-experiment — return a `Result` (see \
                         sgp_core::SgpError) or justify with an allow directive"
                    ),
                ));
            }
        }
    }
}

/// Checks the crate-root attribute policy for one member.
pub fn check_crate_root_attrs(member: &Member, findings: &mut Vec<Finding>) {
    let root_rel = format!("{}/src/lib.rs", dir_rel(member));
    let root = member
        .files
        .iter()
        .find(|f| f.rel.ends_with("src/lib.rs"))
        .or_else(|| member.files.iter().find(|f| f.rel.ends_with("src/main.rs")));
    let Some(root) = root else {
        findings.push(Finding::new(
            CRATE_ATTR_POLICY,
            Severity::Error,
            &root_rel,
            0,
            "crate has neither src/lib.rs nor src/main.rs to carry the policy attributes",
        ));
        return;
    };
    let Ok(text) = std::fs::read_to_string(&root.path) else {
        findings.push(Finding::io_error(&root.rel, "unreadable crate root"));
        return;
    };
    // Check the masked source so an attribute mentioned in a comment or
    // string does not satisfy the policy.
    let scanned = crate::scan::scan_source(&text, &root.rel);
    let normalized: String =
        scanned.masked.join("\n").chars().filter(|c| !c.is_whitespace()).collect();
    for (attr, needle, alt) in [
        ("#![deny(unsafe_code)]", "#![deny(unsafe_code)]", "#![forbid(unsafe_code)]"),
        ("#![warn(missing_docs)]", "#![warn(missing_docs)]", "#![deny(missing_docs)]"),
    ] {
        let needle: String = needle.chars().filter(|c| !c.is_whitespace()).collect();
        let alt: String = alt.chars().filter(|c| !c.is_whitespace()).collect();
        if !normalized.contains(&needle) && !normalized.contains(&alt) {
            findings.push(Finding::new(
                CRATE_ATTR_POLICY,
                Severity::Error,
                &root.rel,
                1,
                format!("crate root is missing `{attr}` (or a stricter equivalent)"),
            ));
        }
    }
}

fn dir_rel(member: &Member) -> String {
    member.manifest_rel.trim_end_matches("Cargo.toml").trim_end_matches('/').to_string()
}

// ---------------------------------------------------------------------------
// Manifest rules
// ---------------------------------------------------------------------------

const DEP_SECTIONS: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];

/// Checks the root manifest: `[workspace.lints]` must exist so member
/// `[lints] workspace = true` tables have something to inherit.
pub fn check_root_manifest(ws: &Workspace, findings: &mut Vec<Finding>) {
    let m = &ws.root_manifest;
    let has_lints = m
        .sections
        .iter()
        .any(|s| s.name == "workspace.lints" || s.name.starts_with("workspace.lints."));
    if !has_lints {
        findings.push(Finding::new(
            WORKSPACE_DEP_HYGIENE,
            Severity::Error,
            &m.rel,
            0,
            "root manifest has no [workspace.lints] table for members to inherit",
        ));
    }
}

/// Checks one member manifest: workspace-inherited deps, no inline
/// versions, and a `[lints] workspace = true` opt-in.
pub fn check_member_manifest(member: &Member, findings: &mut Vec<Finding>) {
    let m = &member.manifest;
    check_dep_sections(m, findings);
    let lints_ok = m
        .section("lints")
        .map(|s| s.entries.iter().any(|e| e.key == "workspace" && e.value == "true"))
        .unwrap_or(false);
    if !lints_ok {
        findings.push(Finding::new(
            WORKSPACE_DEP_HYGIENE,
            Severity::Error,
            &m.rel,
            0,
            "manifest must opt into the shared lint policy with `[lints]\\nworkspace = true`",
        ));
    }
}

fn check_dep_sections(m: &Manifest, findings: &mut Vec<Finding>) {
    for section in &m.sections {
        if !DEP_SECTIONS.contains(&section.name.as_str()) {
            continue;
        }
        for entry in &section.entries {
            let inherited = entry.key.ends_with(".workspace")
                || entry.value.contains("workspace = true")
                || entry.value.contains("workspace=true");
            if inherited {
                if entry.value.contains("version") {
                    findings.push(Finding::new(
                        WORKSPACE_DEP_HYGIENE,
                        Severity::Error,
                        &m.rel,
                        entry.line,
                        format!(
                            "dependency `{}` mixes `workspace = true` with an inline version",
                            entry.key
                        ),
                    ));
                }
                continue;
            }
            findings.push(Finding::new(
                WORKSPACE_DEP_HYGIENE,
                Severity::Error,
                &m.rel,
                entry.line,
                format!(
                    "dependency `{}` must be workspace-inherited (`{}.workspace = true` with the \
                     version pinned once in [workspace.dependencies])",
                    entry.key, entry.key
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn lint_tokens_as(pkg: &str, rel: &str, src: &str) -> Vec<(String, usize)> {
        let scanned = scan_source(src, rel);
        let member = Member {
            name: pkg.into(),
            dir: std::path::PathBuf::new(),
            manifest: crate::manifest::parse_manifest("", "crates/x/Cargo.toml"),
            manifest_rel: "crates/x/Cargo.toml".into(),
            files: vec![],
            is_root_package: false,
        };
        let mut findings = Vec::new();
        let mut allows = AllowTable::new(&scanned);
        check_source_file(&member, FileKind::LibSrc, &scanned, &mut allows, &mut findings);
        allows.finish(&mut findings);
        findings.into_iter().map(|f| (f.rule, f.line)).collect()
    }

    fn lint_tokens(src: &str) -> Vec<(String, usize)> {
        lint_tokens_as("sgp-engine", "crates/x/src/lib.rs", src)
    }

    #[test]
    fn ident_in_string_or_comment_never_fires() {
        let found = lint_tokens(
            "//! mentions HashMap and panic! freely\nlet s = \"HashMap thread_rng\";\nlet r = r#\"Instant unwrap()\"#;\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn ident_respects_token_boundaries() {
        assert!(lint_tokens("type MyHashMapLike = ();").is_empty());
        assert_eq!(
            lint_tokens("use std::collections::HashMap;"),
            vec![("no-hash-iteration".into(), 1)]
        );
    }

    #[test]
    fn method_call_matcher_follows_line_breaks() {
        let found = lint_tokens("fn f() { x\n    .unwrap();\n}");
        assert_eq!(
            found,
            vec![("no-panic-in-lib".into(), 2)],
            "dot on the previous line still matches"
        );
        assert!(lint_tokens("fn f() { let x = y.unwrap_or(0); }").is_empty());
        assert!(lint_tokens("fn unwrap() {}").is_empty());
    }

    #[test]
    fn macro_matcher() {
        assert_eq!(lint_tokens("fn f() { panic!(\"boom\") }"), vec![("no-panic-in-lib".into(), 1)]);
        assert!(lint_tokens("fn f() { should_panic(expected) }").is_empty());
    }

    #[test]
    fn allow_on_same_line_and_line_above_both_attach() {
        // Trailing-comment placement: directive shares the finding line.
        let same = lint_tokens(
            "fn f() { x.unwrap(); } // sgp-lint: allow(no-panic-in-lib): bounded by caller\n",
        );
        assert!(same.is_empty(), "same-line allow suppresses: {same:?}");
        // Line-above placement: directive is on the preceding line.
        let above = lint_tokens(
            "// sgp-lint: allow(no-panic-in-lib): bounded by caller\nfn f() { x.unwrap(); }\n",
        );
        assert!(above.is_empty(), "line-above allow suppresses: {above:?}");
        // Two lines above does NOT attach: the finding fires and the
        // directive is stale.
        let far = lint_tokens(
            "// sgp-lint: allow(no-panic-in-lib): bounded by caller\n\nfn f() { x.unwrap(); }\n",
        );
        assert!(far.contains(&("no-panic-in-lib".into(), 3)), "{far:?}");
        assert!(far.contains(&("stale-allow".into(), 1)), "{far:?}");
    }

    #[test]
    fn allow_scope_suppresses_whole_item() {
        let found = lint_tokens(
            "// sgp-lint: allow-scope(no-panic-in-lib): rendering helper, panics acceptable\nfn render() {\n    a.unwrap();\n    b.expect(\"x\");\n}\nfn after() { c.unwrap(); }\n",
        );
        assert_eq!(
            found,
            vec![("no-panic-in-lib".into(), 6)],
            "only the item after the scope fires"
        );
    }

    #[test]
    fn stale_line_allow_is_an_error() {
        let found =
            lint_tokens("// sgp-lint: allow(no-panic-in-lib): was needed once\nlet x = 1;\n");
        assert_eq!(found, vec![("stale-allow".into(), 1)]);
    }

    #[test]
    fn unused_file_allow_is_a_warning() {
        let found = lint_tokens(
            "// sgp-lint: allow-file(no-hash-iteration): legacy exemption\nlet x = 1;\n",
        );
        assert_eq!(found, vec![("unused-allow".into(), 1)]);
    }

    #[test]
    fn thread_discipline_flags_sync_types_anywhere() {
        assert_eq!(
            lint_tokens("use std::sync::Mutex;"),
            vec![("thread-discipline".into(), 1)],
            "naming a lock type fires even in an import"
        );
        assert_eq!(
            lint_tokens("fn f() { let b = std::sync::Barrier::new(2); }"),
            vec![("thread-discipline".into(), 1)]
        );
    }

    #[test]
    fn thread_discipline_spawn_needs_call_position() {
        assert_eq!(
            lint_tokens("fn f() { std::thread::spawn(worker); }"),
            vec![("thread-discipline".into(), 1)]
        );
        // Turbofish constructor calls are call position too.
        assert_eq!(
            lint_tokens("fn f() { let (tx, rx) = bounded::<u32>(1); }"),
            vec![("thread-discipline".into(), 1)]
        );
        // Mere mentions are not: a local named `channel`, a spawn-ish
        // fn name, or `bounded` in prose/comment positions.
        assert!(lint_tokens("fn f() { let channel = 3; }").is_empty());
        assert!(lint_tokens("fn spawn_rate() -> u32 { 7 }").is_empty());
        assert!(lint_tokens("// retries are bounded by the diameter\nfn f() {}").is_empty());
    }

    #[test]
    fn thread_discipline_exempts_the_exec_backend() {
        let src = "fn f() { crossbeam::thread::scope(|s| { s.spawn(|_| {}); }).expect(\"x\"); }";
        let found = lint_tokens_as("sgp-partition", "crates/partition/src/exec.rs", src);
        assert!(
            found.iter().all(|(rule, _)| rule != "thread-discipline"),
            "exec.rs owns concurrency by design: {found:?}"
        );
        // The same tokens in any other partition file do fire.
        let found = lint_tokens_as("sgp-partition", "crates/partition/src/loaders.rs", src);
        assert!(found.iter().any(|(rule, _)| rule == "thread-discipline"), "{found:?}");
    }

    #[test]
    fn ordering_policy_requires_qualification() {
        assert_eq!(
            lint_tokens("fn f(x: &A) { x.0.fetch_add(1, Relaxed); }"),
            vec![("atomic-ordering-policy".into(), 1)],
            "bare ordering fires"
        );
        assert!(
            lint_tokens("fn f(x: &A) { x.0.fetch_add(1, Ordering::Relaxed); }").is_empty(),
            "qualified Relaxed is the blessed default"
        );
    }

    #[test]
    fn ordering_policy_gates_strong_orderings_behind_allows() {
        assert_eq!(
            lint_tokens("fn f(x: &A) { x.0.load(Ordering::SeqCst); }"),
            vec![("atomic-ordering-policy".into(), 1)]
        );
        let allowed = lint_tokens(
            "// sgp-lint: allow(atomic-ordering-policy): acquire pairs with the release in push\n\
             fn f(x: &A) { x.0.load(Ordering::Acquire); }\n",
        );
        assert!(allowed.is_empty(), "justified strong ordering passes: {allowed:?}");
        // std::cmp::Ordering variants never collide with the policy.
        assert!(lint_tokens("fn f() -> Ordering { Ordering::Less }").is_empty());
    }

    #[test]
    fn alloc_in_place_body_warns_in_partition_lib_only() {
        let src = "impl P for X {\n    fn place(&mut self, e: Edge) -> u32 {\n        let h: Vec<usize> = Vec::new();\n        h.len() as u32\n    }\n}\n";
        let found = lint_tokens_as("sgp-partition", "crates/partition/src/vertex_cut.rs", src);
        assert_eq!(found, vec![("no-alloc-in-place-loop".into(), 3)]);
        // Same tokens outside sgp-partition never fire.
        assert!(lint_tokens_as("sgp-engine", "crates/engine/src/lib.rs", src).is_empty());
    }

    #[test]
    fn alloc_rule_matches_macro_and_method_forms() {
        let mac = "fn place(&mut self) -> u32 { let v = vec![0; 4]; v[0] }\n";
        let found = lint_tokens_as("sgp-partition", "crates/partition/src/x.rs", mac);
        assert_eq!(found, vec![("no-alloc-in-place-loop".into(), 1)]);
        let method = "fn place(&mut self, xs: &[u32]) -> u32 {\n    xs.iter().map(|x| x + 1).collect::<Vec<_>>()[0]\n}\n";
        let found = lint_tokens_as("sgp-partition", "crates/partition/src/x.rs", method);
        assert_eq!(found, vec![("no-alloc-in-place-loop".into(), 2)]);
    }

    #[test]
    fn alloc_rule_skips_declarations_and_other_functions() {
        // A bodiless trait declaration has no span to flag.
        let decl = "trait P {\n    fn place(&mut self, e: Edge) -> u32;\n}\nfn helper() -> Vec<u32> { Vec::new() }\n";
        assert!(lint_tokens_as("sgp-partition", "crates/partition/src/x.rs", decl).is_empty());
        // `place_hybrid_edges` is not the hot-path method.
        let other = "fn place_hybrid_edges() -> Vec<u32> { Vec::new() }\n";
        assert!(lint_tokens_as("sgp-partition", "crates/partition/src/x.rs", other).is_empty());
    }

    #[test]
    fn alloc_rule_respects_allow_directives() {
        let src = "fn place(&mut self) -> u32 {\n    // sgp-lint: allow(no-alloc-in-place-loop): cold fallback path, hit once per graph\n    let v: Vec<u32> = Vec::new();\n    v.len() as u32\n}\n";
        let found = lint_tokens_as("sgp-partition", "crates/partition/src/x.rs", src);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn rule_catalogue_is_documented() {
        for rule in ALL_RULES {
            assert_ne!(describe(rule), "unknown rule", "{rule} lacks a description");
        }
    }
}
