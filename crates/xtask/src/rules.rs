//! The rule catalogue and its enforcement.
//!
//! Rules are scoped by *package name*, not path, so the same engine
//! lints the real workspace and the fixture corpus identically:
//!
//! | rule | scope |
//! |------|-------|
//! | `no-hash-iteration`   | `sgp-engine`, `sgp-db`, `sgp-core`, `sgp-partition`, `sgp-fault`, `sgp-trace` — all targets incl. tests |
//! | `no-panic-in-lib`     | the above + `sgp-graph` — library sources only, test spans skipped |
//! | `no-wallclock-in-sim` | the above + `sgp-graph` — all targets |
//! | `crate-attr-policy`   | every member |
//! | `workspace-dep-hygiene` | every member manifest + the root manifest |
//!
//! The bench harness (`sgp-bench`) and binary targets are outside the
//! determinism scopes: wall-clock footers and CLI conveniences live
//! there by design.

use crate::manifest::Manifest;
use crate::report::{Finding, Severity};
use crate::scan::{DirectiveScope, ScannedFile};
use crate::workspace::{FileKind, Member, SourceFile, Workspace};

/// Rule: hash-container iteration order is nondeterministic.
pub const NO_HASH_ITERATION: &str = "no-hash-iteration";
/// Rule: panicking constructs in library code.
pub const NO_PANIC_IN_LIB: &str = "no-panic-in-lib";
/// Rule: crate roots must carry the policy attributes.
pub const CRATE_ATTR_POLICY: &str = "crate-attr-policy";
/// Rule: wall-clock and ambient randomness in deterministic simulators.
pub const NO_WALLCLOCK_IN_SIM: &str = "no-wallclock-in-sim";
/// Rule: manifests must inherit workspace dependencies and lints.
pub const WORKSPACE_DEP_HYGIENE: &str = "workspace-dep-hygiene";
/// Meta rule: malformed or unjustified allow directives.
pub const BAD_ALLOW_DIRECTIVE: &str = "bad-allow-directive";
/// Meta rule: allow directives that never suppressed anything.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// All enforceable rule ids (the two meta rules included, so directives
/// can be validated against this list).
pub const ALL_RULES: &[&str] = &[
    NO_HASH_ITERATION,
    NO_PANIC_IN_LIB,
    CRATE_ATTR_POLICY,
    NO_WALLCLOCK_IN_SIM,
    WORKSPACE_DEP_HYGIENE,
    BAD_ALLOW_DIRECTIVE,
    UNUSED_ALLOW,
];

/// One-line description per rule, for `sgp-xtask rules`.
pub fn describe(rule: &str) -> &'static str {
    match rule {
        NO_HASH_ITERATION => {
            "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or sort \
             before iterating (determinism-scoped crates)"
        }
        NO_PANIC_IN_LIB => {
            "unwrap()/expect()/panic!/todo!/unimplemented!/dbg! in non-test library code must be \
             rewritten as Result or carry a justified allow directive"
        }
        CRATE_ATTR_POLICY => {
            "every crate root must carry #![deny(unsafe_code)] and #![warn(missing_docs)]"
        }
        NO_WALLCLOCK_IN_SIM => {
            "std::time::Instant/SystemTime and thread_rng are forbidden in the deterministic \
             simulators; wall-clock belongs to the bench harness only"
        }
        WORKSPACE_DEP_HYGIENE => {
            "crate manifests must inherit dependencies (workspace = true, no inline versions) and \
             opt into [workspace.lints]"
        }
        BAD_ALLOW_DIRECTIVE => "sgp-lint allow directives must name a known rule and justify it",
        UNUSED_ALLOW => "allow directives that suppress nothing should be removed",
        _ => "unknown rule",
    }
}

/// Crates whose hash-container use breaks replay determinism.
const HASH_SCOPE: &[&str] =
    &["sgp-engine", "sgp-db", "sgp-core", "sgp-partition", "sgp-fault", "sgp-trace"];
/// Crates whose library code must be panic-free.
const PANIC_SCOPE: &[&str] =
    &["sgp-graph", "sgp-engine", "sgp-db", "sgp-core", "sgp-partition", "sgp-fault", "sgp-trace"];
/// Crates forbidden to read wall-clock or ambient randomness.
const WALLCLOCK_SCOPE: &[&str] =
    &["sgp-graph", "sgp-engine", "sgp-db", "sgp-core", "sgp-partition", "sgp-fault", "sgp-trace"];

fn in_scope(member: &Member, scope: &[&str]) -> bool {
    scope.contains(&member.name.as_str())
}

// ---------------------------------------------------------------------------
// Source-file rules
// ---------------------------------------------------------------------------

/// Tracks which findings a directive suppressed, to report unused ones.
struct AllowTable<'a> {
    scanned: &'a ScannedFile,
    used: Vec<bool>,
}

impl<'a> AllowTable<'a> {
    fn new(scanned: &'a ScannedFile) -> Self {
        AllowTable { scanned, used: vec![false; scanned.directives.len()] }
    }

    /// Is `(rule, line)` suppressed by a well-formed directive? Marks the
    /// directive used. Malformed directives (unknown rule, missing
    /// justification) never suppress.
    fn allows(&mut self, rule: &str, line: usize) -> bool {
        let mut hit = false;
        for (i, d) in self.scanned.directives.iter().enumerate() {
            if d.rule != rule || d.justification.is_empty() {
                continue;
            }
            let applies = match d.scope {
                DirectiveScope::File => true,
                DirectiveScope::Line => d.line == line || d.line + 1 == line,
            };
            if applies {
                self.used[i] = true;
                hit = true;
            }
        }
        hit
    }

    /// Emits `bad-allow-directive` and `unused-allow` findings.
    fn finish(self, findings: &mut Vec<Finding>) {
        for (i, d) in self.scanned.directives.iter().enumerate() {
            if d.rule.is_empty() || !ALL_RULES.contains(&d.rule.as_str()) {
                findings.push(Finding::new(
                    BAD_ALLOW_DIRECTIVE,
                    Severity::Error,
                    &self.scanned.rel,
                    d.line,
                    format!(
                        "malformed sgp-lint directive (unknown or missing rule name): `{}`",
                        d.raw.trim()
                    ),
                ));
            } else if d.justification.is_empty() {
                findings.push(Finding::new(
                    BAD_ALLOW_DIRECTIVE,
                    Severity::Error,
                    &self.scanned.rel,
                    d.line,
                    format!(
                        "allow({}) directive is missing its mandatory justification — write \
                         `// sgp-lint: allow({}): <why this is sound>`",
                        d.rule, d.rule
                    ),
                ));
            } else if !self.used[i] {
                findings.push(Finding::new(
                    UNUSED_ALLOW,
                    Severity::Warn,
                    &self.scanned.rel,
                    d.line,
                    format!("allow({}) directive suppresses nothing; remove it", d.rule),
                ));
            }
        }
    }
}

/// Runs every source-level rule over one scanned file.
pub fn check_source_file(
    member: &Member,
    file: &SourceFile,
    scanned: &ScannedFile,
    findings: &mut Vec<Finding>,
) {
    let mut allows = AllowTable::new(scanned);

    let hash_applies = in_scope(member, HASH_SCOPE);
    let wallclock_applies = in_scope(member, WALLCLOCK_SCOPE);
    let panic_applies = in_scope(member, PANIC_SCOPE) && file.kind == FileKind::LibSrc;

    for (idx, masked) in scanned.masked.iter().enumerate() {
        let line = idx + 1;
        if hash_applies {
            for ident in ["HashMap", "HashSet"] {
                if has_ident(masked, ident) && !allows.allows(NO_HASH_ITERATION, line) {
                    findings.push(Finding::new(
                        NO_HASH_ITERATION,
                        Severity::Error,
                        &scanned.rel,
                        line,
                        format!(
                            "`{ident}` has nondeterministic iteration order — use \
                             `BTreeMap`/`BTreeSet` or collect+sort (bit-for-bit reproduction \
                             scope)"
                        ),
                    ));
                    break; // one finding per line per rule
                }
            }
        }
        if wallclock_applies {
            for ident in ["Instant", "SystemTime", "thread_rng"] {
                if has_ident(masked, ident) && !allows.allows(NO_WALLCLOCK_IN_SIM, line) {
                    findings.push(Finding::new(
                        NO_WALLCLOCK_IN_SIM,
                        Severity::Error,
                        &scanned.rel,
                        line,
                        format!(
                            "`{ident}` reads ambient machine state; deterministic simulators \
                             must take seeds/counters as inputs (wall-clock belongs to \
                             sgp-bench footers)"
                        ),
                    ));
                    break;
                }
            }
        }
        if panic_applies && !scanned.is_test[idx] {
            let method = ["unwrap", "expect", "unwrap_err", "expect_err"]
                .iter()
                .find(|m| has_method_call(masked, m));
            let mac =
                ["panic", "todo", "unimplemented", "dbg"].iter().find(|m| has_macro(masked, m));
            if let Some(found) = method.or(mac) {
                if !allows.allows(NO_PANIC_IN_LIB, line) {
                    let what = if method.is_some() {
                        format!("`.{found}()`")
                    } else {
                        format!("`{found}!`")
                    };
                    findings.push(Finding::new(
                        NO_PANIC_IN_LIB,
                        Severity::Error,
                        &scanned.rel,
                        line,
                        format!(
                            "{what} can panic mid-experiment — return a `Result` (see \
                             sgp_core::SgpError) or justify with an allow directive"
                        ),
                    ));
                }
            }
        }
    }
    allows.finish(findings);
}

/// Checks the crate-root attribute policy for one member.
pub fn check_crate_root_attrs(member: &Member, findings: &mut Vec<Finding>) {
    let root_rel = format!("{}/src/lib.rs", dir_rel(member));
    let root = member
        .files
        .iter()
        .find(|f| f.rel.ends_with("src/lib.rs"))
        .or_else(|| member.files.iter().find(|f| f.rel.ends_with("src/main.rs")));
    let Some(root) = root else {
        findings.push(Finding::new(
            CRATE_ATTR_POLICY,
            Severity::Error,
            &root_rel,
            0,
            "crate has neither src/lib.rs nor src/main.rs to carry the policy attributes",
        ));
        return;
    };
    let Ok(text) = std::fs::read_to_string(&root.path) else {
        findings.push(Finding::io_error(&root.rel, "unreadable crate root"));
        return;
    };
    // Check the masked source so an attribute mentioned in a comment or
    // string does not satisfy the policy.
    let scanned = crate::scan::scan_source(&text, &root.rel);
    let normalized: String =
        scanned.masked.join("\n").chars().filter(|c| !c.is_whitespace()).collect();
    for (attr, needle, alt) in [
        ("#![deny(unsafe_code)]", "#![deny(unsafe_code)]", "#![forbid(unsafe_code)]"),
        ("#![warn(missing_docs)]", "#![warn(missing_docs)]", "#![deny(missing_docs)]"),
    ] {
        let needle: String = needle.chars().filter(|c| !c.is_whitespace()).collect();
        let alt: String = alt.chars().filter(|c| !c.is_whitespace()).collect();
        if !normalized.contains(&needle) && !normalized.contains(&alt) {
            findings.push(Finding::new(
                CRATE_ATTR_POLICY,
                Severity::Error,
                &root.rel,
                1,
                format!("crate root is missing `{attr}` (or a stricter equivalent)"),
            ));
        }
    }
}

fn dir_rel(member: &Member) -> String {
    member.manifest_rel.trim_end_matches("Cargo.toml").trim_end_matches('/').to_string()
}

// ---------------------------------------------------------------------------
// Manifest rules
// ---------------------------------------------------------------------------

const DEP_SECTIONS: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];

/// Checks the root manifest: `[workspace.lints]` must exist so member
/// `[lints] workspace = true` tables have something to inherit.
pub fn check_root_manifest(ws: &Workspace, findings: &mut Vec<Finding>) {
    let m = &ws.root_manifest;
    let has_lints = m
        .sections
        .iter()
        .any(|s| s.name == "workspace.lints" || s.name.starts_with("workspace.lints."));
    if !has_lints {
        findings.push(Finding::new(
            WORKSPACE_DEP_HYGIENE,
            Severity::Error,
            &m.rel,
            0,
            "root manifest has no [workspace.lints] table for members to inherit",
        ));
    }
}

/// Checks one member manifest: workspace-inherited deps, no inline
/// versions, and a `[lints] workspace = true` opt-in.
pub fn check_member_manifest(member: &Member, findings: &mut Vec<Finding>) {
    let m = &member.manifest;
    check_dep_sections(m, findings);
    let lints_ok = m
        .section("lints")
        .map(|s| s.entries.iter().any(|e| e.key == "workspace" && e.value == "true"))
        .unwrap_or(false);
    if !lints_ok {
        findings.push(Finding::new(
            WORKSPACE_DEP_HYGIENE,
            Severity::Error,
            &m.rel,
            0,
            "manifest must opt into the shared lint policy with `[lints]\\nworkspace = true`",
        ));
    }
}

fn check_dep_sections(m: &Manifest, findings: &mut Vec<Finding>) {
    for section in &m.sections {
        if !DEP_SECTIONS.contains(&section.name.as_str()) {
            continue;
        }
        for entry in &section.entries {
            let inherited = entry.key.ends_with(".workspace")
                || entry.value.contains("workspace = true")
                || entry.value.contains("workspace=true");
            if inherited {
                if entry.value.contains("version") {
                    findings.push(Finding::new(
                        WORKSPACE_DEP_HYGIENE,
                        Severity::Error,
                        &m.rel,
                        entry.line,
                        format!(
                            "dependency `{}` mixes `workspace = true` with an inline version",
                            entry.key
                        ),
                    ));
                }
                continue;
            }
            findings.push(Finding::new(
                WORKSPACE_DEP_HYGIENE,
                Severity::Error,
                &m.rel,
                entry.line,
                format!(
                    "dependency `{}` must be workspace-inherited (`{}.workspace = true` with the \
                     version pinned once in [workspace.dependencies])",
                    entry.key, entry.key
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Masked-line matchers
// ---------------------------------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Word-boundary identifier search over a masked line.
pub fn has_ident(masked: &str, ident: &str) -> bool {
    find_ident_positions(masked, ident).next().is_some()
}

fn find_ident_positions<'a>(masked: &'a str, ident: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = masked.as_bytes();
    masked.match_indices(ident).filter_map(move |(pos, _)| {
        let before_ok = pos == 0 || !is_ident_char(bytes[pos - 1] as char);
        let after = pos + ident.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after] as char);
        (before_ok && after_ok).then_some(pos)
    })
}

/// Matches `.name(` — a method call — allowing whitespace around the dot
/// and before the parenthesis.
pub fn has_method_call(masked: &str, name: &str) -> bool {
    let bytes = masked.as_bytes();
    for pos in find_ident_positions(masked, name) {
        // Walk back over whitespace to find the receiver dot.
        let mut i = pos;
        let mut saw_dot = false;
        while i > 0 {
            i -= 1;
            let c = bytes[i] as char;
            if c.is_whitespace() {
                continue;
            }
            saw_dot = c == '.';
            break;
        }
        if !saw_dot {
            continue;
        }
        // Walk forward over whitespace to require the call parenthesis.
        let mut j = pos + name.len();
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'(' {
            return true;
        }
    }
    false
}

/// Matches `name!` — a macro invocation.
pub fn has_macro(masked: &str, name: &str) -> bool {
    let bytes = masked.as_bytes();
    for pos in find_ident_positions(masked, name) {
        let mut j = pos + name.len();
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'!' {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_respects_word_boundaries() {
        assert!(has_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!has_ident("type MyHashMapLike = ();", "HashMap"));
        assert!(!has_ident("let hashmap = 1;", "HashMap"));
        assert!(has_ident("HashSet::new()", "HashSet"));
    }

    #[test]
    fn method_call_matcher() {
        assert!(has_method_call("let x = y.unwrap();", "unwrap"));
        assert!(has_method_call("y . unwrap ()", "unwrap"));
        assert!(has_method_call("opt.expect(\"msg\")", "expect"));
        assert!(!has_method_call("let x = y.unwrap_or(0);", "unwrap"));
        assert!(!has_method_call("fn unwrap() {}", "unwrap"));
        assert!(!has_method_call("let unwrap = 3;", "unwrap"));
    }

    #[test]
    fn macro_matcher() {
        assert!(has_macro("panic!(\"boom\")", "panic"));
        assert!(has_macro("todo! ()", "todo"));
        assert!(!has_macro("should_panic(expected = x)", "panic"));
        assert!(!has_macro("let panic = 1;", "panic"));
    }

    #[test]
    fn rule_catalogue_is_documented() {
        for rule in ALL_RULES {
            assert_ne!(describe(rule), "unknown rule", "{rule} lacks a description");
        }
    }
}
