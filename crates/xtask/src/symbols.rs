//! Workspace symbol table: every function and enum definition, parsed
//! once per file and indexed for the call graph and the semantic rules.
//!
//! Built from the [`crate::parser`] item trees over every scanned file.
//! Resolution is *name-based and conservative*: the table maps a bare
//! function name to every definition with that name anywhere in the
//! workspace, and the call graph ([`crate::callgraph`]) adds an edge to
//! all of them. That over-approximates real dispatch (two unrelated
//! `fn len` definitions alias), which is the sound direction for the
//! panic-reachability rule — it can report a path that the compiler
//! would not take, but never misses one it would.

use crate::ast::{File, Item, ItemKind};
use crate::parser;
use crate::workspace::Workspace;
use crate::ScannedEntry;
use std::collections::BTreeMap;

/// One function definition found in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into the scanned-entry list (and into `SymbolTable::files`).
    pub entry: usize,
    /// Index into `ws.members`.
    pub member: usize,
    /// Package name of the owning member (e.g. `sgp-partition`).
    pub package: String,
    /// Workspace-relative file path.
    pub rel: String,
    /// Bare function name.
    pub name: String,
    /// Qualified display name: `<package>::<container path>::<name>`.
    pub qual: String,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// Inclusive `{`/`}` token indices of the body, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// Unrestricted `pub`, as declared on the item (container
    /// visibility is not chased; see [`FnDef::is_entry_point`]).
    pub is_pub: bool,
    /// True when the definition line falls inside a `#[cfg(test)]` span
    /// or the file is a test/bench target.
    pub is_test: bool,
    /// True when the fn is an `impl`/`trait` member (callable as a
    /// method).
    pub in_impl: bool,
}

impl FnDef {
    /// Is this fn a public entry point for reachability purposes?
    /// Conservative: a `pub fn` at module top level or in an `impl` is
    /// an entry even if an enclosing `mod` is private — the rule would
    /// rather re-check an unreachable pub fn than miss an exported one.
    pub fn is_entry_point(&self) -> bool {
        self.is_pub && !self.is_test
    }
}

/// One enum definition (name, variants) found in the workspace.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Index into the scanned-entry list.
    pub entry: usize,
    /// Package name of the owning member.
    pub package: String,
    /// Workspace-relative file path.
    pub rel: String,
    /// Enum name.
    pub name: String,
    /// Variant names with their declaration lines.
    pub variants: Vec<(String, usize)>,
}

/// The workspace symbol table: parsed files plus fn/enum indexes.
pub struct SymbolTable {
    /// Parsed item tree per scanned entry, index-aligned with the
    /// `entries` slice the table was built from.
    pub files: Vec<File>,
    /// Every fn definition, in deterministic (file, line) order.
    pub fns: Vec<FnDef>,
    /// Bare name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Every enum definition.
    pub enums: Vec<EnumDef>,
}

impl SymbolTable {
    /// Parses every scanned file and collects fn/enum definitions.
    pub fn build(ws: &Workspace, entries: &[ScannedEntry]) -> SymbolTable {
        let mut files = Vec::with_capacity(entries.len());
        let mut fns = Vec::new();
        let mut enums = Vec::new();
        for (ei, e) in entries.iter().enumerate() {
            let src = &e.scanned.source;
            let file = parser::parse(src, &e.scanned.tokens);
            let package = ws.members[e.member].name.clone();
            let mut path = vec![package.clone()];
            for item in &file.items {
                collect(item, ei, e, &package, &mut path, false, &mut fns, &mut enums);
            }
            files.push(file);
        }
        fns.sort_by(|a, b| {
            (a.rel.as_str(), a.line, a.name.as_str()).cmp(&(
                b.rel.as_str(),
                b.line,
                b.name.as_str(),
            ))
        });
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        SymbolTable { files, fns, by_name, enums }
    }

    /// The enum named `name` inside package `pkg`, if defined exactly
    /// once there (the exhaustiveness rule requires a unique source of
    /// truth).
    pub fn unique_enum(&self, pkg: &str, name: &str) -> Option<&EnumDef> {
        let mut found = None;
        for e in &self.enums {
            if e.package == pkg && e.name == name {
                if found.is_some() {
                    return None;
                }
                found = Some(e);
            }
        }
        found
    }
}

fn collect(
    item: &Item,
    entry: usize,
    e: &ScannedEntry,
    package: &str,
    path: &mut Vec<String>,
    in_impl: bool,
    fns: &mut Vec<FnDef>,
    enums: &mut Vec<EnumDef>,
) {
    match item.kind {
        ItemKind::Fn => {
            let name = match &item.name {
                Some(n) => n.clone(),
                None => return,
            };
            let qual = {
                let mut q = path.join("::");
                q.push_str("::");
                q.push_str(&name);
                q
            };
            let is_test = e.scanned.is_test_line(item.line)
                || matches!(
                    e.kind,
                    crate::workspace::FileKind::TestFile
                        | crate::workspace::FileKind::BenchFile
                        | crate::workspace::FileKind::ExampleFile
                );
            fns.push(FnDef {
                entry,
                member: e.member,
                package: package.to_string(),
                rel: e.scanned.rel.clone(),
                name,
                qual,
                line: item.line,
                body: item.body,
                is_pub: item.is_pub,
                is_test,
                in_impl,
            });
        }
        ItemKind::Enum => {
            if let Some(name) = &item.name {
                enums.push(EnumDef {
                    entry,
                    package: package.to_string(),
                    rel: e.scanned.rel.clone(),
                    name: name.clone(),
                    variants: item.variants.iter().map(|v| (v.name.clone(), v.line)).collect(),
                });
            }
        }
        ItemKind::Impl | ItemKind::Mod | ItemKind::Trait => {
            let seg = item.name.clone().unwrap_or_else(|| "_".to_string());
            let child_in_impl = matches!(item.kind, ItemKind::Impl | ItemKind::Trait);
            path.push(seg);
            for child in &item.children {
                collect(child, entry, e, package, path, child_in_impl, fns, enums);
            }
            path.pop();
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;
    use crate::workspace::FileKind;

    fn entry_for(src: &str, rel: &str) -> ScannedEntry {
        ScannedEntry { member: 0, kind: FileKind::LibSrc, scanned: scan_source(src, rel) }
    }

    fn table_for(src: &str) -> SymbolTable {
        // A workspace with one synthetic member; only `name` is read.
        let ws = fake_ws();
        SymbolTable::build(&ws, &[entry_for(src, "crates/p/src/lib.rs")])
    }

    fn fake_ws() -> Workspace {
        use crate::manifest::parse_manifest;
        use crate::workspace::Member;
        Workspace {
            root: std::path::PathBuf::from("."),
            root_manifest: parse_manifest("[workspace]\n", "Cargo.toml"),
            members: vec![Member {
                name: "sgp-test".to_string(),
                dir: std::path::PathBuf::from("crates/p"),
                manifest: parse_manifest("[package]\nname = \"sgp-test\"\n", "crates/p/Cargo.toml"),
                manifest_rel: "crates/p/Cargo.toml".to_string(),
                files: Vec::new(),
                is_root_package: false,
            }],
        }
    }

    #[test]
    fn fns_in_impls_and_mods_get_qualified_names() {
        let src = "pub fn top() {}\nimpl Widget {\n    pub fn poke(&self) {}\n}\nmod inner {\n    fn hidden() {}\n}\n";
        let t = table_for(src);
        let quals: Vec<_> = t.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec!["sgp-test::top", "sgp-test::Widget::poke", "sgp-test::inner::hidden"]
        );
        assert!(t.fns[0].is_entry_point());
        assert!(t.fns[1].in_impl);
        assert!(!t.fns[2].is_pub);
    }

    #[test]
    fn test_code_is_not_an_entry_point() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n";
        let t = table_for(src);
        let real = t.fns.iter().find(|f| f.name == "real").expect("real");
        let helper = t.fns.iter().find(|f| f.name == "helper").expect("helper");
        assert!(real.is_entry_point());
        assert!(helper.is_test && !helper.is_entry_point());
    }

    #[test]
    fn enums_are_indexed_with_variant_lines() {
        let src = "pub enum Algorithm {\n    EcrHash,\n    Ldg,\n}\n";
        let t = table_for(src);
        let e = t.unique_enum("sgp-test", "Algorithm").expect("enum");
        assert_eq!(e.variants, vec![("EcrHash".to_string(), 2), ("Ldg".to_string(), 3)]);
    }
}
