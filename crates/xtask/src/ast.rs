//! Item-level AST for the semantic lint tier.
//!
//! The parser ([`crate::parser`]) groups the lossless token stream
//! ([`crate::lexer`]) into *items* — functions, types, impl blocks,
//! modules — without parsing expressions. Every node carries token
//! *ranges* into the original stream, never copies of text, so the tree
//! stays lossless by construction: `parser::emit` reassembles the file
//! byte-for-byte from the ranges alone (property-tested over every
//! workspace `.rs` file by `parser_roundtrip.rs`).
//!
//! Deliberate scope limits (documented in DESIGN.md §6):
//!
//! * Function bodies are opaque brace-matched token ranges; statements
//!   and expressions are not parsed. Rules that need structure inside a
//!   body (match arms, call sites) pattern-match over the body's token
//!   range with the helpers in [`crate::parser`].
//! * Nested `fn` items inside a body are *not* split out: their tokens
//!   belong to the enclosing function's body. The call graph therefore
//!   attributes a nested fn's panics to its parent (a sound
//!   over-approximation) and cannot resolve calls *to* it (an
//!   under-approximation, noted in the reachability rule's docs).
//! * Inner attributes (`#![…]`) and leading doc comments attach to the
//!   following item's span; the span partition stays exact either way.

/// The syntactic class of an [`Item`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(…) { … }` or a bodiless trait-method declaration.
    Fn,
    /// `struct` or `union` definition.
    Struct,
    /// `enum` definition; variants are extracted into [`Item::variants`].
    Enum,
    /// `impl … { … }`; members are parsed into [`Item::children`].
    Impl,
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// `trait Name { … }`; members are parsed into [`Item::children`].
    Trait,
    /// `use …;` or `extern crate …;`.
    Use,
    /// `const NAME: T = …;` (not `const fn`, which is [`ItemKind::Fn`]).
    Const,
    /// `static NAME: T = …;`.
    Static,
    /// `type Alias = …;`.
    TypeAlias,
    /// `macro_rules! name { … }`.
    MacroDef,
    /// An item-position macro invocation (`thread_local! { … }`).
    MacroInvocation,
    /// Anything the item grammar above does not cover; consumed
    /// conservatively to the next `;` or brace group so the span
    /// partition stays exact.
    Other,
}

/// One enum variant: its identifier and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumVariant {
    /// Variant identifier (payloads and discriminants are skipped).
    pub name: String,
    /// 1-based line of the identifier token.
    pub line: usize,
}

/// One parsed item. All ranges are half-open `[start, end)` indices
/// into the token stream the file was parsed from, except `body`,
/// which is the *inclusive* index pair of the `{` and `}` tokens.
#[derive(Debug, Clone)]
pub struct Item {
    /// Syntactic class.
    pub kind: ItemKind,
    /// Declared name, when the grammar position has one (`impl` blocks
    /// record the self-type's last path segment).
    pub name: Option<String>,
    /// 1-based line of the name (or of the introducing keyword).
    pub line: usize,
    /// True only for unrestricted `pub`; `pub(crate)`/`pub(super)` are
    /// not public entry points and stay false.
    pub is_pub: bool,
    /// Token range of the whole item, leading trivia and attributes
    /// included. Sibling spans tile their region with no gaps.
    pub span: (usize, usize),
    /// Indices of the `{` and `}` tokens of a braced body, if any.
    pub body: Option<(usize, usize)>,
    /// Parsed members of an `impl`/`mod`/`trait` body.
    pub children: Vec<Item>,
    /// Token range between the last child and the closing brace (the
    /// container's interior trailing trivia); set only when `children`
    /// semantics apply.
    pub body_trailing: Option<(usize, usize)>,
    /// Variants of an `enum` item.
    pub variants: Vec<EnumVariant>,
}

/// A parsed file: top-level items plus the trailing token range after
/// the last item (EOF trivia, or the whole file when there are no
/// items).
#[derive(Debug, Clone)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Token range after the last item.
    pub trailing: (usize, usize),
}

impl Item {
    /// Does this item's kind parse its body into [`Item::children`]?
    pub fn is_container(&self) -> bool {
        matches!(self.kind, ItemKind::Impl | ItemKind::Mod | ItemKind::Trait)
    }
}
