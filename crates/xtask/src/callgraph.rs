//! Conservative intra-workspace call graph over the symbol table.
//!
//! Edges are *name-resolved*: a call site `helper(…)` or `x.helper(…)`
//! inside an fn body adds an edge to **every** workspace fn named
//! `helper`. This over-approximates real dispatch (no type checking, no
//! path resolution beyond the last segment), which is the sound
//! direction for panic-reachability: the rule may surface a path the
//! compiler would never take, but cannot miss one it would. Calls to
//! names with no workspace definition (std, dependencies, locals that
//! shadow fns) resolve to nothing and add no edge.

use crate::lexer::{self, TokenKind};
use crate::parser::is_keyword;
use crate::rules::{is_call_position, is_method_call};
use crate::symbols::SymbolTable;
use std::collections::BTreeSet;

/// The workspace call graph; node indices are indices into
/// [`SymbolTable::fns`].
pub struct CallGraph {
    /// Outgoing edges per fn, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Scans every fn body for call sites and resolves them by name.
    pub fn build(symbols: &SymbolTable, entries: &[crate::ScannedEntry]) -> CallGraph {
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); symbols.fns.len()];
        for (fi, f) in symbols.fns.iter().enumerate() {
            let Some((open, close)) = f.body else { continue };
            let scanned = &entries[f.entry].scanned;
            let src = &scanned.source;
            let toks = &scanned.tokens;
            let mut out = BTreeSet::new();
            for i in open + 1..close {
                if toks[i].kind != TokenKind::Ident {
                    continue;
                }
                let name = toks[i].text(src);
                if is_keyword(name) {
                    continue;
                }
                let called = if is_method_call(src, toks, i) {
                    true
                } else if is_call_position(src, toks, i) {
                    // `fn helper(` is a (nested) definition, not a call.
                    !prev_is_fn_kw(src, toks, i)
                } else {
                    false
                };
                if !called {
                    continue;
                }
                if let Some(defs) = symbols.by_name.get(name) {
                    out.extend(defs.iter().copied().filter(|&d| d != fi));
                }
            }
            edges[fi] = out.into_iter().collect();
        }
        CallGraph { edges }
    }

    /// Multi-source BFS from `sources`. Returns, per fn index, `None`
    /// (unreached), or `Some(parent)` where a source's parent is
    /// itself. Sources are visited in the given order, so paths are
    /// deterministic.
    pub fn reachable(&self, sources: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.edges.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            if parent[s].is_none() {
                parent[s] = Some(s);
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// The call path from the BFS source down to `target` (inclusive),
    /// as indices into [`SymbolTable::fns`]. Empty if unreached.
    pub fn path_to(&self, parent: &[Option<usize>], target: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut at = target;
        loop {
            match parent[at] {
                None => return Vec::new(),
                Some(p) => {
                    path.push(at);
                    if p == at {
                        break;
                    }
                    at = p;
                }
            }
        }
        path.reverse();
        path
    }

    /// Renders the subgraph reachable from `roots` as deterministic
    /// Graphviz DOT (nodes sorted by qualified name; test fns excluded
    /// from roots by the caller).
    pub fn to_dot(&self, symbols: &SymbolTable, roots: &[usize]) -> String {
        let parent = self.reachable(roots);
        let mut nodes: Vec<usize> =
            (0..self.edges.len()).filter(|&i| parent[i].is_some()).collect();
        nodes.sort_by(|&a, &b| symbols.fns[a].qual.cmp(&symbols.fns[b].qual));
        let root_set: BTreeSet<usize> = roots.iter().copied().collect();
        let mut out = String::from(
            "digraph callgraph {\n    rankdir=LR;\n    node [shape=box, fontsize=10];\n",
        );
        for &n in &nodes {
            let f = &symbols.fns[n];
            let shape = if root_set.contains(&n) { ", style=bold" } else { "" };
            out.push_str(&format!(
                "    \"{}\" [label=\"{}\\n{}:{}\"{}];\n",
                f.qual, f.qual, f.rel, f.line, shape
            ));
        }
        let mut edge_lines = Vec::new();
        for &n in &nodes {
            for &m in &self.edges[n] {
                if parent[m].is_some() {
                    edge_lines.push(format!(
                        "    \"{}\" -> \"{}\";\n",
                        symbols.fns[n].qual, symbols.fns[m].qual
                    ));
                }
            }
        }
        edge_lines.sort();
        edge_lines.dedup();
        for l in edge_lines {
            out.push_str(&l);
        }
        out.push_str("}\n");
        out
    }
}

/// Is the previous non-trivia token before `i` the `fn` keyword?
fn prev_is_fn_kw(src: &str, toks: &[crate::lexer::Token], i: usize) -> bool {
    (0..i)
        .rev()
        .find(|&j| !lexer::is_trivia(toks[j].kind))
        .is_some_and(|j| toks[j].kind == TokenKind::Ident && toks[j].text(src) == "fn")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::parse_manifest;
    use crate::scan::scan_source;
    use crate::workspace::{FileKind, Member, Workspace};
    use crate::ScannedEntry;

    fn ws(names: &[&str]) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("."),
            root_manifest: parse_manifest("[workspace]\n", "Cargo.toml"),
            members: names
                .iter()
                .map(|n| Member {
                    name: n.to_string(),
                    dir: std::path::PathBuf::from(format!("crates/{n}")),
                    manifest: parse_manifest(
                        &format!("[package]\nname = \"{n}\"\n"),
                        "crates/x/Cargo.toml",
                    ),
                    manifest_rel: format!("crates/{n}/Cargo.toml"),
                    files: Vec::new(),
                    is_root_package: false,
                })
                .collect(),
        }
    }

    fn entry(member: usize, rel: &str, src: &str) -> ScannedEntry {
        ScannedEntry { member, kind: FileKind::LibSrc, scanned: scan_source(src, rel) }
    }

    fn idx(t: &SymbolTable, qual: &str) -> usize {
        t.fns.iter().position(|f| f.qual == qual).unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn direct_method_and_cross_crate_edges() {
        let a = "pub fn entry() { helper(); }\nfn helper() { Widget::poke_all(); }\npub struct Widget;\nimpl Widget {\n    pub fn poke_all() { let w = Widget; w.poke(); }\n    fn poke(&self) { sgp_b::remote(); }\n}\n";
        let b = "pub fn remote() {}\n";
        let ws = ws(&["sgp-a", "sgp-b"]);
        let entries = vec![entry(0, "crates/a/src/lib.rs", a), entry(1, "crates/b/src/lib.rs", b)];
        let t = SymbolTable::build(&ws, &entries);
        let g = CallGraph::build(&t, &entries);

        let entry_fn = idx(&t, "sgp-a::entry");
        let helper = idx(&t, "sgp-a::helper");
        let poke_all = idx(&t, "sgp-a::Widget::poke_all");
        let poke = idx(&t, "sgp-a::Widget::poke");
        let remote = idx(&t, "sgp-b::remote");

        assert_eq!(g.edges[entry_fn], vec![helper], "direct call");
        assert!(g.edges[poke_all].contains(&poke), "method call resolves by name");
        assert!(g.edges[poke].contains(&remote), "cross-crate path call");

        let parent = g.reachable(&[entry_fn]);
        assert!(parent[remote].is_some(), "entry -> helper -> poke_all -> poke -> remote");
        let path = g.path_to(&parent, remote);
        let quals: Vec<_> = path.iter().map(|&i| t.fns[i].qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "sgp-a::entry",
                "sgp-a::helper",
                "sgp-a::Widget::poke_all",
                "sgp-a::Widget::poke",
                "sgp-b::remote"
            ]
        );
    }

    #[test]
    fn shadowed_name_without_call_syntax_is_not_an_edge() {
        let src = "pub fn entry() -> u32 { let helper = 5; helper + 1 }\nfn helper() {}\n";
        let ws = ws(&["sgp-a"]);
        let entries = vec![entry(0, "crates/a/src/lib.rs", src)];
        let t = SymbolTable::build(&ws, &entries);
        let g = CallGraph::build(&t, &entries);
        assert!(g.edges[idx(&t, "sgp-a::entry")].is_empty(), "no call syntax, no edge");
    }

    #[test]
    fn nested_fn_definition_is_not_a_call() {
        let src = "pub fn outer() { fn inner() {} inner(); }\nfn unrelated() {}\n";
        let ws = ws(&["sgp-a"]);
        let entries = vec![entry(0, "crates/a/src/lib.rs", src)];
        let t = SymbolTable::build(&ws, &entries);
        let g = CallGraph::build(&t, &entries);
        // `inner` is not split into its own FnDef (nested fns stay in the
        // parent body), so the call to it resolves to nothing; the `fn
        // inner` keyword sequence itself must not create a self-edge.
        assert!(g.edges[idx(&t, "sgp-a::outer")].is_empty());
    }

    #[test]
    fn dot_output_is_deterministic_and_rooted() {
        let src = "pub fn entry() { helper(); }\nfn helper() {}\nfn orphan() {}\n";
        let ws = ws(&["sgp-a"]);
        let entries = vec![entry(0, "crates/a/src/lib.rs", src)];
        let t = SymbolTable::build(&ws, &entries);
        let g = CallGraph::build(&t, &entries);
        let dot = g.to_dot(&t, &[idx(&t, "sgp-a::entry")]);
        assert!(dot.contains("\"sgp-a::entry\" -> \"sgp-a::helper\";"));
        assert!(!dot.contains("orphan"), "unreached fns stay out of the artifact");
        assert_eq!(dot, g.to_dot(&t, &[idx(&t, "sgp-a::entry")]));
    }
}
