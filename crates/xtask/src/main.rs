//! `sgp-xtask` — workspace automation for the streaming graph
//! partitioning repo.
//!
//! ```text
//! cargo run -p sgp-xtask -- lint [--root DIR] [--format text|json|sarif] [--strict] [--diff REF] [--emit-callgraph PATH]
//! cargo run -p sgp-xtask -- rules
//! cargo run -p sgp-xtask -- trace-summary <trace.json> [--top N]
//! cargo run -p sgp-xtask -- bench-check [--kind ingest|fault] [--baseline PATH] [--fresh PATH] [--threshold PCT]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (warnings count only under
//! `--strict`), `2` usage or environment error.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use sgp_xtask::{render_json, render_sarif, render_text, rules, run_lint, summarize, LintConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
sgp-xtask — in-tree workspace automation

USAGE:
    sgp-xtask lint [--root DIR] [--format text|json|sarif] [--strict] [--diff REF] [--emit-callgraph PATH]
    sgp-xtask rules
    sgp-xtask trace-summary <trace.json> [--top N]
    sgp-xtask bench-check [--kind ingest|fault] [--baseline PATH] [--fresh PATH] [--threshold PCT]
    sgp-xtask help

COMMANDS:
    lint           Run the static-analysis rule catalogue over the workspace
    rules          List the rules and the allow-directive attachment semantics
    trace-summary  Render a trace dump (from `experiments --trace <path>`):
                   top spans by self cost, per-machine load, counters,
                   histogram quantiles
    bench-check    Compare a fresh bench summary (BENCH_ingest.json or
                   BENCH_fault.json) against the committed trajectory
                   point and fail on a throughput regression
    help           Show this message

LINT OPTIONS:
    --root DIR          Workspace root (default: ascend from cwd to the
                        nearest Cargo.toml with a [workspace] section)
    --format FORMAT     text (default), json (stable schema v1), or
                        sarif (SARIF 2.1.0 for CI annotation)
    --strict            Warnings also fail the run
    --diff REF          Report only findings in files changed vs. the git
                        ref (plus untracked files). The whole workspace is
                        still scanned so cross-file rules stay sound; this
                        filters the *report*, so keep a full-workspace
                        strict run as the merge gate.
    --emit-callgraph PATH
                        Also write the reachability call graph (the
                        subgraph reachable from the public entry points
                        of the determinism-scope crates) as Graphviz DOT

TRACE-SUMMARY OPTIONS:
    --top N             Span rows to show (default: 10)

BENCH-CHECK OPTIONS:
    --kind KIND         ingest (default): elements_per_sec per
                        (algorithm, mode) from BENCH_ingest.json;
                        fault: queries_per_sec per algorithm from
                        BENCH_fault.json
    --baseline PATH     Committed summary (default: <root>/BENCH_<kind>.json)
    --fresh PATH        Fresh bench output (default:
                        <root>/crates/bench/BENCH_<kind>.json, where the
                        bench binaries write it)
    --threshold PCT     Tolerated rate slowdown per row key (default: 20)

EXIT CODES:
    0  no findings (warnings allowed unless --strict)
    1  findings reported
    2  usage or environment error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("rules") => cmd_rules(),
        Some("trace-summary") => cmd_trace_summary(&args[1..]),
        Some("bench-check") => cmd_bench_check(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut strict = false;
    let mut diff_ref: Option<String> = None;
    let mut emit_callgraph: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root requires a directory"),
            },
            "--emit-callgraph" => match it.next() {
                Some(p) => emit_callgraph = Some(PathBuf::from(p)),
                None => return usage_error("--emit-callgraph requires an output path"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text|json|sarif)"))
                }
                None => return usage_error("--format requires text|json|sarif"),
            },
            "--strict" => strict = true,
            "--diff" => match it.next() {
                Some(r) => diff_ref = Some(r.clone()),
                None => return usage_error("--diff requires a git ref (e.g. origin/main)"),
            },
            other => return usage_error(&format!("unknown lint option `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match sgp_xtask::workspace::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut cfg = LintConfig::new(&root);
    cfg.strict = strict;
    cfg.emit_callgraph = emit_callgraph;
    if let Some(r) = &diff_ref {
        match changed_files(&root, r) {
            Ok(files) => cfg.only_files = Some(files),
            Err(e) => {
                eprintln!("error: --diff {r}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match run_lint(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Text => print!("{}", render_text(&report)),
        Format::Json => print!("{}", render_json(&report)),
        Format::Sarif => print!("{}", render_sarif(&report)),
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}

/// Lists workspace-relative files changed vs. `git_ref`, plus untracked
/// files, via the `git` CLI (the only place the linter shells out).
/// Uses `--name-status -M` so renames resolve to their *new* path and
/// deletions drop out entirely — a `--name-only` diff would report
/// paths that no longer exist, silently filtering every finding away.
fn changed_files(root: &Path, git_ref: &str) -> Result<Vec<String>, String> {
    let mut files: Vec<String> = git_lines(root, &["diff", "--name-status", "-M", git_ref])?
        .iter()
        .filter_map(|l| sgp_xtask::workspace::parse_name_status_line(l))
        .collect();
    files.extend(git_lines(root, &["ls-files", "--others", "--exclude-standard"])?);
    files.sort();
    files.dedup();
    Ok(files)
}

fn git_lines(root: &Path, args: &[&str]) -> Result<Vec<String>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()
        .map_err(|e| format!("cannot run git: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git {} failed: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect())
}

fn cmd_rules() -> ExitCode {
    for rule in rules::ALL_RULES {
        println!("{rule}\n    {}", rules::describe(rule));
    }
    println!(
        "\nallow directives (plain line comments only; doc comments never count):\n\
         \x20   // sgp-lint: allow(<rule>): <justification>\n\
         \x20       attaches to the directive's own line or the line immediately\n\
         \x20       after it (trailing-comment or line-above placement)\n\
         \x20   // sgp-lint: allow-scope(<rule>): <justification>\n\
         \x20       on its own line, covers the next brace-delimited item through\n\
         \x20       its closing brace (or the `;` of a braceless item)\n\
         \x20   // sgp-lint: allow-file(<rule>): <justification>\n\
         \x20       covers the whole file\n\
         \x20   The justification is mandatory. A line-scoped allow whose rule no\n\
         \x20   longer fires on its span is a stale-allow ERROR; unused scope/file\n\
         \x20   allows are unused-allow warnings."
    );
    ExitCode::SUCCESS
}

fn cmd_bench_check(args: &[String]) -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut threshold = 20.0f64;
    let mut kind = sgp_xtask::bench_check::BenchKind::Ingest;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kind" => {
                match it.next().and_then(|k| sgp_xtask::bench_check::BenchKind::from_name(k)) {
                    Some(k) => kind = k,
                    None => return usage_error("--kind requires ingest|fault"),
                }
            }
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage_error("--baseline requires a file path"),
            },
            "--fresh" => match it.next() {
                Some(p) => fresh = Some(PathBuf::from(p)),
                None => return usage_error("--fresh requires a file path"),
            },
            "--threshold" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 && pct < 100.0 => threshold = pct,
                _ => return usage_error("--threshold requires a percentage in (0, 100)"),
            },
            other => return usage_error(&format!("unknown bench-check option `{other}`")),
        }
    }
    let (baseline, fresh) = match (baseline, fresh) {
        (Some(b), Some(f)) => (b, f),
        (b, f) => {
            // Default both paths relative to the workspace root: the
            // committed trajectory point at the root, the fresh file
            // where the bench binary's package-rooted cwd leaves it.
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            let root = match sgp_xtask::workspace::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            (
                b.unwrap_or_else(|| root.join(kind.file_name())),
                f.unwrap_or_else(|| root.join("crates/bench").join(kind.file_name())),
            )
        }
    };
    let read = |path: &Path| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let report = read(&baseline)
        .and_then(|b| read(&fresh).map(|f| (b, f)))
        .and_then(|(b, f)| sgp_xtask::bench_check::check(&b, &f, threshold, kind));
    match report {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_trace_summary(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => top = n,
                _ => return usage_error("--top requires a positive integer"),
            },
            other if path.is_none() && !other.starts_with("--") => path = Some(other),
            other => return usage_error(&format!("unexpected trace-summary argument `{other}`")),
        }
    }
    let Some(path) = path else {
        return usage_error("trace-summary requires a trace file path");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match summarize(&text, top) {
        Ok(summary) => {
            print!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path} is not a valid trace document: {e}");
            ExitCode::from(1)
        }
    }
}
