//! Workspace discovery: members, manifests, and the `.rs` files each
//! rule scans.

use crate::manifest::{read_manifest, Manifest};
use std::path::{Path, PathBuf};

/// What part of a crate a source file belongs to — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/` (excluding `src/bin/` and
    /// `src/main.rs`).
    LibSrc,
    /// Binary source (`src/main.rs`, `src/bin/**`).
    BinSrc,
    /// Integration tests (`tests/*.rs`).
    TestFile,
    /// Benchmarks (`benches/*.rs`).
    BenchFile,
    /// Examples (`examples/*.rs`).
    ExampleFile,
}

/// One source file of a member.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Target classification.
    pub kind: FileKind,
}

/// One workspace member (or the root package).
#[derive(Debug)]
pub struct Member {
    /// Package name from `[package]`.
    pub name: String,
    /// Member directory, absolute.
    pub dir: PathBuf,
    /// Parsed manifest.
    pub manifest: Manifest,
    /// Workspace-relative manifest path.
    pub manifest_rel: String,
    /// All source files of this member.
    pub files: Vec<SourceFile>,
    /// Whether this member is the root package of the workspace.
    pub is_root_package: bool,
}

/// The discovered workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// The root manifest (may also define the root package).
    pub root_manifest: Manifest,
    /// All members, root package first when present.
    pub members: Vec<Member>,
}

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// contains a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir =
        start.canonicalize().map_err(|e| format!("cannot resolve {}: {e}", start.display()))?;
    loop {
        let candidate = dir.join("Cargo.toml");
        if candidate.is_file() {
            let text = std::fs::read_to_string(&candidate).map_err(|e| e.to_string())?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir);
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return Err("no workspace root (Cargo.toml with [workspace]) found".into()),
        }
    }
}

/// Discovers members and their files from the workspace root.
pub fn discover(root: &Path) -> Result<Workspace, String> {
    let root =
        root.canonicalize().map_err(|e| format!("cannot resolve {}: {e}", root.display()))?;
    let root_manifest_path = root.join("Cargo.toml");
    if !root_manifest_path.is_file() {
        return Err(format!("no Cargo.toml at {}", root.display()));
    }
    let root_manifest = read_manifest(&root_manifest_path, "Cargo.toml")?;

    let mut members = Vec::new();
    if root_manifest.has_section("package") {
        members.push(load_member(&root, &root, root_manifest.clone(), "Cargo.toml", true));
    }
    for pattern in root_manifest.workspace_members() {
        for dir in expand_member_pattern(&root, &pattern) {
            let manifest_path = dir.join("Cargo.toml");
            if !manifest_path.is_file() {
                continue;
            }
            let rel = rel_path(&root, &manifest_path);
            let manifest = read_manifest(&manifest_path, &rel)?;
            members.push(load_member(&root, &dir, manifest, &rel, false));
        }
    }
    Ok(Workspace { root, root_manifest, members })
}

/// Expands a `[workspace] members` entry: either a literal path or a
/// `dir/*` glob (the only glob shape Cargo manifests here use).
fn expand_member_pattern(root: &Path, pattern: &str) -> Vec<PathBuf> {
    if let Some(prefix) = pattern.strip_suffix("/*") {
        let base = root.join(prefix);
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&base)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        dirs
    } else {
        vec![root.join(pattern)]
    }
}

fn load_member(
    root: &Path,
    dir: &Path,
    manifest: Manifest,
    manifest_rel: &str,
    is_root_package: bool,
) -> Member {
    let name = manifest.package_name.clone().unwrap_or_else(|| "<unnamed>".to_string());
    let mut files = Vec::new();
    collect_rs(root, &dir.join("src"), FileKind::LibSrc, true, &mut files);
    collect_rs(root, &dir.join("tests"), FileKind::TestFile, false, &mut files);
    collect_rs(root, &dir.join("benches"), FileKind::BenchFile, false, &mut files);
    collect_rs(root, &dir.join("examples"), FileKind::ExampleFile, false, &mut files);
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Member {
        name,
        dir: dir.to_path_buf(),
        manifest,
        manifest_rel: manifest_rel.to_string(),
        files,
        is_root_package,
    }
}

/// Collects `.rs` files under `dir`. `recursive` descends into
/// subdirectories (used for `src/`); non-recursive collection matches
/// Cargo's target auto-discovery for `tests/`, `benches/` and
/// `examples/` (top-level files only), which also keeps lint fixture
/// trees under `tests/fixtures/` out of the real scan. Directories named
/// `fixtures` are always skipped.
fn collect_rs(root: &Path, dir: &Path, kind: FileKind, recursive: bool, out: &mut Vec<SourceFile>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if !recursive {
                continue;
            }
            let dirname = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if dirname == "fixtures" || dirname == "target" {
                continue;
            }
            collect_rs(root, &path, kind, true, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = rel_path(root, &path);
            let kind = classify(&rel, kind);
            out.push(SourceFile { path, rel, kind });
        }
    }
}

/// Refines `src/` files: `src/main.rs` and `src/bin/**` are binaries.
fn classify(rel: &str, kind: FileKind) -> FileKind {
    if kind == FileKind::LibSrc && (rel.ends_with("src/main.rs") || rel.contains("src/bin/")) {
        FileKind::BinSrc
    } else {
        kind
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Parses one line of `git diff --name-status -M` output into the path
/// that exists *now*, or `None` for paths the diff removed.
///
/// The `--diff` fast path must lint the post-change tree: a plain
/// `--name-only` diff reports the *old* path of a rename (which no
/// longer exists, so its findings can never match) and lists deleted
/// files (which cannot be scanned at all). Name-status lines look like:
///
/// ```text
/// M\tpath            modified — lint `path`
/// A\tpath            added — lint `path`
/// D\tpath            deleted — nothing to lint
/// R100\told\tnew     renamed — lint `new`, `old` is gone
/// C75\told\tnew      copied — lint `new`
/// ```
pub fn parse_name_status_line(line: &str) -> Option<String> {
    let mut parts = line.split('\t');
    let status = parts.next()?.trim();
    let first = parts.next()?.trim();
    match status.chars().next()? {
        'D' => None,
        'R' | 'C' => parts.next().map(|new| new.trim().to_string()),
        _ => Some(first.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_status_lines_resolve_to_current_paths() {
        assert_eq!(parse_name_status_line("M\tsrc/lib.rs"), Some("src/lib.rs".into()));
        assert_eq!(
            parse_name_status_line("A\tcrates/x/src/new.rs"),
            Some("crates/x/src/new.rs".into())
        );
        assert_eq!(
            parse_name_status_line("D\tsrc/gone.rs"),
            None,
            "deleted files cannot be linted"
        );
        assert_eq!(
            parse_name_status_line("R100\tsrc/old.rs\tsrc/new.rs"),
            Some("src/new.rs".into()),
            "a rename reports the post-change path, not the vanished one"
        );
        assert_eq!(parse_name_status_line("C75\tsrc/a.rs\tsrc/b.rs"), Some("src/b.rs".into()));
        assert_eq!(parse_name_status_line(""), None);
        assert_eq!(parse_name_status_line("R100"), None, "truncated rename line");
    }

    #[test]
    fn classify_bins() {
        assert_eq!(classify("crates/x/src/main.rs", FileKind::LibSrc), FileKind::BinSrc);
        assert_eq!(classify("crates/x/src/bin/tool.rs", FileKind::LibSrc), FileKind::BinSrc);
        assert_eq!(classify("crates/x/src/lib.rs", FileKind::LibSrc), FileKind::LibSrc);
        assert_eq!(classify("crates/x/src/engine.rs", FileKind::LibSrc), FileKind::LibSrc);
    }
}
