//! A minimal `Cargo.toml` section reader for the hygiene rule.
//!
//! This is not a general TOML parser — it reads exactly the shapes that
//! appear in Cargo manifests: `[section.header]` lines and single-line
//! `key = value` entries. Multi-line arrays are joined for the
//! `[workspace] members` list; everything else is inspected line by
//! line so findings carry accurate line numbers.

use std::path::Path;

/// One `key = value` entry inside a section.
#[derive(Debug, Clone)]
pub struct Entry {
    /// 1-based line number in the manifest.
    pub line: usize,
    /// The key, including any dotted suffix (`serde.workspace`).
    pub key: String,
    /// The raw value text after `=`, trimmed.
    pub value: String,
}

/// One `[section]` with its entries.
#[derive(Debug, Clone)]
pub struct Section {
    /// Header without brackets (e.g. `dependencies`,
    /// `workspace.lints.rust`).
    pub name: String,
    /// 1-based line of the header.
    pub line: usize,
    /// Entries in order of appearance.
    pub entries: Vec<Entry>,
}

/// A parsed manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Workspace-relative path (for findings).
    pub rel: String,
    /// `package.name`, when present.
    pub package_name: Option<String>,
    /// All sections in order.
    pub sections: Vec<Section>,
}

impl Manifest {
    /// Finds a section by exact name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// True when a section with this exact name exists.
    pub fn has_section(&self, name: &str) -> bool {
        self.section(name).is_some()
    }

    /// The `[workspace] members` globs/paths, when this is a workspace
    /// root manifest.
    pub fn workspace_members(&self) -> Vec<String> {
        let Some(ws) = self.section("workspace") else { return Vec::new() };
        let Some(entry) = ws.entries.iter().find(|e| e.key == "members") else {
            return Vec::new();
        };
        // The value is a (possibly multi-line, pre-joined) TOML array of
        // strings: ["crates/*", "tools/thing"].
        entry
            .value
            .trim_start_matches('[')
            .trim_end_matches(']')
            .split(',')
            .map(|p| p.trim().trim_matches('"').to_string())
            .filter(|p| !p.is_empty())
            .collect()
    }
}

/// Reads and parses a manifest file.
pub fn read_manifest(path: &Path, rel: &str) -> Result<Manifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Ok(parse_manifest(&text, rel))
}

/// Parses manifest text (entry point for unit tests).
pub fn parse_manifest(text: &str, rel: &str) -> Manifest {
    let mut sections: Vec<Section> = Vec::new();
    let mut package_name = None;
    // Implicit top-level "section" for keys before any header (unused by
    // Cargo manifests in practice, but keeps the parser total).
    let mut current = Section { name: String::new(), line: 0, entries: Vec::new() };

    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let raw = lines[i];
        let line = strip_toml_comment(raw).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            if !current.name.is_empty() || !current.entries.is_empty() {
                sections.push(std::mem::replace(
                    &mut current,
                    Section { name: String::new(), line: 0, entries: Vec::new() },
                ));
            }
            current = Section {
                name: line.trim_matches(['[', ']']).trim().to_string(),
                line: lineno,
                entries: Vec::new(),
            };
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            // Join multi-line arrays (only `members = [` needs this).
            if value.starts_with('[') && !value.ends_with(']') {
                while i < lines.len() {
                    let cont = strip_toml_comment(lines[i]).trim().to_string();
                    i += 1;
                    value.push(' ');
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
            }
            if current.name == "package" && key == "name" {
                package_name = Some(value.trim_matches('"').to_string());
            }
            current.entries.push(Entry { line: lineno, key, value });
        }
    }
    if !current.name.is_empty() || !current.entries.is_empty() {
        sections.push(current);
    }
    Manifest { rel: rel.to_string(), package_name, sections }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "sgp-demo" # trailing comment
version = "0.1.0"

[dependencies]
serde.workspace = true
rand = { workspace = true }
bad = "1.0"

[lints]
workspace = true
"#;

    #[test]
    fn parses_sections_and_package_name() {
        let m = parse_manifest(SAMPLE, "Cargo.toml");
        assert_eq!(m.package_name.as_deref(), Some("sgp-demo"));
        assert!(m.has_section("dependencies"));
        assert!(m.has_section("lints"));
        let deps = m.section("dependencies").unwrap();
        assert_eq!(deps.entries.len(), 3);
        assert_eq!(deps.entries[2].key, "bad");
        assert_eq!(deps.entries[2].value, "\"1.0\"");
    }

    #[test]
    fn hash_in_string_is_not_a_comment() {
        let m = parse_manifest("[package]\nname = \"a#b\"\n", "t");
        assert_eq!(m.package_name.as_deref(), Some("a#b"));
    }

    #[test]
    fn multiline_members_array_is_joined() {
        let m =
            parse_manifest("[workspace]\nmembers = [\n  \"crates/*\",\n  \"tools/x\",\n]\n", "t");
        assert_eq!(m.workspace_members(), vec!["crates/*".to_string(), "tools/x".to_string()]);
    }

    #[test]
    fn single_line_members() {
        let m = parse_manifest("[workspace]\nmembers = [\"crates/*\"]\n", "t");
        assert_eq!(m.workspace_members(), vec!["crates/*".to_string()]);
    }
}
