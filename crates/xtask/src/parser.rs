//! A hand-rolled, dependency-free item-level Rust parser.
//!
//! Layered on the lossless lexer: the input is a token stream, the
//! output an [`ast::File`] whose item spans *tile* the stream — every
//! token index belongs to exactly one item span or to an explicit
//! trailing range, recursively inside `impl`/`mod`/`trait` bodies too.
//! [`emit`] reconstructs the source byte-for-byte from the tree while
//! verifying that tiling invariant, which is what `parser_roundtrip.rs`
//! property-tests over every `.rs` file in the workspace.
//!
//! The grammar is the *item* grammar only: signatures are scanned just
//! far enough to find a name and the body's brace pair; bodies stay
//! opaque token ranges. Two helpers pattern-match inside bodies for the
//! semantic rules: [`match_exprs_in`] (match arms, for exhaustiveness)
//! and the keyword table [`is_keyword`] (shared with the call-graph
//! builder).

use crate::ast::{EnumVariant, File, Item, ItemKind};
use crate::lexer::{self, Token, TokenKind};

/// Rust keywords (2021 edition, plus reserved words that matter for
/// call-site detection). Identifiers in this table are never treated as
/// function names, variant names, or call candidates.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Is `s` a Rust keyword (see [`KEYWORDS`])?
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses `tokens` (lexed from `source`) into an item tree.
pub fn parse(source: &str, tokens: &[Token]) -> File {
    let (items, trailing) = parse_range(source, tokens, 0, tokens.len());
    File { items, trailing }
}

// ---------------------------------------------------------------------------
// Token-cursor helpers
// ---------------------------------------------------------------------------

fn skip_trivia(toks: &[Token], mut i: usize, hi: usize) -> usize {
    while i < hi && lexer::is_trivia(toks[i].kind) {
        i += 1;
    }
    i
}

/// Index of the next non-trivia token strictly after `i`, below `hi`.
fn next_nt(toks: &[Token], i: usize, hi: usize) -> Option<usize> {
    let j = skip_trivia(toks, i + 1, hi);
    (j < hi).then_some(j)
}

fn punct(src: &str, toks: &[Token], i: usize) -> Option<char> {
    (toks[i].kind == TokenKind::Punct).then(|| src[toks[i].start..toks[i].end].chars().next())?
}

fn ident<'s>(src: &'s str, toks: &[Token], i: usize) -> Option<&'s str> {
    (toks[i].kind == TokenKind::Ident).then(|| toks[i].text(src))
}

/// Index of the delimiter closing the group opened at `open` (any of
/// `(`/`[`/`{`; mixed nesting counts uniformly, which is exact for
/// well-formed code). Clamps to `hi - 1` on an unterminated group.
fn match_group(src: &str, toks: &[Token], open: usize, hi: usize) -> usize {
    let mut depth = 1i64;
    let mut j = open + 1;
    while j < hi {
        match punct(src, toks, j) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi.saturating_sub(1).max(open)
}

/// Scans forward from `from` at paren/bracket depth 0 for the first
/// body-opening `{` or item-terminating `;`. Used on signatures, where
/// braces never legitimately appear before the body.
enum Stop {
    Brace(usize),
    Semi(usize),
    End,
}

fn find_stop(src: &str, toks: &[Token], from: usize, hi: usize) -> Stop {
    let mut depth = 0i64;
    let mut j = from;
    while j < hi {
        match punct(src, toks, j) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') if depth <= 0 => return Stop::Brace(j),
            Some(';') if depth <= 0 => return Stop::Semi(j),
            Some('}') if depth <= 0 => return Stop::End,
            _ => {}
        }
        j += 1;
    }
    Stop::End
}

/// Consumes to the `;` terminating a `use`/`const`/`static`/`type`
/// item, tracking all delimiter kinds (initializers may contain brace
/// groups). Returns the index *past* the `;` (or `hi`).
fn consume_to_semi(src: &str, toks: &[Token], from: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut j = from;
    while j < hi {
        match punct(src, toks, j) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some(';') if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    hi
}

// ---------------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------------

/// Parses the token range `[lo, hi)` into items plus a trailing range.
/// The returned spans tile `[lo, hi)` exactly.
fn parse_range(src: &str, toks: &[Token], lo: usize, hi: usize) -> (Vec<Item>, (usize, usize)) {
    let mut items = Vec::new();
    let mut at = lo;
    loop {
        let first = skip_trivia(toks, at, hi);
        if first >= hi {
            return (items, (at, hi));
        }
        let item = parse_item(src, toks, at, first, hi);
        debug_assert!(item.span.1 > at, "parser must make progress");
        at = item.span.1;
        items.push(item);
    }
}

/// Parses one item whose span starts at `start` (leading trivia
/// included); `first` is the first non-trivia index. Always consumes at
/// least one token.
fn parse_item(src: &str, toks: &[Token], start: usize, first: usize, hi: usize) -> Item {
    let mut k = first;
    let mut is_pub = false;
    loop {
        k = skip_trivia(toks, k, hi);
        if k >= hi {
            return leaf(ItemKind::Other, None, toks[first].line, is_pub, start, hi);
        }
        if punct(src, toks, k) == Some('#') {
            // `#[…]` / `#![…]` attribute: skip the bracket group.
            let mut a = next_nt(toks, k, hi);
            if a.is_some_and(|j| punct(src, toks, j) == Some('!')) {
                a = a.and_then(|j| next_nt(toks, j, hi));
            }
            match a {
                Some(j) if punct(src, toks, j) == Some('[') => {
                    k = match_group(src, toks, j, hi) + 1;
                    continue;
                }
                _ => return other_item(src, toks, start, k, hi, is_pub),
            }
        }
        let Some(word) = ident(src, toks, k) else {
            return other_item(src, toks, start, k, hi, is_pub);
        };
        match word {
            "pub" => {
                is_pub = true;
                if let Some(n) = next_nt(toks, k, hi) {
                    if punct(src, toks, n) == Some('(') {
                        // `pub(crate)` / `pub(in path)`: restricted, not
                        // a public entry point.
                        is_pub = false;
                        k = match_group(src, toks, n, hi) + 1;
                        continue;
                    }
                    k = n;
                    continue;
                }
                return leaf(ItemKind::Other, None, toks[k].line, false, start, hi);
            }
            "default" | "async" | "unsafe" => match next_nt(toks, k, hi) {
                Some(n) => k = n,
                None => return leaf(ItemKind::Other, None, toks[k].line, is_pub, start, hi),
            },
            "extern" => {
                let n = next_nt(toks, k, hi);
                match n {
                    Some(j) if matches!(toks[j].kind, TokenKind::Str { .. }) => {
                        // `extern "C"` ABI modifier on an fn.
                        match next_nt(toks, j, hi) {
                            Some(m) => k = m,
                            None => {
                                return leaf(ItemKind::Other, None, toks[k].line, is_pub, start, hi)
                            }
                        }
                    }
                    Some(j) if ident(src, toks, j) == Some("crate") => {
                        let name = next_nt(toks, j, hi)
                            .and_then(|m| ident(src, toks, m))
                            .map(String::from);
                        let end = consume_to_semi(src, toks, j, hi);
                        return leaf(ItemKind::Use, name, toks[k].line, is_pub, start, end);
                    }
                    _ => return other_item(src, toks, start, k, hi, is_pub),
                }
            }
            "const" | "static" => {
                let n = next_nt(toks, k, hi);
                let next_word = n.and_then(|j| ident(src, toks, j));
                if matches!(next_word, Some("fn") | Some("unsafe") | Some("async") | Some("extern"))
                {
                    // `const fn` modifier chain — keep scanning.
                    k = n.expect("checked above");
                    continue;
                }
                // `static mut NAME`, `const NAME`.
                let name_at =
                    if next_word == Some("mut") { n.and_then(|j| next_nt(toks, j, hi)) } else { n };
                let name = name_at.and_then(|j| ident(src, toks, j)).map(String::from);
                let kind = if word == "const" { ItemKind::Const } else { ItemKind::Static };
                let end = consume_to_semi(src, toks, k, hi);
                return leaf(kind, name, toks[k].line, is_pub, start, end);
            }
            "fn" => return parse_fn(src, toks, start, k, is_pub, hi),
            "struct" | "union" => return parse_typedef(src, toks, start, k, is_pub, hi, false),
            "enum" => return parse_typedef(src, toks, start, k, is_pub, hi, true),
            "impl" => return parse_impl(src, toks, start, k, is_pub, hi),
            "mod" => return parse_container(src, toks, start, k, is_pub, hi, ItemKind::Mod),
            "trait" => return parse_container(src, toks, start, k, is_pub, hi, ItemKind::Trait),
            "use" => {
                let end = consume_to_semi(src, toks, k, hi);
                return leaf(ItemKind::Use, None, toks[k].line, is_pub, start, end);
            }
            "type" => {
                let name = next_nt(toks, k, hi).and_then(|j| ident(src, toks, j)).map(String::from);
                let end = consume_to_semi(src, toks, k, hi);
                return leaf(ItemKind::TypeAlias, name, toks[k].line, is_pub, start, end);
            }
            "macro_rules" => return parse_macro_def(src, toks, start, k, hi),
            _ => return macro_invocation_or_other(src, toks, start, k, hi, is_pub),
        }
    }
}

fn leaf(
    kind: ItemKind,
    name: Option<String>,
    line: usize,
    is_pub: bool,
    start: usize,
    end: usize,
) -> Item {
    Item {
        kind,
        name,
        line,
        is_pub,
        span: (start, end),
        body: None,
        children: Vec::new(),
        body_trailing: None,
        variants: Vec::new(),
    }
}

/// Fallback for unrecognised syntax: consume to the first `;` at depth
/// 0 or past the first top-level brace group, so the span partition
/// stays exact and the parser always makes progress.
fn other_item(
    src: &str,
    toks: &[Token],
    start: usize,
    from: usize,
    hi: usize,
    is_pub: bool,
) -> Item {
    let line = toks[from.min(hi - 1)].line;
    let mut depth = 0i64;
    let mut j = from;
    while j < hi {
        match punct(src, toks, j) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') if depth <= 0 => {
                let close = match_group(src, toks, j, hi);
                return leaf(ItemKind::Other, None, line, is_pub, start, close + 1);
            }
            Some(';') if depth <= 0 => {
                return leaf(ItemKind::Other, None, line, is_pub, start, j + 1)
            }
            _ => {}
        }
        j += 1;
    }
    leaf(ItemKind::Other, None, line, is_pub, start, hi)
}

fn parse_fn(src: &str, toks: &[Token], start: usize, kw: usize, is_pub: bool, hi: usize) -> Item {
    let name_at = next_nt(toks, kw, hi).filter(|&j| toks[j].kind == TokenKind::Ident);
    let (name, line) = match name_at {
        Some(j) => (Some(toks[j].text(src).to_string()), toks[j].line),
        None => (None, toks[kw].line),
    };
    match find_stop(src, toks, name_at.unwrap_or(kw) + 1, hi) {
        Stop::Semi(s) => leaf(ItemKind::Fn, name, line, is_pub, start, s + 1),
        Stop::Brace(o) => {
            let close = match_group(src, toks, o, hi);
            let mut item = leaf(ItemKind::Fn, name, line, is_pub, start, close + 1);
            item.body = Some((o, close));
            item
        }
        Stop::End => leaf(ItemKind::Fn, name, line, is_pub, start, hi),
    }
}

/// `struct`/`union`/`enum`: name, then either `;` (unit/tuple form) or
/// a matched brace body. Enum bodies get their variants extracted.
fn parse_typedef(
    src: &str,
    toks: &[Token],
    start: usize,
    kw: usize,
    is_pub: bool,
    hi: usize,
    is_enum: bool,
) -> Item {
    let name_at = next_nt(toks, kw, hi).filter(|&j| toks[j].kind == TokenKind::Ident);
    let (name, line) = match name_at {
        Some(j) => (Some(toks[j].text(src).to_string()), toks[j].line),
        None => (None, toks[kw].line),
    };
    let kind = if is_enum { ItemKind::Enum } else { ItemKind::Struct };
    match find_stop(src, toks, name_at.unwrap_or(kw) + 1, hi) {
        Stop::Semi(s) => leaf(kind, name, line, is_pub, start, s + 1),
        Stop::Brace(o) => {
            let close = match_group(src, toks, o, hi);
            let mut item = leaf(kind, name, line, is_pub, start, close + 1);
            item.body = Some((o, close));
            if is_enum {
                item.variants = enum_variants(src, toks, o, close);
            }
            item
        }
        Stop::End => leaf(kind, name, line, is_pub, start, hi),
    }
}

/// Variant identifiers at depth 0 inside an enum body: the first
/// identifier after `{`, after each top-level `,`, and after any
/// attributes in between. Payloads, discriminants and generics are
/// skipped by depth tracking.
fn enum_variants(src: &str, toks: &[Token], open: usize, close: usize) -> Vec<EnumVariant> {
    let mut variants = Vec::new();
    let mut expecting = true;
    let mut depth = 0i64;
    let mut k = open + 1;
    while k < close {
        if lexer::is_trivia(toks[k].kind) {
            k += 1;
            continue;
        }
        match punct(src, toks, k) {
            Some('#') if depth == 0 && expecting => {
                // Variant attribute: jump the `[...]` group.
                if let Some(j) = next_nt(toks, k, close) {
                    if punct(src, toks, j) == Some('[') {
                        k = match_group(src, toks, j, close) + 1;
                        continue;
                    }
                }
            }
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some(',') if depth == 0 => expecting = true,
            _ => {}
        }
        if expecting && depth == 0 {
            if let Some(name) = ident(src, toks, k) {
                if !is_keyword(name) {
                    variants.push(EnumVariant { name: name.to_string(), line: toks[k].line });
                    expecting = false;
                }
            }
        }
        k += 1;
    }
    variants
}

/// `impl …` blocks: the self-type name is the last path identifier at
/// angle depth 0 before the body (the segment after `for`, when
/// present); members are parsed recursively.
fn parse_impl(src: &str, toks: &[Token], start: usize, kw: usize, is_pub: bool, hi: usize) -> Item {
    let stop = find_stop(src, toks, kw + 1, hi);
    let header_end = match stop {
        Stop::Brace(o) => o,
        Stop::Semi(s) => s,
        Stop::End => hi,
    };
    // Scan the header for the self-type name. Naive angle-bracket depth
    // with a `->` guard is exact for impl headers (no comparison
    // operators can appear there).
    let mut name: Option<String> = None;
    let mut line = toks[kw].line;
    let mut angle = 0i64;
    let mut j = kw + 1;
    while j < header_end {
        match punct(src, toks, j) {
            Some('<') => angle += 1,
            Some('>') => {
                let arrow = j > 0 && punct(src, toks, j - 1) == Some('-');
                if !arrow {
                    angle -= 1;
                }
            }
            _ => {
                if angle == 0 {
                    if let Some(w) = ident(src, toks, j) {
                        if w == "where" {
                            break;
                        }
                        if !is_keyword(w) {
                            name = Some(w.to_string());
                            line = toks[j].line;
                        }
                    }
                }
            }
        }
        j += 1;
    }
    finish_container(src, toks, start, stop, ItemKind::Impl, name, line, is_pub, hi)
}

/// `mod`/`trait` with an optional brace body of child items.
fn parse_container(
    src: &str,
    toks: &[Token],
    start: usize,
    kw: usize,
    is_pub: bool,
    hi: usize,
    kind: ItemKind,
) -> Item {
    let name_at = next_nt(toks, kw, hi).filter(|&j| toks[j].kind == TokenKind::Ident);
    let (name, line) = match name_at {
        Some(j) => (Some(toks[j].text(src).to_string()), toks[j].line),
        None => (None, toks[kw].line),
    };
    let stop = find_stop(src, toks, name_at.unwrap_or(kw) + 1, hi);
    finish_container(src, toks, start, stop, kind, name, line, is_pub, hi)
}

#[allow(clippy::too_many_arguments)]
fn finish_container(
    src: &str,
    toks: &[Token],
    start: usize,
    stop: Stop,
    kind: ItemKind,
    name: Option<String>,
    line: usize,
    is_pub: bool,
    hi: usize,
) -> Item {
    match stop {
        Stop::Semi(s) => leaf(kind, name, line, is_pub, start, s + 1),
        Stop::Brace(o) => {
            let close = match_group(src, toks, o, hi);
            let (children, body_trailing) = parse_range(src, toks, o + 1, close);
            let mut item = leaf(kind, name, line, is_pub, start, close + 1);
            item.body = Some((o, close));
            item.children = children;
            item.body_trailing = Some(body_trailing);
            item
        }
        Stop::End => leaf(kind, name, line, is_pub, start, hi),
    }
}

fn parse_macro_def(src: &str, toks: &[Token], start: usize, kw: usize, hi: usize) -> Item {
    // `macro_rules` `!` `name` `{ … }`
    let bang = next_nt(toks, kw, hi).filter(|&j| punct(src, toks, j) == Some('!'));
    let name_at =
        bang.and_then(|j| next_nt(toks, j, hi)).filter(|&j| toks[j].kind == TokenKind::Ident);
    let name = name_at.map(|j| toks[j].text(src).to_string());
    let line = name_at.map_or(toks[kw].line, |j| toks[j].line);
    let opener = name_at.and_then(|j| next_nt(toks, j, hi));
    match opener {
        Some(o) if matches!(punct(src, toks, o), Some('(') | Some('[') | Some('{')) => {
            let close = match_group(src, toks, o, hi);
            let end = if punct(src, toks, o) == Some('{') {
                close + 1
            } else {
                // Paren/bracket-delimited form needs a trailing `;`.
                next_nt(toks, close, hi)
                    .filter(|&j| punct(src, toks, j) == Some(';'))
                    .map_or(close + 1, |j| j + 1)
            };
            leaf(ItemKind::MacroDef, name, line, false, start, end)
        }
        _ => other_item(src, toks, start, kw, hi, false),
    }
}

/// An item-position macro invocation `path::name! ( … );` /
/// `name! { … }`, or the conservative [`other_item`] fallback.
fn macro_invocation_or_other(
    src: &str,
    toks: &[Token],
    start: usize,
    from: usize,
    hi: usize,
    is_pub: bool,
) -> Item {
    // Walk the invocation path: ident (`::` ident)*.
    let mut last = from;
    loop {
        let c1 = next_nt(toks, last, hi);
        let c2 = c1.and_then(|j| next_nt(toks, j, hi));
        let seg = c2.and_then(|j| next_nt(toks, j, hi));
        match (c1, c2, seg) {
            (Some(a), Some(b), Some(s))
                if punct(src, toks, a) == Some(':')
                    && punct(src, toks, b) == Some(':')
                    && toks[s].kind == TokenKind::Ident =>
            {
                last = s;
            }
            _ => break,
        }
    }
    let bang = next_nt(toks, last, hi).filter(|&j| punct(src, toks, j) == Some('!'));
    let opener = bang.and_then(|j| next_nt(toks, j, hi));
    match opener {
        Some(o) if matches!(punct(src, toks, o), Some('(') | Some('[') | Some('{')) => {
            let close = match_group(src, toks, o, hi);
            let end = if punct(src, toks, o) == Some('{') {
                close + 1
            } else {
                next_nt(toks, close, hi)
                    .filter(|&j| punct(src, toks, j) == Some(';'))
                    .map_or(close + 1, |j| j + 1)
            };
            leaf(
                ItemKind::MacroInvocation,
                Some(toks[from].text(src).to_string()),
                toks[from].line,
                is_pub,
                start,
                end,
            )
        }
        _ => other_item(src, toks, start, from, hi, is_pub),
    }
}

// ---------------------------------------------------------------------------
// Emit (round-trip with invariant checks)
// ---------------------------------------------------------------------------

/// Reconstructs the source text from the item tree, verifying the
/// structural invariants along the way: sibling spans tile their region
/// in ascending order, container children tile the body interior, and
/// the trailing ranges close every gap. Returns the reassembled text,
/// which the round-trip property test compares byte-for-byte against
/// the original.
pub fn emit(src: &str, toks: &[Token], file: &File) -> Result<String, String> {
    let mut out = String::new();
    emit_region(src, toks, &file.items, file.trailing, 0, toks.len(), &mut out)?;
    Ok(out)
}

fn emit_region(
    src: &str,
    toks: &[Token],
    items: &[Item],
    trailing: (usize, usize),
    lo: usize,
    hi: usize,
    out: &mut String,
) -> Result<(), String> {
    let mut at = lo;
    for item in items {
        if item.span.0 != at {
            return Err(format!(
                "span gap before {:?} `{}`: expected token {at}, span starts at {}",
                item.kind,
                item.name.as_deref().unwrap_or("?"),
                item.span.0
            ));
        }
        if item.span.1 > hi || item.span.1 <= item.span.0 {
            return Err(format!(
                "{:?} `{}` span {:?} escapes region [{lo}, {hi})",
                item.kind,
                item.name.as_deref().unwrap_or("?"),
                item.span
            ));
        }
        emit_item(src, toks, item, out)?;
        at = item.span.1;
    }
    if trailing != (at, hi) {
        return Err(format!("trailing range {trailing:?} does not close region to ({at}, {hi})"));
    }
    for t in &toks[at..hi] {
        out.push_str(t.text(src));
    }
    Ok(())
}

fn emit_item(src: &str, toks: &[Token], item: &Item, out: &mut String) -> Result<(), String> {
    match (item.is_container(), item.body, item.body_trailing) {
        (true, Some((open, close)), Some(trailing)) => {
            if !(item.span.0 <= open && open < close && close < item.span.1) {
                return Err(format!(
                    "{:?} `{}` body {:?} escapes span {:?}",
                    item.kind,
                    item.name.as_deref().unwrap_or("?"),
                    item.body,
                    item.span
                ));
            }
            for t in &toks[item.span.0..=open] {
                out.push_str(t.text(src));
            }
            emit_region(src, toks, &item.children, trailing, open + 1, close, out)?;
            for t in &toks[close..item.span.1] {
                out.push_str(t.text(src));
            }
            Ok(())
        }
        _ => {
            for t in &toks[item.span.0..item.span.1] {
                out.push_str(t.text(src));
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Match-expression extraction (for the exhaustiveness rule)
// ---------------------------------------------------------------------------

/// One `match` expression found inside a token range: its body braces
/// and the token range of each arm's *head* (pattern plus guard, up to
/// the `=>`).
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: usize,
    /// Inclusive indices of the body's `{` and `}` tokens.
    pub body: (usize, usize),
    /// Half-open token ranges of each arm head (pattern + guard).
    pub arms: Vec<(usize, usize)>,
}

/// Finds every `match` expression whose keyword lies in `[lo, hi)`.
/// Nested matches are reported independently. The scrutinee is skipped
/// by paren/bracket depth tracking (struct literals are not legal in
/// scrutinee position, so the first depth-0 `{` opens the body).
pub fn match_exprs_in(src: &str, toks: &[Token], lo: usize, hi: usize) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for i in lo..hi.min(toks.len()) {
        if ident(src, toks, i) != Some("match") {
            continue;
        }
        // Find the body `{` past the scrutinee.
        let mut depth = 0i64;
        let mut open = None;
        for j in i + 1..toks.len() {
            match punct(src, toks, j) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth <= 0 => {
                    open = Some(j);
                    break;
                }
                Some(';') | Some('}') if depth <= 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let close = match_group(src, toks, open, toks.len());
        out.push(MatchExpr {
            line: toks[i].line,
            body: (open, close),
            arms: match_arms(src, toks, open, close),
        });
    }
    out
}

/// Splits a match body into arm-head token ranges. Arm bodies (brace
/// groups or expressions up to the depth-0 `,`) are skipped.
fn match_arms(src: &str, toks: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut arms = Vec::new();
    let mut k = skip_trivia(toks, open + 1, close);
    while k < close {
        let head_start = k;
        // Scan the head to its `=>` at depth 0.
        let mut depth = 0i64;
        let mut arrow = None;
        let mut j = k;
        while j < close {
            match punct(src, toks, j) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth -= 1,
                Some('=') if depth == 0 => {
                    // `=>` is two adjacent punct tokens.
                    if j + 1 < close
                        && punct(src, toks, j + 1) == Some('>')
                        && toks[j].end == toks[j + 1].start
                    {
                        arrow = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        arms.push((head_start, arrow));
        // Skip the arm body: a brace group, or tokens to the depth-0 `,`.
        let mut k2 = skip_trivia(toks, arrow + 2, close);
        if k2 < close && punct(src, toks, k2) == Some('{') {
            k2 = match_group(src, toks, k2, close) + 1;
            let after = skip_trivia(toks, k2, close);
            if after < close && punct(src, toks, after) == Some(',') {
                k2 = after + 1;
            }
        } else {
            let mut depth = 0i64;
            while k2 < close {
                match punct(src, toks, k2) {
                    Some('(') | Some('[') | Some('{') => depth += 1,
                    Some(')') | Some(']') | Some('}') => depth -= 1,
                    Some(',') if depth <= 0 => {
                        k2 += 1;
                        break;
                    }
                    _ => {}
                }
                k2 += 1;
            }
        }
        k = skip_trivia(toks, k2, close);
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ItemKind;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(src, &lex(src))
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let file = parse(src, &toks);
        let emitted = emit(src, &toks, &file).expect("emit succeeds");
        assert_eq!(emitted, src, "round-trip must be byte-identical");
    }

    #[test]
    fn items_tile_the_file() {
        for src in [
            "",
            "// just a comment\n",
            "fn a() {}\nfn b() { let x = 1; }\n",
            "#![deny(unsafe_code)]\n//! docs\nuse std::fmt;\npub fn f() -> u32 { 7 }\n",
            "pub struct S { a: u32 }\npub enum E { A, B(u32), C { x: u8 } }\n",
            "impl S {\n    pub fn new() -> Self { S { a: 0 } }\n    fn helper(&self) {}\n}\n",
            "mod inner {\n    pub fn nested() {}\n    mod deeper { fn deepest() {} }\n}\n",
            "trait T {\n    fn required(&self) -> u32;\n    fn provided(&self) -> u32 { 1 }\n}\n",
            "const X: [u32; 2] = [1, 2];\nstatic mut Y: u32 = 0;\ntype Pair = (u32, u32);\n",
            "macro_rules! m { ($x:expr) => { $x + 1 }; }\nthread_local! { static Z: u32 = 0; }\n",
            "pub(crate) fn restricted() {}\npub fn open() {}\n",
            "fn generic<F: Fn(u32) -> u32>(f: F) -> u32 where F: Copy { f(1) }\n",
            "extern crate core;\n#[derive(Debug)]\npub struct D;\n",
            "fn weird() { let s = \"fn not_an_item() {}\"; let c = '{'; }\n",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn fn_names_bodies_and_visibility() {
        let src = "pub fn a() { body(); }\nfn b(x: u32) -> u32;\npub(crate) fn c() {}\n";
        let file = parse_src(src);
        let names: Vec<_> = file.items.iter().map(|i| (i.name.clone(), i.is_pub)).collect();
        assert_eq!(
            names,
            vec![(Some("a".into()), true), (Some("b".into()), false), (Some("c".into()), false),]
        );
        assert!(file.items[0].body.is_some());
        assert!(file.items[1].body.is_none(), "bodiless declaration has no body");
    }

    #[test]
    fn const_fn_is_a_fn_not_a_const() {
        let file = parse_src("pub const fn f() -> u32 { 1 }\nconst X: u32 = 2;\n");
        assert_eq!(file.items[0].kind, ItemKind::Fn);
        assert_eq!(file.items[0].name.as_deref(), Some("f"));
        assert!(file.items[0].is_pub);
        assert_eq!(file.items[1].kind, ItemKind::Const);
        assert_eq!(file.items[1].name.as_deref(), Some("X"));
    }

    #[test]
    fn enum_variants_with_payloads_attrs_and_discriminants() {
        let src = "pub enum E {\n    A,\n    #[serde(rename = \"b\")]\n    B(Vec<u32>),\n    C { x: u8, y: u8 },\n    D = 4,\n}\n";
        let file = parse_src(src);
        let vars: Vec<_> = file.items[0].variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(vars, vec!["A", "B", "C", "D"]);
        assert_eq!(file.items[0].variants[0].line, 2);
    }

    #[test]
    fn impl_names_and_children() {
        let src = "impl<T: Clone> Wrapper<T> {\n    fn one(&self) {}\n}\nimpl Display for Thing {\n    fn fmt(&self) -> Result<(), Error> { Ok(()) }\n}\n";
        let file = parse_src(src);
        assert_eq!(file.items[0].name.as_deref(), Some("Wrapper"));
        assert_eq!(file.items[0].children.len(), 1);
        assert_eq!(file.items[0].children[0].name.as_deref(), Some("one"));
        assert_eq!(file.items[1].name.as_deref(), Some("Thing"), "`for` target wins");
        roundtrip(src);
    }

    #[test]
    fn nested_modules_recurse() {
        let src = "mod a {\n    pub fn f() {}\n    mod b { pub fn g() {} }\n}\n";
        let file = parse_src(src);
        let a = &file.items[0];
        assert_eq!(a.kind, ItemKind::Mod);
        assert_eq!(a.children.len(), 2);
        assert_eq!(a.children[1].children[0].name.as_deref(), Some("g"));
    }

    #[test]
    fn match_extraction_arms_and_nesting() {
        let src = "fn f(a: Alg) -> u32 {\n    match a {\n        Alg::A => 1,\n        Alg::B | Alg::C => match probe() {\n            Some(x) => x,\n            None => 0,\n        },\n        _ => 9,\n    }\n}\n";
        let toks = lex(src);
        let matches = match_exprs_in(src, &toks, 0, toks.len());
        assert_eq!(matches.len(), 2, "outer and nested match both found");
        assert_eq!(matches[0].arms.len(), 3);
        assert_eq!(matches[1].arms.len(), 2);
        // The wildcard arm's head is the single `_` token.
        let (lo, hi) = matches[0].arms[2];
        let head: Vec<_> = toks[lo..hi]
            .iter()
            .filter(|t| !crate::lexer::is_trivia(t.kind))
            .map(|t| t.text(src))
            .collect();
        assert_eq!(head, vec!["_"]);
    }

    #[test]
    fn match_arm_guards_stay_in_the_head() {
        let src = "fn f(x: u32) -> u32 { match x { n if n >= 3 => n, _ => 0 } }";
        let toks = lex(src);
        let m = &match_exprs_in(src, &toks, 0, toks.len())[0];
        assert_eq!(m.arms.len(), 2);
        let (lo, hi) = m.arms[0];
        let head: Vec<_> = toks[lo..hi]
            .iter()
            .filter(|t| !crate::lexer::is_trivia(t.kind))
            .map(|t| t.text(src))
            .collect();
        assert_eq!(head, vec!["n", "if", "n", ">", "=", "3"]);
    }

    #[test]
    fn adversarial_tokens_do_not_derail_item_boundaries() {
        let src = "fn a() { let s = r#\"} fn fake() {\"#; }\npub fn b() {}\n";
        let file = parse_src(src);
        let names: Vec<_> = file.items.iter().filter_map(|i| i.name.as_deref()).collect();
        assert_eq!(names, vec!["a", "b"], "raw string cannot close a body");
        roundtrip(src);
    }
}
