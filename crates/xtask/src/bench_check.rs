//! `sgp-xtask bench-check` — throughput regression gate.
//!
//! Two benches write committed trajectory points for this machine:
//!
//! * **ingest** (`cargo bench -p sgp-bench --bench ingest`) —
//!   `BENCH_ingest.json`, best-of-3 ingestion rates (`elements_per_sec`)
//!   per `(algorithm, mode)` pair, sequential and `threads ∈ {1, 2, 4}`.
//! * **fault** (the elastic-recovery bench) — `BENCH_fault.json`,
//!   degraded-mode query throughput (`queries_per_sec`) per replication
//!   scheme; rows have no mode dimension.
//!
//! The committed copy lives at the repo root; a bench run leaves a
//! fresh copy in `crates/bench/`. This module compares the two: a fresh
//! rate more than the threshold below the committed number on any row
//! key is a regression, and a key that vanished from the fresh run is a
//! coverage loss. Both fail the check; new keys in the fresh run are
//! reported but never fail (coverage may grow). The re-bless flow for
//! the committed copies is documented in EXPERIMENTS.md.
//!
//! The parser is deliberately minimal: `sgp-xtask` is dependency-free,
//! and the artifact shapes are pinned by the benches' own hand-rendered
//! emitters (one run object per line), so a line-oriented field
//! extractor is exact, not approximate.

use std::fmt::Write as _;

/// Which bench artifact a check run compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchKind {
    /// `BENCH_ingest.json`: `elements_per_sec` per `(algorithm, mode)`.
    Ingest,
    /// `BENCH_fault.json`: `queries_per_sec` per algorithm (no mode).
    Fault,
}

impl BenchKind {
    /// Parses the `--kind` CLI value.
    pub fn from_name(name: &str) -> Option<BenchKind> {
        match name {
            "ingest" => Some(BenchKind::Ingest),
            "fault" => Some(BenchKind::Fault),
            _ => None,
        }
    }

    /// The JSON field holding the gated rate.
    pub fn metric(self) -> &'static str {
        match self {
            BenchKind::Ingest => "elements_per_sec",
            BenchKind::Fault => "queries_per_sec",
        }
    }

    /// Unit suffix for report lines.
    pub fn unit(self) -> &'static str {
        match self {
            BenchKind::Ingest => "el/s",
            BenchKind::Fault => "q/s",
        }
    }

    /// Whether rows carry a `mode` dimension.
    pub fn has_mode(self) -> bool {
        matches!(self, BenchKind::Ingest)
    }

    /// Artifact file name (committed at the repo root, fresh under
    /// `crates/bench/`).
    pub fn file_name(self) -> &'static str {
        match self {
            BenchKind::Ingest => "BENCH_ingest.json",
            BenchKind::Fault => "BENCH_fault.json",
        }
    }
}

/// One row sample from a bench summary document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Algorithm short name (e.g. `hdrf`, `ldg`, `ECR`).
    pub algorithm: String,
    /// Execution mode (`sequential` or `threads=N`) for kinds that
    /// have one; empty for mode-less kinds.
    pub mode: String,
    /// The gated rate ([`BenchKind::metric`]) for the row.
    pub elements_per_sec: f64,
}

impl BenchRow {
    /// The display/join key of the row: `algorithm/mode`, or just the
    /// algorithm for mode-less kinds.
    pub fn key(&self) -> String {
        if self.mode.is_empty() {
            self.algorithm.clone()
        } else {
            format!("{}/{}", self.algorithm, self.mode)
        }
    }
}

/// Extracts the quoted string value of `key` from one row line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `key` from one row line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the `runs` rows out of a bench summary document of `kind`.
///
/// Returns an error if the document carries no rows or a row line is
/// missing a required field — either means the artifact shape drifted
/// from the emitter this parser is pinned against.
pub fn parse_rows(json: &str, kind: BenchKind) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in json.lines().enumerate() {
        if !line.contains("\"algorithm\"") {
            continue;
        }
        let parse = || -> Option<BenchRow> {
            Some(BenchRow {
                algorithm: str_field(line, "algorithm")?,
                mode: if kind.has_mode() { str_field(line, "mode")? } else { String::new() },
                elements_per_sec: num_field(line, kind.metric())?,
            })
        };
        match parse() {
            Some(row) => rows.push(row),
            None => return Err(format!("line {}: malformed bench row: {line}", i + 1)),
        }
    }
    if rows.is_empty() {
        return Err("no bench rows found (expected a \"runs\" array of row objects)".into());
    }
    Ok(rows)
}

/// Outcome of one baseline-vs-fresh comparison.
#[derive(Debug)]
pub struct BenchCheckReport {
    /// Human-readable per-pair lines, in baseline order.
    pub lines: Vec<String>,
    /// Failing pairs (regression beyond threshold, or missing from the
    /// fresh run). Empty means the check passed.
    pub failures: Vec<String>,
}

impl BenchCheckReport {
    /// True when no pair regressed or vanished.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the full report, one pair per line, with a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        if self.passed() {
            let _ = writeln!(out, "bench-check: PASS ({} pairs)", self.lines.len());
        } else {
            let _ = writeln!(
                out,
                "bench-check: FAIL ({} of {} pairs)",
                self.failures.len(),
                self.lines.len()
            );
        }
        out
    }
}

/// Compares fresh rows against the committed baseline.
///
/// `threshold_pct` is the tolerated slowdown: with the default 20.0, a
/// fresh rate below 80% of the committed rate fails. Noise on a busy CI
/// host motivates the wide margin — this gate exists to catch the
/// protocol-level regressions (an accidental O(n) clone back in the
/// barrier path), not scheduler jitter.
pub fn compare(
    baseline: &[BenchRow],
    fresh: &[BenchRow],
    threshold_pct: f64,
    kind: BenchKind,
) -> BenchCheckReport {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    let floor = 1.0 - threshold_pct / 100.0;
    let unit = kind.unit();
    for b in baseline {
        let pair = b.key();
        match fresh.iter().find(|f| f.algorithm == b.algorithm && f.mode == b.mode) {
            Some(f) => {
                let ratio = f.elements_per_sec / b.elements_per_sec.max(1e-9);
                let verdict = if ratio < floor { "REGRESSED" } else { "ok" };
                let line = format!(
                    "{pair}: {:.1} -> {:.1} {unit} ({:+.1}%) {verdict}",
                    b.elements_per_sec,
                    f.elements_per_sec,
                    (ratio - 1.0) * 100.0
                );
                if ratio < floor {
                    failures.push(line.clone());
                }
                lines.push(line);
            }
            None => {
                let line = format!("{pair}: missing from fresh run MISSING");
                failures.push(line.clone());
                lines.push(line);
            }
        }
    }
    for f in fresh {
        if !baseline.iter().any(|b| b.algorithm == f.algorithm && b.mode == f.mode) {
            lines.push(format!(
                "{}: new pair ({:.1} {unit}), not in baseline",
                f.key(),
                f.elements_per_sec
            ));
        }
    }
    BenchCheckReport { lines, failures }
}

/// Parses both documents and compares them in one step.
pub fn check(
    baseline_json: &str,
    fresh_json: &str,
    threshold_pct: f64,
    kind: BenchKind,
) -> Result<BenchCheckReport, String> {
    let baseline = parse_rows(baseline_json, kind).map_err(|e| format!("baseline: {e}"))?;
    let fresh = parse_rows(fresh_json, kind).map_err(|e| format!("fresh: {e}"))?;
    Ok(compare(&baseline, &fresh, threshold_pct, kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, &str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(a, m, r)| {
                format!(
                    "    {{\"algorithm\": \"{a}\", \"mode\": \"{m}\", \"elements\": 100, \"secs\": 0.1, \"elements_per_sec\": {r:.1}}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"version\": 1,\n  \"dataset\": \"twitter\",\n  \"scale\": \"tiny\",\n  \"k\": 16,\n  \"runs\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    fn fault_doc(rows: &[(&str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(a, r)| {
                format!(
                    "    {{\"algorithm\": \"{a}\", \"queries\": 1280, \"secs\": 0.01, \"queries_per_sec\": {r:.1}, \"rto_ms\": 23.6, \"data_moved\": 6823, \"shed_queries\": 100}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"version\": 1,\n  \"dataset\": \"ldbc_snb\", \"scale\": \"tiny\",\n  \"k\": 8,\n  \"runs\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn parses_emitter_shaped_documents() {
        let rows = parse_rows(
            &doc(&[("hdrf", "sequential", 1000.0), ("hdrf", "threads=2", 800.0)]),
            BenchKind::Ingest,
        )
        .expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].algorithm, "hdrf");
        assert_eq!(rows[1].mode, "threads=2");
        assert!((rows[1].elements_per_sec - 800.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_and_malformed_documents() {
        assert!(parse_rows("{\n  \"runs\": []\n}\n", BenchKind::Ingest).is_err());
        assert!(parse_rows("{\"algorithm\": \"hdrf\"}", BenchKind::Ingest).is_err());
        // An ingest-shaped row is malformed under the fault kind: no
        // queries_per_sec field.
        assert!(parse_rows(&doc(&[("hdrf", "sequential", 1000.0)]), BenchKind::Fault).is_err());
    }

    #[test]
    fn within_threshold_passes_and_regression_fails() {
        let base = parse_rows(
            &doc(&[("hdrf", "sequential", 1000.0), ("ldg", "sequential", 1000.0)]),
            BenchKind::Ingest,
        )
        .expect("base");
        // 15% down passes at the 20% threshold; 25% down fails.
        let fresh = parse_rows(
            &doc(&[("hdrf", "sequential", 850.0), ("ldg", "sequential", 750.0)]),
            BenchKind::Ingest,
        )
        .expect("fresh");
        let report = compare(&base, &fresh, 20.0, BenchKind::Ingest);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].starts_with("ldg/sequential"), "{:?}", report.failures);
        assert!(report.render().contains("FAIL (1 of 2 pairs)"));
    }

    #[test]
    fn missing_pair_fails_and_new_pair_does_not() {
        let base =
            parse_rows(&doc(&[("hdrf", "sequential", 1000.0)]), BenchKind::Ingest).expect("base");
        let fresh =
            parse_rows(&doc(&[("ldg", "sequential", 1000.0)]), BenchKind::Ingest).expect("fresh");
        let report = compare(&base, &fresh, 20.0, BenchKind::Ingest);
        assert!(!report.passed());
        assert!(report.failures[0].contains("missing from fresh run"));
        assert!(report.lines.iter().any(|l| l.contains("new pair")));
    }

    #[test]
    fn faster_fresh_run_always_passes() {
        let base =
            parse_rows(&doc(&[("hdrf", "threads=4", 1000.0)]), BenchKind::Ingest).expect("base");
        let fresh =
            parse_rows(&doc(&[("hdrf", "threads=4", 2000.0)]), BenchKind::Ingest).expect("fresh");
        let report = compare(&base, &fresh, 20.0, BenchKind::Ingest);
        assert!(report.passed());
        assert!(report.render().contains("+100.0%"));
    }

    #[test]
    fn fault_kind_reads_queries_per_sec_and_keys_by_algorithm() {
        let base =
            parse_rows(&fault_doc(&[("ECR", 113518.0), ("VCR", 126090.9)]), BenchKind::Fault)
                .expect("base");
        assert_eq!(base[0].mode, "", "fault rows carry no mode");
        assert_eq!(base[0].key(), "ECR");
        // VCR down 40% at the 30% fault threshold fails; ECR holds.
        let fresh =
            parse_rows(&fault_doc(&[("ECR", 113000.0), ("VCR", 75000.0)]), BenchKind::Fault)
                .expect("fresh");
        let report = compare(&base, &fresh, 30.0, BenchKind::Fault);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].starts_with("VCR:"), "{:?}", report.failures);
        assert!(report.lines[0].contains("q/s"), "{:?}", report.lines);
    }

    #[test]
    fn kind_names_round_trip() {
        assert_eq!(BenchKind::from_name("ingest"), Some(BenchKind::Ingest));
        assert_eq!(BenchKind::from_name("fault"), Some(BenchKind::Fault));
        assert_eq!(BenchKind::from_name("latency"), None);
        assert_eq!(BenchKind::Fault.file_name(), "BENCH_fault.json");
    }
}
