//! `sgp-xtask bench-check` — ingestion-throughput regression gate.
//!
//! The ingest bench (`cargo bench -p sgp-bench --bench ingest`) writes a
//! `BENCH_ingest.json` summary of best-of-3 ingestion rates — sequential
//! and `threads ∈ {1, 2, 4}` — for every Table 2 streaming algorithm.
//! The copy at the repo root is the committed trajectory point for this
//! machine; the bench run leaves a fresh copy in `crates/bench/`. This
//! module compares the two: a fresh `elements_per_sec` more than the
//! threshold (default 20%) below the committed number on any
//! `(algorithm, mode)` pair is a regression, and a pair that vanished
//! from the fresh run is a coverage loss. Both fail the check; new pairs
//! in the fresh run are reported but never fail (coverage may grow).
//!
//! The parser is deliberately minimal: `sgp-xtask` is dependency-free,
//! and the artifact shape is pinned by the bench's own hand-rendered
//! emitter (one run object per line), so a line-oriented field extractor
//! is exact, not approximate.

use std::fmt::Write as _;

/// One `(algorithm, mode)` throughput sample from a `BENCH_ingest.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Algorithm short name (e.g. `hdrf`, `ldg`).
    pub algorithm: String,
    /// Execution mode: `sequential` or `threads=N`.
    pub mode: String,
    /// Best-of-3 ingestion rate for the pair.
    pub elements_per_sec: f64,
}

/// Extracts the quoted string value of `key` from one row line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `key` from one row line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the `runs` rows out of a `BENCH_ingest.json` document.
///
/// Returns an error if the document carries no rows or a row line is
/// missing a required field — either means the artifact shape drifted
/// from the emitter this parser is pinned against.
pub fn parse_rows(json: &str) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in json.lines().enumerate() {
        if !line.contains("\"algorithm\"") {
            continue;
        }
        let parse = || -> Option<BenchRow> {
            Some(BenchRow {
                algorithm: str_field(line, "algorithm")?,
                mode: str_field(line, "mode")?,
                elements_per_sec: num_field(line, "elements_per_sec")?,
            })
        };
        match parse() {
            Some(row) => rows.push(row),
            None => return Err(format!("line {}: malformed bench row: {line}", i + 1)),
        }
    }
    if rows.is_empty() {
        return Err("no bench rows found (expected a \"runs\" array of row objects)".into());
    }
    Ok(rows)
}

/// Outcome of one baseline-vs-fresh comparison.
#[derive(Debug)]
pub struct BenchCheckReport {
    /// Human-readable per-pair lines, in baseline order.
    pub lines: Vec<String>,
    /// Failing pairs (regression beyond threshold, or missing from the
    /// fresh run). Empty means the check passed.
    pub failures: Vec<String>,
}

impl BenchCheckReport {
    /// True when no pair regressed or vanished.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the full report, one pair per line, with a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        if self.passed() {
            let _ = writeln!(out, "bench-check: PASS ({} pairs)", self.lines.len());
        } else {
            let _ = writeln!(
                out,
                "bench-check: FAIL ({} of {} pairs)",
                self.failures.len(),
                self.lines.len()
            );
        }
        out
    }
}

/// Compares fresh rows against the committed baseline.
///
/// `threshold_pct` is the tolerated slowdown: with the default 20.0, a
/// fresh rate below 80% of the committed rate fails. Noise on a busy CI
/// host motivates the wide margin — this gate exists to catch the
/// protocol-level regressions (an accidental O(n) clone back in the
/// barrier path), not scheduler jitter.
pub fn compare(baseline: &[BenchRow], fresh: &[BenchRow], threshold_pct: f64) -> BenchCheckReport {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    let floor = 1.0 - threshold_pct / 100.0;
    for b in baseline {
        let pair = format!("{}/{}", b.algorithm, b.mode);
        match fresh.iter().find(|f| f.algorithm == b.algorithm && f.mode == b.mode) {
            Some(f) => {
                let ratio = f.elements_per_sec / b.elements_per_sec.max(1e-9);
                let verdict = if ratio < floor { "REGRESSED" } else { "ok" };
                let line = format!(
                    "{pair}: {:.1} -> {:.1} el/s ({:+.1}%) {verdict}",
                    b.elements_per_sec,
                    f.elements_per_sec,
                    (ratio - 1.0) * 100.0
                );
                if ratio < floor {
                    failures.push(line.clone());
                }
                lines.push(line);
            }
            None => {
                let line = format!("{pair}: missing from fresh run MISSING");
                failures.push(line.clone());
                lines.push(line);
            }
        }
    }
    for f in fresh {
        if !baseline.iter().any(|b| b.algorithm == f.algorithm && b.mode == f.mode) {
            lines.push(format!(
                "{}/{}: new pair ({:.1} el/s), not in baseline",
                f.algorithm, f.mode, f.elements_per_sec
            ));
        }
    }
    BenchCheckReport { lines, failures }
}

/// Parses both documents and compares them in one step.
pub fn check(
    baseline_json: &str,
    fresh_json: &str,
    threshold_pct: f64,
) -> Result<BenchCheckReport, String> {
    let baseline = parse_rows(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let fresh = parse_rows(fresh_json).map_err(|e| format!("fresh: {e}"))?;
    Ok(compare(&baseline, &fresh, threshold_pct))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, &str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(a, m, r)| {
                format!(
                    "    {{\"algorithm\": \"{a}\", \"mode\": \"{m}\", \"elements\": 100, \"secs\": 0.1, \"elements_per_sec\": {r:.1}}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"version\": 1,\n  \"dataset\": \"twitter\",\n  \"scale\": \"tiny\",\n  \"k\": 16,\n  \"runs\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn parses_emitter_shaped_documents() {
        let rows =
            parse_rows(&doc(&[("hdrf", "sequential", 1000.0), ("hdrf", "threads=2", 800.0)]))
                .expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].algorithm, "hdrf");
        assert_eq!(rows[1].mode, "threads=2");
        assert!((rows[1].elements_per_sec - 800.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_and_malformed_documents() {
        assert!(parse_rows("{\n  \"runs\": []\n}\n").is_err());
        assert!(parse_rows("{\"algorithm\": \"hdrf\"}").is_err());
    }

    #[test]
    fn within_threshold_passes_and_regression_fails() {
        let base =
            parse_rows(&doc(&[("hdrf", "sequential", 1000.0), ("ldg", "sequential", 1000.0)]))
                .expect("base");
        // 15% down passes at the 20% threshold; 25% down fails.
        let fresh =
            parse_rows(&doc(&[("hdrf", "sequential", 850.0), ("ldg", "sequential", 750.0)]))
                .expect("fresh");
        let report = compare(&base, &fresh, 20.0);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].starts_with("ldg/sequential"), "{:?}", report.failures);
        assert!(report.render().contains("FAIL (1 of 2 pairs)"));
    }

    #[test]
    fn missing_pair_fails_and_new_pair_does_not() {
        let base = parse_rows(&doc(&[("hdrf", "sequential", 1000.0)])).expect("base");
        let fresh = parse_rows(&doc(&[("ldg", "sequential", 1000.0)])).expect("fresh");
        let report = compare(&base, &fresh, 20.0);
        assert!(!report.passed());
        assert!(report.failures[0].contains("missing from fresh run"));
        assert!(report.lines.iter().any(|l| l.contains("new pair")));
    }

    #[test]
    fn faster_fresh_run_always_passes() {
        let base = parse_rows(&doc(&[("hdrf", "threads=4", 1000.0)])).expect("base");
        let fresh = parse_rows(&doc(&[("hdrf", "threads=4", 2000.0)])).expect("fresh");
        let report = compare(&base, &fresh, 20.0);
        assert!(report.passed());
        assert!(report.render().contains("+100.0%"));
    }
}
