//! The semantic rule families: panic-reachability over the call graph,
//! algorithm-surface exhaustiveness over the parsed `Algorithm` enum,
//! and span-guard balance over fn bodies.
//!
//! All three consume the item trees in [`crate::symbols::SymbolTable`]
//! and the conservative [`crate::callgraph::CallGraph`]; their
//! soundness notes live in DESIGN.md §6.

use crate::callgraph::CallGraph;
use crate::crossfile::parse_registry;
use crate::lexer::{self, Token, TokenKind};
use crate::parser::{self, is_keyword};
use crate::report::{Finding, Severity};
use crate::rules::{
    is_call_position, is_macro_bang, is_method_call, AllowTable, ALGORITHM_SURFACE_EXHAUSTIVENESS,
    NO_PANIC_IN_LIB, PANIC_REACHABILITY, SPAN_GUARD_BALANCE,
};
use crate::symbols::SymbolTable;
use crate::workspace::{FileKind, Workspace};
use crate::ScannedEntry;
use std::collections::{BTreeMap, BTreeSet};

/// Workspace-relative path of the indexing audit registry for the
/// panic-reachability rule (keys are workspace-relative file paths).
pub const PANIC_AUDIT_REL: &str = "tests/goldens/PANIC_AUDIT";
/// Workspace-relative path of the algorithm-surface fallback registry
/// (keys are `<surface>/<Variant>`).
pub const ALGORITHM_SURFACES_REL: &str = "tests/goldens/ALGORITHM_SURFACES";

/// Crates whose public entry points seed the reachability BFS. This is
/// the determinism scope of the measurement pipeline; `sgp-core`
/// orchestrates runs (its panics abort a run loudly rather than corrupt
/// a measurement) and is deliberately outside it.
const REACH_SCOPE: &[&str] =
    &["sgp-partition", "sgp-engine", "sgp-db", "sgp-graph", "sgp-fault", "sgp-trace"];

/// Crates whose fn bodies are checked for span balance — the same set
/// whose sink call sites the trace-key rule polices.
const SPAN_SCOPE: &[&str] = &["sgp-partition", "sgp-engine", "sgp-db", "sgp-core"];

/// Methods that panic on the error/none path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
/// Macros that panic unconditionally.
const PANIC_MACRO_NAMES: &[&str] = &["panic", "todo", "unimplemented"];

/// Runs the three semantic rule families.
pub fn check_all(
    ws: &Workspace,
    entries: &[ScannedEntry],
    symbols: &SymbolTable,
    graph: &CallGraph,
    allows: &mut [AllowTable<'_>],
    findings: &mut Vec<Finding>,
) {
    check_panic_reachability(ws, entries, symbols, graph, allows, findings);
    check_algorithm_surfaces(ws, entries, symbols, findings);
    check_span_guard_balance(ws, entries, symbols, allows, findings);
}

/// The reach-scope public entry points, in deterministic table order.
pub fn entry_points(ws: &Workspace, entries: &[ScannedEntry], symbols: &SymbolTable) -> Vec<usize> {
    symbols
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.is_entry_point()
                && entries[f.entry].kind == FileKind::LibSrc
                && REACH_SCOPE.contains(&ws.members[f.member].name.as_str())
        })
        .map(|(i, _)| i)
        .collect()
}

/// Is `rel` an input to the cross-file exhaustiveness rule? The `--diff`
/// fast path keeps whole-workspace exhaustiveness findings whenever any
/// of these changed: a surface file, the enum-declaring registry module,
/// or the fallback registry itself.
pub fn is_exhaustiveness_input(rel: &str) -> bool {
    rel == ALGORITHM_SURFACES_REL
        || rel.ends_with("src/registry.rs")
        || SURFACES.iter().any(|s| s.suffixes.iter().any(|suf| rel.ends_with(suf)))
}

// ---------------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------------

fn check_panic_reachability(
    ws: &Workspace,
    entries: &[ScannedEntry],
    symbols: &SymbolTable,
    graph: &CallGraph,
    allows: &mut [AllowTable<'_>],
    findings: &mut Vec<Finding>,
) {
    let roots = entry_points(ws, entries, symbols);
    if roots.is_empty() {
        return;
    }
    let parent = graph.reachable(&roots);

    // The indexing audit: `<workspace-relative file> = <justification>`.
    let registry = parse_registry(ws, PANIC_AUDIT_REL, PANIC_REACHABILITY, findings);
    let known_rels: BTreeSet<&str> = entries.iter().map(|e| e.scanned.rel.as_str()).collect();
    let mut registry_used = vec![false; registry.len()];
    for (idx, (key, line)) in registry.iter().enumerate() {
        if !known_rels.contains(key.as_str()) {
            registry_used[idx] = true; // don't double-report as stale
            findings.push(Finding::new(
                PANIC_REACHABILITY,
                Severity::Error,
                PANIC_AUDIT_REL,
                *line,
                format!("registry entry `{key}` does not name a workspace source file"),
            ));
        }
    }

    // One finding per (file, line), across all reachable fns.
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();

    for (fi, f) in symbols.fns.iter().enumerate() {
        if parent[fi].is_none()
            || entries[f.entry].kind != FileKind::LibSrc
            || f.is_test
            || !REACH_SCOPE.contains(&ws.members[f.member].name.as_str())
        {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        let scanned = &entries[f.entry].scanned;
        let src = &scanned.source;
        let toks = &scanned.tokens;
        let path: Vec<&str> =
            graph.path_to(&parent, fi).into_iter().map(|i| symbols.fns[i].qual.as_str()).collect();
        let path_str = path.join(" -> ");

        for i in open + 1..close {
            let t = &toks[i];
            if scanned.is_test_line(t.line) {
                continue;
            }
            let site = panic_site(src, toks, i);
            let Some(site) = site else { continue };
            if reported.contains(&(f.entry, t.line)) {
                continue;
            }
            let suppressed = match site {
                PanicSite::Method(_) | PanicSite::Macro(_) => {
                    // A justified no-panic-in-lib allow documents the same
                    // invariant, so it covers the reachability finding too.
                    allows[f.entry].allows(PANIC_REACHABILITY, t.line)
                        || allows[f.entry].allows(NO_PANIC_IN_LIB, t.line)
                }
                PanicSite::Indexing => {
                    let audited = registry
                        .iter()
                        .position(|(key, _)| key == &scanned.rel)
                        .map(|idx| {
                            registry_used[idx] = true;
                        })
                        .is_some();
                    audited || allows[f.entry].allows(PANIC_REACHABILITY, t.line)
                }
            };
            if suppressed {
                continue;
            }
            reported.insert((f.entry, t.line));
            let what = match site {
                PanicSite::Method(name) => format!("`.{name}()`"),
                PanicSite::Macro(name) => format!("`{name}!`"),
                PanicSite::Indexing => "unchecked indexing (`[…]`)".to_string(),
            };
            let fix = match site {
                PanicSite::Indexing => format!(
                    "use .get()/.get_mut() with a typed error, or audit the file in \
                     {PANIC_AUDIT_REL} (`{} = <why every index is in bounds>`)",
                    scanned.rel
                ),
                _ => "return a typed SgpError/StoreError instead, or justify with an allow \
                      directive"
                    .to_string(),
            };
            findings.push(Finding::new(
                PANIC_REACHABILITY,
                Severity::Error,
                &scanned.rel,
                t.line,
                format!(
                    "{what} is reachable from a public entry point via {path_str} — a panic here \
                     aborts a measurement instead of failing it; {fix}"
                ),
            ));
        }
    }

    // Stale audit entries: the named file no longer has any audited
    // indexing in reachable code, so the entry must go.
    for (idx, (key, line)) in registry.iter().enumerate() {
        if !registry_used[idx] {
            findings.push(Finding::new(
                PANIC_REACHABILITY,
                Severity::Error,
                PANIC_AUDIT_REL,
                *line,
                format!(
                    "stale audit entry `{key}` — no reachable indexing site in that file needs \
                     it any more; delete the entry so the audit cannot rot"
                ),
            ));
        }
    }
}

enum PanicSite {
    Method(&'static str),
    Macro(&'static str),
    Indexing,
}

/// Classifies token `i` as a panicking site, if it is one.
fn panic_site(src: &str, toks: &[Token], i: usize) -> Option<PanicSite> {
    match toks[i].kind {
        TokenKind::Ident => {
            let name = toks[i].text(src);
            if let Some(m) = PANIC_METHODS.iter().find(|&&m| m == name) {
                if is_method_call(src, toks, i) {
                    return Some(PanicSite::Method(m));
                }
            }
            if let Some(m) = PANIC_MACRO_NAMES.iter().find(|&&m| m == name) {
                if is_macro_bang(src, toks, i) {
                    return Some(PanicSite::Macro(m));
                }
            }
            None
        }
        TokenKind::Punct if toks[i].text(src).starts_with('[') => {
            // Indexing: `expr[…]` — the `[` directly follows a value
            // (identifier, `)` or `]`). Attributes (`#[`), macro brackets
            // (`vec![`), slice types (`&[u8]`) and array literals
            // (`= [1, 2]`) all follow something else.
            let p = (0..i).rev().find(|&j| !lexer::is_trivia(toks[j].kind))?;
            let indexes = match toks[p].kind {
                TokenKind::Ident => {
                    let w = toks[p].text(src);
                    w == "self" || !is_keyword(w)
                }
                TokenKind::Punct => {
                    let c = toks[p].text(src).chars().next();
                    matches!(c, Some(')') | Some(']'))
                }
                _ => false,
            };
            indexes.then_some(PanicSite::Indexing)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// algorithm-surface-exhaustiveness
// ---------------------------------------------------------------------------

/// One algorithm surface: where in the workspace every `Algorithm`
/// variant must be accounted for.
struct SurfaceSpec {
    /// Registry key prefix (`<key>/<Variant>`).
    key: &'static str,
    /// Human description for findings.
    what: &'static str,
    /// Package owning the surface files.
    pkg: &'static str,
    /// File-path suffixes (workspace-relative) belonging to the surface.
    suffixes: &'static [&'static str],
    /// Scan `#[cfg(test)]` spans and test targets too?
    include_tests: bool,
    /// Additionally scan the bodies of these fns in the enum-declaring
    /// file (support predicates and suite tables live there).
    fn_filter: &'static [&'static str],
}

const SURFACES: &[SurfaceSpec] = &[
    SurfaceSpec {
        key: "stream-dispatch",
        what: "the streaming core dispatch",
        pkg: "sgp-partition",
        suffixes: &["src/streaming.rs"],
        include_tests: false,
        fn_filter: &[],
    },
    SurfaceSpec {
        key: "snapshot-roundtrip",
        what: "the snapshot record round-trip",
        pkg: "sgp-partition",
        suffixes: &["src/snapshot.rs"],
        include_tests: true,
        fn_filter: &[],
    },
    SurfaceSpec {
        key: "threaded-loaders",
        what: "threaded/multi-loader support (or documented fallback)",
        pkg: "sgp-partition",
        suffixes: &["src/loaders.rs", "src/exec.rs"],
        include_tests: false,
        fn_filter: &["supports_parallel_loaders"],
    },
    SurfaceSpec {
        key: "bench-ingest",
        what: "the ingest bench table",
        pkg: "sgp-bench",
        suffixes: &["benches/ingest.rs"],
        include_tests: true,
        fn_filter: &[],
    },
    SurfaceSpec {
        key: "churn-elastic",
        what: "the churn/elastic suites",
        pkg: "sgp-core",
        suffixes: &["src/runners.rs"],
        include_tests: false,
        fn_filter: &[],
    },
    SurfaceSpec {
        key: "table-all",
        what: "the canonical Algorithm::all() table",
        pkg: "sgp-partition",
        suffixes: &[],
        include_tests: false,
        fn_filter: &["all"],
    },
];

/// The fns whose bodies define inheritable variant tables: calling one
/// of these from a surface inherits every variant the table lists.
const TABLE_FNS: &[&str] = &["all", "online_suite", "offline_suite"];

fn check_algorithm_surfaces(
    ws: &Workspace,
    entries: &[ScannedEntry],
    symbols: &SymbolTable,
    findings: &mut Vec<Finding>,
) {
    // The source of truth: the unique `Algorithm` enum in sgp-partition.
    let Some(enum_def) = symbols.unique_enum("sgp-partition", "Algorithm") else {
        return;
    };
    let variant_set: BTreeSet<&str> = enum_def.variants.iter().map(|(n, _)| n.as_str()).collect();
    let enum_entry = enum_def.entry;

    // Memoized variant sets of the table fns (defined in the enum file).
    let mut tables: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for &tf in TABLE_FNS {
        let Some(def) =
            symbols.fns.iter().find(|f| f.entry == enum_entry && f.name == tf && f.body.is_some())
        else {
            continue;
        };
        let (open, close) = def.body.expect("filtered on body");
        let scanned = &entries[enum_entry].scanned;
        let mut listed = BTreeSet::new();
        collect_variant_mentions(
            &scanned.source,
            &scanned.tokens,
            open + 1,
            close,
            &variant_set,
            true,
            &mut listed,
        );
        tables.insert(tf, listed);
    }

    let registry =
        parse_registry(ws, ALGORITHM_SURFACES_REL, ALGORITHM_SURFACE_EXHAUSTIVENESS, findings);

    for spec in SURFACES {
        // Collect the surface's token ranges: (entry index, lo, hi,
        // bare-names-allowed).
        let mut ranges: Vec<(usize, usize, usize, bool)> = Vec::new();
        for (ei, e) in entries.iter().enumerate() {
            if ws.members[e.member].name != spec.pkg {
                continue;
            }
            if spec.suffixes.iter().any(|s| e.scanned.rel.ends_with(s)) {
                ranges.push((ei, 0, e.scanned.tokens.len(), false));
            }
        }
        for &ff in spec.fn_filter {
            for f in symbols.fns.iter().filter(|f| f.entry == enum_entry && f.name == ff) {
                if let Some((open, close)) = f.body {
                    ranges.push((enum_entry, open + 1, close, true));
                }
            }
        }
        if ranges.is_empty() {
            // Surface not present in this workspace (fixture trees);
            // registry entries for it are validated leniently below.
            continue;
        }

        let mut covered: BTreeSet<String> = BTreeSet::new();
        for &(ei, lo, hi, bare) in &ranges {
            let scanned = &entries[ei].scanned;
            let src = &scanned.source;
            let toks = &scanned.tokens;

            // Mechanism 1+2: explicit `Algorithm::V` paths (and bare
            // variant names inside filtered fn bodies).
            for i in lo..hi {
                if !spec.include_tests && scanned.is_test_line(toks[i].line) {
                    continue;
                }
                collect_variant_mentions(src, toks, i, i + 1, &variant_set, bare, &mut covered);
                // Mechanism 3: calling a table fn inherits its variants.
                if toks[i].kind == TokenKind::Ident {
                    let name = toks[i].text(src);
                    if TABLE_FNS.contains(&name)
                        && (is_call_position(src, toks, i) || is_method_call(src, toks, i))
                    {
                        if let Some(listed) = tables.get(name) {
                            covered.extend(listed.iter().cloned());
                        }
                    }
                }
            }

            // Mechanism 4: wildcard-free matches over the enum are
            // compiler-exhaustive — every variant is covered; matches
            // *with* a wildcard cover only the variants their arm heads
            // name (already collected above as path mentions), so a new
            // variant silently falling into `_ =>` is exactly what this
            // rule reports.
            for m in parser::match_exprs_in(src, toks, lo, hi) {
                if !spec.include_tests && scanned.is_test_line(m.line) {
                    continue;
                }
                let mut mentions = BTreeSet::new();
                let mut irrefutable = false;
                for &(alo, ahi) in &m.arms {
                    collect_variant_mentions(
                        src,
                        toks,
                        alo,
                        ahi,
                        &variant_set,
                        true,
                        &mut mentions,
                    );
                    irrefutable |= arm_is_irrefutable(src, toks, alo, ahi);
                }
                if mentions.is_empty() {
                    continue; // a match about something else entirely
                }
                if irrefutable {
                    covered.extend(mentions);
                } else {
                    covered.extend(variant_set.iter().map(|s| s.to_string()));
                }
            }
        }

        // Mechanism 5: registered fallbacks.
        for (key, _) in &registry {
            if let Some((surface, variant)) = key.split_once('/') {
                if surface == spec.key
                    && variant_set.contains(variant)
                    && !covered.contains(variant)
                {
                    covered.insert(variant.to_string());
                }
            }
        }

        let surface_files: Vec<&str> =
            ranges.iter().map(|&(ei, ..)| entries[ei].scanned.rel.as_str()).collect();
        let enum_rel = entries[enum_entry].scanned.rel.clone();
        for (variant, line) in &enum_def.variants {
            if !covered.contains(variant) {
                findings.push(Finding::new(
                    ALGORITHM_SURFACE_EXHAUSTIVENESS,
                    Severity::Error,
                    &enum_rel,
                    *line,
                    format!(
                        "variant `{variant}` is not handled on {what} ({files}) — match it, list \
                         it in a table, or register `{key}/{variant} = <why it is excluded>` in \
                         {ALGORITHM_SURFACES_REL}",
                        what = spec.what,
                        files = dedup_join(&surface_files),
                        key = spec.key,
                    ),
                ));
            }
        }
    }

    // Registry hygiene: every entry must name a known surface and
    // variant, and must still be needed (not also covered in source).
    validate_surface_registry(ws, entries, symbols, &registry, enum_entry, &variant_set, findings);
}

/// Validates ALGORITHM_SURFACES entries after coverage has been
/// computed: unknown keys and stale (in-source-covered) entries are
/// errors; entries for surfaces absent from this workspace pass.
fn validate_surface_registry(
    ws: &Workspace,
    entries: &[ScannedEntry],
    symbols: &SymbolTable,
    registry: &[(String, usize)],
    enum_entry: usize,
    variant_set: &BTreeSet<&str>,
    findings: &mut Vec<Finding>,
) {
    for (key, line) in registry {
        let Some((surface, variant)) = key.split_once('/') else {
            findings.push(Finding::new(
                ALGORITHM_SURFACE_EXHAUSTIVENESS,
                Severity::Error,
                ALGORITHM_SURFACES_REL,
                *line,
                format!("registry key `{key}` must be `<surface>/<Variant>`"),
            ));
            continue;
        };
        let Some(spec) = SURFACES.iter().find(|s| s.key == surface) else {
            findings.push(Finding::new(
                ALGORITHM_SURFACE_EXHAUSTIVENESS,
                Severity::Error,
                ALGORITHM_SURFACES_REL,
                *line,
                format!(
                    "unknown surface `{surface}` — known surfaces: {}",
                    SURFACES.iter().map(|s| s.key).collect::<Vec<_>>().join(", ")
                ),
            ));
            continue;
        };
        if !variant_set.contains(variant) {
            findings.push(Finding::new(
                ALGORITHM_SURFACE_EXHAUSTIVENESS,
                Severity::Error,
                ALGORITHM_SURFACES_REL,
                *line,
                format!("`{variant}` is not a variant of the Algorithm enum"),
            ));
            continue;
        }
        // Stale check: recompute whether the surface covers the variant
        // *without* the registry. Surfaces absent from this workspace
        // are skipped (the entry is inert there, not stale).
        let present = entries.iter().any(|e| {
            ws.members[e.member].name == spec.pkg
                && spec.suffixes.iter().any(|s| e.scanned.rel.ends_with(s))
        }) || spec
            .fn_filter
            .iter()
            .any(|ff| symbols.fns.iter().any(|f| f.entry == enum_entry && &f.name == ff));
        if !present {
            continue;
        }
        if surface_covers_in_source(ws, entries, symbols, spec, enum_entry, variant_set, variant) {
            findings.push(Finding::new(
                ALGORITHM_SURFACE_EXHAUSTIVENESS,
                Severity::Error,
                ALGORITHM_SURFACES_REL,
                *line,
                format!(
                    "stale entry `{key}` — `{variant}` is already handled in source on \
                     `{surface}`; delete the entry so the fallback list cannot rot"
                ),
            ));
        }
    }
}

/// Does `spec` cover `variant` in source alone (no registry)? Used for
/// the stale-entry check; mirrors the coverage walk above.
fn surface_covers_in_source(
    ws: &Workspace,
    entries: &[ScannedEntry],
    symbols: &SymbolTable,
    spec: &SurfaceSpec,
    enum_entry: usize,
    variant_set: &BTreeSet<&str>,
    variant: &str,
) -> bool {
    let mut ranges: Vec<(usize, usize, usize, bool)> = Vec::new();
    for (ei, e) in entries.iter().enumerate() {
        if ws.members[e.member].name == spec.pkg
            && spec.suffixes.iter().any(|s| e.scanned.rel.ends_with(s))
        {
            ranges.push((ei, 0, e.scanned.tokens.len(), false));
        }
    }
    for &ff in spec.fn_filter {
        for f in symbols.fns.iter().filter(|f| f.entry == enum_entry && f.name == ff) {
            if let Some((open, close)) = f.body {
                ranges.push((enum_entry, open + 1, close, true));
            }
        }
    }
    for &(ei, lo, hi, bare) in &ranges {
        let scanned = &entries[ei].scanned;
        let src = &scanned.source;
        let toks = &scanned.tokens;
        let mut covered = BTreeSet::new();
        for i in lo..hi {
            if !spec.include_tests && scanned.is_test_line(toks[i].line) {
                continue;
            }
            collect_variant_mentions(src, toks, i, i + 1, variant_set, bare, &mut covered);
        }
        if covered.contains(variant) {
            return true;
        }
        for m in parser::match_exprs_in(src, toks, lo, hi) {
            if !spec.include_tests && scanned.is_test_line(m.line) {
                continue;
            }
            let mut mentions = BTreeSet::new();
            let mut irrefutable = false;
            for &(alo, ahi) in &m.arms {
                collect_variant_mentions(src, toks, alo, ahi, variant_set, true, &mut mentions);
                irrefutable |= arm_is_irrefutable(src, toks, alo, ahi);
            }
            if !mentions.is_empty() && (!irrefutable || mentions.contains(variant)) {
                return true;
            }
        }
    }
    false
}

/// Adds to `out` every variant mentioned in `[lo, hi)`: `Algorithm::V`
/// paths always; bare `V` identifiers only when `bare` is set (inside
/// fn-filtered bodies and match-arm heads, where a CamelCase identifier
/// naming a variant *is* the variant).
fn collect_variant_mentions(
    src: &str,
    toks: &[Token],
    lo: usize,
    hi: usize,
    variant_set: &BTreeSet<&str>,
    bare: bool,
    out: &mut BTreeSet<String>,
) {
    for i in lo..hi.min(toks.len()) {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let name = toks[i].text(src);
        if !variant_set.contains(name) {
            continue;
        }
        if bare || path_qualifier_is(src, toks, i, "Algorithm") {
            out.insert(name.to_string());
        }
    }
}

/// Is token `i` the final segment of a `…::<qual>::<i>` path whose
/// previous segment is `qual`?
fn path_qualifier_is(src: &str, toks: &[Token], i: usize, qual: &str) -> bool {
    let mut prevs = (0..i).rev().filter(|&j| !lexer::is_trivia(toks[j].kind));
    let (Some(c2), Some(c1), Some(q)) = (prevs.next(), prevs.next(), prevs.next()) else {
        return false;
    };
    let colon = |j: usize| {
        toks[j].kind == TokenKind::Punct && src[toks[j].start..toks[j].end].starts_with(':')
    };
    colon(c2) && colon(c1) && toks[q].kind == TokenKind::Ident && toks[q].text(src) == qual
}

/// Is the arm head `[lo, hi)` an irrefutable pattern — `_` or a single
/// lowercase binding, with no `if` guard?
fn arm_is_irrefutable(src: &str, toks: &[Token], lo: usize, hi: usize) -> bool {
    let head: Vec<usize> =
        (lo..hi.min(toks.len())).filter(|&j| !lexer::is_trivia(toks[j].kind)).collect();
    if head.iter().any(|&j| toks[j].kind == TokenKind::Ident && toks[j].text(src) == "if") {
        return false;
    }
    match head.as_slice() {
        [only] => match toks[*only].kind {
            TokenKind::Ident => {
                let w = toks[*only].text(src);
                w == "_" || w.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
            }
            _ => false,
        },
        _ => false,
    }
}

fn dedup_join(files: &[&str]) -> String {
    let uniq: BTreeSet<&str> = files.iter().copied().collect();
    uniq.into_iter().collect::<Vec<_>>().join(", ")
}

// ---------------------------------------------------------------------------
// span-guard-balance
// ---------------------------------------------------------------------------

fn check_span_guard_balance(
    ws: &Workspace,
    entries: &[ScannedEntry],
    symbols: &SymbolTable,
    allows: &mut [AllowTable<'_>],
    findings: &mut Vec<Finding>,
) {
    for f in &symbols.fns {
        if f.is_test
            || entries[f.entry].kind != FileKind::LibSrc
            || !SPAN_SCOPE.contains(&ws.members[f.member].name.as_str())
        {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        let scanned = &entries[f.entry].scanned;
        let src = &scanned.source;
        let toks = &scanned.tokens;
        // Per trace key: (enter lines, exit lines) within this body.
        let mut spans: BTreeMap<String, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
        for i in open + 1..close {
            let t = &toks[i];
            if t.kind != TokenKind::Ident || scanned.is_test_line(t.line) {
                continue;
            }
            let name = t.text(src);
            if !matches!(name, "span_enter" | "span_exit" | "guard_span") {
                continue;
            }
            if !is_method_call(src, toks, i) {
                continue;
            }
            let key = first_arg_key(src, toks, i).unwrap_or_else(|| "<unknown>".to_string());
            match name {
                "span_enter" => spans.entry(key).or_default().0.push(t.line),
                "span_exit" => spans.entry(key).or_default().1.push(t.line),
                "guard_span" => {
                    // A guard transfers the exit obligation to its
                    // binding; an unbound guard is dropped immediately,
                    // closing the span before the work it brackets.
                    if !let_bound(src, toks, i, open)
                        && !allows[f.entry].allows(SPAN_GUARD_BALANCE, t.line)
                    {
                        findings.push(Finding::new(
                            SPAN_GUARD_BALANCE,
                            Severity::Error,
                            &scanned.rel,
                            t.line,
                            format!(
                                "guard_span(`{key}`) result is dropped immediately — bind it \
                                 (`let _guard = …`) so the span stays open across the work it \
                                 brackets"
                            ),
                        ));
                    }
                }
                _ => unreachable!("filtered above"),
            }
        }
        for (key, (enters, exits)) in spans {
            if enters.len() == exits.len() {
                continue;
            }
            let line = *enters.first().or(exits.first()).expect("imbalance implies a site");
            if allows[f.entry].allows(SPAN_GUARD_BALANCE, line) {
                continue;
            }
            let msg = if enters.len() > exits.len() {
                format!(
                    "span_enter(`{key}`) ({}×) outnumbers span_exit ({}×) on the fall-through \
                     path of `{}` — emit the exit on every path, or hold a let-bound guard_span \
                     guard",
                    enters.len(),
                    exits.len(),
                    f.qual
                )
            } else {
                format!(
                    "span_exit(`{key}`) ({}×) outnumbers span_enter ({}×) in `{}` — the trace \
                     stack underflows and the goldens drift",
                    exits.len(),
                    enters.len(),
                    f.qual
                )
            };
            findings.push(Finding::new(
                SPAN_GUARD_BALANCE,
                Severity::Error,
                &scanned.rel,
                line,
                msg,
            ));
        }
    }
}

/// The trace key of sink call `i` (`.span_enter(keys::X, …)` →
/// `X`; string literals yield their quoted text).
fn first_arg_key(src: &str, toks: &[Token], i: usize) -> Option<String> {
    let next = |j: usize| (j + 1..toks.len()).find(|&k| !lexer::is_trivia(toks[k].kind));
    let open = next(i)?;
    let mut arg = next(open);
    // Skip reference sigils.
    while let Some(a) = arg {
        if toks[a].kind == TokenKind::Punct && src[toks[a].start..toks[a].end].starts_with('&') {
            arg = next(a);
        } else {
            break;
        }
    }
    let a = arg?;
    match toks[a].kind {
        TokenKind::Str { .. } => {
            // Strip the literal syntax (`r#"…"#` / `"…"`) without eating
            // content characters.
            let t = toks[a].text(src);
            let t = t.strip_prefix('r').unwrap_or(t);
            let t = t.trim_matches('#');
            let t = t.strip_prefix('"').unwrap_or(t);
            let t = t.strip_suffix('"').unwrap_or(t);
            Some(t.to_string())
        }
        TokenKind::Ident => {
            // Resolve `keys::PARTITION_RUN` to its last segment.
            let mut last = a;
            loop {
                let c1 = next(last);
                let c2 = c1.and_then(next);
                let seg = c2.and_then(next);
                let colon = |j: usize| {
                    toks[j].kind == TokenKind::Punct
                        && src[toks[j].start..toks[j].end].starts_with(':')
                };
                match (c1, c2, seg) {
                    (Some(x), Some(y), Some(s))
                        if colon(x) && colon(y) && toks[s].kind == TokenKind::Ident =>
                    {
                        last = s;
                    }
                    _ => break,
                }
            }
            Some(toks[last].text(src).to_string())
        }
        _ => None,
    }
}

/// Is the expression statement containing token `i` a `let` binding?
/// Walks back to the start of the statement (a `;`, or the body/block
/// opener) looking for the `let` keyword.
fn let_bound(src: &str, toks: &[Token], i: usize, body_open: usize) -> bool {
    for j in (body_open + 1..i).rev() {
        match toks[j].kind {
            TokenKind::Punct => match src[toks[j].start..toks[j].end].chars().next() {
                Some(';') | Some('{') | Some('}') => return false,
                _ => {}
            },
            TokenKind::Ident if toks[j].text(src) == "let" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    #[test]
    fn panic_site_classifier() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] + x.unwrap() + panic!(\"no\") }";
        let scanned = scan_source(src, "t.rs");
        let toks = &scanned.tokens;
        let mut kinds = Vec::new();
        for i in 0..toks.len() {
            if let Some(site) = panic_site(src, toks, i) {
                kinds.push(match site {
                    PanicSite::Method(m) => m.to_string(),
                    PanicSite::Macro(m) => format!("{m}!"),
                    PanicSite::Indexing => "[]".to_string(),
                });
            }
        }
        assert_eq!(kinds, vec!["[]", "unwrap", "panic!"]);
    }

    #[test]
    fn indexing_heuristic_skips_types_attrs_and_literals() {
        let src = "#[derive(Debug)]\nfn f(s: &[u8]) -> Vec<u32> { let a = [1, 2]; let [x, y] = a; vec![x] }\n";
        let scanned = scan_source(src, "t.rs");
        let toks = &scanned.tokens;
        let sites: Vec<usize> =
            (0..toks.len()).filter(|&i| panic_site(src, toks, i).is_some()).collect();
        assert!(sites.is_empty(), "no value is being indexed here: {sites:?}");
    }

    #[test]
    fn first_arg_key_resolves_paths_and_strings() {
        let src = "fn f() { sink.span_enter(keys::RUN, 0, 1); sink.span_exit(\"raw\", 0, 1); }";
        let scanned = scan_source(src, "t.rs");
        let toks = &scanned.tokens;
        let keys: Vec<String> = (0..toks.len())
            .filter(|&i| {
                toks[i].kind == TokenKind::Ident
                    && matches!(toks[i].text(src), "span_enter" | "span_exit")
            })
            .filter_map(|i| first_arg_key(src, toks, i))
            .collect();
        assert_eq!(keys, vec!["RUN".to_string(), "raw".to_string()]);
    }

    #[test]
    fn let_binding_detection() {
        let src = "fn f() { let g = sink.guard_span(keys::RUN, 0, s); sink.guard_span(keys::RUN, 0, s); }";
        let scanned = scan_source(src, "t.rs");
        let toks = &scanned.tokens;
        let sites: Vec<bool> = (0..toks.len())
            .filter(|&i| toks[i].kind == TokenKind::Ident && toks[i].text(src) == "guard_span")
            .map(|i| let_bound(src, toks, i, 0))
            .collect();
        assert_eq!(sites, vec![true, false]);
    }

    #[test]
    fn irrefutable_arm_detection() {
        let src = "match a { Alg::A => 1, other => 2, n if n > 3 => 3, _ => 4 }";
        let scanned = scan_source(src, "t.rs");
        let toks = &scanned.tokens;
        let m = &parser::match_exprs_in(src, toks, 0, toks.len())[0];
        let flags: Vec<bool> =
            m.arms.iter().map(|&(lo, hi)| arm_is_irrefutable(src, toks, lo, hi)).collect();
        assert_eq!(flags, vec![false, true, false, true]);
    }
}
