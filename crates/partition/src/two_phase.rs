//! 2PS — two-phase streaming edge partitioning (Mayer et al., "2PS:
//! High-Quality Edge Partitioning at Scale", arXiv 2001.07086), the
//! multi-pass member of the dynamic-graph tier (DESIGN.md §12).
//!
//! Phase one streams the edges once without placing anything and builds
//! volume-capped vertex clusters with a union-find (streaming
//! clustering). Phase two streams the same edges again and runs an
//! HDRF-style greedy assignment whose score is biased toward each
//! endpoint's cluster home, so edges inside a cluster gravitate to the
//! same partition and the replication factor drops below what one-pass
//! HDRF achieves on the same stream.
//!
//! The two passes ride on the ordinary
//! [`EdgeStreamPartitioner`](crate::vertex_cut::EdgeStreamPartitioner)
//! machine lifecycle: [`TwoPhase::passes`] reports 2,
//! [`TwoPhase::observing`] is true until every edge has been observed
//! once, and the ingestion core routes edges to [`TwoPhase::observe`]
//! during that window without touching shared state or the assignment.
//! With [`PartitionerConfig::two_phase_clustering`] disabled the
//! clustering pass disappears and the assignment pass is bit-identical
//! to plain HDRF — the root differential tests pin that degeneracy.

use crate::assignment::PartitionId;
use crate::config::PartitionerConfig;
use crate::decisions::DecisionStats;
use crate::vertex_cut::{EdgeStreamPartitioner, EdgeStreamState, Hdrf};
use sgp_graph::Edge;

/// Sentinel for a vertex the clustering pass has not seen yet.
const UNVISITED: u32 = u32::MAX;

/// Streaming clustering state of pass one: a union-find over vertices
/// with per-cluster volume (edge-endpoint count) capped at `2m/k`, plus
/// the cluster → partition map computed when the pass completes.
#[derive(Debug, Clone)]
struct ClusterPass {
    k: usize,
    /// Union-find parent; `UNVISITED` marks vertices not yet seen.
    parent: Vec<u32>,
    /// Cluster volume, meaningful at root indices only.
    volume: Vec<u64>,
    /// Volume cap per cluster: `max(2m/k, 2)`.
    cap: u64,
    /// Edges the pass still expects (`m` total).
    total_edges: u64,
    observed: u64,
    /// Cluster root → partition, filled by [`ClusterPass::finalize`];
    /// sorted by root id.
    cluster_part: Vec<(u32, PartitionId)>,
    finalized: bool,
}

impl ClusterPass {
    fn new(k: usize, m: usize) -> Self {
        ClusterPass {
            k,
            parent: Vec::new(),
            volume: Vec::new(),
            cap: ((2 * m as u64) / k as u64).max(2),
            total_edges: m as u64,
            observed: 0,
            cluster_part: Vec::new(),
            finalized: false,
        }
    }

    fn ensure(&mut self, v: u32) {
        let idx = v as usize;
        if idx >= self.parent.len() {
            self.parent.resize(idx + 1, UNVISITED);
            self.volume.resize(idx + 1, 0);
        }
        if self.parent[idx] == UNVISITED {
            self.parent[idx] = v;
        }
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression; the snapshot layer serializes fully resolved
        // roots, so the compression state never leaks into the bytes.
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn observe(&mut self, e: Edge) {
        self.ensure(e.src);
        self.ensure(e.dst);
        let ru = self.find(e.src);
        let rv = self.find(e.dst);
        self.volume[ru as usize] += 1;
        self.volume[rv as usize] += 1;
        if ru != rv && self.volume[ru as usize] + self.volume[rv as usize] <= self.cap {
            // Merge the lighter cluster into the heavier (tie → the lower
            // root id wins), keeping merge order deterministic.
            let (winner, loser) = if self.volume[ru as usize] > self.volume[rv as usize]
                || (self.volume[ru as usize] == self.volume[rv as usize] && ru < rv)
            {
                (ru, rv)
            } else {
                (rv, ru)
            };
            self.parent[loser as usize] = winner;
            self.volume[winner as usize] += self.volume[loser as usize];
            self.volume[loser as usize] = 0;
        }
        self.observed += 1;
        if self.observed >= self.total_edges {
            self.finalize();
        }
    }

    /// Maps clusters to partitions: roots in descending-volume order
    /// (ties → lower root id) go to the least volume-loaded partition
    /// (ties → lower partition id). Idempotent.
    fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        let mut roots: Vec<u32> = (0..self.parent.len() as u32)
            .filter(|&v| self.parent[v as usize] == v && self.parent[v as usize] != UNVISITED)
            .collect();
        roots.sort_by_key(|&r| (std::cmp::Reverse(self.volume[r as usize]), r));
        let mut loads = vec![0u64; self.k];
        let mut assigned: Vec<(u32, PartitionId)> = Vec::with_capacity(roots.len());
        for r in roots {
            let mut best = 0 as PartitionId;
            for p in 1..self.k as PartitionId {
                if loads[p as usize] < loads[best as usize] {
                    best = p;
                }
            }
            loads[best as usize] += self.volume[r as usize];
            assigned.push((r, best));
        }
        assigned.sort_unstable_by_key(|&(r, _)| r);
        self.cluster_part = assigned;
    }

    /// The cluster home of `v`, once finalized; `None` for vertices the
    /// clustering never saw.
    fn target(&mut self, v: u32) -> Option<PartitionId> {
        if (v as usize) < self.parent.len() && self.parent[v as usize] != UNVISITED {
            let root = self.find(v);
            return self
                .cluster_part
                .binary_search_by_key(&root, |&(r, _)| r)
                .ok()
                .map(|i| self.cluster_part[i].1);
        }
        None
    }

    /// Read-only root lookup (no path compression) for snapshotting:
    /// the serialized form is the fully resolved forest, canonical
    /// regardless of how much compression `find` has applied.
    fn resolve(&self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root
    }

    /// Canonical `v:root` pairs for visited vertices, ascending `v`.
    fn parent_record(&self) -> String {
        (0..self.parent.len() as u32)
            .filter(|&v| self.parent[v as usize] != UNVISITED)
            .map(|v| format!("{v}:{}", self.resolve(v)))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Canonical `root:volume` pairs for non-zero volumes, ascending.
    fn volume_record(&self) -> String {
        (0..self.parent.len() as u32)
            .filter(|&v| self.parent[v as usize] == v && self.volume[v as usize] > 0)
            .map(|v| format!("{v}:{}", self.volume[v as usize]))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn cluster_part_record(&self) -> String {
        self.cluster_part.iter().map(|&(r, p)| format!("{r}:{p}")).collect::<Vec<_>>().join(",")
    }
}

/// Parses a `a:b,a:b,...` record into pairs; `None` on malformed input.
fn parse_pairs(value: &str) -> Option<Vec<(u32, u64)>> {
    if value.is_empty() {
        return Some(Vec::new());
    }
    value
        .split(',')
        .map(|item| {
            let (a, b) = item.split_once(':')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        })
        .collect()
}

/// The 2PS two-phase edge partitioner: streaming clustering pass, then
/// cluster-affine HDRF assignment pass.
#[derive(Debug, Clone)]
pub struct TwoPhase {
    inner: Hdrf,
    clustering: Option<ClusterPass>,
}

impl TwoPhase {
    /// Creates 2PS for a graph with `m` edges. With
    /// [`PartitionerConfig::two_phase_clustering`] disabled the result
    /// is a one-pass machine bit-identical to [`Hdrf`].
    pub fn new(cfg: &PartitionerConfig, m: usize) -> Self {
        TwoPhase {
            inner: Hdrf::new(cfg, m),
            clustering: cfg.two_phase_clustering.then(|| ClusterPass::new(cfg.k, m)),
        }
    }
}

impl EdgeStreamPartitioner for TwoPhase {
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
        let targets = match &mut self.clustering {
            Some(c) => {
                c.finalize();
                [c.target(e.src), c.target(e.dst)]
            }
            None => [None, None],
        };
        self.inner.place_with_affinity(e, state, targets)
    }

    fn name(&self) -> &'static str {
        "2PS"
    }

    fn passes(&self) -> usize {
        if self.clustering.is_some() {
            2
        } else {
            1
        }
    }

    fn observing(&self) -> bool {
        match &self.clustering {
            Some(c) => c.observed < c.total_edges,
            None => false,
        }
    }

    fn observe(&mut self, e: Edge) {
        if let Some(c) = &mut self.clustering {
            c.observe(e);
        }
    }

    fn decision_stats(&self) -> DecisionStats {
        self.inner.decision_stats()
    }

    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        let mut records = self.inner.snapshot_records();
        if let Some(c) = &self.clustering {
            if c.observed > 0 {
                records.push(("2ps.observed", c.observed.to_string()));
            }
            let parents = c.parent_record();
            if !parents.is_empty() {
                records.push(("2ps.parent", parents));
            }
            let volumes = c.volume_record();
            if !volumes.is_empty() {
                records.push(("2ps.vol", volumes));
            }
            if c.finalized {
                records.push(("2ps.cpart", c.cluster_part_record()));
            }
        }
        records
    }

    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        let Some(c) = &mut self.clustering else {
            return self.inner.restore_record(key, value);
        };
        match key {
            "2ps.observed" => match value.parse() {
                Ok(v) if v <= c.total_edges => {
                    c.observed = v;
                    true
                }
                _ => false,
            },
            "2ps.parent" => match parse_pairs(value) {
                Some(pairs) if pairs.iter().all(|&(_, root)| root < u64::from(UNVISITED)) => {
                    for (v, root) in pairs {
                        c.ensure(v);
                        c.ensure(root as u32);
                        c.parent[v as usize] = root as u32;
                    }
                    true
                }
                _ => false,
            },
            "2ps.vol" => match parse_pairs(value) {
                Some(pairs) => {
                    for (root, vol) in pairs {
                        c.ensure(root);
                        c.volume[root as usize] = vol;
                    }
                    true
                }
                None => false,
            },
            "2ps.cpart" => match parse_pairs(value) {
                Some(pairs) => {
                    if pairs.iter().any(|&(_, p)| p >= c.k as u64) {
                        return false;
                    }
                    c.cluster_part =
                        pairs.into_iter().map(|(r, p)| (r, p as PartitionId)).collect();
                    c.finalized = true;
                    true
                }
                None => false,
            },
            _ => self.inner.restore_record(key, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::vertex_cut::run_edge_stream;
    use sgp_graph::generators::{rmat, RmatConfig};
    use sgp_graph::{Graph, StreamOrder};

    fn graph() -> Graph {
        rmat(RmatConfig { scale: 10, edge_factor: 10, ..RmatConfig::default() })
    }

    fn observe_all(tp: &mut TwoPhase, g: &Graph) {
        for e in g.edges() {
            assert!(tp.observing());
            tp.observe(e);
        }
        assert!(!tp.observing());
    }

    #[test]
    fn clustering_conserves_volume_and_fragments() {
        // The cap gates *merges* (a cluster's own volume can exceed it
        // through the per-endpoint increments alone, e.g. a hub vertex).
        // Two post-hoc invariants hold regardless: total volume across
        // roots is exactly 2m, and the cap keeps the clustering from
        // collapsing into one giant component.
        let g = graph();
        let cfg = PartitionerConfig::new(8);
        let mut tp = TwoPhase::new(&cfg, g.num_edges());
        observe_all(&mut tp, &g);
        let c = tp.clustering.as_ref().unwrap();
        let total: u64 =
            (0..c.parent.len()).filter(|&v| c.parent[v] == v as u32).map(|v| c.volume[v]).sum();
        assert_eq!(total, 2 * g.num_edges() as u64);
        let roots = (0..c.parent.len()).filter(|&v| c.parent[v] == v as u32).count();
        let visited = (0..c.parent.len()).filter(|&v| c.parent[v] != UNVISITED).count();
        assert!(roots >= cfg.k, "clustering collapsed to {roots} clusters");
        assert!(roots < visited, "no merge ever happened");
    }

    #[test]
    fn finalize_assigns_every_cluster_in_range() {
        let g = graph();
        let cfg = PartitionerConfig::new(6);
        let mut tp = TwoPhase::new(&cfg, g.num_edges());
        observe_all(&mut tp, &g);
        let c = tp.clustering.as_mut().unwrap();
        assert!(c.finalized);
        assert!(!c.cluster_part.is_empty());
        assert!(c.cluster_part.iter().all(|&(_, p)| (p as usize) < 6));
        for v in g.vertices() {
            if g.degree(v) > 0 {
                assert!(c.target(v).is_some(), "vertex {v} has no cluster home");
            }
        }
    }

    #[test]
    fn clustering_disabled_is_one_pass() {
        let cfg = PartitionerConfig { two_phase_clustering: false, ..PartitionerConfig::new(4) };
        let tp = TwoPhase::new(&cfg, 100);
        assert_eq!(tp.passes(), 1);
        assert!(!tp.observing());
    }

    #[test]
    fn two_pass_run_beats_hdrf_replication() {
        let g = graph();
        let cfg = PartitionerConfig::new(16);
        let hdrf =
            run_edge_stream(&g, &mut Hdrf::new(&cfg, g.num_edges()), 16, StreamOrder::Natural);
        let tps =
            run_edge_stream(&g, &mut TwoPhase::new(&cfg, g.num_edges()), 16, StreamOrder::Natural);
        let (rf_h, rf_t) =
            (metrics::replication_factor(&g, &hdrf), metrics::replication_factor(&g, &tps));
        assert!(
            rf_t <= rf_h * 1.02,
            "2PS RF {rf_t} should not lose to HDRF RF {rf_h} by more than noise"
        );
        assert_eq!(tps.edge_parts.len(), g.num_edges());
    }

    #[test]
    fn snapshot_records_round_trip_mid_pass_one() {
        let g = graph();
        let cfg = PartitionerConfig::new(8);
        let mut tp = TwoPhase::new(&cfg, g.num_edges());
        for e in g.edges().take(g.num_edges() / 2) {
            tp.observe(e);
        }
        let records = tp.snapshot_records();
        let mut restored = TwoPhase::new(&cfg, g.num_edges());
        for (k, v) in &records {
            assert!(restored.restore_record(k, v), "restore failed for {k}");
        }
        assert_eq!(restored.snapshot_records(), records);
        // Both halves continue identically.
        for e in g.edges().skip(g.num_edges() / 2) {
            tp.observe(e);
            restored.observe(e);
        }
        assert_eq!(restored.snapshot_records(), tp.snapshot_records());
    }

    #[test]
    fn unknown_record_rejected() {
        let cfg = PartitionerConfig::new(4);
        let mut tp = TwoPhase::new(&cfg, 10);
        assert!(!tp.restore_record("2ps.bogus", "1"));
        assert!(!tp.restore_record("2ps.observed", "999"));
        assert!(!tp.restore_record("2ps.cpart", "0:9"));
    }

    #[test]
    fn empty_graph_never_observes() {
        let cfg = PartitionerConfig::new(4);
        let tp = TwoPhase::new(&cfg, 0);
        assert!(!tp.observing());
        assert_eq!(tp.passes(), 2);
    }
}
