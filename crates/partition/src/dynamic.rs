//! Restreaming over a prior assignment (DESIGN.md §12).
//!
//! Nishimura & Ugander's restreaming observation: a one-pass streaming
//! partitioner gets strictly more useful as the state it consults gets
//! closer to a full partitioning — so re-running the same partitioner
//! with its *own previous output* preloaded as the starting assignment
//! monotonically improves the cut in practice. [`restream_rounds`]
//! packages that loop over the [`StreamingPartitioner`] facade: each
//! round preloads the current vertex-owner map via
//! [`StreamingPartitioner::preload_assignment`], replays the stream, and
//! accepts the candidate only if the integer edge-cut did not get worse,
//! stopping at a fixpoint (no vertex moved). The bounded-movement
//! variant lives in [`crate::migration`], which runs this loop under
//! [`MigrationConfig::budget`](crate::migration::MigrationConfig)
//! accounting.
//!
//! Everything here is integer arithmetic over deterministic streams, so
//! the same `(graph, algorithm, config, order, initial)` always yields
//! byte-identical outcomes.

use crate::assignment::PartitionId;
use crate::config::PartitionerConfig;
use crate::registry::Algorithm;
use crate::streaming::{StreamInput, StreamingPartitioner, DEFAULT_CHUNK};
use sgp_graph::{Graph, StreamOrder, VertexStreamSource};
use sgp_trace::{keys, NullSink, TraceSink};

/// Number of edges whose endpoints live on different partitions under
/// `owner` — the integer edge-cut the restreaming acceptance rule uses
/// (exact, no float comparisons).
pub fn cut_edges(g: &Graph, owner: &[PartitionId]) -> u64 {
    g.edges().filter(|e| owner[e.src as usize] != owner[e.dst as usize]).count() as u64
}

/// One accepted restreaming round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestreamRound {
    /// Integer edge-cut after this round.
    pub cut_edges: u64,
    /// Vertices whose owner changed in this round.
    pub moved: u64,
}

/// Result of [`restream_rounds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestreamOutcome {
    /// The final vertex-owner map.
    pub owner: Vec<PartitionId>,
    /// Integer edge-cut of the initial assignment.
    pub initial_cut_edges: u64,
    /// The accepted rounds, in order (may be shorter than requested:
    /// the loop stops at a fixpoint or when a round degrades the cut).
    pub rounds: Vec<RestreamRound>,
}

/// Runs up to `rounds` restreaming rounds of `algorithm` over its own
/// prior assignment, starting from `initial` (one owner per vertex).
/// Returns `None` when `algorithm` does not consume a vertex stream —
/// restreaming re-places *vertices* against a persistent owner map, so
/// only the edge-cut family participates.
pub fn restream_rounds(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    initial: &[PartitionId],
    rounds: usize,
) -> Option<RestreamOutcome> {
    restream_rounds_traced(g, algorithm, cfg, order, initial, rounds, &mut NullSink)
}

/// [`restream_rounds`] that also counts the accepted rounds into `sink`
/// ([`keys::PARTITION_RESTREAM_ROUNDS`]).
pub fn restream_rounds_traced<S: TraceSink>(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    initial: &[PartitionId],
    rounds: usize,
    sink: &mut S,
) -> Option<RestreamOutcome> {
    let mut owner = initial.to_vec();
    let initial_cut_edges = cut_edges(g, &owner);
    let mut current_cut = initial_cut_edges;
    let mut accepted = Vec::new();
    for _ in 0..rounds {
        let mut sp = StreamingPartitioner::init(g, algorithm, cfg);
        if sp.input() != StreamInput::Vertices {
            return None;
        }
        // sgp-lint: allow(no-panic-in-lib): input() was just checked to be Vertices
        sp.preload_assignment(&owner).expect("vertex machine accepts preloaded owners");
        let mut source = VertexStreamSource::new(g, order);
        let mut chunk = Vec::new();
        for _ in 0..sp.passes() {
            source.restart();
            while source.next_chunk(DEFAULT_CHUNK, &mut chunk) > 0 {
                // sgp-lint: allow(no-panic-in-lib): input() was just checked to be Vertices
                sp.ingest_vertices(&chunk).expect("vertex machine accepts vertex chunks");
            }
            sp.flush_window();
        }
        let cand = sp.seal().vertex_owner?;
        let cand_cut = cut_edges(g, &cand);
        if cand_cut > current_cut {
            break;
        }
        let moved = owner.iter().zip(&cand).filter(|(a, b)| a != b).count() as u64;
        owner = cand;
        current_cut = cand_cut;
        accepted.push(RestreamRound { cut_edges: cand_cut, moved });
        if moved == 0 {
            break;
        }
    }
    if sink.enabled() {
        sink.counter_add(keys::PARTITION_RESTREAM_ROUNDS, 0, accepted.len() as u64);
    }
    Some(RestreamOutcome { owner, initial_cut_edges, rounds: accepted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::partition;
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};

    fn graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 400, edges: 2400, seed: 11 })
    }

    fn initial_owner(g: &Graph, k: usize) -> Vec<PartitionId> {
        let cfg = PartitionerConfig::new(k);
        let p = partition(g, Algorithm::Ldg, &cfg, StreamOrder::Natural);
        p.vertex_owner.unwrap()
    }

    #[test]
    fn cut_never_increases_over_rounds() {
        let g = graph();
        let initial = initial_owner(&g, 4);
        let cfg = PartitionerConfig::new(4);
        let out =
            restream_rounds(&g, Algorithm::Ldg, &cfg, StreamOrder::Natural, &initial, 6).unwrap();
        let mut last = out.initial_cut_edges;
        for r in &out.rounds {
            assert!(r.cut_edges <= last, "round cut {} > previous {last}", r.cut_edges);
            last = r.cut_edges;
        }
        assert_eq!(cut_edges(&g, &out.owner), last);
    }

    #[test]
    fn same_inputs_same_outcome() {
        let g = graph();
        let initial = initial_owner(&g, 4);
        let cfg = PartitionerConfig::new(4);
        let a = restream_rounds(&g, Algorithm::Fennel, &cfg, StreamOrder::Natural, &initial, 3);
        let b = restream_rounds(&g, Algorithm::Fennel, &cfg, StreamOrder::Natural, &initial, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn edge_stream_algorithms_refuse() {
        let g = graph();
        let initial = initial_owner(&g, 4);
        let cfg = PartitionerConfig::new(4);
        assert!(
            restream_rounds(&g, Algorithm::Hdrf, &cfg, StreamOrder::Natural, &initial, 2).is_none()
        );
    }

    #[test]
    fn zero_rounds_is_identity() {
        let g = graph();
        let initial = initial_owner(&g, 4);
        let cfg = PartitionerConfig::new(4);
        let out =
            restream_rounds(&g, Algorithm::Ldg, &cfg, StreamOrder::Natural, &initial, 0).unwrap();
        assert_eq!(out.owner, initial);
        assert!(out.rounds.is_empty());
    }
}
