//! Deterministic multi-loader parallel streaming.
//!
//! Table 1's "Parallelization" column classifies which algorithms
//! tolerate splitting one input stream across parallel loaders: hash
//! methods need no communication, greedy methods need "inter-stream
//! communication" — each loader places against a view of the shared
//! state that is stale between synchronization points. This module
//! turns that column into measurable behaviour.
//!
//! Model: one logical stream is split across `L` loaders by round-robin
//! striding (element `i` belongs to loader `i mod L`). Loaders run the
//! same incremental state machine as the sequential core, but each
//! places against a *local* state snapshot: the global state as of the
//! last synchronization barrier plus the loader's own in-round
//! decisions. Every `sync_interval` elements per loader, a barrier
//! merges all decision logs into the global state and brings every
//! local view up to date by replaying the *other* loaders' logs into it
//! — a compact delta rather than an `O(n)` snapshot clone, sound
//! because replay is order-commutative (below).
//!
//! The merge is seeded and deterministic: logs are replayed in a
//! rotation of the loader order chosen by hashing the barrier index
//! with [`LoaderConfig::seed`] — never wallclock arrival order, never
//! hash-map iteration order. (Replaying placement decisions is
//! order-commutative — assignments touch disjoint vertices within a
//! pass, replica sets are sets, and degree/load counters are sums — so
//! the rotation pins down the procedure rather than the outcome; the
//! same seed always produces byte-identical results.)
//!
//! With `L = 1` the local state *is* the global state at every step, so
//! the result is byte-identical to the sequential core — the
//! differential tests pin this for every algorithm. With `L > 1`,
//! greedy algorithms degrade with staleness (PowerGraph's greedy
//! visibly collapses on BFS orders) while hash-based ones are exactly
//! loader-count-invariant; the opt-in `experiments loaders` ablation
//! measures this.
//!
//! The hybrid algorithms run their phase-1 vertex placement behind the
//! loaders (hash for HCR — loader-invariant; the Ginger greedy shares
//! vertex counts through the synchronized state) and seal with the
//! shared hybrid edge routing. Only the offline METIS baseline ignores
//! `L` entirely and runs sequentially.

use crate::assignment::{fxhash64, CutModel, PartitionId, Partitioning};
use crate::config::PartitionerConfig;
use crate::edge_cut::{VertexStreamPartitioner, VertexStreamState};
use crate::hybrid::{high_degree_threshold, place_hybrid_edges};
use crate::registry::{partition, Algorithm};
use crate::streaming::{boxed_edge_partitioner, boxed_vertex_partitioner, owner_from_assignment};
use crate::vertex_cut::{EdgeStreamPartitioner, EdgeStreamState};
use serde::{Deserialize, Serialize};
use sgp_graph::stream::VertexRecord;
use sgp_graph::{Edge, EdgeStreamSource, Graph, StreamOrder, VertexStreamSource};

/// Configuration of the multi-loader split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoaderConfig {
    /// Number of logical parallel loaders `L` (clamped to ≥ 1).
    pub loaders: usize,
    /// Elements each loader places between synchronization barriers
    /// (clamped to ≥ 1). Larger values mean staler shared state.
    pub sync_interval: usize,
    /// Seed of the deterministic merge rotation at barriers.
    pub seed: u64,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        LoaderConfig { loaders: 1, sync_interval: 1024, seed: 0x10AD_CAFE }
    }
}

impl LoaderConfig {
    /// `loaders` parallel loaders with the default interval and seed.
    pub fn new(loaders: usize) -> Self {
        LoaderConfig { loaders, ..LoaderConfig::default() }
    }

    /// Sets the synchronization interval.
    pub fn with_sync_interval(mut self, sync_interval: usize) -> Self {
        self.sync_interval = sync_interval;
        self
    }

    pub(crate) fn clamped(&self) -> (usize, usize) {
        (self.loaders.max(1), self.sync_interval.max(1))
    }
}

/// Runs `algorithm` over `g` with the stream split across
/// [`LoaderConfig::loaders`] parallel loaders. Deterministic for a
/// fixed `(cfg, order, lc)`; byte-identical to
/// [`partition`](crate::registry::partition) when `lc.loaders == 1`.
pub fn partition_multi_loader(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    lc: &LoaderConfig,
) -> Partitioning {
    if !algorithm.supports_parallel_loaders() {
        // METIS (offline) and 2PS (its clustering pass must see the
        // whole stream before placement) run single-loader.
        return partition(g, algorithm, cfg, order);
    }
    let (l, _) = lc.clamped();
    let mut edge_machines = Vec::with_capacity(l);
    for _ in 0..l {
        match boxed_edge_partitioner(g, algorithm, cfg) {
            Some(m) => edge_machines.push(m),
            None => break,
        }
    }
    if edge_machines.len() == l {
        return multi_loader_edges(g, cfg.k, edge_machines, order, lc);
    }
    let mut vertex_machines = Vec::with_capacity(l);
    for _ in 0..l {
        match boxed_vertex_partitioner(g, algorithm, cfg) {
            Some(m) => vertex_machines.push(m),
            None => return partition(g, algorithm, cfg, order),
        }
    }
    let seal = vertex_seal(g, algorithm, cfg);
    multi_loader_vertices(g, cfg.k, vertex_machines, order, lc, seal)
}

/// How a vertex-stream loader run turns the final assignment into a
/// [`Partitioning`] — shared by the modelled loaders and the threaded
/// backend in [`crate::exec`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum VertexLoaderSeal {
    EdgeCut,
    Hybrid { threshold: usize },
}

/// The seal `algorithm` needs, with the hybrid degree threshold
/// precomputed (it must be fixed *before* ingestion starts).
pub(crate) fn vertex_seal(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
) -> VertexLoaderSeal {
    match algorithm.info().model {
        CutModel::HybridCut => {
            VertexLoaderSeal::Hybrid { threshold: high_degree_threshold(g, cfg) }
        }
        _ => VertexLoaderSeal::EdgeCut,
    }
}

/// Seals a finished vertex-stream assignment into a [`Partitioning`].
pub(crate) fn seal_vertices(
    g: &Graph,
    k: usize,
    assignment: Vec<PartitionId>,
    seal: VertexLoaderSeal,
) -> Partitioning {
    let owner = owner_from_assignment(assignment);
    match seal {
        VertexLoaderSeal::EdgeCut => Partitioning::from_vertex_owners(g, k, owner),
        VertexLoaderSeal::Hybrid { threshold } => {
            let (edge_parts, _) = place_hybrid_edges(g, k, &owner, threshold);
            Partitioning { k, model: CutModel::HybridCut, edge_parts, vertex_owner: Some(owner) }
        }
    }
}

/// The merge rotation start for barrier `round`: pure in (seed, round).
pub(crate) fn merge_start(seed: u64, round: u64, l: usize) -> usize {
    (fxhash64(seed ^ round) % l as u64) as usize
}

/// Replays one barrier's decision logs into `state` in the seeded
/// rotation beginning at `start`. With `skip = Some(j)` loader `j`'s
/// log is omitted — that is the **delta merge**: a local state that
/// already applied its own decisions at placement time only needs the
/// *other* loaders' logs to land exactly equal to the refreshed global
/// (replay is order-commutative, see the module doc), without cloning
/// an `O(n)` snapshot per barrier. Shared by the modelled loaders here
/// and the threaded backend in [`crate::exec`].
pub(crate) fn apply_vertex_decisions(
    state: &mut VertexStreamState,
    decisions: &[Vec<(u32, PartitionId)>],
    start: usize,
    skip: Option<usize>,
) {
    let l = decisions.len();
    for step in 0..l {
        let j = (start + step) % l;
        if skip == Some(j) {
            continue;
        }
        for &(v, p) in &decisions[j] {
            state.assign(v, p);
        }
    }
}

/// Edge-stream twin of [`apply_vertex_decisions`]: replays replica /
/// degree / load updates, with the same optional skip-own-log delta
/// form.
pub(crate) fn apply_edge_decisions(
    state: &mut EdgeStreamState,
    decisions: &[Vec<(Edge, PartitionId)>],
    start: usize,
    skip: Option<usize>,
) {
    let l = decisions.len();
    for step in 0..l {
        let j = (start + step) % l;
        if skip == Some(j) {
            continue;
        }
        for &(e, p) in &decisions[j] {
            state.record(e, p);
        }
    }
}

fn multi_loader_vertices(
    g: &Graph,
    k: usize,
    mut machines: Vec<Box<dyn VertexStreamPartitioner>>,
    order: StreamOrder,
    lc: &LoaderConfig,
    seal: VertexLoaderSeal,
) -> Partitioning {
    let (l, t) = lc.clamped();
    let passes = machines.first().map(|m| m.passes()).unwrap_or(1);
    let mut global = VertexStreamState::new(g.num_vertices(), k);
    let mut locals: Vec<VertexStreamState> = vec![global.clone(); l];
    let mut decisions: Vec<Vec<(u32, PartitionId)>> = vec![Vec::new(); l];
    let mut source = VertexStreamSource::new(g, order);
    let mut block: Vec<VertexRecord> = Vec::new();
    let mut round: u64 = 0;
    for _pass in 0..passes {
        source.restart();
        while source.next_chunk(l.saturating_mul(t), &mut block) > 0 {
            for d in &mut decisions {
                d.clear();
            }
            // Each loader places its stride against its stale local view.
            for (i, rec) in block.iter().enumerate() {
                let j = i % l;
                let p = machines[j].place(rec, &locals[j]);
                debug_assert!((p as usize) < k, "partitioner returned out-of-range id");
                locals[j].assign(rec.vertex, p);
                decisions[j].push((rec.vertex, p));
            }
            // Barrier: replay all decision logs into the global state
            // in a seeded rotation of the loader order, and the *other*
            // loaders' logs into each local — a compact delta that
            // leaves every local equal to the refreshed global without
            // an O(n) clone per barrier.
            let start = merge_start(lc.seed, round, l);
            apply_vertex_decisions(&mut global, &decisions, start, None);
            for (j, local) in locals.iter_mut().enumerate() {
                apply_vertex_decisions(local, &decisions, start, Some(j));
            }
            round += 1;
        }
    }
    seal_vertices(g, k, global.assignment, seal)
}

fn multi_loader_edges(
    g: &Graph,
    k: usize,
    mut machines: Vec<Box<dyn EdgeStreamPartitioner>>,
    order: StreamOrder,
    lc: &LoaderConfig,
) -> Partitioning {
    let (l, t) = lc.clamped();
    let mut global = EdgeStreamState::new(g.num_vertices(), k);
    let mut locals: Vec<EdgeStreamState> = vec![global.clone(); l];
    let mut decisions: Vec<Vec<(Edge, PartitionId)>> = vec![Vec::new(); l];
    let mut edge_parts = vec![0 as PartitionId; g.num_edges()];
    let mut source = EdgeStreamSource::new(g, order);
    let mut block: Vec<Edge> = Vec::new();
    let mut round: u64 = 0;
    while source.next_chunk(l.saturating_mul(t), &mut block) > 0 {
        for d in &mut decisions {
            d.clear();
        }
        for (i, &e) in block.iter().enumerate() {
            let j = i % l;
            let p = machines[j].place(e, &locals[j]);
            debug_assert!((p as usize) < k, "partitioner returned out-of-range id");
            locals[j].record(e, p);
            // sgp-lint: allow(no-panic-in-lib): block edges come from a stream over g, so the CSR lookup cannot miss
            let idx = g.edge_index(e.src, e.dst).expect("stream edge exists in graph");
            edge_parts[idx] = p;
            decisions[j].push((e, p));
        }
        let start = merge_start(lc.seed, round, l);
        apply_edge_decisions(&mut global, &decisions, start, None);
        for (j, local) in locals.iter_mut().enumerate() {
            apply_edge_decisions(local, &decisions, start, Some(j));
        }
        round += 1;
    }
    Partitioning::from_edge_parts(g, k, edge_parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use sgp_graph::generators::{erdos_renyi, rmat, ErdosRenyiConfig, RmatConfig};

    fn graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 400, edges: 2400, seed: 31 })
    }

    #[test]
    fn single_loader_is_bit_identical_to_sequential_for_every_algorithm() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let order = StreamOrder::Random { seed: 13 };
        for interval in [1usize, 7, 1024] {
            let lc = LoaderConfig::new(1).with_sync_interval(interval);
            for &alg in Algorithm::all() {
                let seq = partition(&g, alg, &cfg, order);
                let par = partition_multi_loader(&g, alg, &cfg, order, &lc);
                assert_eq!(seq.edge_parts, par.edge_parts, "{alg} interval {interval}");
                assert_eq!(seq.vertex_owner, par.vertex_owner, "{alg} interval {interval}");
            }
        }
    }

    #[test]
    fn multi_loader_is_seed_deterministic() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let order = StreamOrder::Bfs;
        let lc = LoaderConfig::new(4).with_sync_interval(16);
        for &alg in &[Algorithm::Ldg, Algorithm::Hdrf, Algorithm::PowerGraphGreedy] {
            let a = partition_multi_loader(&g, alg, &cfg, order, &lc);
            let b = partition_multi_loader(&g, alg, &cfg, order, &lc);
            assert_eq!(a.edge_parts, b.edge_parts, "{alg}");
            assert_eq!(a.vertex_owner, b.vertex_owner, "{alg}");
        }
    }

    #[test]
    fn hash_algorithms_are_loader_count_invariant() {
        let g = graph();
        let cfg = PartitionerConfig::new(8);
        let order = StreamOrder::Random { seed: 5 };
        for &alg in &[Algorithm::EcrHash, Algorithm::VcrHash, Algorithm::HybridRandom] {
            let one = partition_multi_loader(&g, alg, &cfg, order, &LoaderConfig::new(1));
            let eight = partition_multi_loader(
                &g,
                alg,
                &cfg,
                order,
                &LoaderConfig::new(8).with_sync_interval(32),
            );
            assert_eq!(one.edge_parts, eight.edge_parts, "{alg} must not depend on L");
            assert_eq!(one.vertex_owner, eight.vertex_owner, "{alg}");
        }
    }

    #[test]
    fn stale_state_degrades_greedy_vertex_cut_on_bfs() {
        // §4.2.2: PowerGraph's greedy is sensitive to stream order; with
        // loaders adding staleness its replication should not improve.
        let g = rmat(RmatConfig { scale: 10, edge_factor: 8, ..RmatConfig::default() });
        let cfg = PartitionerConfig::new(8);
        let seq = partition_multi_loader(
            &g,
            Algorithm::PowerGraphGreedy,
            &cfg,
            StreamOrder::Bfs,
            &LoaderConfig::new(1),
        );
        let par = partition_multi_loader(
            &g,
            Algorithm::PowerGraphGreedy,
            &cfg,
            StreamOrder::Bfs,
            &LoaderConfig::new(8).with_sync_interval(256),
        );
        let rf_seq = metrics::replication_factor(&g, &seq);
        let rf_par = metrics::replication_factor(&g, &par);
        assert!(
            rf_par >= rf_seq * 0.98,
            "stale greedy should not beat fresh: {rf_par} vs {rf_seq}"
        );
    }

    #[test]
    fn every_algorithm_stays_valid_under_many_loaders() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let lc = LoaderConfig::new(3).with_sync_interval(5);
        for &alg in Algorithm::all() {
            let p = partition_multi_loader(&g, alg, &cfg, StreamOrder::Natural, &lc);
            assert_eq!(p.edge_parts.len(), g.num_edges(), "{alg}");
            assert!(p.edge_parts.iter().all(|&x| (x as usize) < 4), "{alg}");
            if let Some(owner) = &p.vertex_owner {
                assert!(owner.iter().all(|&x| (x as usize) < 4), "{alg}");
            }
        }
    }
}
