//! Edge-cut SGP on vertex streams (§4.1.1 of the paper): hash, LDG,
//! FENNEL, and the re-streaming variants of Nishimura & Ugander.
//!
//! All algorithms here consume a vertex stream — each element is a
//! vertex with its complete neighbourhood — and emit a vertex-disjoint
//! partitioning. The shared streaming state (previous assignments +
//! partition sizes) that the paper notes each worker must "continuously
//! communicate and synchronize" lives in [`VertexStreamState`], owned by
//! the incremental core in [`crate::streaming`]; [`run_vertex_stream`]
//! and its traced twin are thin adapters over that core.

use crate::assignment::{hash_to_partition, PartitionId, Partitioning};
use crate::config::PartitionerConfig;
use crate::decisions::DecisionStats;
use crate::kernels;
use sgp_graph::stream::VertexRecord;
use sgp_graph::{Graph, StreamOrder};
use sgp_trace::{NullSink, TraceSink};

/// Shared state visible to a vertex-stream partitioner at placement time:
/// the history of previous assignments and current partition sizes.
#[derive(Debug, Clone)]
pub struct VertexStreamState {
    /// `assignment[v]` is the partition of `v`, or `UNASSIGNED`.
    pub assignment: Vec<PartitionId>,
    /// Number of vertices currently owned by each partition.
    pub sizes: Vec<usize>,
}

/// Sentinel for "not yet placed".
pub const UNASSIGNED: PartitionId = PartitionId::MAX;

impl VertexStreamState {
    /// Fresh state for `n` vertices and `k` partitions.
    pub fn new(n: usize, k: usize) -> Self {
        VertexStreamState { assignment: vec![UNASSIGNED; n], sizes: vec![0; k] }
    }

    /// Counts, for each partition, how many of `neighbors` are already
    /// placed there — the `|P_i ∩ N(u)|` term of LDG and FENNEL. Returns
    /// a dense `k`-length histogram. Unplaced neighbours contribute
    /// nothing; repeated neighbours (and self-loops of an already-placed
    /// vertex) count once per occurrence.
    pub fn neighbor_histogram(&self, neighbors: &[u32], k: usize) -> Vec<usize> {
        let mut hist = Vec::new();
        self.neighbor_histogram_into(neighbors, k, &mut hist);
        hist
    }

    /// [`neighbor_histogram`](Self::neighbor_histogram) into a caller
    /// scratch buffer — the zero-alloc form the hot placement loops use
    /// (DESIGN.md §13). Clears and resizes `hist` to `k`.
    pub fn neighbor_histogram_into(&self, neighbors: &[u32], k: usize, hist: &mut Vec<usize>) {
        hist.clear();
        hist.resize(k, 0);
        for &w in neighbors {
            let p = self.assignment[w as usize];
            if p != UNASSIGNED {
                hist[p as usize] += 1;
            }
        }
    }

    /// Records the placement of `v`, maintaining size counters. If `v`
    /// was already placed (re-streaming), the old counter is decremented.
    pub fn assign(&mut self, v: u32, p: PartitionId) {
        let old = self.assignment[v as usize];
        if old != UNASSIGNED {
            self.sizes[old as usize] -= 1;
        }
        self.assignment[v as usize] = p;
        self.sizes[p as usize] += 1;
    }
}

/// A streaming partitioner over vertex streams.
///
/// `Send` is a supertrait: the multi-loader layer ships boxed machines
/// to worker threads in [`crate::exec`], and every implementor is plain
/// owned data (counters and vectors), so the bound costs nothing.
pub trait VertexStreamPartitioner: Send {
    /// Chooses a partition for the arriving vertex given the shared state.
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId;

    /// Short display name (Table 2 abbreviation).
    fn name(&self) -> &'static str;

    /// Number of stream passes this algorithm makes (1 for single-pass
    /// streaming, >1 for the re-streaming variants).
    fn passes(&self) -> usize {
        1
    }

    /// Decision counters accumulated so far (all-zero for algorithms
    /// without greedy decisions, e.g. hash placement).
    fn decision_stats(&self) -> DecisionStats {
        DecisionStats::default()
    }

    /// Algorithm-specific run-varying tables as canonical `(key, value)`
    /// records for the snapshot layer ([`crate::snapshot`], DESIGN.md
    /// §11). Config-pure algorithms (hash placement) have none.
    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        Vec::new()
    }

    /// Restores one record produced by
    /// [`snapshot_records`](VertexStreamPartitioner::snapshot_records);
    /// returns `false` for an unknown key or unparsable value (the
    /// snapshot layer surfaces that as a typed error).
    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        let _ = (key, value);
        false
    }
}

/// Hash-based random vertex placement (`ECR` in the paper's Table 2).
///
/// "It achieves a well-balanced distribution; however it completely
/// ignores the graph topology" — expected edge-cut ratio `1 − 1/k`.
#[derive(Debug, Clone)]
pub struct HashVertex {
    k: usize,
    seed: u64,
}

impl HashVertex {
    /// Creates the hash partitioner from the shared config.
    pub fn new(cfg: &PartitionerConfig) -> Self {
        HashVertex { k: cfg.k, seed: cfg.seed }
    }
}

impl VertexStreamPartitioner for HashVertex {
    fn place(&mut self, rec: &VertexRecord, _state: &VertexStreamState) -> PartitionId {
        hash_to_partition(rec.vertex, self.k, self.seed)
    }

    fn name(&self) -> &'static str {
        "ECR"
    }
}

/// Linear Deterministic Greedy (Stanton & Kliot), Eq. (4) of the paper:
///
/// `argmax_i |P_i ∩ N(u)| · (1 − |P_i| / C)` with `C = β·|V|/k`.
///
/// The multiplicative penalty "strictly enforces exact balance"; we
/// additionally refuse to place into a partition at capacity, and fall
/// back to the least-loaded partition when no neighbour information is
/// available (the standard LDG tie-break).
#[derive(Debug, Clone)]
pub struct Ldg {
    k: usize,
    capacity: f64,
    stats: DecisionStats,
    /// Scratch neighbour histogram reused across vertices (DESIGN.md §13).
    hist: Vec<usize>,
    /// Scratch score column handed to the shared argmax kernel.
    scores: Vec<f64>,
}

impl Ldg {
    /// Creates LDG for a graph with `n` vertices.
    pub fn new(cfg: &PartitionerConfig, n: usize) -> Self {
        Ldg {
            k: cfg.k,
            capacity: cfg.vertex_capacity(n).max(1.0),
            stats: DecisionStats::default(),
            hist: Vec::new(),
            scores: vec![0.0; cfg.k],
        }
    }
}

impl VertexStreamPartitioner for Ldg {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        state.neighbor_histogram_into(&rec.neighbors, self.k, &mut self.hist);
        // Capacity-saturated partitions become SKIP entries — LDG never
        // overfills; otherwise the exact Eq. (4) score. Partition sizes
        // do not change inside the scan, so the kernel's load tie-break
        // is the historical "prefer the smaller partition" comparison.
        for (i, &h) in self.hist.iter().enumerate() {
            let size = state.sizes[i];
            self.scores[i] = if (size as f64) >= self.capacity {
                kernels::SKIP
            } else {
                h as f64 * (1.0 - size as f64 / self.capacity)
            };
        }
        match kernels::epsilon_argmax(&self.scores, &state.sizes, &mut self.stats.balance_tiebreaks)
        {
            Some(i) => i as PartitionId,
            None => {
                // All partitions at capacity (only possible with β = 1 and
                // n divisible rounding); place in the globally smallest.
                self.stats.capacity_fallbacks += 1;
                argmin_size(&state.sizes)
            }
        }
    }

    fn name(&self) -> &'static str {
        "LDG"
    }

    fn decision_stats(&self) -> DecisionStats {
        self.stats
    }

    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        self.stats.snapshot_records()
    }

    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        self.stats.restore_record(key, value)
    }
}

/// FENNEL (Tsourakakis et al.), Eq. (5) of the paper:
///
/// `argmax_i |P_i ∩ N(u)| − α·γ·|P_i|^(γ−1)`
///
/// with γ = 1.5 and α = √k·m/n^1.5 by default. The additive load term
/// relaxes LDG's hard constraint; like the original implementation we
/// still respect the (k, β) capacity so the produced partitioning
/// satisfies Eq. (1).
#[derive(Debug, Clone)]
pub struct Fennel {
    k: usize,
    alpha: f64,
    gamma: f64,
    capacity: f64,
    stats: DecisionStats,
    /// Scratch neighbour histogram reused across vertices (DESIGN.md §13).
    hist: Vec<usize>,
    /// Scratch score column handed to the shared argmax kernel.
    scores: Vec<f64>,
}

impl Fennel {
    /// Creates FENNEL for a graph with `n` vertices and `m` edges.
    pub fn new(cfg: &PartitionerConfig, n: usize, m: usize) -> Self {
        Fennel {
            k: cfg.k,
            alpha: cfg.resolved_fennel_alpha(n, m),
            gamma: cfg.fennel_gamma,
            capacity: cfg.vertex_capacity(n).max(1.0),
            stats: DecisionStats::default(),
            hist: Vec::new(),
            scores: vec![0.0; cfg.k],
        }
    }
}

impl VertexStreamPartitioner for Fennel {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        state.neighbor_histogram_into(&rec.neighbors, self.k, &mut self.hist);
        for (i, &h) in self.hist.iter().enumerate() {
            let size = state.sizes[i];
            self.scores[i] = if (size as f64) >= self.capacity {
                kernels::SKIP
            } else {
                let load_penalty = self.alpha * self.gamma * (size as f64).powf(self.gamma - 1.0);
                h as f64 - load_penalty
            };
        }
        match kernels::epsilon_argmax(&self.scores, &state.sizes, &mut self.stats.balance_tiebreaks)
        {
            Some(i) => i as PartitionId,
            None => {
                self.stats.capacity_fallbacks += 1;
                argmin_size(&state.sizes)
            }
        }
    }

    fn name(&self) -> &'static str {
        "FNL"
    }

    fn decision_stats(&self) -> DecisionStats {
        self.stats
    }

    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        self.stats.snapshot_records()
    }

    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        self.stats.restore_record(key, value)
    }
}

/// Re-streaming wrapper (Nishimura & Ugander, Table 1's "Restreaming
/// LDG" / "Re-FENNEL"): runs the inner heuristic for `passes` passes over
/// the same stream; passes ≥ 2 see the *full* previous assignment, which
/// "utilize\[s\] partitioning results of previous iterations to improve
/// partitioning quality".
#[derive(Debug, Clone)]
pub struct Restream<P> {
    inner: P,
    passes: usize,
    name: &'static str,
}

impl<P: VertexStreamPartitioner> Restream<P> {
    /// Wraps `inner`, running `passes` total stream passes.
    pub fn new(inner: P, passes: usize) -> Self {
        assert!(passes >= 1, "need at least one pass");
        let name = match inner.name() {
            "LDG" => "reLDG",
            "FNL" => "reFNL",
            _ => "re*",
        };
        Restream { inner, passes, name }
    }
}

impl<P: VertexStreamPartitioner> VertexStreamPartitioner for Restream<P> {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        self.inner.place(rec, state)
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn passes(&self) -> usize {
        self.passes
    }

    fn decision_stats(&self) -> DecisionStats {
        self.inner.decision_stats()
    }

    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        self.inner.snapshot_records()
    }

    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        self.inner.restore_record(key, value)
    }
}

fn argmin_size(sizes: &[usize]) -> PartitionId {
    kernels::argmin_load(sizes)
        .map(|i| i as PartitionId)
        // sgp-lint: allow(no-panic-in-lib): sizes has length k and PartitionerConfig::new asserts k >= 1
        .expect("at least one partition")
}

/// Runs a vertex-stream partitioner over `g` and returns the resulting
/// edge-cut [`Partitioning`] (out-edges grouped with their source, per
/// Appendix B).
pub fn run_vertex_stream<P: VertexStreamPartitioner>(
    g: &Graph,
    partitioner: &mut P,
    k: usize,
    order: StreamOrder,
) -> Partitioning {
    run_vertex_stream_traced(g, partitioner, k, order, &mut NullSink)
}

/// [`run_vertex_stream`] with trace instrumentation: a
/// `partition.stream` span around the run, one `partition.pass` span
/// per stream pass (stamps are stream positions — logical sequence
/// numbers, never wallclock), the flushed decision counters, and the
/// final per-partition vertex loads.
pub fn run_vertex_stream_traced<P: VertexStreamPartitioner, S: TraceSink>(
    g: &Graph,
    partitioner: &mut P,
    k: usize,
    order: StreamOrder,
    sink: &mut S,
) -> Partitioning {
    crate::streaming::run_vertex_chunked(
        g,
        partitioner,
        k,
        order,
        crate::streaming::DEFAULT_CHUNK,
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use sgp_graph::generators::{erdos_renyi, snb_social, ErdosRenyiConfig, SnbConfig};
    use sgp_graph::GraphBuilder;

    fn cfg(k: usize) -> PartitionerConfig {
        PartitionerConfig::new(k)
    }

    fn two_cliques() -> Graph {
        // Two 5-cliques joined by a single bridge: an obvious 2-way cut.
        let mut b = GraphBuilder::new();
        for base in [0u32, 5u32] {
            for i in 0..5 {
                for j in 0..5 {
                    if i != j {
                        b.push_edge(base + i, base + j);
                    }
                }
            }
        }
        b.push_edge(0, 5);
        b.build()
    }

    #[test]
    fn neighbor_histogram_semantics_are_pinned() {
        // The `|P_i ∩ N(u)|` term every vertex-stream heuristic scores
        // with. Pinned exactly: unplaced neighbours contribute nothing,
        // repeated neighbours count once per occurrence (multi-edges
        // weight the score), and a self-loop counts only once the vertex
        // itself is placed — at first-placement time it is unassigned
        // and contributes zero.
        let mut state = VertexStreamState::new(6, 3);
        state.assign(0, 0);
        state.assign(1, 2);
        state.assign(2, 2);
        // Vertex 5 arrives: neighbours 0 (placed on 0), 1 and 2 (placed
        // on 2), 1 repeated, unplaced 3 and 4, and itself (unplaced).
        assert_eq!(state.neighbor_histogram(&[0, 1, 2, 1, 3, 4, 5], 3), vec![1, 0, 3]);
        // Once 5 is placed, its self-loop occurrences count like any
        // other placed neighbour — the re-streaming case.
        state.assign(5, 1);
        assert_eq!(state.neighbor_histogram(&[5, 5, 3], 3), vec![0, 2, 0]);
        // No neighbours → all-zero histogram, still dense length k.
        assert_eq!(state.neighbor_histogram(&[], 3), vec![0, 0, 0]);
        // The zero-alloc form clears and resizes a dirty scratch buffer
        // to exactly k before counting.
        let mut scratch = vec![99usize; 7];
        state.neighbor_histogram_into(&[0, 5], 3, &mut scratch);
        assert_eq!(scratch, vec![1, 1, 0]);
    }

    #[test]
    fn hash_vertex_is_deterministic_and_balanced() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 4000, edges: 12_000, seed: 1 });
        let c = cfg(8);
        let p1 = run_vertex_stream(&g, &mut HashVertex::new(&c), 8, StreamOrder::Natural);
        let p2 =
            run_vertex_stream(&g, &mut HashVertex::new(&c), 8, StreamOrder::Random { seed: 3 });
        // Hash placement ignores stream order entirely.
        assert_eq!(p1.vertex_owner, p2.vertex_owner);
        let sizes = p1.vertices_per_partition().unwrap();
        let imb = metrics::load_imbalance(&sizes);
        assert!(imb < 1.15, "hash imbalance {imb}");
    }

    #[test]
    fn ldg_finds_clique_structure() {
        let g = two_cliques();
        let c = cfg(2).with_slack(1.2);
        let p = run_vertex_stream(&g, &mut Ldg::new(&c, g.num_vertices()), 2, StreamOrder::Natural);
        let ecr = metrics::edge_cut_ratio(&g, &p).unwrap();
        // Only the bridge (and perhaps one early misplacement) should cross.
        assert!(ecr < 0.2, "LDG edge-cut ratio {ecr}");
    }

    #[test]
    fn ldg_respects_capacity() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 1000, edges: 5000, seed: 2 });
        let c = cfg(4).with_slack(1.05);
        let p = run_vertex_stream(&g, &mut Ldg::new(&c, 1000), 4, StreamOrder::Random { seed: 7 });
        let cap = (1.05f64 * 1000.0 / 4.0).ceil() as usize;
        for &s in &p.vertices_per_partition().unwrap() {
            assert!(s <= cap, "partition size {s} exceeds capacity {cap}");
        }
    }

    #[test]
    fn fennel_beats_hash_on_community_graph() {
        let g = snb_social(SnbConfig {
            persons: 3000,
            communities: 30,
            avg_friends: 12.0,
            ..SnbConfig::default()
        });
        let c = cfg(4);
        let hash =
            run_vertex_stream(&g, &mut HashVertex::new(&c), 4, StreamOrder::Random { seed: 1 });
        let fnl = run_vertex_stream(
            &g,
            &mut Fennel::new(&c, g.num_vertices(), g.num_edges()),
            4,
            StreamOrder::Random { seed: 1 },
        );
        let ecr_hash = metrics::edge_cut_ratio(&g, &hash).unwrap();
        let ecr_fnl = metrics::edge_cut_ratio(&g, &fnl).unwrap();
        assert!(
            ecr_fnl < 0.85 * ecr_hash,
            "FENNEL ({ecr_fnl}) should significantly beat hash ({ecr_hash})"
        );
    }

    #[test]
    fn fennel_respects_capacity() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 2000, edges: 10_000, seed: 5 });
        let c = cfg(8);
        let p = run_vertex_stream(
            &g,
            &mut Fennel::new(&c, 2000, g.num_edges()),
            8,
            StreamOrder::Random { seed: 9 },
        );
        let cap = (c.balance_slack * 2000.0 / 8.0).ceil() as usize;
        for &s in &p.vertices_per_partition().unwrap() {
            assert!(s <= cap, "partition size {s} exceeds {cap}");
        }
    }

    #[test]
    fn restreaming_improves_or_matches_single_pass() {
        let g = snb_social(SnbConfig {
            persons: 2000,
            communities: 25,
            avg_friends: 10.0,
            ..SnbConfig::default()
        });
        let c = cfg(4);
        let single = run_vertex_stream(
            &g,
            &mut Ldg::new(&c, g.num_vertices()),
            4,
            StreamOrder::Random { seed: 2 },
        );
        let multi = run_vertex_stream(
            &g,
            &mut Restream::new(Ldg::new(&c, g.num_vertices()), 5),
            4,
            StreamOrder::Random { seed: 2 },
        );
        let e1 = metrics::edge_cut_ratio(&g, &single).unwrap();
        let e5 = metrics::edge_cut_ratio(&g, &multi).unwrap();
        assert!(e5 <= e1 + 0.02, "restreaming should not regress: {e5} vs {e1}");
    }

    #[test]
    fn every_vertex_assigned_in_range() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 500, edges: 2000, seed: 4 });
        let c = cfg(5);
        for p in [
            run_vertex_stream(&g, &mut HashVertex::new(&c), 5, StreamOrder::Bfs),
            run_vertex_stream(&g, &mut Ldg::new(&c, 500), 5, StreamOrder::Bfs),
            run_vertex_stream(&g, &mut Fennel::new(&c, 500, g.num_edges()), 5, StreamOrder::Dfs),
        ] {
            let owner = p.vertex_owner.as_ref().unwrap();
            assert_eq!(owner.len(), 500);
            assert!(owner.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn k_equals_one_puts_everything_in_partition_zero() {
        let g = two_cliques();
        let c = cfg(1);
        let p = run_vertex_stream(&g, &mut Ldg::new(&c, g.num_vertices()), 1, StreamOrder::Natural);
        assert!(p.vertex_owner.unwrap().iter().all(|&x| x == 0));
        assert_eq!(metrics::edge_cut_ratio_from_owner(&g, &vec![0; g.num_vertices()]), 0.0);
    }

    #[test]
    fn isolated_vertices_are_placed() {
        let g = GraphBuilder::new().add_edge(0, 1).ensure_vertices(10).build();
        let c = cfg(3);
        let p = run_vertex_stream(&g, &mut Ldg::new(&c, 10), 3, StreamOrder::Natural);
        assert!(p.vertex_owner.unwrap().iter().all(|&x| x < 3));
    }
}
