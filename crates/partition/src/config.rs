//! Shared configuration for the streaming partitioners.

use serde::{Deserialize, Serialize};

/// Parameters of the (k, β)-balanced partitioning problem (Eq. 1 of the
/// paper) plus the per-algorithm knobs the paper discusses.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PartitionerConfig {
    /// Number of partitions `k`.
    pub k: usize,
    /// Balance slack `β ≥ 1`; `β = 1` demands exact balance. Used as the
    /// capacity multiplier by LDG (`C = β·|V|/k`) and HDRF/Ginger
    /// (`C = β·|E|/k`).
    pub balance_slack: f64,
    /// FENNEL's γ exponent (the paper uses the original study's 1.5).
    pub fennel_gamma: f64,
    /// FENNEL's α, or `None` to use the paper's closed form
    /// `α = √k · m / n^1.5`.
    pub fennel_alpha: Option<f64>,
    /// HDRF's λ balance weight; the HDRF paper recommends λ > 1 to escape
    /// the degenerate single-partition behaviour of plain greedy.
    pub hdrf_lambda: f64,
    /// Ginger's high-degree threshold, as a multiple of the average
    /// degree; vertices above it are hashed instead of grouped.
    pub ginger_threshold_factor: f64,
    /// Seed for all hash-based and tie-breaking decisions.
    pub seed: u64,
    /// Look-ahead window size `W` for the buffered streaming model
    /// (ADWISE-style): the [`crate::streaming::StreamingPartitioner`]
    /// facade holds up to `W − 1` elements and places the highest-affinity
    /// buffered element first. `W = 1` (the default) degenerates exactly
    /// to the paper's one-pass model — the buffer never holds an element
    /// across a placement, so arrival order is placement order.
    #[serde(default = "default_window")]
    pub window: usize,
    /// Whether the 2PS two-phase partitioner runs its streaming
    /// clustering pass. Disabled, its assignment pass degenerates exactly
    /// to HDRF (the differential tests pin this).
    #[serde(default = "default_two_phase_clustering")]
    pub two_phase_clustering: bool,
}

fn default_window() -> usize {
    1
}

fn default_two_phase_clustering() -> bool {
    true
}

impl PartitionerConfig {
    /// Default configuration for `k` partitions, matching the parameter
    /// choices reported by the cited algorithm papers.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one partition");
        PartitionerConfig {
            k,
            balance_slack: 1.05,
            fennel_gamma: 1.5,
            fennel_alpha: None,
            hdrf_lambda: 1.1,
            ginger_threshold_factor: 4.0,
            seed: 0x5A5A_1234,
            window: 1,
            two_phase_clustering: true,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different balance slack.
    pub fn with_slack(mut self, beta: f64) -> Self {
        assert!(beta >= 1.0, "slack must be >= 1");
        self.balance_slack = beta;
        self
    }

    /// Returns a copy with a different look-ahead window `W ≥ 1`.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "window must be >= 1");
        self.window = window;
        self
    }

    /// Vertex capacity `C = β·n/k` used by LDG's penalty term.
    pub fn vertex_capacity(&self, n: usize) -> f64 {
        self.balance_slack * n as f64 / self.k as f64
    }

    /// Edge capacity `C = β·m/k` used by HDRF's and Ginger's balance terms.
    pub fn edge_capacity(&self, m: usize) -> f64 {
        self.balance_slack * m as f64 / self.k as f64
    }

    /// FENNEL's α: explicit override or the closed form
    /// `√k · m / n^1.5` from the FENNEL paper (§4.1.1).
    pub fn resolved_fennel_alpha(&self, n: usize, m: usize) -> f64 {
        self.fennel_alpha.unwrap_or_else(|| {
            if n == 0 {
                1.0
            } else {
                (self.k as f64).sqrt() * m as f64 / (n as f64).powf(1.5)
            }
        })
    }
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        Self::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_scale_with_k() {
        let c = PartitionerConfig::new(4).with_slack(1.0);
        assert!((c.vertex_capacity(100) - 25.0).abs() < 1e-12);
        assert!((c.edge_capacity(400) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn fennel_alpha_closed_form() {
        let c = PartitionerConfig::new(4);
        // √4 · 1000 / 100^1.5 = 2 * 1000 / 1000 = 2
        assert!((c.resolved_fennel_alpha(100, 1000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fennel_alpha_override_wins() {
        let mut c = PartitionerConfig::new(4);
        c.fennel_alpha = Some(7.5);
        assert_eq!(c.resolved_fennel_alpha(100, 1000), 7.5);
    }

    #[test]
    #[should_panic(expected = "need at least one partition")]
    fn zero_partitions_rejected() {
        PartitionerConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "slack must be >= 1")]
    fn sub_one_slack_rejected() {
        PartitionerConfig::new(2).with_slack(0.5);
    }
}
