//! Schema-versioned snapshot/restore for the incremental streaming core
//! (DESIGN.md §11).
//!
//! A snapshot captures the run-varying state of a
//! [`StreamingPartitioner`] at a chunk boundary — assignments, loads,
//! and the algorithm-specific tables the greedy heuristics consult — in
//! a canonical one-record-per-line text format. The contract mirrors
//! the chunking contract of [`crate::streaming`]: for every Table 2
//! algorithm, restoring a snapshot and continuing the stream is
//! bit-identical to the uninterrupted run, because placement decisions
//! depend only on the element sequence and the state folded over it
//! (all of which the snapshot carries; config-pure inputs like degree
//! oracles are rebuilt from the graph at restore time).
//!
//! Canonical means byte-deterministic: the same machine state always
//! serializes to the same bytes — records are emitted in fixed order
//! (index order within each record class), sparse tables skip their
//! default entries, and nothing wallclock- or address-dependent is ever
//! written. `snapshot(restore(s)) == s` therefore holds for every valid
//! snapshot `s`.
//!
//! The format is schema-versioned like the trace stream and the fault
//! plan: [`SNAPSHOT_SCHEMA_VERSION`] is stamped into the header, pinned
//! in `tests/goldens/SCHEMA_VERSIONS`, and a snapshot from any other
//! version is rejected with a typed [`SnapshotError`] instead of being
//! misread.

use crate::assignment::PartitionId;
use crate::config::PartitionerConfig;
use crate::edge_cut::UNASSIGNED;
use crate::registry::Algorithm;
use crate::streaming::{Machine, StreamInput, StreamingPartitioner};
use sgp_graph::stream::VertexRecord;
use sgp_graph::{Edge, Graph};

/// Version stamped into the snapshot header and pinned in
/// `tests/goldens/SCHEMA_VERSIONS`. Bump on any change to the record
/// vocabulary or semantics; old snapshots are rejected with
/// [`SnapshotError::SchemaMismatch`].
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Why a snapshot failed to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written under a different schema version.
    SchemaMismatch {
        /// Version found in the header.
        found: u32,
    },
    /// The snapshot was taken by a different algorithm than the one
    /// requested for restore.
    AlgorithmMismatch {
        /// Table 2 abbreviation found in the header.
        found: String,
    },
    /// The snapshot's `k`/`n`/`m` header does not match the restore
    /// target (different graph or partition count).
    GraphMismatch,
    /// A line could not be parsed, referenced an out-of-range id, or
    /// carried an unknown record key.
    Malformed {
        /// 1-indexed offending line.
        line: usize,
    },
    /// The recorded per-partition loads disagree with the restored
    /// tables — the snapshot is internally inconsistent (truncated or
    /// corrupted).
    LoadMismatch,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::SchemaMismatch { found } => write!(
                f,
                "snapshot schema v{found} is not the supported v{SNAPSHOT_SCHEMA_VERSION}"
            ),
            SnapshotError::AlgorithmMismatch { found } => {
                write!(f, "snapshot was taken by algorithm {found}")
            }
            SnapshotError::GraphMismatch => {
                write!(f, "snapshot k/n/m do not match the restore target")
            }
            SnapshotError::Malformed { line } => write!(f, "malformed snapshot at line {line}"),
            SnapshotError::LoadMismatch => {
                write!(f, "recorded loads disagree with the restored tables")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes the run-varying state of `sp` into the canonical snapshot
/// format. Prefer the method form
/// [`StreamingPartitioner::snapshot`]; this free function is the
/// implementation both share.
pub fn write_snapshot(sp: &StreamingPartitioner<'_>) -> String {
    let g = sp.graph();
    let mut out = String::new();
    let mut push = |line: String| {
        out.push_str(&line);
        out.push('\n');
    };
    push(format!("sgp-snapshot v{SNAPSHOT_SCHEMA_VERSION}"));
    push(format!("alg {}", sp.algorithm().short_name()));
    let kind = match sp.input() {
        StreamInput::Vertices => "vertex",
        StreamInput::Edges => "edge",
        StreamInput::Offline => "offline",
    };
    push(format!("kind {kind}"));
    push(format!("k {}", sp.k()));
    push(format!("n {}", g.num_vertices()));
    push(format!("m {}", g.num_edges()));
    push(format!("seq {}", sp.elements_ingested()));
    match sp.machine() {
        Machine::Vertex { core, .. } => {
            for (v, &p) in core.state().assignment.iter().enumerate() {
                if p != UNASSIGNED {
                    push(format!("assign {v} {p}"));
                }
            }
            for (i, &size) in core.state().sizes.iter().enumerate() {
                push(format!("load {i} {size}"));
            }
            for (key, value) in core.partitioner().snapshot_records() {
                push(format!("palg {key} {value}"));
            }
            // Look-ahead window contents (DESIGN.md §12): only the
            // vertex id is recorded — the record is config-pure and is
            // rebuilt from the graph at restore time.
            for rec in sp.window_vertex_buffer() {
                push(format!("wv {}", rec.vertex));
            }
        }
        Machine::Edge { core } => {
            for (i, &p) in core.edge_parts().iter().enumerate() {
                if p != 0 {
                    push(format!("edge {i} {p}"));
                }
            }
            for (u, set) in core.state().replica_entries() {
                let joined: Vec<String> = set.map(|p| p.to_string()).collect();
                push(format!("replica {u} {}", joined.join(",")));
            }
            for (u, d) in core.state().partial_degree_entries() {
                push(format!("pdeg {u} {d}"));
            }
            for (i, &count) in core.state().edge_counts.iter().enumerate() {
                push(format!("load {i} {count}"));
            }
            push(format!("rc {}", core.state().replicas_created));
            push(format!("mc {}", core.state().mirror_creations));
            for (key, value) in core.partitioner().snapshot_records() {
                push(format!("palg {key} {value}"));
            }
            // Look-ahead window contents, in arrival order.
            for e in sp.window_edge_buffer() {
                push(format!("we {} {}", e.src, e.dst));
            }
        }
        Machine::Offline => {}
    }
    push("end".to_string());
    out
}

/// Everything a snapshot can carry, accumulated before any state is
/// touched so a malformed snapshot never leaves a half-restored machine.
#[derive(Default)]
struct Parsed {
    seq: u64,
    assigns: Vec<(u32, PartitionId)>,
    edges: Vec<(usize, PartitionId)>,
    replicas: Vec<(u32, Vec<PartitionId>)>,
    pdegs: Vec<(u32, u64)>,
    loads: Vec<u64>,
    replicas_created: u64,
    mirror_creations: u64,
    palgs: Vec<(String, String)>,
    window_vertices: Vec<u32>,
    window_edges: Vec<(u32, u32)>,
    saw_end: bool,
}

fn parse_u64(s: &str) -> Option<u64> {
    s.parse::<u64>().ok()
}

/// Rebuilds a [`StreamingPartitioner`] from `text`, previously produced
/// by [`write_snapshot`] for the same graph, algorithm, and config.
/// Prefer the method form [`StreamingPartitioner::restore`].
pub fn read_snapshot<'g>(
    g: &'g Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    text: &str,
) -> Result<StreamingPartitioner<'g>, SnapshotError> {
    let mut sp = StreamingPartitioner::init(g, algorithm, cfg);
    let expected_kind = match sp.input() {
        StreamInput::Vertices => "vertex",
        StreamInput::Edges => "edge",
        StreamInput::Offline => "offline",
    };
    let k = sp.k();

    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or(SnapshotError::Malformed { line: 1 })?;
    let found = first
        .strip_prefix("sgp-snapshot v")
        .and_then(parse_u64)
        .ok_or(SnapshotError::Malformed { line: 1 })?;
    if found != u64::from(SNAPSHOT_SCHEMA_VERSION) {
        return Err(SnapshotError::SchemaMismatch { found: found.min(u64::from(u32::MAX)) as u32 });
    }

    let mut parsed = Parsed::default();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let bad = SnapshotError::Malformed { line: lineno };
        if parsed.saw_end {
            // Trailing garbage after `end` means truncation went the
            // other way — refuse rather than silently ignore.
            return Err(bad);
        }
        if line == "end" {
            parsed.saw_end = true;
            continue;
        }
        let (key, rest) = line.split_once(' ').ok_or(bad.clone())?;
        match key {
            "alg" => {
                if rest != algorithm.short_name() {
                    return Err(SnapshotError::AlgorithmMismatch { found: rest.to_string() });
                }
            }
            "kind" => {
                if rest != expected_kind {
                    return Err(SnapshotError::AlgorithmMismatch { found: rest.to_string() });
                }
            }
            "k" => {
                if parse_u64(rest) != Some(k as u64) {
                    return Err(SnapshotError::GraphMismatch);
                }
            }
            "n" => {
                if parse_u64(rest) != Some(g.num_vertices() as u64) {
                    return Err(SnapshotError::GraphMismatch);
                }
            }
            "m" => {
                if parse_u64(rest) != Some(g.num_edges() as u64) {
                    return Err(SnapshotError::GraphMismatch);
                }
            }
            "seq" => parsed.seq = parse_u64(rest).ok_or(bad)?,
            "assign" => {
                let (v, p) = rest.split_once(' ').ok_or(bad.clone())?;
                let v = parse_u64(v).ok_or(bad.clone())?;
                let p = parse_u64(p).ok_or(bad.clone())?;
                if v >= g.num_vertices() as u64 || p >= k as u64 {
                    return Err(bad);
                }
                parsed.assigns.push((v as u32, p as PartitionId));
            }
            "edge" => {
                let (i, p) = rest.split_once(' ').ok_or(bad.clone())?;
                let i = parse_u64(i).ok_or(bad.clone())?;
                let p = parse_u64(p).ok_or(bad.clone())?;
                if i >= g.num_edges() as u64 || p >= k as u64 {
                    return Err(bad);
                }
                parsed.edges.push((i as usize, p as PartitionId));
            }
            "replica" => {
                let (u, set) = rest.split_once(' ').ok_or(bad.clone())?;
                let u = parse_u64(u).ok_or(bad.clone())?;
                let mut parts = Vec::new();
                for item in set.split(',') {
                    parts.push(parse_u64(item).ok_or(bad.clone())? as PartitionId);
                }
                if u >= g.num_vertices() as u64 {
                    return Err(bad);
                }
                parsed.replicas.push((u as u32, parts));
            }
            "pdeg" => {
                let (u, d) = rest.split_once(' ').ok_or(bad.clone())?;
                let u = parse_u64(u).ok_or(bad.clone())?;
                let d = parse_u64(d).ok_or(bad.clone())?;
                if u >= g.num_vertices() as u64 {
                    return Err(bad);
                }
                parsed.pdegs.push((u as u32, d));
            }
            "load" => {
                let (i, c) = rest.split_once(' ').ok_or(bad.clone())?;
                let i = parse_u64(i).ok_or(bad.clone())?;
                let c = parse_u64(c).ok_or(bad.clone())?;
                // Loads must arrive densely in partition order — that is
                // what `write_snapshot` emits, and canonical means we
                // accept nothing looser.
                if i != parsed.loads.len() as u64 || i >= k as u64 {
                    return Err(bad);
                }
                parsed.loads.push(c);
            }
            "rc" => parsed.replicas_created = parse_u64(rest).ok_or(bad)?,
            "mc" => parsed.mirror_creations = parse_u64(rest).ok_or(bad)?,
            "palg" => {
                let (pk, pv) = rest.split_once(' ').ok_or(bad)?;
                parsed.palgs.push((pk.to_string(), pv.to_string()));
            }
            "wv" => {
                let v = parse_u64(rest).ok_or(bad.clone())?;
                if v >= g.num_vertices() as u64 {
                    return Err(bad);
                }
                parsed.window_vertices.push(v as u32);
            }
            "we" => {
                let (s, d) = rest.split_once(' ').ok_or(bad.clone())?;
                let s = parse_u64(s).ok_or(bad.clone())?;
                let d = parse_u64(d).ok_or(bad.clone())?;
                if s >= g.num_vertices() as u64 || d >= g.num_vertices() as u64 {
                    return Err(bad);
                }
                parsed.window_edges.push((s as u32, d as u32));
            }
            _ => return Err(bad),
        }
    }
    if !parsed.saw_end {
        // A canonical snapshot always closes with `end`; its absence
        // means the file was truncated mid-write.
        return Err(SnapshotError::Malformed { line: text.lines().count().max(1) });
    }

    apply(&mut sp, parsed, k, g)?;
    Ok(sp)
}

/// Applies fully-parsed records onto a freshly initialized machine.
fn apply(
    sp: &mut StreamingPartitioner<'_>,
    parsed: Parsed,
    k: usize,
    g: &Graph,
) -> Result<(), SnapshotError> {
    match sp.machine_mut() {
        Machine::Vertex { core, .. } => {
            if parsed.loads.len() != k {
                return Err(SnapshotError::LoadMismatch);
            }
            for &(v, p) in &parsed.assigns {
                core.state_mut().assignment[v as usize] = p;
            }
            // Sizes are derivable from the assignment; recompute and use
            // the recorded loads as an integrity check on the snapshot.
            let mut sizes = vec![0u64; k];
            for &p in core.state().assignment.iter() {
                if p != UNASSIGNED {
                    sizes[p as usize] += 1;
                }
            }
            if sizes != parsed.loads {
                return Err(SnapshotError::LoadMismatch);
            }
            core.state_mut().sizes = sizes.into_iter().map(|s| s as usize).collect();
            for (key, value) in &parsed.palgs {
                if !core.partitioner_mut().restore_record(key, value) {
                    return Err(SnapshotError::Malformed { line: 0 });
                }
            }
            core.set_seq(parsed.seq);
        }
        Machine::Edge { core } => {
            if parsed.loads.len() != k {
                return Err(SnapshotError::LoadMismatch);
            }
            // Unlike vertex sizes, edge loads are independent state (an
            // edge restreamed onto partition 0 is indistinguishable from
            // an unplaced slot in `edge_parts`); the only cross-check
            // available is that they sum to the sequence counter.
            if parsed.loads.iter().sum::<u64>() != parsed.seq {
                return Err(SnapshotError::LoadMismatch);
            }
            for &(i, p) in &parsed.edges {
                core.edge_parts_mut()[i] = p;
            }
            for (u, set) in parsed.replicas {
                if !core.state_mut().restore_replicas(u, set) {
                    return Err(SnapshotError::Malformed { line: 0 });
                }
            }
            for (u, d) in parsed.pdegs {
                if !core.state_mut().restore_partial_degree(u, d) {
                    return Err(SnapshotError::Malformed { line: 0 });
                }
            }
            core.state_mut().edge_counts = parsed.loads.iter().map(|&c| c as usize).collect();
            core.state_mut().replicas_created = parsed.replicas_created;
            core.state_mut().mirror_creations = parsed.mirror_creations;
            for (key, value) in &parsed.palgs {
                if !core.partitioner_mut().restore_record(key, value) {
                    return Err(SnapshotError::Malformed { line: 0 });
                }
            }
            core.set_seq(parsed.seq);
        }
        Machine::Offline => {
            // The offline baseline carries no streaming state; a
            // snapshot of it is just the header, and restore is init.
        }
    }
    // Refill the look-ahead window last, once the core borrow is done.
    // A record of the wrong stream kind marks a spliced snapshot.
    match sp.input() {
        StreamInput::Vertices => {
            if !parsed.window_edges.is_empty() {
                return Err(SnapshotError::Malformed { line: 0 });
            }
            for v in parsed.window_vertices {
                sp.push_window_vertex(VertexRecord::for_vertex(g, v));
            }
        }
        StreamInput::Edges => {
            if !parsed.window_vertices.is_empty() {
                return Err(SnapshotError::Malformed { line: 0 });
            }
            for (s, d) in parsed.window_edges {
                sp.push_window_edge(Edge::new(s, d));
            }
        }
        StreamInput::Offline => {
            if !parsed.window_vertices.is_empty() || !parsed.window_edges.is_empty() {
                return Err(SnapshotError::Malformed { line: 0 });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::partition_chunked;
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};
    use sgp_graph::{EdgeStreamSource, StreamOrder, VertexStreamSource};

    fn graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 200, edges: 1200, seed: 11 })
    }

    /// `unwrap_err` needs `Debug` on the success type; the machine holds
    /// boxed trait objects, so unwrap by hand.
    fn restore_err(
        g: &Graph,
        alg: Algorithm,
        cfg: &PartitionerConfig,
        text: &str,
    ) -> SnapshotError {
        match StreamingPartitioner::restore(g, alg, cfg, text) {
            Ok(_) => panic!("restore unexpectedly succeeded"),
            Err(e) => e,
        }
    }

    /// Streams `g` into `sp`, snapshotting after `cut` chunks, restoring
    /// into a fresh machine, finishing the stream there, and returning
    /// the sealed result plus the snapshot it crossed.
    fn interrupted_run(
        g: &Graph,
        alg: Algorithm,
        cfg: &PartitionerConfig,
        order: StreamOrder,
        chunk: usize,
        cut: usize,
    ) -> (crate::assignment::Partitioning, String) {
        let mut sp = StreamingPartitioner::init(g, alg, cfg);
        let mut fed = 0usize;
        let mut text = None;
        match sp.input() {
            StreamInput::Vertices => {
                let passes = sp.passes();
                let mut source = VertexStreamSource::new(g, order);
                let mut buf = Vec::new();
                for _ in 0..passes {
                    source.restart();
                    while source.next_chunk(chunk, &mut buf) > 0 {
                        sp.ingest_vertices(&buf).unwrap();
                        fed += 1;
                        if fed == cut {
                            let snap = sp.snapshot();
                            sp = StreamingPartitioner::restore(g, alg, cfg, &snap).unwrap();
                            text = Some(snap);
                        }
                    }
                    sp.flush_window();
                }
            }
            StreamInput::Edges => {
                let passes = sp.passes();
                let mut source = EdgeStreamSource::new(g, order);
                let mut buf = Vec::new();
                for _ in 0..passes {
                    source.restart();
                    while source.next_chunk(chunk, &mut buf) > 0 {
                        sp.ingest_edges(&buf).unwrap();
                        fed += 1;
                        if fed == cut {
                            let snap = sp.snapshot();
                            sp = StreamingPartitioner::restore(g, alg, cfg, &snap).unwrap();
                            text = Some(snap);
                        }
                    }
                    sp.flush_window();
                }
            }
            StreamInput::Offline => {
                let snap = sp.snapshot();
                sp = StreamingPartitioner::restore(g, alg, cfg, &snap).unwrap();
                text = Some(snap);
            }
        }
        (sp.seal(), text.expect("cut point crossed"))
    }

    #[test]
    fn restore_then_continue_is_bit_identical_for_every_algorithm() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let order = StreamOrder::Random { seed: 17 };
        for &alg in Algorithm::all() {
            let whole = partition_chunked(&g, alg, &cfg, order, 32);
            let (resumed, _) = interrupted_run(&g, alg, &cfg, order, 32, 3);
            assert_eq!(whole.edge_parts, resumed.edge_parts, "{alg}");
            assert_eq!(whole.vertex_owner, resumed.vertex_owner, "{alg}");
        }
    }

    #[test]
    fn snapshot_of_restored_machine_is_byte_identical() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        for &alg in Algorithm::all() {
            let (_, snap) = interrupted_run(&g, alg, &cfg, StreamOrder::Natural, 16, 2);
            let restored = StreamingPartitioner::restore(&g, alg, &cfg, &snap).unwrap();
            assert_eq!(restored.snapshot(), snap, "{alg}");
        }
    }

    #[test]
    fn wrong_schema_version_is_rejected_with_typed_error() {
        let g = graph();
        let cfg = PartitionerConfig::new(2);
        let err = restore_err(&g, Algorithm::Ldg, &cfg, "sgp-snapshot v0\nend\n");
        assert_eq!(err, SnapshotError::SchemaMismatch { found: 0 });
    }

    #[test]
    fn wrong_algorithm_and_wrong_graph_are_rejected() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let sp = StreamingPartitioner::init(&g, Algorithm::Hdrf, &cfg);
        let snap = sp.snapshot();
        let err = restore_err(&g, Algorithm::Ldg, &cfg, &snap);
        assert_eq!(err, SnapshotError::AlgorithmMismatch { found: "HDRF".to_string() });
        let other = erdos_renyi(ErdosRenyiConfig { vertices: 50, edges: 200, seed: 1 });
        let err = restore_err(&other, Algorithm::Hdrf, &cfg, &snap);
        assert_eq!(err, SnapshotError::GraphMismatch);
    }

    #[test]
    fn truncated_and_corrupted_snapshots_are_rejected() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let (_, snap) = interrupted_run(&g, Algorithm::Hdrf, &cfg, StreamOrder::Natural, 16, 2);
        // Truncation: drop the trailing `end` line.
        let truncated = snap.trim_end_matches("end\n");
        let err = restore_err(&g, Algorithm::Hdrf, &cfg, truncated);
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err:?}");
        // Corruption: tamper with a load record so the sum check fails.
        let corrupted = snap.replacen("load 0 ", "load 0 9", 1);
        let err = restore_err(&g, Algorithm::Hdrf, &cfg, &corrupted);
        assert_eq!(err, SnapshotError::LoadMismatch);
    }
}
