//! Structural partitioning-quality metrics (§4.1, §4.2, Appendix B).
//!
//! * **Edge-cut ratio** — fraction of edges whose endpoints are owned by
//!   different partitions (edge-cut model, Eq. 3).
//! * **Replication factor** — average number of partitions a vertex
//!   spans (vertex-cut model, Eq. 6); on an engine with Appendix-B
//!   placement this also quantifies edge-cut communication.
//! * **Load imbalance** — largest partition over average partition size.
//!
//! The closed-form expectations for uniform random placement (Appendix B
//! and Bourse et al.) are provided as oracles for the property tests.

use crate::assignment::Partitioning;
use serde::{Deserialize, Serialize};
use sgp_graph::Graph;

/// Fraction of edges cut across partitions given a vertex ownership map.
pub fn edge_cut_ratio_from_owner(g: &Graph, owner: &[u32]) -> f64 {
    assert_eq!(owner.len(), g.num_vertices());
    if g.num_edges() == 0 {
        return 0.0;
    }
    let cut = g.edges().filter(|e| owner[e.src as usize] != owner[e.dst as usize]).count();
    cut as f64 / g.num_edges() as f64
}

/// Edge-cut ratio of a partitioning, or `None` for pure vertex-cut
/// placements (which have no vertex ownership to cut against).
pub fn edge_cut_ratio(g: &Graph, p: &Partitioning) -> Option<f64> {
    p.vertex_owner.as_ref().map(|owner| edge_cut_ratio_from_owner(g, owner))
}

/// Replication factor: average `|A(u)|` over all vertices (Eq. 6). 1.0
/// means no replication at all.
pub fn replication_factor(g: &Graph, p: &Partitioning) -> f64 {
    if g.num_vertices() == 0 {
        return 0.0;
    }
    p.total_replicas(g) as f64 / g.num_vertices() as f64
}

/// Load imbalance: largest count over average count (≥ 1.0; 1.0 = exact
/// balance). Defined for any per-partition load vector.
pub fn load_imbalance(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let avg = total as f64 / counts.len() as f64;
    // sgp-lint: allow(no-panic-in-lib): counts.is_empty() returned above, so max() yields a value
    *counts.iter().max().expect("non-empty") as f64 / avg
}

/// Relative standard deviation (σ/μ) of a load vector — the measure the
/// paper plots in Fig. 8 for workload-aware partitioning.
pub fn relative_std_dev(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Expected edge-cut ratio of uniform random vertex placement:
/// `1 − 1/k` (§4.1.1).
pub fn expected_hash_edge_cut(k: usize) -> f64 {
    1.0 - 1.0 / k as f64
}

/// Expected replication factor of uniform random *vertex* placement with
/// Appendix-B edge grouping (out-edges follow the source): vertex `v`'s
/// replica set is its own partition plus the owners of its in-neighbours,
/// i.e. `d_in(v) + 1` i.i.d. uniform draws, so
/// `E|A(v)| = k·(1 − (1 − 1/k)^(d_in(v)+1))`.
pub fn expected_rf_random_edge_cut(g: &Graph, k: usize) -> f64 {
    if g.num_vertices() == 0 {
        return 0.0;
    }
    let kf = k as f64;
    let sum: f64 =
        g.vertices().map(|v| kf * (1.0 - (1.0 - 1.0 / kf).powi(g.in_degree(v) as i32 + 1))).sum();
    sum / g.num_vertices() as f64
}

/// Expected replication factor of uniform random *edge* placement
/// (Bourse et al.): vertex `v`'s `d(v)` incident edges land on i.i.d.
/// uniform partitions, so `E|A(v)| = k·(1 − (1 − 1/k)^d(v))`; isolated
/// vertices contribute 1 (their deterministic parking partition).
pub fn expected_rf_random_vertex_cut(g: &Graph, k: usize) -> f64 {
    if g.num_vertices() == 0 {
        return 0.0;
    }
    let kf = k as f64;
    let sum: f64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v);
            if d == 0 {
                1.0
            } else {
                kf * (1.0 - (1.0 - 1.0 / kf).powi(d as i32))
            }
        })
        .sum();
    sum / g.num_vertices() as f64
}

/// A full structural-quality report for one partitioning (the per-row
/// payload behind Fig. 2 and Table 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityReport {
    /// Number of partitions.
    pub k: usize,
    /// Replication factor (Eq. 6 / Appendix B).
    pub replication_factor: f64,
    /// Edge-cut ratio (Eq. 3), when the model is vertex-disjoint.
    pub edge_cut_ratio: Option<f64>,
    /// Imbalance of per-partition edge counts.
    pub edge_imbalance: f64,
    /// Imbalance of owned-vertex counts, when vertex-disjoint.
    pub vertex_imbalance: Option<f64>,
}

impl QualityReport {
    /// Measures `p` against `g`.
    pub fn measure(g: &Graph, p: &Partitioning) -> Self {
        QualityReport {
            k: p.k,
            replication_factor: replication_factor(g, p),
            edge_cut_ratio: edge_cut_ratio(g, p),
            edge_imbalance: load_imbalance(&p.edges_per_partition()),
            vertex_imbalance: p.vertices_per_partition().as_deref().map(load_imbalance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Partitioning;
    use crate::config::PartitionerConfig;
    use crate::edge_cut::{run_vertex_stream, HashVertex};
    use crate::vertex_cut::{run_edge_stream, HashEdge};
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};
    use sgp_graph::{GraphBuilder, StreamOrder};

    #[test]
    fn edge_cut_ratio_of_trivial_partitionings() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).build();
        assert_eq!(edge_cut_ratio_from_owner(&g, &[0, 0, 0]), 0.0);
        assert_eq!(edge_cut_ratio_from_owner(&g, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn replication_factor_of_perfect_locality_is_one() {
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(1, 2).build();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 0, 0]);
        assert!((replication_factor(&g, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replication_factor_counts_mirrors() {
        // Edge (0,1) on p0, edge (2,1) on p1: vertex 1 spans both.
        let g = GraphBuilder::new().add_edge(0, 1).add_edge(2, 1).build();
        let p = Partitioning::from_edge_parts(&g, 2, vec![0, 1]);
        // A(0)={0}, A(1)={0,1}, A(2)={1} → RF = 4/3.
        assert!((replication_factor(&g, &p) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_basics() {
        assert!((load_imbalance(&[10, 10, 10]) - 1.0).abs() < 1e-12);
        assert!((load_imbalance(&[30, 0, 0]) - 3.0).abs() < 1e-12);
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn rsd_zero_for_uniform() {
        assert!(relative_std_dev(&[5, 5, 5, 5]) < 1e-12);
        assert!(relative_std_dev(&[10, 0]) > 0.9);
    }

    #[test]
    fn hash_edge_cut_matches_expectation() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 5000, edges: 40_000, seed: 11 });
        let cfg = PartitionerConfig::new(8);
        let p = run_vertex_stream(&g, &mut HashVertex::new(&cfg), 8, StreamOrder::Natural);
        let measured = edge_cut_ratio(&g, &p).unwrap();
        let expected = expected_hash_edge_cut(8);
        assert!((measured - expected).abs() < 0.02, "measured {measured} expected {expected}");
    }

    #[test]
    fn hash_vertex_cut_rf_matches_expectation() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 3000, edges: 30_000, seed: 12 });
        let cfg = PartitionerConfig::new(8);
        let p = run_edge_stream(&g, &mut HashEdge::new(&cfg), 8, StreamOrder::Natural);
        let measured = replication_factor(&g, &p);
        let expected = expected_rf_random_vertex_cut(&g, 8);
        assert!(
            (measured - expected).abs() / expected < 0.05,
            "measured {measured} expected {expected}"
        );
    }

    #[test]
    fn hash_edge_cut_rf_matches_expectation() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 3000, edges: 30_000, seed: 13 });
        let cfg = PartitionerConfig::new(8);
        let p = run_vertex_stream(&g, &mut HashVertex::new(&cfg), 8, StreamOrder::Natural);
        let measured = replication_factor(&g, &p);
        let expected = expected_rf_random_edge_cut(&g, 8);
        assert!(
            (measured - expected).abs() / expected < 0.05,
            "measured {measured} expected {expected}"
        );
    }

    #[test]
    fn quality_report_fields_consistent() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 500, edges: 3000, seed: 14 });
        let cfg = PartitionerConfig::new(4);
        let p = run_vertex_stream(&g, &mut HashVertex::new(&cfg), 4, StreamOrder::Natural);
        let q = QualityReport::measure(&g, &p);
        assert_eq!(q.k, 4);
        assert!(q.replication_factor >= 1.0);
        assert!(q.edge_cut_ratio.is_some());
        assert!(q.vertex_imbalance.is_some());
        assert!(q.edge_imbalance >= 1.0);
    }

    #[test]
    fn expected_formulas_monotone_in_k() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 1000, edges: 8000, seed: 15 });
        assert!(expected_rf_random_vertex_cut(&g, 4) < expected_rf_random_vertex_cut(&g, 16));
        assert!(expected_rf_random_edge_cut(&g, 4) < expected_rf_random_edge_cut(&g, 16));
        assert!(expected_hash_edge_cut(4) < expected_hash_edge_cut(16));
    }
}
