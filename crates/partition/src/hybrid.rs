//! Hybrid-cut SGP (§4.3 of the paper): PowerLyra's hybrid random (`HCR`)
//! and Ginger (`HG`).
//!
//! PowerLyra "differentiates between high-degree and low-degree vertices;
//! it uses edge-cut partitioning for low-degree vertices while in-edges
//! of high-degree vertices are partitioned via vertex-cut". Concretely,
//! the *in-edges* of a low-degree vertex `v` are grouped on `v`'s own
//! partition (making its gather local), while the in-edges of a
//! high-degree vertex are scattered by hashing their *source* endpoint.

use crate::assignment::{hash_to_partition, CutModel, PartitionId, Partitioning};
use crate::config::PartitionerConfig;
use crate::decisions::DecisionStats;
use crate::edge_cut::{VertexStreamPartitioner, VertexStreamState};
use crate::streaming::{VertexIngest, DEFAULT_CHUNK};
use sgp_graph::stream::VertexRecord;
use sgp_graph::{Graph, StreamOrder, VertexStreamSource};

/// Degree threshold separating low- from high-degree vertices. PowerLyra
/// exposes this as a user knob; the reproduction derives it from the
/// average degree by [`PartitionerConfig::ginger_threshold_factor`].
pub(crate) fn high_degree_threshold(g: &Graph, cfg: &PartitionerConfig) -> usize {
    ((g.avg_degree() * cfg.ginger_threshold_factor).ceil() as usize).max(1)
}

/// Hybrid random (`HCR`): vertices are hashed to an owner partition;
/// in-edges of low-degree vertices follow the *target*'s owner, in-edges
/// of high-degree vertices follow the *source*'s owner. Embarrassingly
/// parallel, like plain hash.
pub fn hybrid_random(g: &Graph, cfg: &PartitionerConfig) -> Partitioning {
    hybrid_random_with_stats(g, cfg).0
}

/// [`hybrid_random`] plus the decision counters of the run (how many
/// edges took the high-degree source-hash route).
pub fn hybrid_random_with_stats(
    g: &Graph,
    cfg: &PartitionerConfig,
) -> (Partitioning, DecisionStats) {
    let k = cfg.k;
    let threshold = high_degree_threshold(g, cfg);
    let owner: Vec<PartitionId> = g.vertices().map(|v| hash_to_partition(v, k, cfg.seed)).collect();
    let (edge_parts, degree_threshold_hits) = place_hybrid_edges(g, k, &owner, threshold);
    let stats = DecisionStats { degree_threshold_hits, ..DecisionStats::default() };
    (Partitioning { k, model: CutModel::HybridCut, edge_parts, vertex_owner: Some(owner) }, stats)
}

/// Ginger (`HG`), Eq. (8) of the paper: a FENNEL-like greedy that places
/// each vertex `v` (and its in-edges) on the partition maximizing
///
/// `|N(v) ∩ P_i| − ½(|V_i| + (|V|/|E|)·|E_i|)`
///
/// balancing both vertex and edge counts; afterwards, the in-edges of
/// high-degree vertices are re-assigned by hashing their source — the
/// two-phase behaviour the paper notes is "difficult for streaming data".
pub fn ginger(g: &Graph, cfg: &PartitionerConfig, order: StreamOrder) -> Partitioning {
    ginger_with_stats(g, cfg, order).0
}

/// [`ginger`] plus the decision counters of the run.
pub fn ginger_with_stats(
    g: &Graph,
    cfg: &PartitionerConfig,
    order: StreamOrder,
) -> (Partitioning, DecisionStats) {
    ginger_chunked(g, cfg, order, DEFAULT_CHUNK)
}

/// [`ginger_with_stats`] with a caller-chosen ingestion chunk size —
/// phase 1 runs through the incremental core, so any chunk size yields
/// a byte-identical result.
pub fn ginger_chunked(
    g: &Graph,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    chunk_size: usize,
) -> (Partitioning, DecisionStats) {
    let k = cfg.k;
    let threshold = high_degree_threshold(g, cfg);

    // Phase 1: greedy vertex placement over the vertex stream, driven
    // through the incremental core.
    let mut core = VertexIngest::init(GingerVertex::new(cfg, g), g.num_vertices(), k);
    let mut source = VertexStreamSource::new(g, order);
    let mut chunk = Vec::new();
    while source.next_chunk(chunk_size, &mut chunk) > 0 {
        core.ingest(&chunk);
    }
    let owner = core.into_owner();

    // Phase 2: re-assign in-edges of high-degree vertices by source hash.
    let (edge_parts, degree_threshold_hits) = place_hybrid_edges(g, k, &owner, threshold);
    let stats = DecisionStats { degree_threshold_hits, ..DecisionStats::default() };
    (Partitioning { k, model: CutModel::HybridCut, edge_parts, vertex_owner: Some(owner) }, stats)
}

/// Ginger's phase-1 greedy as a [`VertexStreamPartitioner`]: places each
/// vertex `v` on the partition maximizing
/// `|N(v) ∩ P_i| − ½(|V_i| + (|V|/|E|)·|E_i|)` (Eq. (8)). Vertex counts
/// come from the shared streaming state; the edge-count term tracks the
/// in-edges that travel with every vertex this machine placed, which is
/// private knowledge of the greedy (the shared state counts vertices).
#[derive(Debug, Clone)]
pub struct GingerVertex {
    k: usize,
    nm_ratio: f64,
    vertex_cap: f64,
    in_degrees: Vec<usize>,
    edge_counts: Vec<usize>,
    /// Scratch neighbour histogram reused across vertices (DESIGN.md §13).
    hist: Vec<usize>,
}

impl GingerVertex {
    /// Creates the Ginger phase-1 machine for `g` (in-degrees are the
    /// a-priori knowledge Ginger shares with the offline formulation).
    pub fn new(cfg: &PartitionerConfig, g: &Graph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges().max(1);
        GingerVertex {
            k: cfg.k,
            nm_ratio: n as f64 / m as f64,
            vertex_cap: cfg.vertex_capacity(n).max(1.0) * 1.5, // soft guard only
            in_degrees: g.vertices().map(|v| g.in_degree(v)).collect(),
            edge_counts: vec![0; cfg.k],
            hist: Vec::new(),
        }
    }
}

impl VertexStreamPartitioner for GingerVertex {
    fn place(&mut self, rec: &VertexRecord, state: &VertexStreamState) -> PartitionId {
        state.neighbor_histogram_into(&rec.neighbors, self.k, &mut self.hist);
        let mut best = (f64::NEG_INFINITY, 0usize);
        for i in 0..self.k {
            if state.sizes[i] as f64 >= self.vertex_cap {
                continue;
            }
            let balance =
                0.5 * (state.sizes[i] as f64 + self.nm_ratio * self.edge_counts[i] as f64);
            let score = self.hist[i] as f64 - balance;
            if score > best.0 {
                best = (score, i);
            }
        }
        // In-edges travel with the vertex.
        self.edge_counts[best.1] += self.in_degrees[rec.vertex as usize];
        best.1 as PartitionId
    }

    fn name(&self) -> &'static str {
        "HG"
    }

    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        // The edge-count term is placement-affecting private state, so a
        // snapshot that dropped it would diverge after restore.
        let counts: Vec<String> = self.edge_counts.iter().map(|c| c.to_string()).collect();
        vec![("edge_counts", counts.join(","))]
    }

    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        if key != "edge_counts" {
            return false;
        }
        let mut counts = Vec::with_capacity(self.k);
        for part in value.split(',') {
            match part.parse::<usize>() {
                Ok(c) => counts.push(c),
                Err(_) => return false,
            }
        }
        if counts.len() != self.k {
            return false;
        }
        self.edge_counts = counts;
        true
    }
}

/// Shared hybrid edge placement: edge `(u, v)` goes to `owner[v]` when
/// `v` is low-degree (in-degree ≤ threshold), else to `owner[u]`
/// (PowerLyra hashes high-degree in-edges by source). Also returns how
/// many edges took the high-degree route — the hybrid-cut's
/// characteristic decision counter.
pub(crate) fn place_hybrid_edges(
    g: &Graph,
    k: usize,
    owner: &[PartitionId],
    threshold: usize,
) -> (Vec<PartitionId>, u64) {
    debug_assert!(owner.iter().all(|&p| (p as usize) < k));
    let mut edge_parts = Vec::with_capacity(g.num_edges());
    let mut high_degree_hits = 0u64;
    for e in g.edges() {
        let p = if g.in_degree(e.dst) <= threshold {
            owner[e.dst as usize]
        } else {
            high_degree_hits += 1;
            owner[e.src as usize]
        };
        edge_parts.push(p);
    }
    (edge_parts, high_degree_hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::vertex_cut::{run_edge_stream, HashEdge};
    use sgp_graph::generators::{rmat, road_grid, RmatConfig, RoadConfig};
    use sgp_graph::GraphBuilder;

    fn cfg(k: usize) -> PartitionerConfig {
        PartitionerConfig::new(k)
    }

    fn twitter_like() -> Graph {
        rmat(RmatConfig { scale: 11, edge_factor: 12, ..RmatConfig::default() })
    }

    #[test]
    fn hybrid_random_low_degree_edges_follow_target() {
        // Star pointing *into* vertex 0 (high in-degree) plus a chain of
        // low-degree vertices.
        let mut b = GraphBuilder::new();
        for i in 1..=30u32 {
            b.push_edge(i, 0); // 0 is high in-degree
        }
        b.push_edge(31, 32);
        let g = b.build();
        let c = cfg(4);
        let p = hybrid_random(&g, &c);
        let owner = p.vertex_owner.as_ref().unwrap();
        // Low-degree target: edge (31,32) must sit on owner of 32.
        assert_eq!(p.edge_partition(&g, 31, 32).unwrap(), owner[32]);
        // High-degree target: edge (5,0) must sit on owner of 5 (source).
        assert_eq!(p.edge_partition(&g, 5, 0).unwrap(), owner[5]);
    }

    #[test]
    fn hybrid_random_is_deterministic() {
        let g = twitter_like();
        let c = cfg(8);
        assert_eq!(hybrid_random(&g, &c).edge_parts, hybrid_random(&g, &c).edge_parts);
    }

    #[test]
    fn ginger_beats_hybrid_random_on_replication() {
        let g = twitter_like();
        let c = cfg(8);
        let hcr = hybrid_random(&g, &c);
        let hg = ginger(&g, &c, StreamOrder::Random { seed: 3 });
        let (r_hcr, r_hg) =
            (metrics::replication_factor(&g, &hcr), metrics::replication_factor(&g, &hg));
        assert!(r_hg < r_hcr, "Ginger RF {r_hg} should beat hybrid random {r_hcr}");
    }

    #[test]
    fn ginger_beats_vcr_on_skewed_graph() {
        let g = twitter_like();
        let c = cfg(8);
        let vcr = run_edge_stream(&g, &mut HashEdge::new(&c), 8, StreamOrder::Random { seed: 1 });
        let hg = ginger(&g, &c, StreamOrder::Random { seed: 1 });
        assert!(
            metrics::replication_factor(&g, &hg) < metrics::replication_factor(&g, &vcr),
            "hybrid should beat random vertex-cut on power-law graphs (§4.3)"
        );
    }

    #[test]
    fn ginger_edges_reasonably_balanced() {
        let g = twitter_like();
        let c = cfg(8);
        let p = ginger(&g, &c, StreamOrder::Random { seed: 5 });
        let imb = metrics::load_imbalance(&p.edges_per_partition());
        assert!(imb < 2.0, "Ginger edge imbalance {imb}");
    }

    #[test]
    fn hybrid_on_low_degree_graph_degenerates_to_edge_cut_grouping() {
        // Road networks have no high-degree vertices, so every edge
        // follows its target's owner — pure target-grouped edge-cut.
        let g = road_grid(RoadConfig { width: 20, height: 20, ..RoadConfig::default() });
        let c = cfg(4);
        let p = hybrid_random(&g, &c);
        let owner = p.vertex_owner.as_ref().unwrap();
        for (i, e) in g.edges().enumerate() {
            assert_eq!(p.edge_parts[i], owner[e.dst as usize]);
        }
    }

    #[test]
    fn ginger_assigns_every_vertex() {
        let g = twitter_like();
        let c = cfg(16);
        let p = ginger(&g, &c, StreamOrder::Bfs);
        let owner = p.vertex_owner.unwrap();
        assert_eq!(owner.len(), g.num_vertices());
        assert!(owner.iter().all(|&x| x < 16));
    }
}
