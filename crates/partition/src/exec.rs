//! Real-threads execution backend for the multi-loader layer.
//!
//! [`loaders`](crate::loaders) *models* Table 1's parallel ingestion:
//! `L` state machines take turns on one OS thread, so the merge
//! discipline is exercised but no wall-clock parallelism exists. This
//! module is the first real execution tier — the same `L` machines run
//! on `L` OS threads inside a [`crossbeam::thread::scope`], and the
//! result is **byte-identical** to the modelled path (and therefore to
//! the sequential core when `L = 1`), because the protocol moves every
//! nondeterministic degree of freedom off the threads:
//!
//! * **Work distribution is positional, not racy.** The coordinator
//!   reads each synchronization block from the stream source itself and
//!   stride-splits it (element `i` → worker `i mod L`) before any
//!   thread sees it — identical to the modelled split.
//! * **Workers only compute.** Each worker owns its partitioner state
//!   machine *and its local state replica* for the whole run (all
//!   passes of a re-streaming algorithm included). Per round it
//!   receives the previous barrier's decision **delta** plus its
//!   stride, replays the other workers' logs into its replica (its own
//!   decisions were applied at placement time), places exactly like a
//!   modelled loader, and returns a decision log. No `O(n)` state
//!   snapshot ever crosses a channel, and no worker touches shared
//!   state.
//! * **The merge is single-threaded and seeded.** The coordinator
//!   collects logs in worker-index order — never completion order — and
//!   replays them in the same seeded rotation as the modelled barrier
//!   ([`merge_start`] on [`LoaderConfig::seed`]), so thread scheduling
//!   cannot leak into the placement.
//!
//! Cross-thread traffic flows through exactly two rendezvous channels
//! per worker (depth-1 bounded: work down, log up), and every payload
//! type is listed in `tests/goldens/SEND_REGISTRY` — the
//! `send-bound-registry` lint keeps that list honest, and the
//! `thread-discipline` lint confines every thread/channel/lock
//! primitive in the workspace to this module.

use crate::assignment::{PartitionId, Partitioning};
use crate::config::PartitionerConfig;
use crate::edge_cut::{VertexStreamPartitioner, VertexStreamState};
use crate::loaders::{
    apply_edge_decisions, apply_vertex_decisions, merge_start, seal_vertices, vertex_seal,
    LoaderConfig, VertexLoaderSeal,
};
use crate::registry::{partition, Algorithm};
use crate::streaming::{boxed_edge_partitioner, boxed_vertex_partitioner};
use crate::vertex_cut::{EdgeStreamPartitioner, EdgeStreamState};
use crossbeam::channel::{Receiver, Sender};
use sgp_graph::stream::VertexRecord;
use sgp_graph::{Edge, EdgeStreamSource, Graph, StreamOrder, VertexStreamSource};
use sgp_trace::{keys, NullSink, TraceSink};
use std::sync::Arc;

/// Schema version of `tests/goldens/SEND_REGISTRY`, the pinned list of
/// types allowed to cross the loader-channel boundary. Bump on any
/// change to the registry's entry format (not on adding entries), and
/// keep `tests/goldens/SCHEMA_VERSIONS` in sync — the
/// `schema-version-sync` lint enforces the pairing.
pub const SEND_REGISTRY_SCHEMA_VERSION: u32 = 1;

/// The previous barrier's merged decision logs plus the rotation start
/// they were merged at. One `Arc` is shared by all workers of a round;
/// each worker replays every log but its own into its retained local
/// state, which lands it exactly on the post-barrier global (replay is
/// order-commutative, see [`crate::loaders`]). Round 0 ships an empty
/// delta: every replica starts equal to the fresh global.
struct VertexDelta {
    start: usize,
    decisions: Vec<Vec<(u32, PartitionId)>>,
}

/// One round of work for a vertex-stream worker: the previous barrier's
/// delta plus the worker's stride of the block.
struct VertexWork {
    delta: Arc<VertexDelta>,
    records: Vec<VertexRecord>,
}

/// A vertex worker's decision log for one round, replayed at the
/// barrier in seeded rotation order.
struct VertexLog {
    decisions: Vec<(u32, PartitionId)>,
}

/// Edge-stream twin of [`VertexDelta`].
struct EdgeDelta {
    start: usize,
    decisions: Vec<Vec<(Edge, PartitionId)>>,
}

/// One round of work for an edge-stream worker.
struct EdgeWork {
    delta: Arc<EdgeDelta>,
    edges: Vec<Edge>,
}

/// An edge worker's decision log for one round.
struct EdgeLog {
    decisions: Vec<(Edge, PartitionId)>,
}

/// Runs `algorithm` over `g` with the stream split across
/// [`LoaderConfig::loaders`] **OS threads**. Byte-identical to
/// [`partition_multi_loader`](crate::loaders::partition_multi_loader)
/// for every `(cfg, order, lc)`, and therefore to
/// [`partition`](crate::registry::partition) when `lc.loaders == 1`.
/// The offline METIS baseline ignores `lc` and runs sequentially, like
/// the modelled path.
pub fn partition_threaded(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    lc: &LoaderConfig,
) -> Partitioning {
    partition_threaded_traced(g, algorithm, cfg, order, lc, &mut NullSink)
}

/// [`partition_threaded`] with trace emission: counts the worker
/// threads ([`keys::PARTITION_EXEC_THREADS`]) and synchronization
/// rounds ([`keys::PARTITION_EXEC_BARRIER_ROUNDS`]) of the run.
pub fn partition_threaded_traced<S: TraceSink>(
    g: &Graph,
    algorithm: Algorithm,
    cfg: &PartitionerConfig,
    order: StreamOrder,
    lc: &LoaderConfig,
    sink: &mut S,
) -> Partitioning {
    if !algorithm.supports_parallel_loaders() {
        // Same routing as the modelled multi-loader: METIS and 2PS fall
        // back to the single-loader run.
        return partition(g, algorithm, cfg, order);
    }
    let (l, _) = lc.clamped();
    let mut edge_machines = Vec::with_capacity(l);
    for _ in 0..l {
        match boxed_edge_partitioner(g, algorithm, cfg) {
            Some(m) => edge_machines.push(m),
            None => break,
        }
    }
    let (result, rounds) = if edge_machines.len() == l {
        threaded_edges(g, cfg.k, edge_machines, order, lc)
    } else {
        let mut vertex_machines = Vec::with_capacity(l);
        for _ in 0..l {
            match boxed_vertex_partitioner(g, algorithm, cfg) {
                Some(m) => vertex_machines.push(m),
                None => return partition(g, algorithm, cfg, order),
            }
        }
        let seal = vertex_seal(g, algorithm, cfg);
        threaded_vertices(g, cfg.k, vertex_machines, order, lc, seal)
    };
    if sink.enabled() {
        sink.counter_add(keys::PARTITION_EXEC_THREADS, 0, l as u64);
        sink.counter_add(keys::PARTITION_EXEC_BARRIER_ROUNDS, 0, rounds);
    }
    result
}

fn threaded_vertices(
    g: &Graph,
    k: usize,
    machines: Vec<Box<dyn VertexStreamPartitioner>>,
    order: StreamOrder,
    lc: &LoaderConfig,
    seal: VertexLoaderSeal,
) -> (Partitioning, u64) {
    let (l, t) = lc.clamped();
    let passes = machines.first().map(|m| m.passes()).unwrap_or(1);
    let (global, rounds) = crossbeam::thread::scope(|scope| {
        // Workers persist across rounds *and* passes: worker `j` owns
        // machine `j` for the whole run, so a re-streaming machine sees
        // the same call sequence as its modelled counterpart.
        let mut work_txs: Vec<Sender<VertexWork>> = Vec::with_capacity(l);
        let mut log_rxs: Vec<Receiver<VertexLog>> = Vec::with_capacity(l);
        let n = g.num_vertices();
        for (index, machine) in machines.into_iter().enumerate() {
            let (work_tx, work_rx) = crossbeam::channel::bounded::<VertexWork>(1);
            let (log_tx, log_rx) = crossbeam::channel::bounded::<VertexLog>(1);
            scope.spawn(move |_| vertex_worker(index, n, k, machine, work_rx, log_tx));
            work_txs.push(work_tx);
            log_rxs.push(log_rx);
        }
        let mut global = VertexStreamState::new(n, k);
        let mut delta = Arc::new(VertexDelta { start: 0, decisions: Vec::new() });
        let mut source = VertexStreamSource::new(g, order);
        let mut block: Vec<VertexRecord> = Vec::new();
        let mut round: u64 = 0;
        for _pass in 0..passes {
            source.restart();
            while source.next_chunk(l.saturating_mul(t), &mut block) > 0 {
                let mut strides: Vec<Vec<VertexRecord>> = vec![Vec::new(); l];
                for (i, rec) in block.drain(..).enumerate() {
                    strides[i % l].push(rec);
                }
                for (tx, records) in work_txs.iter().zip(strides) {
                    let work = VertexWork { delta: Arc::clone(&delta), records };
                    // sgp-lint: allow(no-panic-in-lib): a dead receiver means the worker panicked; re-raising on the coordinator is intended
                    tx.send(work).expect("vertex worker hung up");
                }
                // Collect logs in worker-index order — never completion
                // order — then replay in the seeded barrier rotation, so
                // the merged state is schedule-independent. The merged
                // logs become the next round's delta.
                let decisions: Vec<Vec<(u32, PartitionId)>> = log_rxs
                    .iter()
                    // sgp-lint: allow(no-panic-in-lib): a dead sender means the worker panicked; re-raising on the coordinator is intended
                    .map(|rx| rx.recv().expect("vertex worker hung up").decisions)
                    .collect();
                let start = merge_start(lc.seed, round, l);
                apply_vertex_decisions(&mut global, &decisions, start, None);
                delta = Arc::new(VertexDelta { start, decisions });
                round += 1;
            }
        }
        // Disconnect the work channels: every worker's `recv` fails and
        // it exits, letting the scope join them all.
        drop(work_txs);
        (global, round)
    })
    // sgp-lint: allow(no-panic-in-lib): the scope errs only when a worker panicked, and that panic should propagate
    .expect("threaded vertex-ingestion scope");
    (seal_vertices(g, k, global.assignment, seal), rounds)
}

fn vertex_worker(
    index: usize,
    n: usize,
    k: usize,
    mut machine: Box<dyn VertexStreamPartitioner>,
    work: Receiver<VertexWork>,
    log: Sender<VertexLog>,
) {
    // The worker's retained local replica: fresh-global at round 0,
    // then post-barrier global at every round after the delta replay.
    let mut local = VertexStreamState::new(n, k);
    while let Ok(VertexWork { delta, records }) = work.recv() {
        apply_vertex_decisions(&mut local, &delta.decisions, delta.start, Some(index));
        let mut decisions = Vec::with_capacity(records.len());
        for rec in &records {
            let p = machine.place(rec, &local);
            debug_assert!((p as usize) < local.sizes.len(), "out-of-range partition id");
            local.assign(rec.vertex, p);
            decisions.push((rec.vertex, p));
        }
        if log.send(VertexLog { decisions }).is_err() {
            return; // coordinator gone: unwind quietly, the scope reports
        }
    }
}

fn threaded_edges(
    g: &Graph,
    k: usize,
    machines: Vec<Box<dyn EdgeStreamPartitioner>>,
    order: StreamOrder,
    lc: &LoaderConfig,
) -> (Partitioning, u64) {
    let (l, t) = lc.clamped();
    let (edge_parts, rounds) = crossbeam::thread::scope(|scope| {
        let mut work_txs: Vec<Sender<EdgeWork>> = Vec::with_capacity(l);
        let mut log_rxs: Vec<Receiver<EdgeLog>> = Vec::with_capacity(l);
        let n = g.num_vertices();
        for (index, machine) in machines.into_iter().enumerate() {
            let (work_tx, work_rx) = crossbeam::channel::bounded::<EdgeWork>(1);
            let (log_tx, log_rx) = crossbeam::channel::bounded::<EdgeLog>(1);
            scope.spawn(move |_| edge_worker(index, n, k, machine, work_rx, log_tx));
            work_txs.push(work_tx);
            log_rxs.push(log_rx);
        }
        // No coordinator-side replica state: the workers' retained
        // replicas carry it, and the result needs only the edge → part
        // map assembled from the logs.
        let mut delta = Arc::new(EdgeDelta { start: 0, decisions: Vec::new() });
        let mut edge_parts = vec![0 as PartitionId; g.num_edges()];
        let mut source = EdgeStreamSource::new(g, order);
        let mut block: Vec<Edge> = Vec::new();
        let mut round: u64 = 0;
        while source.next_chunk(l.saturating_mul(t), &mut block) > 0 {
            let mut strides: Vec<Vec<Edge>> = vec![Vec::new(); l];
            for (i, &e) in block.iter().enumerate() {
                strides[i % l].push(e);
            }
            for (tx, edges) in work_txs.iter().zip(strides) {
                let work = EdgeWork { delta: Arc::clone(&delta), edges };
                // sgp-lint: allow(no-panic-in-lib): a dead receiver means the worker panicked; re-raising on the coordinator is intended
                tx.send(work).expect("edge worker hung up");
            }
            let decisions: Vec<Vec<(Edge, PartitionId)>> = log_rxs
                .iter()
                // sgp-lint: allow(no-panic-in-lib): a dead sender means the worker panicked; re-raising on the coordinator is intended
                .map(|rx| rx.recv().expect("edge worker hung up").decisions)
                .collect();
            // Each edge is placed exactly once, so writing its partition
            // at merge time equals the modelled path's write at local
            // placement time.
            for log in &decisions {
                for &(e, p) in log {
                    // sgp-lint: allow(no-panic-in-lib): logged edges come from a stream over g, so the CSR lookup cannot miss
                    let idx = g.edge_index(e.src, e.dst).expect("stream edge exists in graph");
                    edge_parts[idx] = p;
                }
            }
            delta = Arc::new(EdgeDelta { start: merge_start(lc.seed, round, l), decisions });
            round += 1;
        }
        drop(work_txs);
        (edge_parts, round)
    })
    // sgp-lint: allow(no-panic-in-lib): the scope errs only when a worker panicked, and that panic should propagate
    .expect("threaded edge-ingestion scope");
    (Partitioning::from_edge_parts(g, k, edge_parts), rounds)
}

fn edge_worker(
    index: usize,
    n: usize,
    k: usize,
    mut machine: Box<dyn EdgeStreamPartitioner>,
    work: Receiver<EdgeWork>,
    log: Sender<EdgeLog>,
) {
    let mut local = EdgeStreamState::new(n, k);
    while let Ok(EdgeWork { delta, edges }) = work.recv() {
        apply_edge_decisions(&mut local, &delta.decisions, delta.start, Some(index));
        let mut decisions = Vec::with_capacity(edges.len());
        for &e in &edges {
            let p = machine.place(e, &local);
            debug_assert!((p as usize) < local.edge_counts.len(), "out-of-range partition id");
            local.record(e, p);
            decisions.push((e, p));
        }
        if log.send(EdgeLog { decisions }).is_err() {
            return;
        }
    }
}

/// Runs `run(0..workers)` on `workers` scoped OS threads and returns
/// the results in worker order. This is the only thread-spawning
/// primitive the workspace exposes outside this module's own
/// coordinator — `thread-discipline` confines raw `spawn` here, and
/// other crates (e.g. [`parallel`](crate::parallel)) build on this.
pub(crate) fn scoped_workers<T, F>(workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run = &run;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers).map(|w| scope.spawn(move |_| run(w))).collect();
        handles
            .into_iter()
            // sgp-lint: allow(no-panic-in-lib): join fails only when the worker panicked, and that panic should propagate
            .map(|h| h.join().expect("scoped worker panicked"))
            .collect()
    })
    // sgp-lint: allow(no-panic-in-lib): the scope errs only when a worker panicked, and that panic should propagate
    .expect("worker scope")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loaders::partition_multi_loader;
    use sgp_graph::generators::{erdos_renyi, ErdosRenyiConfig};

    fn graph() -> Graph {
        erdos_renyi(ErdosRenyiConfig { vertices: 200, edges: 1200, seed: 47 })
    }

    /// The tentpole acceptance bar: real threads are byte-identical to
    /// the modelled loaders for every algorithm × L ∈ {1, 2, 4, 8}.
    #[test]
    fn threads_are_bit_identical_to_modelled_loaders() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let order = StreamOrder::Random { seed: 13 };
        for &threads in &[1usize, 2, 4, 8] {
            let lc = LoaderConfig::new(threads).with_sync_interval(16);
            for &alg in Algorithm::all() {
                let modelled = partition_multi_loader(&g, alg, &cfg, order, &lc);
                let real = partition_threaded(&g, alg, &cfg, order, &lc);
                assert_eq!(modelled.edge_parts, real.edge_parts, "{alg} × {threads} threads");
                assert_eq!(modelled.vertex_owner, real.vertex_owner, "{alg} × {threads}");
                assert_eq!(modelled.model, real.model, "{alg} × {threads}");
            }
        }
    }

    /// Thread scheduling varies between runs; the output must not.
    #[test]
    fn repeated_threaded_runs_are_identical() {
        let g = graph();
        let cfg = PartitionerConfig::new(8);
        let lc = LoaderConfig::new(4).with_sync_interval(8);
        for &alg in &[Algorithm::Ldg, Algorithm::Hdrf, Algorithm::Ginger] {
            let first = partition_threaded(&g, alg, &cfg, StreamOrder::Bfs, &lc);
            for _ in 0..5 {
                let again = partition_threaded(&g, alg, &cfg, StreamOrder::Bfs, &lc);
                assert_eq!(first.edge_parts, again.edge_parts, "{alg}");
                assert_eq!(first.vertex_owner, again.vertex_owner, "{alg}");
            }
        }
    }

    /// A tiny run over both stream kinds, sized so `cargo miri test
    /// exec::tests::tiny` finishes in minutes — the CI Miri job's entry
    /// point into the threaded path.
    #[test]
    fn tiny_threaded_runs_for_miri() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 24, edges: 60, seed: 3 });
        let cfg = PartitionerConfig::new(3);
        let lc = LoaderConfig::new(2).with_sync_interval(4);
        for &alg in &[Algorithm::Ldg, Algorithm::Hdrf] {
            let modelled = partition_multi_loader(&g, alg, &cfg, StreamOrder::Natural, &lc);
            let real = partition_threaded(&g, alg, &cfg, StreamOrder::Natural, &lc);
            assert_eq!(modelled.edge_parts, real.edge_parts, "{alg}");
            assert_eq!(modelled.vertex_owner, real.vertex_owner, "{alg}");
        }
    }

    /// In-tree model check of the merge barrier (loom explores the
    /// interleavings in CI; this pins the algebra the protocol relies
    /// on): the merged global state depends only on the per-worker
    /// logs and the seeded rotation — never on the order in which
    /// workers *finished*, because collection is by worker index.
    #[test]
    fn merge_is_invariant_to_worker_completion_order() {
        let k = 3;
        let logs: Vec<Vec<(u32, PartitionId)>> =
            vec![vec![(0, 1), (3, 2)], vec![(1, 0), (4, 1)], vec![(2, 2), (5, 0)]];
        let merge = |seed: u64, round: u64| {
            let mut state = VertexStreamState::new(6, k);
            let start = merge_start(seed, round, logs.len());
            for step in 0..logs.len() {
                for &(v, p) in &logs[(start + step) % logs.len()] {
                    state.assign(v, p);
                }
            }
            state
        };
        // Completion order cannot be expressed at all — `logs` is
        // indexed by worker — so replays of the same (seed, round) are
        // equal, and within a round the rotation is pure in the seed.
        for seed in 0..16u64 {
            for round in 0..8u64 {
                let a = merge(seed, round);
                let b = merge(seed, round);
                assert_eq!(a.assignment, b.assignment);
                assert_eq!(a.sizes, b.sizes);
            }
        }
        // Disjoint-vertex logs commute: every rotation yields the same
        // merged assignment (the modelled and threaded paths rely on
        // exactly this within a pass).
        let baseline = merge(0, 0);
        for seed in 1..32u64 {
            let rotated = merge(seed, 0);
            assert_eq!(baseline.assignment, rotated.assignment);
            assert_eq!(baseline.sizes, rotated.sizes);
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_counts_rounds() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let lc = LoaderConfig::new(2).with_sync_interval(32);
        let plain = partition_threaded(&g, Algorithm::Fennel, &cfg, StreamOrder::Natural, &lc);
        let mut sink = sgp_trace::CollectingSink::new();
        let traced = partition_threaded_traced(
            &g,
            Algorithm::Fennel,
            &cfg,
            StreamOrder::Natural,
            &lc,
            &mut sink,
        );
        assert_eq!(plain.edge_parts, traced.edge_parts);
        assert_eq!(plain.vertex_owner, traced.vertex_owner);
        let threads: u64 = sink.counter_total(keys::PARTITION_EXEC_THREADS);
        let rounds: u64 = sink.counter_total(keys::PARTITION_EXEC_BARRIER_ROUNDS);
        assert_eq!(threads, 2);
        assert!(rounds > 0, "a non-empty stream crosses at least one barrier");
    }

    #[test]
    fn metis_falls_back_to_the_sequential_offline_path() {
        let g = graph();
        let cfg = PartitionerConfig::new(4);
        let lc = LoaderConfig::new(4);
        let seq = partition(&g, Algorithm::Metis, &cfg, StreamOrder::Natural);
        let thr = partition_threaded(&g, Algorithm::Metis, &cfg, StreamOrder::Natural, &lc);
        assert_eq!(seq.edge_parts, thr.edge_parts);
        assert_eq!(seq.vertex_owner, thr.vertex_owner);
    }

    #[test]
    fn scoped_workers_returns_results_in_worker_order() {
        let squares = scoped_workers(8, |w| w * w);
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        assert_eq!(scoped_workers(0, |w| w), Vec::<usize>::new());
    }
}
