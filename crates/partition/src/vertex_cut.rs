//! Vertex-cut SGP on edge streams (§4.2.2 of the paper): hash, DBH,
//! constrained Grid, PowerGraph's oblivious greedy, and HDRF.
//!
//! These algorithms "distribute edges across the cluster and produce
//! edge-disjoint partitioning", replicating vertices whose incident edges
//! land on multiple partitions. The shared mutable state (replica table
//! `A(u)`, partial degrees, partition edge counts) is the "distributed
//! table" the paper says greedy methods must synchronize; it lives in
//! [`EdgeStreamState`], folded incrementally by the core in
//! [`crate::streaming`], with [`run_edge_stream`] and its traced twin as
//! thin adapters.

use crate::assignment::{fxhash64, hash_to_partition, PartitionId, Partitioning};
use crate::config::PartitionerConfig;
use crate::decisions::DecisionStats;
use crate::kernels;
use sgp_graph::{Edge, Graph, StreamOrder};
use sgp_trace::{NullSink, TraceSink};

/// Replica-set table `A(u)` plus partial degree counters and per-partition
/// edge counts — the state greedy vertex-cut heuristics consult.
///
/// `A(u)` is a flat fixed-stride bitset (DESIGN.md §13): every vertex
/// owns `ceil(k/64)` consecutive `u64` words of one contiguous vector,
/// and bit `p` of vertex `u`'s block is set iff `u` has a replica on
/// partition `p`. Membership tests are one shift-and-mask, emptiness is
/// a word scan, and set intersection (the PowerGraph greedy's rule 1)
/// is a word-wise AND — no per-edge heap traffic anywhere on the path.
#[derive(Debug, Clone)]
pub struct EdgeStreamState {
    k: usize,
    /// Words per vertex block in the flat bitset: `ceil(k/64)`, ≥ 1.
    stride: usize,
    /// The flat bitset: vertex `u` owns words `[u·stride, (u+1)·stride)`.
    replica_bits: Vec<u64>,
    /// Partial degree d(u): number of stream edges seen incident to `u`.
    partial_degree: Vec<u64>,
    /// Edges placed in each partition.
    pub edge_counts: Vec<usize>,
    /// Total replica insertions (every first placement of a vertex on a
    /// new partition).
    pub replicas_created: u64,
    /// Replica insertions beyond a vertex's first replica — the mirrors
    /// a vertex-cut pays for at gather/scatter time.
    pub mirror_creations: u64,
}

/// Ascending iterator over the set bits of one vertex's replica block,
/// optionally intersected word-wise with a second block. Yields the
/// same sequence the historical sorted `Vec<PartitionId>` sets held.
#[derive(Debug, Clone)]
pub struct ReplicaIter<'a> {
    words: &'a [u64],
    mask: Option<&'a [u64]>,
    next_word: usize,
    current: u64,
    base: PartitionId,
}

impl<'a> ReplicaIter<'a> {
    fn new(words: &'a [u64]) -> Self {
        ReplicaIter { words, mask: None, next_word: 0, current: 0, base: 0 }
    }

    fn intersect(words: &'a [u64], mask: &'a [u64]) -> Self {
        debug_assert_eq!(words.len(), mask.len(), "blocks share the stride");
        ReplicaIter { words, mask: Some(mask), next_word: 0, current: 0, base: 0 }
    }
}

impl Iterator for ReplicaIter<'_> {
    type Item = PartitionId;

    fn next(&mut self) -> Option<PartitionId> {
        while self.current == 0 {
            if self.next_word >= self.words.len() {
                return None;
            }
            let mut word = self.words[self.next_word];
            if let Some(mask) = self.mask {
                word &= mask[self.next_word];
            }
            self.current = word;
            self.base = (self.next_word as PartitionId) << 6;
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.base + bit)
    }
}

impl EdgeStreamState {
    /// Fresh state for `n` vertices and `k` partitions.
    pub fn new(n: usize, k: usize) -> Self {
        let stride = k.div_ceil(64).max(1);
        EdgeStreamState {
            k,
            stride,
            replica_bits: vec![0; n * stride],
            partial_degree: vec![0; n],
            edge_counts: vec![0; k],
            replicas_created: 0,
            mirror_creations: 0,
        }
    }

    /// The bitset block of vertex `u`.
    #[inline]
    fn block(&self, u: u32) -> &[u64] {
        let base = u as usize * self.stride;
        &self.replica_bits[base..base + self.stride]
    }

    /// The replica set `A(u)` in ascending partition order.
    #[inline]
    pub fn replicas(&self, u: u32) -> ReplicaIter<'_> {
        ReplicaIter::new(self.block(u))
    }

    /// True if `u` has at least one replica anywhere (one word scan).
    #[inline]
    pub fn has_any_replica(&self, u: u32) -> bool {
        self.block(u).iter().any(|&w| w != 0)
    }

    /// Partial degree of `u` (edges seen so far).
    #[inline]
    pub fn partial_degree(&self, u: u32) -> u64 {
        self.partial_degree[u as usize]
    }

    /// True if `u` already has a replica on partition `p` (shift-and-mask).
    #[inline]
    pub fn has_replica(&self, u: u32, p: PartitionId) -> bool {
        let word = self.replica_bits[u as usize * self.stride + (p as usize >> 6)];
        (word >> (p & 63)) & 1 == 1
    }

    /// Records edge `e` placed on `p`: updates replica sets, partial
    /// degrees and edge counts.
    pub fn record(&mut self, e: Edge, p: PartitionId) {
        for v in [e.src, e.dst] {
            let base = v as usize * self.stride;
            let word = base + (p as usize >> 6);
            let mask = 1u64 << (p & 63);
            if self.replica_bits[word] & mask == 0 {
                if self.replica_bits[base..base + self.stride].iter().any(|&w| w != 0) {
                    self.mirror_creations += 1;
                }
                self.replica_bits[word] |= mask;
                self.replicas_created += 1;
            }
            self.partial_degree[v as usize] += 1;
        }
        self.edge_counts[p as usize] += 1;
    }

    /// Iterates the non-empty replica sets `(u, A(u))` in vertex order
    /// (snapshot support; canonical because the ascending bit scan
    /// reproduces the order the historical sorted sets held).
    pub(crate) fn replica_entries(&self) -> impl Iterator<Item = (u32, ReplicaIter<'_>)> + '_ {
        self.replica_bits
            .chunks_exact(self.stride)
            .enumerate()
            .filter(|(_, block)| block.iter().any(|&w| w != 0))
            .map(|(u, block)| (u as u32, ReplicaIter::new(block)))
    }

    /// Iterates the non-zero partial degrees `(u, d(u))` in vertex order
    /// (snapshot support).
    pub(crate) fn partial_degree_entries(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.partial_degree.iter().enumerate().filter(|&(_, &d)| d > 0).map(|(u, &d)| (u as u32, d))
    }

    /// Overwrites `A(u)` during restore. Returns `false` when `u` is out
    /// of range, `set` is not strictly increasing, or a partition id is
    /// out of range.
    pub(crate) fn restore_replicas(&mut self, u: u32, set: Vec<PartitionId>) -> bool {
        if set.windows(2).any(|w| w[0] >= w[1]) || set.iter().any(|&p| p as usize >= self.k) {
            return false;
        }
        let base = u as usize * self.stride;
        match self.replica_bits.get_mut(base..base + self.stride) {
            Some(block) => {
                block.fill(0);
                for p in set {
                    block[p as usize >> 6] |= 1u64 << (p & 63);
                }
                true
            }
            None => false,
        }
    }

    /// Overwrites `d(u)` during restore. Returns `false` when `u` is out
    /// of range.
    pub(crate) fn restore_partial_degree(&mut self, u: u32, d: u64) -> bool {
        match self.partial_degree.get_mut(u as usize) {
            Some(slot) => {
                *slot = d;
                true
            }
            None => false,
        }
    }

    /// Least-loaded partition among `candidates` (ties → lower id); falls
    /// back to the global least-loaded when `candidates` is empty.
    pub fn least_loaded(&self, candidates: &[PartitionId]) -> PartitionId {
        let pick = if candidates.is_empty() {
            kernels::least_loaded_among(0..self.k as PartitionId, &self.edge_counts)
        } else {
            kernels::least_loaded_among(candidates.iter().copied(), &self.edge_counts)
        };
        // sgp-lint: allow(no-panic-in-lib): the candidate set is 0..k (non-empty, k >= 1 asserted at construction) or a non-empty slice
        pick.expect("k >= 1")
    }

    /// Least-loaded partition hosting a replica of `u` (ties → lower
    /// id); the global least-loaded when `u` has none — the bitset form
    /// of `least_loaded(A(u))`.
    pub fn least_loaded_replica(&self, u: u32) -> PartitionId {
        match kernels::least_loaded_among(self.replicas(u), &self.edge_counts) {
            Some(p) => p,
            None => self.least_loaded(&[]),
        }
    }

    /// Least-loaded partition hosting replicas of *both* endpoints
    /// (`A(u) ∩ A(v)`), or `None` when the intersection is empty. The
    /// intersection is a word-wise AND over the two blocks; no candidate
    /// list is ever materialized.
    pub fn least_loaded_common(&self, u: u32, v: u32) -> Option<PartitionId> {
        let iter = ReplicaIter::intersect(self.block(u), self.block(v));
        kernels::least_loaded_among(iter, &self.edge_counts)
    }
}

/// A streaming partitioner over edge streams.
///
/// `Send` is a supertrait: the multi-loader layer ships boxed machines
/// to worker threads in [`crate::exec`], and every implementor is plain
/// owned data (counters and vectors), so the bound costs nothing.
pub trait EdgeStreamPartitioner: Send {
    /// Chooses a partition for the arriving edge given the shared state.
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId;

    /// Short display name (Table 2 abbreviation).
    fn name(&self) -> &'static str;

    /// Number of full passes over the edge stream this partitioner
    /// needs (DESIGN.md §12). One-pass algorithms keep the default; a
    /// multi-pass algorithm such as 2PS observes the stream on its
    /// early passes and only places edges on the final one.
    fn passes(&self) -> usize {
        1
    }

    /// True while the partitioner is still in an observation pass: the
    /// ingestion core routes each edge to
    /// [`observe`](EdgeStreamPartitioner::observe) instead of
    /// [`place`](EdgeStreamPartitioner::place), and no shared state,
    /// assignment, or sequence number changes.
    fn observing(&self) -> bool {
        false
    }

    /// Consumes one edge of an observation pass. Only called while
    /// [`observing`](EdgeStreamPartitioner::observing) returns true.
    fn observe(&mut self, _e: Edge) {}

    /// Decision counters accumulated so far (all-zero for algorithms
    /// without greedy decisions, e.g. hash placement).
    fn decision_stats(&self) -> DecisionStats {
        DecisionStats::default()
    }

    /// Algorithm-specific run-varying tables as canonical `(key, value)`
    /// records for the snapshot layer ([`crate::snapshot`], DESIGN.md
    /// §11). Config-pure algorithms (hash, DBH, Grid) have none.
    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        Vec::new()
    }

    /// Restores one record produced by
    /// [`snapshot_records`](EdgeStreamPartitioner::snapshot_records);
    /// returns `false` for an unknown key or unparsable value (the
    /// snapshot layer surfaces that as a typed error).
    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        let _ = (key, value);
        false
    }
}

/// Hash-based random edge placement (`VCR`): hashes the concatenation of
/// the endpoint ids. "Produces perfectly balanced partitions \[but\] is
/// known to have high communication cost."
#[derive(Debug, Clone)]
pub struct HashEdge {
    k: usize,
    seed: u64,
}

impl HashEdge {
    /// Creates the hash edge partitioner.
    pub fn new(cfg: &PartitionerConfig) -> Self {
        HashEdge { k: cfg.k, seed: cfg.seed }
    }
}

impl EdgeStreamPartitioner for HashEdge {
    fn place(&mut self, e: Edge, _state: &EdgeStreamState) -> PartitionId {
        let key = ((e.src as u64) << 32) | e.dst as u64;
        (fxhash64(key ^ self.seed) % self.k as u64) as PartitionId
    }

    fn name(&self) -> &'static str {
        "VCR"
    }
}

/// Degree source for [`Dbh`]: the paper notes DBH "relies on a priori
/// knowledge of degree information"; the reproduction supports both the
/// faithful oracle and a streaming-friendly partial-degree approximation.
#[derive(Debug, Clone)]
pub enum DegreeSource {
    /// Exact degrees precomputed from the full graph (the paper's model).
    Exact(Vec<u64>),
    /// Partial degrees observed so far in the stream.
    Partial,
}

/// Degree-Based Hashing (Xie et al.): "assigns an edge to a partition by
/// hashing the vertex of smaller degree to preserve the locality of
/// vertices of lower degree". Embarrassingly parallel.
#[derive(Debug, Clone)]
pub struct Dbh {
    k: usize,
    seed: u64,
    degrees: DegreeSource,
}

impl Dbh {
    /// DBH with exact degrees computed from `g` (total degree, matching
    /// the undirected treatment in the DBH paper).
    pub fn with_exact_degrees(cfg: &PartitionerConfig, g: &Graph) -> Self {
        let degrees = g.vertices().map(|v| g.degree(v) as u64).collect();
        Dbh { k: cfg.k, seed: cfg.seed, degrees: DegreeSource::Exact(degrees) }
    }

    /// DBH with streaming partial degrees.
    pub fn with_partial_degrees(cfg: &PartitionerConfig) -> Self {
        Dbh { k: cfg.k, seed: cfg.seed, degrees: DegreeSource::Partial }
    }

    fn degree_of(&self, v: u32, state: &EdgeStreamState) -> u64 {
        match &self.degrees {
            DegreeSource::Exact(d) => d[v as usize],
            DegreeSource::Partial => state.partial_degree(v),
        }
    }
}

impl EdgeStreamPartitioner for Dbh {
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
        let (du, dv) = (self.degree_of(e.src, state), self.degree_of(e.dst, state));
        // Hash the endpoint of smaller degree (ties → source, which keeps
        // the rule deterministic).
        let anchor = if du <= dv { e.src } else { e.dst };
        hash_to_partition(anchor, self.k, self.seed)
    }

    fn name(&self) -> &'static str {
        "DBH"
    }
}

/// Grid-constrained placement (Jain et al., GraphBuilder): partitions are
/// arranged on an `r × c` grid; each partition's *constrained set* is its
/// row plus its column. An edge may only go to the intersection of its
/// endpoints' constrained sets, upper-bounding the replication factor by
/// `2√k − 1`. Embarrassingly parallel.
///
/// Constrained sets depend only on `k`, so all `k` sets and all `k²`
/// pairwise candidate lists (intersection, or the deduplicated union
/// when grid folding leaves the intersection empty) are precomputed at
/// construction; `place` is two shard hashes and one table lookup.
#[derive(Debug, Clone)]
pub struct GridConstrained {
    k: usize,
    rows: usize,
    cols: usize,
    seed: u64,
    /// `pairs[pu·k + pv]`: the candidate list an edge sharded to
    /// `(pu, pv)` chooses from — never empty.
    pairs: Vec<Vec<PartitionId>>,
}

impl GridConstrained {
    /// Creates the grid partitioner; `k` is factored into the most square
    /// `r × c ≤ k` grid (excess ids fold onto the grid by modulo).
    pub fn new(cfg: &PartitionerConfig) -> Self {
        let k = cfg.k;
        let (rows, cols) = squarest_factorization(k);
        let sets: Vec<Vec<PartitionId>> =
            (0..k as PartitionId).map(|p| constrained_set_of(p, k, rows, cols)).collect();
        let mut pairs = Vec::with_capacity(k * k);
        for su in &sets {
            for sv in &sets {
                let mut common: Vec<PartitionId> =
                    su.iter().copied().filter(|p| sv.binary_search(p).is_ok()).collect();
                if common.is_empty() {
                    // Can only happen when k is not a perfect grid and
                    // folding clipped the sets; fall back to the union.
                    common = su.clone();
                    common.extend(sv);
                    common.sort_unstable();
                    common.dedup();
                }
                pairs.push(common);
            }
        }
        GridConstrained { k, rows, cols, seed: cfg.seed, pairs }
    }

    /// The constrained set (row ∪ column) of partition `p`.
    #[cfg(test)]
    fn constrained_set(&self, p: PartitionId) -> Vec<PartitionId> {
        constrained_set_of(p, self.k, self.rows, self.cols)
    }

    fn shard(&self, v: u32) -> PartitionId {
        hash_to_partition(v, self.rows * self.cols, self.seed) % self.k as PartitionId
    }
}

/// The constrained set (row ∪ column, clipped to `< k`, sorted) of
/// partition `p` on an `rows × cols` grid.
fn constrained_set_of(p: PartitionId, k: usize, rows: usize, cols: usize) -> Vec<PartitionId> {
    let (r, c) = (p as usize / cols, p as usize % cols);
    let mut set = Vec::with_capacity(rows + cols - 1);
    for j in 0..cols {
        set.push((r * cols + j) as PartitionId);
    }
    for i in 0..rows {
        if i != r {
            set.push((i * cols + c) as PartitionId);
        }
    }
    set.retain(|&x| (x as usize) < k);
    set.sort_unstable();
    set
}

impl EdgeStreamPartitioner for GridConstrained {
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
        let (pu, pv) = (self.shard(e.src), self.shard(e.dst));
        state.least_loaded(&self.pairs[pu as usize * self.k + pv as usize])
    }

    fn name(&self) -> &'static str {
        "Grid"
    }
}

/// The most square `r × c = k` factorization (r ≤ c). For prime `k` this
/// degenerates to `1 × k`, whose constrained set is the full row — the
/// same behaviour as the GraphBuilder implementation.
fn squarest_factorization(k: usize) -> (usize, usize) {
    let mut r = (k as f64).sqrt() as usize;
    while r > 1 && !k.is_multiple_of(r) {
        r -= 1;
    }
    (r.max(1), k / r.max(1))
}

/// PowerGraph's oblivious greedy heuristic (§4.2.2 discusses its
/// sensitivity to stream order). Placement rules from the PowerGraph
/// paper:
///
/// 1. both endpoints share a partition → least-loaded common one;
/// 2. both have replicas but disjoint → choose from the replica set of
///    the endpoint with more remaining edges (approximated by partial
///    degree, the oblivious variant);
/// 3. one endpoint has replicas → least-loaded among them;
/// 4. neither → globally least-loaded.
#[derive(Debug, Clone)]
pub struct PowerGraphGreedy;

impl PowerGraphGreedy {
    /// Creates the greedy partitioner (stateless besides shared state).
    pub fn new(_cfg: &PartitionerConfig) -> Self {
        PowerGraphGreedy
    }
}

impl EdgeStreamPartitioner for PowerGraphGreedy {
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
        match (state.has_any_replica(e.src), state.has_any_replica(e.dst)) {
            (true, true) => match state.least_loaded_common(e.src, e.dst) {
                Some(p) => p,
                None => {
                    // Rule 2: richer endpoint (more unseen edges ≈ higher
                    // partial degree) keeps its locality.
                    let pick = if state.partial_degree(e.src) >= state.partial_degree(e.dst) {
                        e.src
                    } else {
                        e.dst
                    };
                    state.least_loaded_replica(pick)
                }
            },
            (true, false) => state.least_loaded_replica(e.src),
            (false, true) => state.least_loaded_replica(e.dst),
            (false, false) => state.least_loaded(&[]),
        }
    }

    fn name(&self) -> &'static str {
        "PGG"
    }
}

/// HDRF — High-Degree (are) Replicated First (Petroni et al.), Eq. (7):
///
/// `argmax_i g(v,P_i) + g(u,P_i) + λ(1 − |e(P_i)|/C)` with
/// `g(v,P_i) = (1 + (1 − θ(v)))·1_{A(v)∋P_i}` and
/// `θ(u) = d(u)/(d(u)+d(v))` over *partial* degrees —
/// "avoiding a pre-processing step to calculate the exact vertex
/// degrees". λ > 1 escapes the degenerate single-partition behaviour of
/// plain greedy on BFS-ordered streams.
#[derive(Debug, Clone)]
pub struct Hdrf {
    k: usize,
    lambda: f64,
    capacity: f64,
    stats: DecisionStats,
    /// Scratch score column reused across edges (DESIGN.md §13).
    scores: Vec<f64>,
}

impl Hdrf {
    /// Creates HDRF for a graph with `m` edges.
    pub fn new(cfg: &PartitionerConfig, m: usize) -> Self {
        Hdrf {
            k: cfg.k,
            lambda: cfg.hdrf_lambda,
            capacity: cfg.edge_capacity(m).max(1.0),
            stats: DecisionStats::default(),
            scores: vec![0.0; cfg.k],
        }
    }

    /// HDRF's Eq. (7) scoring with an optional per-endpoint cluster
    /// affinity bonus: each `Some(p)` in `targets` adds `+1.0` to
    /// partition `p`'s score, the way 2PS biases its assignment pass
    /// toward the endpoint's cluster home. With `[None, None]` the loop
    /// performs exactly the same float operations as plain HDRF, so the
    /// two are bit-identical (pinned by the dynamic-graph differentials).
    pub(crate) fn place_with_affinity(
        &mut self,
        e: Edge,
        state: &EdgeStreamState,
        targets: [Option<PartitionId>; 2],
    ) -> PartitionId {
        // Partial degrees +1 so the very first edge of a vertex does not
        // divide by zero (the HDRF reference implementation does the same).
        let du = state.partial_degree(e.src) as f64 + 1.0;
        let dv = state.partial_degree(e.dst) as f64 + 1.0;
        let theta_u = du / (du + dv);
        let theta_v = 1.0 - theta_u;
        // Fill the dense score column, then let the shared kernel pick
        // the winner — same float ops, same 1e-12 tie discipline as the
        // historical in-line fold (see kernels.rs for the seed-equivalence
        // argument vs the old `(NEG_INFINITY, 0)` start).
        for i in 0..self.k as PartitionId {
            let mut score =
                self.lambda * (1.0 - state.edge_counts[i as usize] as f64 / self.capacity);
            if state.has_replica(e.src, i) {
                score += 1.0 + (1.0 - theta_u);
            }
            if state.has_replica(e.dst, i) {
                score += 1.0 + (1.0 - theta_v);
            }
            if targets[0] == Some(i) {
                score += 1.0;
            }
            if targets[1] == Some(i) {
                score += 1.0;
            }
            self.scores[i as usize] = score;
        }
        crate::kernels::epsilon_argmax(
            &self.scores,
            &state.edge_counts,
            &mut self.stats.balance_tiebreaks,
        )
        .map(|i| i as PartitionId)
        .unwrap_or(0)
    }
}

impl EdgeStreamPartitioner for Hdrf {
    fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
        self.place_with_affinity(e, state, [None, None])
    }

    fn name(&self) -> &'static str {
        "HDRF"
    }

    fn decision_stats(&self) -> DecisionStats {
        self.stats
    }

    fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        self.stats.snapshot_records()
    }

    fn restore_record(&mut self, key: &str, value: &str) -> bool {
        self.stats.restore_record(key, value)
    }
}

/// Runs an edge-stream partitioner over `g` and returns the resulting
/// vertex-cut [`Partitioning`].
pub fn run_edge_stream<P: EdgeStreamPartitioner>(
    g: &Graph,
    partitioner: &mut P,
    k: usize,
    order: StreamOrder,
) -> Partitioning {
    run_edge_stream_traced(g, partitioner, k, order, &mut NullSink)
}

/// [`run_edge_stream`] with trace instrumentation: a `partition.stream`
/// span (stamps are stream positions), the flushed decision counters —
/// including the mirror creations counted by
/// [`EdgeStreamState::record`] — and the final per-partition edge
/// loads.
pub fn run_edge_stream_traced<P: EdgeStreamPartitioner, S: TraceSink>(
    g: &Graph,
    partitioner: &mut P,
    k: usize,
    order: StreamOrder,
    sink: &mut S,
) -> Partitioning {
    crate::streaming::run_edge_chunked(
        g,
        partitioner,
        k,
        order,
        crate::streaming::DEFAULT_CHUNK,
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use sgp_graph::generators::{erdos_renyi, rmat, ErdosRenyiConfig, RmatConfig};

    fn cfg(k: usize) -> PartitionerConfig {
        PartitionerConfig::new(k)
    }

    fn twitter_like() -> Graph {
        rmat(RmatConfig { scale: 11, edge_factor: 12, ..RmatConfig::default() })
    }

    #[test]
    fn hash_edge_balanced_and_order_independent() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 2000, edges: 20_000, seed: 3 });
        let c = cfg(8);
        let a = run_edge_stream(&g, &mut HashEdge::new(&c), 8, StreamOrder::Natural);
        let b = run_edge_stream(&g, &mut HashEdge::new(&c), 8, StreamOrder::Random { seed: 1 });
        assert_eq!(a.edge_parts, b.edge_parts);
        assert!(metrics::load_imbalance(&a.edges_per_partition()) < 1.1);
    }

    #[test]
    fn dbh_beats_hash_on_skewed_graph() {
        let g = twitter_like();
        let c = cfg(16);
        let hash = run_edge_stream(&g, &mut HashEdge::new(&c), 16, StreamOrder::Random { seed: 2 });
        let dbh = run_edge_stream(
            &g,
            &mut Dbh::with_exact_degrees(&c, &g),
            16,
            StreamOrder::Random { seed: 2 },
        );
        let rf_hash = metrics::replication_factor(&g, &hash);
        let rf_dbh = metrics::replication_factor(&g, &dbh);
        assert!(rf_dbh < rf_hash, "DBH RF {rf_dbh} should beat hash RF {rf_hash}");
    }

    #[test]
    fn dbh_partial_close_to_exact() {
        let g = twitter_like();
        let c = cfg(8);
        let exact = run_edge_stream(
            &g,
            &mut Dbh::with_exact_degrees(&c, &g),
            8,
            StreamOrder::Random { seed: 4 },
        );
        let partial = run_edge_stream(
            &g,
            &mut Dbh::with_partial_degrees(&c),
            8,
            StreamOrder::Random { seed: 4 },
        );
        let (re, rp) =
            (metrics::replication_factor(&g, &exact), metrics::replication_factor(&g, &partial));
        assert!((re - rp).abs() / re < 0.35, "partial DBH ({rp}) far from exact ({re})");
    }

    #[test]
    fn grid_respects_replication_bound() {
        let g = twitter_like();
        let k = 16; // 4x4 grid: bound = 2*sqrt(16) - 1 = 7
        let c = cfg(k);
        let p =
            run_edge_stream(&g, &mut GridConstrained::new(&c), k, StreamOrder::Random { seed: 5 });
        let sets = p.replica_sets(&g);
        let bound = 2 * (k as f64).sqrt() as usize - 1;
        for (v, set) in sets.iter().enumerate() {
            assert!(set.len() <= bound, "vertex {v} spans {} > {bound} partitions", set.len());
        }
    }

    #[test]
    fn grid_constrained_sets_intersect() {
        let c = cfg(16);
        let grid = GridConstrained::new(&c);
        for a in 0..16 {
            for b in 0..16 {
                let sa = grid.constrained_set(a);
                let sb = grid.constrained_set(b);
                assert!(
                    sa.iter().any(|p| sb.binary_search(p).is_ok()),
                    "constrained sets of {a} and {b} must intersect"
                );
            }
        }
    }

    #[test]
    fn grid_precomputed_pairs_match_per_edge_recomputation() {
        // The pre-refactor Grid recomputed the candidate list on every
        // placement: intersect the endpoints' constrained sets, fall
        // back to their deduplicated union when grid folding empties the
        // intersection. The refactor moved that to a k² table built at
        // construction; this reference partitioner IS the old per-edge
        // logic, and placements must agree on every stream — including
        // non-perfect-square and prime k, where the folding fallback
        // and the 1 × k degenerate grid actually trigger.
        struct OldGrid {
            k: usize,
            rows: usize,
            cols: usize,
            seed: u64,
        }
        impl EdgeStreamPartitioner for OldGrid {
            fn place(&mut self, e: Edge, state: &EdgeStreamState) -> PartitionId {
                let shard = |v: u32| {
                    hash_to_partition(v, self.rows * self.cols, self.seed) % self.k as PartitionId
                };
                let su = constrained_set_of(shard(e.src), self.k, self.rows, self.cols);
                let sv = constrained_set_of(shard(e.dst), self.k, self.rows, self.cols);
                let mut common: Vec<PartitionId> =
                    su.iter().copied().filter(|p| sv.binary_search(p).is_ok()).collect();
                if common.is_empty() {
                    common = su;
                    common.extend(sv);
                    common.sort_unstable();
                    common.dedup();
                }
                state.least_loaded(&common)
            }
            fn name(&self) -> &'static str {
                "OldGrid"
            }
        }

        let g = erdos_renyi(ErdosRenyiConfig { vertices: 400, edges: 3000, seed: 21 });
        for k in [2usize, 3, 5, 7, 12, 16, 17, 30, 100] {
            let c = cfg(k);
            let (rows, cols) = squarest_factorization(k);
            let mut old = OldGrid { k, rows, cols, seed: c.seed };
            for order in [StreamOrder::Natural, StreamOrder::Random { seed: 9 }, StreamOrder::Bfs] {
                let new_p = run_edge_stream(&g, &mut GridConstrained::new(&c), k, order);
                let old_p = run_edge_stream(&g, &mut old, k, order);
                assert_eq!(
                    new_p.edge_parts, old_p.edge_parts,
                    "Grid placements diverged from the per-edge reference at k={k} ({order:?})"
                );
            }
        }
    }

    #[test]
    fn squarest_factorization_cases() {
        assert_eq!(squarest_factorization(16), (4, 4));
        assert_eq!(squarest_factorization(8), (2, 4));
        assert_eq!(squarest_factorization(7), (1, 7));
        assert_eq!(squarest_factorization(12), (3, 4));
        assert_eq!(squarest_factorization(1), (1, 1));
    }

    #[test]
    fn hdrf_beats_greedy_on_bfs_order() {
        // §4.2.2: plain greedy degenerates on BFS streams; HDRF's λ > 1
        // keeps balance.
        let g = twitter_like();
        let c = cfg(8);
        let greedy = run_edge_stream(&g, &mut PowerGraphGreedy::new(&c), 8, StreamOrder::Bfs);
        let hdrf = run_edge_stream(&g, &mut Hdrf::new(&c, g.num_edges()), 8, StreamOrder::Bfs);
        let imb_greedy = metrics::load_imbalance(&greedy.edges_per_partition());
        let imb_hdrf = metrics::load_imbalance(&hdrf.edges_per_partition());
        assert!(
            imb_hdrf < imb_greedy || imb_hdrf < 1.2,
            "HDRF balance {imb_hdrf} should beat greedy {imb_greedy} on BFS order"
        );
    }

    #[test]
    fn hdrf_produces_balanced_edges() {
        let g = twitter_like();
        let c = cfg(16);
        let p = run_edge_stream(
            &g,
            &mut Hdrf::new(&c, g.num_edges()),
            16,
            StreamOrder::Random { seed: 6 },
        );
        let imb = metrics::load_imbalance(&p.edges_per_partition());
        assert!(imb < 1.25, "HDRF edge imbalance {imb}");
    }

    #[test]
    fn hdrf_beats_hash_on_replication() {
        let g = twitter_like();
        let c = cfg(16);
        let hash = run_edge_stream(&g, &mut HashEdge::new(&c), 16, StreamOrder::Random { seed: 7 });
        let hdrf = run_edge_stream(
            &g,
            &mut Hdrf::new(&c, g.num_edges()),
            16,
            StreamOrder::Random { seed: 7 },
        );
        let (rh, rd) =
            (metrics::replication_factor(&g, &hash), metrics::replication_factor(&g, &hdrf));
        assert!(rd < 0.8 * rh, "HDRF RF {rd} should clearly beat hash {rh}");
    }

    #[test]
    fn all_edges_assigned_in_range() {
        let g = erdos_renyi(ErdosRenyiConfig { vertices: 300, edges: 1500, seed: 8 });
        let c = cfg(5);
        for p in [
            run_edge_stream(&g, &mut HashEdge::new(&c), 5, StreamOrder::Bfs),
            run_edge_stream(&g, &mut Dbh::with_partial_degrees(&c), 5, StreamOrder::Dfs),
            run_edge_stream(&g, &mut GridConstrained::new(&c), 5, StreamOrder::Natural),
            run_edge_stream(&g, &mut PowerGraphGreedy::new(&c), 5, StreamOrder::Natural),
            run_edge_stream(&g, &mut Hdrf::new(&c, g.num_edges()), 5, StreamOrder::Natural),
        ] {
            assert_eq!(p.edge_parts.len(), g.num_edges());
            assert!(p.edge_parts.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn greedy_keeps_star_local() {
        // A star's edges all share the hub; greedy should co-locate most
        // of them until balance forces spill.
        let mut b = sgp_graph::GraphBuilder::new();
        for i in 1..=40u32 {
            b.push_edge(0, i);
        }
        let g = b.build();
        let c = cfg(4);
        let p = run_edge_stream(&g, &mut PowerGraphGreedy::new(&c), 4, StreamOrder::Natural);
        let rf = metrics::replication_factor(&g, &p);
        // Leaves have one edge each (RF 1); hub replicates on at most k.
        assert!(rf < 1.2, "greedy star RF {rf}");
    }
}
