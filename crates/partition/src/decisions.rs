//! Per-run decision counters for the streaming partitioners.
//!
//! Each algorithm accumulates the counters relevant to its placement
//! rule while it runs (plain `u64` increments — cheap enough to stay on
//! even untraced); the traced drivers flush them into a
//! [`TraceSink`](sgp_trace::TraceSink) after the stream ends. The
//! counter names are part of the trace schema (see DESIGN.md §9).

use sgp_trace::{keys, TraceSink};

/// Decision counters shared across the partitioner families.
///
/// A field is only meaningful for the families that increment it
/// (documented per field); it stays 0 elsewhere, and the flush emits
/// every counter unconditionally so trace consumers see a stable
/// schema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Greedy score ties broken toward the less-loaded partition
    /// (LDG/FENNEL vertex-size ties, HDRF edge-count ties).
    pub balance_tiebreaks: u64,
    /// Placements that fell back to the least-loaded partition because
    /// every candidate was at capacity (LDG/FENNEL hard capacity).
    pub capacity_fallbacks: u64,
    /// Hybrid-cut edges routed by the *source* owner because the target
    /// exceeded the high-degree threshold (HCR/Ginger phase 2).
    pub degree_threshold_hits: u64,
    /// Vertex-cut replica insertions beyond a vertex's first replica —
    /// each one is a new mirror that later costs gather/scatter traffic.
    pub mirror_creations: u64,
    /// Total vertex-cut replica insertions (first replicas included);
    /// `replicas_created / |V covered|` is the replication factor.
    pub replicas_created: u64,
}

impl DecisionStats {
    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &DecisionStats) {
        self.balance_tiebreaks += other.balance_tiebreaks;
        self.capacity_fallbacks += other.capacity_fallbacks;
        self.degree_threshold_hits += other.degree_threshold_hits;
        self.mirror_creations += other.mirror_creations;
        self.replicas_created += other.replicas_created;
    }

    /// Canonical `(field, value)` records for the snapshot layer
    /// (DESIGN.md §11): every counter, in declaration order, so the same
    /// state always serializes to the same bytes.
    pub fn snapshot_records(&self) -> Vec<(&'static str, String)> {
        vec![
            ("balance_tiebreaks", self.balance_tiebreaks.to_string()),
            ("capacity_fallbacks", self.capacity_fallbacks.to_string()),
            ("degree_threshold_hits", self.degree_threshold_hits.to_string()),
            ("mirror_creations", self.mirror_creations.to_string()),
            ("replicas_created", self.replicas_created.to_string()),
        ]
    }

    /// Restores one record produced by
    /// [`snapshot_records`](DecisionStats::snapshot_records); returns
    /// `false` on an unknown field or unparsable value.
    pub fn restore_record(&mut self, key: &str, value: &str) -> bool {
        let Ok(v) = value.parse::<u64>() else {
            return false;
        };
        match key {
            "balance_tiebreaks" => self.balance_tiebreaks = v,
            "capacity_fallbacks" => self.capacity_fallbacks = v,
            "degree_threshold_hits" => self.degree_threshold_hits = v,
            "mirror_creations" => self.mirror_creations = v,
            "replicas_created" => self.replicas_created = v,
            _ => return false,
        }
        true
    }

    /// Emits every counter (including zeros, for schema stability) into
    /// `sink` under the `partition.*` namespace.
    pub fn flush_into<S: TraceSink>(&self, sink: &mut S) {
        sink.counter_add(keys::PARTITION_BALANCE_TIEBREAKS, 0, self.balance_tiebreaks);
        sink.counter_add(keys::PARTITION_CAPACITY_FALLBACKS, 0, self.capacity_fallbacks);
        sink.counter_add(keys::PARTITION_DEGREE_THRESHOLD_HITS, 0, self.degree_threshold_hits);
        sink.counter_add(keys::PARTITION_MIRROR_CREATIONS, 0, self.mirror_creations);
        sink.counter_add(keys::PARTITION_REPLICAS_CREATED, 0, self.replicas_created);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_trace::CollectingSink;

    #[test]
    fn merge_sums_fields() {
        let mut a = DecisionStats { balance_tiebreaks: 1, ..Default::default() };
        let b = DecisionStats { balance_tiebreaks: 2, mirror_creations: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.balance_tiebreaks, 3);
        assert_eq!(a.mirror_creations, 5);
    }

    #[test]
    fn flush_emits_stable_schema() {
        let stats = DecisionStats { degree_threshold_hits: 7, ..Default::default() };
        let mut sink = CollectingSink::new();
        stats.flush_into(&mut sink);
        assert_eq!(sink.events().len(), 5);
        assert_eq!(sink.counter_total(keys::PARTITION_DEGREE_THRESHOLD_HITS), 7);
        assert_eq!(sink.counter_total(keys::PARTITION_BALANCE_TIEBREAKS), 0);
    }
}
