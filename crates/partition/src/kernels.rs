//! Shared k-way placement kernels (DESIGN.md §13).
//!
//! Every greedy streaming heuristic in the paper ends in the same inner
//! loop: scan the k partitions, keep the best score under the `1e-12`
//! epsilon tie discipline, and prefer the lighter partition on ties.
//! LDG, FENNEL and HDRF each used to carry a private copy of that fold;
//! this module hoists it into one struct-of-arrays scan over dense
//! score/load slices so the hot path is a single branch-predictable,
//! allocation-free pass the compiler can vectorize.
//!
//! Bit-identity contract: [`epsilon_argmax`] performs exactly the float
//! comparisons of the historical per-algorithm loops — strictly better
//! means `score > best + 1e-12`; a tie means `|score − best| ≤ 1e-12`
//! and breaks toward the smaller load (counting the tie-break), then
//! toward the lower index via the ascending scan order. [`SKIP`]
//! (negative infinity) marks a capacity-saturated partition; a finite
//! score never compares as a tie against it, which is also why seeding
//! the fold with negative infinity (HDRF's historical form) and seeding
//! it with "no candidate yet" (LDG/FENNEL's historical form) pick the
//! same winner.

use crate::assignment::PartitionId;

/// Epsilon of every score tie comparison in the placement loops.
pub(crate) const SCORE_EPSILON: f64 = 1e-12;

/// Sentinel score excluding a partition from [`epsilon_argmax`]
/// (capacity-saturated in LDG/FENNEL terms).
pub(crate) const SKIP: f64 = f64::NEG_INFINITY;

/// The shared k-way argmax over a dense score column: the highest score
/// wins, epsilon ties break to the smaller `loads` entry (bumping
/// `tiebreaks`), remaining ties to the lower index. Entries equal to
/// [`SKIP`] never win; returns `None` iff every entry is skipped.
pub(crate) fn epsilon_argmax(
    scores: &[f64],
    loads: &[usize],
    tiebreaks: &mut u64,
) -> Option<usize> {
    debug_assert_eq!(scores.len(), loads.len(), "score/load columns must align");
    let mut best: Option<usize> = None;
    let mut best_score = SKIP;
    for (i, &score) in scores.iter().enumerate() {
        if score == SKIP {
            continue;
        }
        match best {
            None => {
                best = Some(i);
                best_score = score;
            }
            Some(b) => {
                if score > best_score + SCORE_EPSILON {
                    best = Some(i);
                    best_score = score;
                } else if (score - best_score).abs() <= SCORE_EPSILON && loads[i] < loads[b] {
                    *tiebreaks += 1;
                    best = Some(i);
                    best_score = score;
                }
            }
        }
    }
    best
}

/// Index of the smallest load (ties → lower index): the strict-improve
/// ascending scan form of `min_by_key`, shared by the capacity
/// fallbacks of the vertex-stream heuristics.
pub(crate) fn argmin_load(loads: &[usize]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &load) in loads.iter().enumerate() {
        match best {
            Some(b) if loads[b] <= load => {}
            _ => best = Some(i),
        }
    }
    best
}

/// Least-loaded candidate under the `(loads[p], p)` key — the greedy
/// vertex-cut tie discipline — over any candidate iterator (a
/// precomputed constrained set, or a replica bitset scan). `None` iff
/// the iterator is empty.
pub(crate) fn least_loaded_among<I>(candidates: I, loads: &[usize]) -> Option<PartitionId>
where
    I: IntoIterator<Item = PartitionId>,
{
    let mut best: Option<(usize, PartitionId)> = None;
    for p in candidates {
        let key = (loads[p as usize], p);
        match best {
            Some(b) if b <= key => {}
            _ => best = Some(key),
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the historical Option-seeded fold LDG
    /// and FENNEL carried (capacity skip expressed as SKIP entries).
    fn reference_argmax(scores: &[f64], loads: &[usize]) -> (Option<usize>, u64) {
        let mut tiebreaks = 0u64;
        let mut best: Option<(f64, usize, usize)> = None;
        for (i, &score) in scores.iter().enumerate() {
            if score == SKIP {
                continue;
            }
            let candidate = (score, loads[i], i);
            best = Some(match best {
                None => candidate,
                Some(b) => {
                    if score > b.0 + SCORE_EPSILON {
                        candidate
                    } else if (score - b.0).abs() <= SCORE_EPSILON && loads[i] < b.1 {
                        tiebreaks += 1;
                        candidate
                    } else {
                        b
                    }
                }
            });
        }
        (best.map(|(_, _, i)| i), tiebreaks)
    }

    #[test]
    fn kernel_matches_the_historical_fold_on_grids() {
        let score_values = [-1.0, 0.0, 0.5, 0.5 + 5e-13, 1.0, SKIP];
        let load_values = [0usize, 1, 2];
        for &s0 in &score_values {
            for &s1 in &score_values {
                for &s2 in &score_values {
                    for &l0 in &load_values {
                        for &l1 in &load_values {
                            for &l2 in &load_values {
                                let scores = [s0, s1, s2];
                                let loads = [l0, l1, l2];
                                let mut ties = 0u64;
                                let got = epsilon_argmax(&scores, &loads, &mut ties);
                                let (want, want_ties) = reference_argmax(&scores, &loads);
                                assert_eq!(got, want, "scores {scores:?} loads {loads:?}");
                                assert_eq!(ties, want_ties, "scores {scores:?} loads {loads:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn neg_infinity_seed_equals_option_seed() {
        // HDRF's historical fold started from (NEG_INFINITY, 0) with no
        // skip; with all-finite scores the kernel's None seed takes the
        // first entry the same way (finite > −∞ + ε, and the tie branch
        // cannot fire against −∞).
        let scores = [-3.0, -3.0, -5.0];
        let loads = [7, 2, 0];
        let mut ties = 0;
        assert_eq!(epsilon_argmax(&scores, &loads, &mut ties), Some(1));
        assert_eq!(ties, 1, "equal scores break to the lighter load");
    }

    #[test]
    fn all_skipped_returns_none() {
        let mut ties = 0;
        assert_eq!(epsilon_argmax(&[SKIP, SKIP], &[0, 0], &mut ties), None);
        assert_eq!(ties, 0);
    }

    #[test]
    fn argmin_load_prefers_first_minimum() {
        assert_eq!(argmin_load(&[3, 1, 1, 2]), Some(1));
        assert_eq!(argmin_load(&[]), None);
    }

    #[test]
    fn least_loaded_among_uses_the_load_then_id_key() {
        let loads = [5usize, 3, 3, 9];
        assert_eq!(least_loaded_among([0u32, 2, 1].into_iter(), &loads), Some(1));
        assert_eq!(least_loaded_among(std::iter::empty(), &loads), None);
    }
}
