//! Unified partitioning output shared by all algorithms.
//!
//! The paper compares edge-cut and vertex-cut algorithms on one system by
//! converting vertex-disjoint (edge-cut) partitionings into equivalent
//! edge-disjoint placements: "we create an equivalent edge-disjoint
//! (vertex-cut) partitioning by assigning all out-edges of vertex u to
//! partition Pi" (Appendix B). [`Partitioning`] stores exactly that: an
//! edge placement array (indexed by [`Graph::edge_index`]) plus, when the
//! producing algorithm is vertex-disjoint, the vertex ownership map.

use serde::{Deserialize, Serialize};
use sgp_graph::{Graph, VertexId};

/// A partition identifier in `0..k`.
pub type PartitionId = u32;

/// Which cut model produced a [`Partitioning`] (Table 1's top-level
/// classification). The engine uses this only for reporting; the
/// communication semantics are fully determined by the edge placement
/// and vertex ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CutModel {
    /// Vertex-disjoint placement; out-edges follow their source.
    EdgeCut,
    /// Edge-disjoint placement; vertices replicate freely.
    VertexCut,
    /// PowerLyra-style differentiated placement (low-degree grouped,
    /// high-degree scattered).
    HybridCut,
}

impl std::fmt::Display for CutModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(match self {
            CutModel::EdgeCut => "edge-cut",
            CutModel::VertexCut => "vertex-cut",
            CutModel::HybridCut => "hybrid-cut",
        })
    }
}

/// The result of partitioning a graph into `k` parts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partitioning {
    /// Number of partitions.
    pub k: usize,
    /// The producing cut model.
    pub model: CutModel,
    /// `edge_parts[i]` is the partition of the i-th edge in
    /// [`Graph::edges`] order (see [`Graph::edge_index`]).
    pub edge_parts: Vec<PartitionId>,
    /// For vertex-disjoint models: the partition owning each vertex.
    /// `None` for pure vertex-cut placements, where masters are derived
    /// (see [`Partitioning::masters`]).
    pub vertex_owner: Option<Vec<PartitionId>>,
}

impl Partitioning {
    /// Builds an edge-cut partitioning from a vertex ownership map,
    /// deriving the Appendix-B edge placement (out-edges with source).
    ///
    /// # Panics
    /// Panics if `owner.len() != g.num_vertices()` or any id is ≥ `k`.
    pub fn from_vertex_owners(g: &Graph, k: usize, owner: Vec<PartitionId>) -> Self {
        assert_eq!(owner.len(), g.num_vertices(), "owner map must cover every vertex");
        assert!(owner.iter().all(|&p| (p as usize) < k), "partition id out of range");
        let mut edge_parts = Vec::with_capacity(g.num_edges());
        for v in g.vertices() {
            let p = owner[v as usize];
            edge_parts.extend(std::iter::repeat_n(p, g.out_degree(v)));
        }
        Partitioning { k, model: CutModel::EdgeCut, edge_parts, vertex_owner: Some(owner) }
    }

    /// Builds a vertex-cut partitioning from an edge placement given in
    /// [`Graph::edges`] order.
    ///
    /// # Panics
    /// Panics if the placement does not cover every edge or any id is ≥ `k`.
    pub fn from_edge_parts(g: &Graph, k: usize, edge_parts: Vec<PartitionId>) -> Self {
        assert_eq!(edge_parts.len(), g.num_edges(), "edge placement must cover every edge");
        assert!(edge_parts.iter().all(|&p| (p as usize) < k), "partition id out of range");
        Partitioning { k, model: CutModel::VertexCut, edge_parts, vertex_owner: None }
    }

    /// Flat replica-membership bitset: `stride` words per vertex, bit
    /// `p` of vertex `v`'s block set iff partition `p` holds an edge
    /// incident to `v` (or owns `v`, for vertex-disjoint models). The
    /// same fixed-stride layout as the streaming state's replica store
    /// (DESIGN.md §13): one pass over the edges, no per-vertex
    /// allocation or membership scan.
    fn replica_bits(&self, g: &Graph) -> (Vec<u64>, usize) {
        let stride = self.k.div_ceil(64).max(1);
        let mut bits = vec![0u64; g.num_vertices() * stride];
        for (i, e) in g.edges().enumerate() {
            let p = self.edge_parts[i] as usize;
            bits[e.src as usize * stride + (p >> 6)] |= 1u64 << (p & 63);
            bits[e.dst as usize * stride + (p >> 6)] |= 1u64 << (p & 63);
        }
        if let Some(owner) = &self.vertex_owner {
            for (v, &p) in owner.iter().enumerate() {
                bits[v * stride + (p as usize >> 6)] |= 1u64 << (p & 63);
            }
        }
        (bits, stride)
    }

    /// Computes the replica set `A(u)` for every vertex: the sorted set of
    /// partitions holding at least one edge incident to `u`, always
    /// including the owner for vertex-disjoint models (so isolated
    /// vertices still live somewhere).
    pub fn replica_sets(&self, g: &Graph) -> Vec<Vec<PartitionId>> {
        let (bits, stride) = self.replica_bits(g);
        bits.chunks_exact(stride)
            .enumerate()
            .map(|(v, block)| {
                // Ascending-bit materialization is already sorted.
                let mut set: Vec<PartitionId> = Vec::new();
                for (w, &word) in block.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        set.push(((w as PartitionId) << 6) + word.trailing_zeros());
                        word &= word - 1;
                    }
                }
                if set.is_empty() {
                    // Isolated vertex in a pure vertex-cut placement:
                    // park it deterministically so every vertex has a
                    // home.
                    set.push((v % self.k) as PartitionId);
                }
                set
            })
            .collect()
    }

    /// Sum of `|A(u)|` over all vertices — the numerator of the
    /// replication factor (Eq. 6) — computed by popcount over the flat
    /// bitset without materializing any replica set.
    pub(crate) fn total_replicas(&self, g: &Graph) -> usize {
        let (bits, stride) = self.replica_bits(g);
        bits.chunks_exact(stride)
            .map(|block| {
                let ones: u32 = block.iter().map(|w| w.count_ones()).sum();
                // An empty block is a parked isolated vertex: one replica.
                (ones as usize).max(1)
            })
            .sum()
    }

    /// The master partition of every vertex. For vertex-disjoint models
    /// this is the owner; for vertex-cut models the master is chosen
    /// deterministically among the replicas by hashing the vertex id,
    /// mirroring PowerGraph's randomized master placement.
    pub fn masters(&self, g: &Graph) -> Vec<PartitionId> {
        match &self.vertex_owner {
            Some(owner) => owner.clone(),
            None => self
                .replica_sets(g)
                .iter()
                .enumerate()
                .map(|(v, set)| set[fxhash64(v as u64) as usize % set.len()])
                .collect(),
        }
    }

    /// Number of edges placed in each partition.
    pub fn edges_per_partition(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.k];
        for &p in &self.edge_parts {
            counts[p as usize] += 1;
        }
        counts
    }

    /// Number of owned vertices per partition (vertex-disjoint models
    /// only).
    pub fn vertices_per_partition(&self) -> Option<Vec<usize>> {
        self.vertex_owner.as_ref().map(|owner| {
            let mut counts = vec![0usize; self.k];
            for &p in owner {
                counts[p as usize] += 1;
            }
            counts
        })
    }

    /// Partition of the directed edge `src -> dst`, if it exists.
    pub fn edge_partition(&self, g: &Graph, src: VertexId, dst: VertexId) -> Option<PartitionId> {
        g.edge_index(src, dst).map(|i| self.edge_parts[i])
    }
}

/// A fast, deterministic 64-bit mix (SplitMix64 finalizer). Used for all
/// hash-based placement decisions in the workspace so results are stable
/// across platforms and runs — `std`'s `DefaultHasher` is explicitly not
/// guaranteed stable.
#[inline]
pub fn fxhash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a vertex id to a partition in `0..k`.
#[inline]
pub fn hash_to_partition(v: VertexId, k: usize, seed: u64) -> PartitionId {
    (fxhash64(v as u64 ^ seed.rotate_left(17)) % k as u64) as PartitionId
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgp_graph::GraphBuilder;

    fn diamond() -> Graph {
        GraphBuilder::new().add_edge(0, 1).add_edge(0, 2).add_edge(1, 3).add_edge(2, 3).build()
    }

    #[test]
    fn from_vertex_owners_groups_out_edges() {
        let g = diamond();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0, 1]);
        // Edge order: (0,1) (0,2) (1,3) (2,3); sources 0,0,1,2.
        assert_eq!(p.edge_parts, vec![0, 0, 1, 0]);
        assert_eq!(p.model, CutModel::EdgeCut);
    }

    #[test]
    fn replica_sets_include_owner_and_edge_parts() {
        let g = diamond();
        let p = Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0, 1]);
        let sets = p.replica_sets(&g);
        // Vertex 3 owned by 1, has in-edges in partitions 1 (from v1) and 0 (from v2).
        assert_eq!(sets[3], vec![0, 1]);
        // Vertex 0 owned by 0; all its out-edges are local.
        assert_eq!(sets[0], vec![0]);
    }

    #[test]
    fn masters_equal_owner_for_edge_cut() {
        let g = diamond();
        let owner = vec![0, 1, 0, 1];
        let p = Partitioning::from_vertex_owners(&g, 2, owner.clone());
        assert_eq!(p.masters(&g), owner);
    }

    #[test]
    fn vertex_cut_masters_drawn_from_replicas() {
        let g = diamond();
        let p = Partitioning::from_edge_parts(&g, 2, vec![0, 1, 1, 0]);
        let masters = p.masters(&g);
        let sets = p.replica_sets(&g);
        for (v, m) in masters.iter().enumerate() {
            assert!(sets[v].contains(m), "master of {v} must be a replica");
        }
    }

    #[test]
    fn isolated_vertex_gets_deterministic_home_in_vertex_cut() {
        let g = GraphBuilder::new().add_edge(0, 1).ensure_vertices(5).build();
        let p = Partitioning::from_edge_parts(&g, 3, vec![2]);
        let sets = p.replica_sets(&g);
        assert_eq!(sets[4].len(), 1);
        assert_eq!(sets[4][0], (4 % 3) as PartitionId);
    }

    #[test]
    fn total_replicas_matches_materialized_sets() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 3)
            .add_edge(2, 3)
            .ensure_vertices(6)
            .build();
        for k in [1usize, 2, 3, 64, 65, 100] {
            let parts: Vec<PartitionId> = (0..4).map(|i| (i * 31 % k) as PartitionId).collect();
            let p = Partitioning::from_edge_parts(&g, k, parts);
            let sets = p.replica_sets(&g);
            assert_eq!(p.total_replicas(&g), sets.iter().map(|s| s.len()).sum::<usize>(), "k={k}");
            // Parked isolated vertices count exactly one replica.
            assert_eq!(sets[5], vec![(5 % k) as PartitionId], "k={k}");
        }
    }

    #[test]
    fn edges_per_partition_sums_to_m() {
        let g = diamond();
        let p = Partitioning::from_edge_parts(&g, 3, vec![0, 1, 2, 1]);
        let counts = p.edges_per_partition();
        assert_eq!(counts.iter().sum::<usize>(), 4);
        assert_eq!(counts, vec![1, 2, 1]);
    }

    #[test]
    fn edge_partition_lookup() {
        let g = diamond();
        let p = Partitioning::from_edge_parts(&g, 2, vec![0, 1, 1, 0]);
        assert_eq!(p.edge_partition(&g, 0, 2), Some(1));
        assert_eq!(p.edge_partition(&g, 3, 0), None);
    }

    #[test]
    #[should_panic(expected = "owner map must cover every vertex")]
    fn owner_map_length_checked() {
        let g = diamond();
        Partitioning::from_vertex_owners(&g, 2, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "partition id out of range")]
    fn partition_range_checked() {
        let g = diamond();
        Partitioning::from_vertex_owners(&g, 2, vec![0, 1, 0, 5]);
    }

    #[test]
    fn hash_to_partition_in_range_and_deterministic() {
        for v in 0..1000u32 {
            let p = hash_to_partition(v, 7, 42);
            assert!((p as usize) < 7);
            assert_eq!(p, hash_to_partition(v, 7, 42));
        }
    }

    #[test]
    fn hash_to_partition_spreads_roughly_evenly() {
        let k = 8;
        let mut counts = vec![0usize; k];
        for v in 0..8000u32 {
            counts[hash_to_partition(v, k, 1) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "bucket count {c} too far from 1000");
        }
    }
}
